// Tests for ShardedClient: routing across range-partitioned tablets with
// independent primaries, validation, and cross-shard session guarantees.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/sharded_client.h"
#include "src/storage/storage_node.h"
#include "src/tablets/tablet_map.h"

namespace pileus::core {
namespace {

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

// Direct call into a StorageNode, advancing a shared manual clock by the
// configured RTT.
class DirectConnection : public NodeConnection {
 public:
  DirectConnection(storage::StorageNode* node, ManualClock* clock,
                   MicrosecondCount rtt_us)
      : node_(node), clock_(clock), rtt_us_(rtt_us) {}

  TimedReply Call(const proto::Message& request,
                  MicrosecondCount /*timeout*/) override {
    clock_->AdvanceMicros(rtt_us_);
    return TimedReply(node_->Handle(request), rtt_us_);
  }

 private:
  storage::StorageNode* node_;
  ManualClock* clock_;
  MicrosecondCount rtt_us_;
};

class ShardedClientTest : public ::testing::Test {
 protected:
  ShardedClientTest() : clock_(SecondsToMicroseconds(1000)) {}

  // Two shards split at "m": the low shard's primary is node A, the high
  // shard's primary is node B (different primary sites per tablet, as the
  // paper allows).
  void Build(PileusClient::Options options = PileusClient::Options{}) {
    node_a_ = std::make_unique<storage::StorageNode>("A", "site-a", &clock_);
    node_b_ = std::make_unique<storage::StorageNode>("B", "site-b", &clock_);
    storage::Tablet::Options low;
    low.range = KeyRange{"", "m"};
    low.is_primary = true;
    ASSERT_TRUE(node_a_->AddTablet("t", low).ok());
    storage::Tablet::Options low_secondary;
    low_secondary.range = KeyRange{"", "m"};
    ASSERT_TRUE(node_b_->AddTablet("t", low_secondary).ok());

    storage::Tablet::Options high;
    high.range = KeyRange{"m", ""};
    high.is_primary = true;
    ASSERT_TRUE(node_b_->AddTablet("t2", high).ok());
    storage::Tablet::Options high_secondary;
    high_secondary.range = KeyRange{"m", ""};
    ASSERT_TRUE(node_a_->AddTablet("t2", high_secondary).ok());

    std::vector<ShardedClient::Shard> shards;
    shards.push_back(ShardedClient::Shard{
        KeyRange{"", "m"}, MakeView("t", node_a_.get(), node_b_.get())});
    shards.push_back(ShardedClient::Shard{
        KeyRange{"m", ""}, MakeView("t2", node_b_.get(), node_a_.get())});
    Result<std::unique_ptr<ShardedClient>> created =
        ShardedClient::Create(std::move(shards), &clock_, options);
    ASSERT_TRUE(created.ok()) << created.status();
    client_ = std::move(created).value();
  }

  TableView MakeView(const std::string& table, storage::StorageNode* primary,
                     storage::StorageNode* secondary) {
    TableView view;
    view.table_name = table;
    view.replicas = {
        Replica{primary->name(), true,
                std::make_shared<DirectConnection>(primary, &clock_,
                                                   5 * kMs)},
        Replica{secondary->name(), false,
                std::make_shared<DirectConnection>(secondary, &clock_,
                                                   1 * kMs)}};
    view.primary_index = 0;
    return view;
  }

  ManualClock clock_;
  std::unique_ptr<storage::StorageNode> node_a_;
  std::unique_ptr<storage::StorageNode> node_b_;
  std::unique_ptr<ShardedClient> client_;
};

TEST_F(ShardedClientTest, CreateRejectsGappyRanges) {
  Build();  // Just to have nodes for views.
  std::vector<ShardedClient::Shard> shards;
  shards.push_back(ShardedClient::Shard{
      KeyRange{"", "m"}, MakeView("t", node_a_.get(), node_b_.get())});
  shards.push_back(ShardedClient::Shard{
      KeyRange{"n", ""}, MakeView("t2", node_b_.get(), node_a_.get())});
  EXPECT_FALSE(
      ShardedClient::Create(std::move(shards), &clock_,
                            PileusClient::Options{})
          .ok());
}

TEST_F(ShardedClientTest, CreateRejectsOverlaps) {
  Build();
  std::vector<ShardedClient::Shard> shards;
  shards.push_back(ShardedClient::Shard{
      KeyRange{"", "n"}, MakeView("t", node_a_.get(), node_b_.get())});
  shards.push_back(ShardedClient::Shard{
      KeyRange{"m", ""}, MakeView("t2", node_b_.get(), node_a_.get())});
  EXPECT_FALSE(
      ShardedClient::Create(std::move(shards), &clock_,
                            PileusClient::Options{})
          .ok());
}

TEST_F(ShardedClientTest, CreateRejectsEmpty) {
  EXPECT_FALSE(ShardedClient::Create({}, &clock_, PileusClient::Options{})
                   .ok());
}

TEST_F(ShardedClientTest, RoutesByKeyRange) {
  Build();
  EXPECT_EQ(&client_->shard_client(0), client_->ShardFor("apple"));
  EXPECT_EQ(&client_->shard_client(0), client_->ShardFor(""));
  EXPECT_EQ(&client_->shard_client(1), client_->ShardFor("m"));
  EXPECT_EQ(&client_->shard_client(1), client_->ShardFor("zebra"));
}

TEST_F(ShardedClientTest, PutsLandAtTheRightPrimary) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());

  // Data lives on the shard's own primary, not the other one.
  EXPECT_TRUE(node_a_->FindTablet("t", "apple")->HandleGet("apple").found);
  EXPECT_FALSE(node_b_->FindTablet("t", "apple")->HandleGet("apple").found);
  EXPECT_TRUE(node_b_->FindTablet("t2", "zebra")->HandleGet("zebra").found);
  EXPECT_FALSE(node_a_->FindTablet("t2", "zebra")->HandleGet("zebra").found);
}

TEST_F(ShardedClientTest, GetsRouteAndHonorSession) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());

  Result<GetResult> low = client_->Get(session, "apple");
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->value, "low");
  EXPECT_EQ(low->outcome.met_rank, 0);  // Read-my-writes across the shard.

  Result<GetResult> high = client_->Get(session, "zebra");
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->value, "high");
  EXPECT_EQ(high->outcome.met_rank, 0);
}

TEST_F(ShardedClientTest, SessionStateSpansShards) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());
  // One session accumulated puts from both shards.
  EXPECT_GT(session.LastPutTimestamp("apple"), Timestamp::Zero());
  EXPECT_GT(session.LastPutTimestamp("zebra"), Timestamp::Zero());
  EXPECT_EQ(session.tracked_put_keys(), 2u);
}

TEST_F(ShardedClientTest, PerShardMonitorsAreIndependent) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "v").ok());
  // Shard 0's monitor knows its primary A; shard 1's knows nothing yet.
  EXPECT_GT(client_->shard_client(0).monitor().KnownHighTimestamp("A"),
            Timestamp::Zero());
  EXPECT_EQ(client_->shard_client(1).monitor().KnownHighTimestamp("B"),
            Timestamp::Zero());
}

TEST_F(ShardedClientTest, RangeScanSpansShards) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  for (const char* key : {"apple", "kiwi", "mango", "zebra"}) {
    ASSERT_TRUE(client_->Put(session, key, std::string("v-") + key).ok());
  }
  Result<RangeResult> result = client_->GetRange(session, "", "", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->items.size(), 4u);
  EXPECT_EQ(result->items[0].key, "apple");
  EXPECT_EQ(result->items[1].key, "kiwi");
  EXPECT_EQ(result->items[2].key, "mango");  // Crossed the "m" boundary.
  EXPECT_EQ(result->items[3].key, "zebra");
  EXPECT_EQ(result->outcome.met_rank, 0);  // RMW on both shards' primaries.
  EXPECT_GE(result->outcome.messages_sent, 2);
}

TEST_F(ShardedClientTest, RangeScanRespectsBoundsAndLimit) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  for (const char* key : {"a", "b", "n", "p", "z"}) {
    ASSERT_TRUE(client_->Put(session, key, "v").ok());
  }
  Result<RangeResult> bounded = client_->GetRange(session, "b", "p", 0);
  ASSERT_TRUE(bounded.ok());
  ASSERT_EQ(bounded->items.size(), 2u);  // b, n.
  EXPECT_EQ(bounded->items[0].key, "b");
  EXPECT_EQ(bounded->items[1].key, "n");

  Result<RangeResult> limited = client_->GetRange(session, "", "", 3);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->items.size(), 3u);
  EXPECT_TRUE(limited->truncated);
}

TEST_F(ShardedClientTest, RangeScanWithinOneShard) {
  Build();
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "v").ok());
  ASSERT_TRUE(client_->Put(session, "zebra", "v").ok());
  Result<RangeResult> result = client_->GetRange(session, "a", "c", 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].key, "apple");
  // Only the low shard was consulted.
  EXPECT_EQ(result->outcome.messages_sent, 1);
}

TEST_F(ShardedClientTest, ManyShards) {
  // 8-way split with a single node hosting all primaries.
  node_a_ = std::make_unique<storage::StorageNode>("A", "site-a", &clock_);
  std::vector<ShardedClient::Shard> shards;
  int table_index = 0;
  for (const KeyRange& range : SplitKeySpaceEvenly(8)) {
    const std::string table = "t" + std::to_string(table_index++);
    storage::Tablet::Options options;
    options.range = range;
    options.is_primary = true;
    ASSERT_TRUE(node_a_->AddTablet(table, options).ok());
    TableView view;
    view.table_name = table;
    view.replicas = {Replica{"A", true,
                             std::make_shared<DirectConnection>(
                                 node_a_.get(), &clock_, 1 * kMs)}};
    view.primary_index = 0;
    shards.push_back(ShardedClient::Shard{range, std::move(view)});
  }
  auto created = ShardedClient::Create(std::move(shards), &clock_,
                                       PileusClient::Options{});
  ASSERT_TRUE(created.ok()) << created.status();
  auto client = std::move(created).value();

  Session session = client->BeginSession(ShoppingCartSla()).value();
  for (int c = 0; c < 256; c += 5) {
    const std::string key(1, static_cast<char>(c));
    ASSERT_TRUE(client->Put(session, key, "v").ok()) << c;
    Result<GetResult> result = client->Get(session, key);
    ASSERT_TRUE(result.ok()) << c;
    EXPECT_EQ(result->value, "v");
  }
}

TEST_F(ShardedClientTest, OneCacheSpansAllShards) {
  // A single ClientCache handed to Create covers every per-range client:
  // entries are table-scoped and the ranges are disjoint, so both shards'
  // write-throughs land in (and serve from) the same cache.
  cache::ClientCache cache;
  PileusClient::Options options;
  options.cache = &cache;
  Build(options);
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());

  Result<GetResult> low = client_->Get(session, "apple");
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(low->outcome.from_cache);
  EXPECT_EQ(low->value, "low");
  Result<GetResult> high = client_->Get(session, "zebra");
  ASSERT_TRUE(high.ok());
  EXPECT_TRUE(high->outcome.from_cache);
  EXPECT_EQ(high->value, "high");

  EXPECT_EQ(client_->cache_serves(), 2u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

// --- Dynamic mode: map-driven routing, fence-triggered refresh ---

class DynamicShardedClientTest : public ::testing::Test {
 protected:
  DynamicShardedClientTest() : clock_(SecondsToMicroseconds(1000)) {
    node_a_ = std::make_unique<storage::StorageNode>("A", "site-a", &clock_);
    node_b_ = std::make_unique<storage::StorageNode>("B", "site-b", &clock_);
  }

  void AddTablet(storage::StorageNode& node, const KeyRange& range,
                 bool is_primary) {
    storage::Tablet::Options options;
    options.range = range;
    options.is_primary = is_primary;
    ASSERT_TRUE(node.AddTablet("t", options).ok());
  }

  tablets::TabletInfo Entry(std::string begin, std::string end,
                            uint64_t epoch, std::string primary) {
    tablets::TabletInfo info;
    info.range.begin = std::move(begin);
    info.range.end = std::move(end);
    info.config.epoch = epoch;
    info.config.primary = primary;
    info.config.members = {std::move(primary)};
    return info;
  }

  void BuildDynamic(tablets::TabletMap initial) {
    ShardedClient::DynamicOptions dynamic;
    dynamic.connect =
        [this](const std::string& name) -> std::shared_ptr<NodeConnection> {
      storage::StorageNode* node =
          name == "A" ? node_a_.get() : (name == "B" ? node_b_.get() : nullptr);
      if (node == nullptr) {
        return nullptr;
      }
      return std::make_shared<DirectConnection>(node, &clock_, 1 * kMs);
    };
    Result<std::unique_ptr<ShardedClient>> created = ShardedClient::CreateDynamic(
        std::move(initial), &clock_, PileusClient::Options{},
        std::move(dynamic));
    ASSERT_TRUE(created.ok()) << created.status();
    client_ = std::move(created).value();
  }

  ManualClock clock_;
  std::unique_ptr<storage::StorageNode> node_a_;
  std::unique_ptr<storage::StorageNode> node_b_;
  std::unique_ptr<ShardedClient> client_;
};

TEST_F(DynamicShardedClientTest, WrongTabletFenceTriggersMapRefresh) {
  // A starts as primary for the whole keyspace (two tablets); B holds a
  // secondary of the upper range.
  AddTablet(*node_a_, KeyRange{"", "m"}, /*is_primary=*/true);
  AddTablet(*node_a_, KeyRange{"m", ""}, /*is_primary=*/true);
  AddTablet(*node_b_, KeyRange{"m", ""}, /*is_primary=*/false);

  tablets::TabletMap v1;
  v1.table = "t";
  v1.version = 1;
  v1.tablets.push_back(Entry("", "m", 1, "A"));
  v1.tablets.push_back(Entry("m", "", 1, "A"));
  BuildDynamic(v1);
  ASSERT_EQ(client_->map_version(), 1u);

  // The upper range migrates to B behind the client's back: the nodes adopt
  // map v2 (A demotes and fences, B promotes), the client still holds v1.
  tablets::TabletMap v2 = v1;
  v2.version = 2;
  v2.tablets[1] = Entry("m", "", 2, "B");
  ASSERT_TRUE(node_a_->InstallTabletMap(v2));
  ASSERT_TRUE(node_b_->InstallTabletMap(v2));

  // The client's first write to the moved range is fenced with kWrongTablet,
  // refreshes its map from the fencing node, and retries against B — the
  // caller sees one clean success, not an error.
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());
  EXPECT_EQ(client_->map_version(), 2u);
  EXPECT_EQ(client_->map_refreshes(), 1u);
  EXPECT_TRUE(node_b_->FindTablet("t", "zebra")->HandleGet("zebra").found);
  EXPECT_FALSE(node_a_->FindTablet("t", "zebra")->HandleGet("zebra").found);

  // Writes to the unmoved range still land on A with no further refresh.
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());
  EXPECT_EQ(client_->map_refreshes(), 1u);
  EXPECT_TRUE(node_a_->FindTablet("t", "apple")->HandleGet("apple").found);
}

TEST_F(DynamicShardedClientTest, UnrouteableKeyReturnsUnavailable) {
  // The initial map covers only the lower half — dynamic mode tolerates the
  // gap, but keys inside it must fail honestly instead of misrouting.
  AddTablet(*node_a_, KeyRange{"", "m"}, /*is_primary=*/true);
  tablets::TabletMap partial;
  partial.table = "t";
  partial.version = 1;
  partial.tablets.push_back(Entry("", "m", 1, "A"));
  BuildDynamic(partial);

  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "apple", "low").ok());

  const Result<GetResult> gap = client_->Get(session, "zebra");
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kUnavailable);
  const Result<PutResult> gap_put = client_->Put(session, "zebra", "v");
  ASSERT_FALSE(gap_put.ok());
  EXPECT_EQ(gap_put.status().code(), StatusCode::kUnavailable);
}

TEST_F(DynamicShardedClientTest, UnrouteableKeyRecoversAfterMapFillsGap) {
  AddTablet(*node_a_, KeyRange{"", "m"}, /*is_primary=*/true);
  AddTablet(*node_a_, KeyRange{"m", ""}, /*is_primary=*/true);
  tablets::TabletMap partial;
  partial.table = "t";
  partial.version = 1;
  partial.tablets.push_back(Entry("", "m", 1, "A"));
  BuildDynamic(partial);

  // The full map lands on the node; the client learns it through the
  // unrouteable-key refresh path rather than a fence.
  tablets::TabletMap full = partial;
  full.version = 2;
  full.tablets.push_back(Entry("m", "", 1, "A"));
  ASSERT_TRUE(node_a_->InstallTabletMap(full));

  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "zebra", "high").ok());
  EXPECT_EQ(client_->map_version(), 2u);
  EXPECT_EQ(client_->map_refreshes(), 1u);
  EXPECT_EQ(client_->Get(session, "zebra")->value, "high");
}

// Passes requests straight through to the node but holds every tablet-map
// fetch at a gate until released, so concurrent refreshes demonstrably pile
// up behind one in-flight query.
class GatedMapConnection : public NodeConnection {
 public:
  explicit GatedMapConnection(storage::StorageNode* node) : node_(node) {}

  TimedReply Call(const proto::Message& request,
                  MicrosecondCount /*timeout*/) override {
    if (std::holds_alternative<proto::TabletMapRequest>(request)) {
      fetches_.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    }
    return TimedReply(node_->Handle(request), 0);
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  int fetches() const { return fetches_.load(); }

 private:
  storage::StorageNode* node_;
  std::atomic<int> fetches_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST_F(DynamicShardedClientTest, ConcurrentRefreshesShareOneFetch) {
  AddTablet(*node_a_, KeyRange{"", "m"}, /*is_primary=*/true);
  AddTablet(*node_a_, KeyRange{"m", ""}, /*is_primary=*/true);
  tablets::TabletMap v1;
  v1.table = "t";
  v1.version = 1;
  v1.tablets.push_back(Entry("", "m", 1, "A"));
  v1.tablets.push_back(Entry("m", "", 1, "A"));

  auto gated = std::make_shared<GatedMapConnection>(node_a_.get());
  ShardedClient::DynamicOptions dynamic;
  dynamic.connect =
      [gated](const std::string& name) -> std::shared_ptr<NodeConnection> {
    return name == "A" ? gated : nullptr;
  };
  Result<std::unique_ptr<ShardedClient>> created =
      ShardedClient::CreateDynamic(v1, &clock_, PileusClient::Options{},
                                   std::move(dynamic));
  ASSERT_TRUE(created.ok()) << created.status();
  client_ = std::move(created).value();

  // A newer map waits on the node; every concurrent refresh wants it.
  tablets::TabletMap v2 = v1;
  v2.version = 2;
  ASSERT_TRUE(node_a_->InstallTabletMap(v2));

  constexpr int kCallers = 4;
  std::vector<Status> results(kCallers);
  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back(
        [this, &results, i] { results[i] = client_->RefreshTabletMap(); });
  }
  // Exactly one caller reaches the (gated) wire; the other three must
  // register as joiners on the same fetch before we let it finish.
  while (gated->fetches() < 1) {
    std::this_thread::yield();
  }
  while (client_->map_refreshes_coalesced() < kCallers - 1) {
    std::this_thread::yield();
  }
  gated->Open();
  for (std::thread& caller : callers) {
    caller.join();
  }

  for (int i = 0; i < kCallers; ++i) {
    EXPECT_TRUE(results[i].ok()) << "caller " << i << ": " << results[i];
  }
  EXPECT_EQ(gated->fetches(), 1);  // One wire query served all four callers.
  EXPECT_EQ(client_->map_version(), 2u);
  EXPECT_EQ(client_->map_refreshes(), 1u);
  EXPECT_EQ(client_->map_refreshes_coalesced(),
            static_cast<uint64_t>(kCallers - 1));
}

TEST_F(DynamicShardedClientTest, RoutingTableFuzz) {
  // Random gappy tilings: for every probe key, ShardFor must agree exactly
  // with the map's own OwnerOf — present iff some tablet covers the key,
  // and never a neighbouring shard (no misrouting off a gap edge).
  AddTablet(*node_a_, KeyRange::All(), /*is_primary=*/true);
  std::mt19937_64 rng(20260808);
  const auto random_key = [&] {
    std::string key(1 + rng() % 5, 'a');
    for (char& c : key) {
      c = static_cast<char>('a' + rng() % 26);
    }
    return key;
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::set<std::string> boundaries;
    const size_t count = 2 + rng() % 6;
    while (boundaries.size() < count) {
      boundaries.insert(random_key());
    }
    std::vector<std::string> sorted(boundaries.begin(), boundaries.end());
    // Walk the gaps between consecutive boundaries (plus the unbounded
    // flanks) and keep each resulting range with probability 1/2.
    tablets::TabletMap map;
    map.table = "t";
    map.version = 1;
    std::string begin = "";
    for (size_t i = 0; i <= sorted.size(); ++i) {
      const std::string end = i < sorted.size() ? sorted[i] : "";
      if ((begin != end || end.empty()) && rng() % 2 == 0) {
        map.tablets.push_back(Entry(begin, end, 1, "A"));
      }
      begin = end;
    }
    if (map.tablets.empty()) {
      map.tablets.push_back(Entry("", "", 1, "A"));
    }
    BuildDynamic(map);
    ASSERT_EQ(client_->shard_count(),
              static_cast<size_t>(map.tablets.size()));
    for (int probe = 0; probe < 100; ++probe) {
      const std::string key = probe == 0 ? std::string() : random_key();
      const tablets::TabletInfo* owner = map.OwnerOf(key);
      PileusClient* shard = client_->ShardFor(key);
      if (owner == nullptr) {
        EXPECT_EQ(shard, nullptr) << "misroute of uncovered key '" << key
                                  << "' in trial " << trial;
      } else {
        ASSERT_NE(shard, nullptr) << "covered key '" << key
                                  << "' unrouteable in trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace pileus::core
