// Tests for half-open key ranges and keyspace tiling.

#include <gtest/gtest.h>

#include "src/util/key_range.h"

namespace pileus {
namespace {

TEST(KeyRangeTest, AllContainsEverything) {
  const KeyRange all = KeyRange::All();
  EXPECT_TRUE(all.Contains(""));
  EXPECT_TRUE(all.Contains("a"));
  EXPECT_TRUE(all.Contains(std::string(100, '\xff')));
}

TEST(KeyRangeTest, HalfOpenSemantics) {
  const KeyRange range{"b", "d"};
  EXPECT_FALSE(range.Contains("a"));
  EXPECT_TRUE(range.Contains("b"));   // Inclusive begin.
  EXPECT_TRUE(range.Contains("c"));
  EXPECT_TRUE(range.Contains("czzz"));
  EXPECT_FALSE(range.Contains("d"));  // Exclusive end.
  EXPECT_FALSE(range.Contains("e"));
}

TEST(KeyRangeTest, UnboundedEnd) {
  const KeyRange range{"m", ""};
  EXPECT_TRUE(range.Contains("m"));
  EXPECT_TRUE(range.Contains("zzzz"));
  EXPECT_FALSE(range.Contains("a"));
}

TEST(KeyRangeTest, EmptyRange) {
  EXPECT_TRUE((KeyRange{"d", "d"}).IsEmpty());
  EXPECT_TRUE((KeyRange{"e", "d"}).IsEmpty());
  EXPECT_FALSE((KeyRange{"d", "e"}).IsEmpty());
  EXPECT_FALSE(KeyRange::All().IsEmpty());
}

TEST(KeyRangeTest, OverlapCases) {
  const KeyRange bd{"b", "d"};
  EXPECT_TRUE(bd.Overlaps(KeyRange{"c", "e"}));
  EXPECT_TRUE(bd.Overlaps(KeyRange{"a", "c"}));
  EXPECT_TRUE(bd.Overlaps(KeyRange::All()));
  EXPECT_TRUE(bd.Overlaps(bd));
  // Adjacent ranges do not overlap (half-open).
  EXPECT_FALSE(bd.Overlaps(KeyRange{"d", "f"}));
  EXPECT_FALSE(bd.Overlaps(KeyRange{"a", "b"}));
  EXPECT_FALSE(bd.Overlaps(KeyRange{"x", "z"}));
  // Empty ranges overlap nothing.
  EXPECT_FALSE(bd.Overlaps(KeyRange{"c", "c"}));
}

TEST(KeyRangeTest, ToStringShowsBounds) {
  EXPECT_EQ(KeyRange::All().ToString(), "[-inf, +inf)");
  EXPECT_EQ((KeyRange{"a", "b"}).ToString(), "['a', 'b')");
}

TEST(KeyRangeTest, CoverageDetection) {
  EXPECT_TRUE(RangesCoverKeySpace({KeyRange::All()}));
  EXPECT_TRUE(RangesCoverKeySpace({{"", "m"}, {"m", ""}}));
  EXPECT_TRUE(RangesCoverKeySpace({{"m", ""}, {"", "m"}}));  // Any order.
  // Gap between "m" and "n".
  EXPECT_FALSE(RangesCoverKeySpace({{"", "m"}, {"n", ""}}));
  // Missing the low end.
  EXPECT_FALSE(RangesCoverKeySpace({{"a", "m"}, {"m", ""}}));
  // Missing the high end.
  EXPECT_FALSE(RangesCoverKeySpace({{"", "m"}, {"m", "z"}}));
  EXPECT_FALSE(RangesCoverKeySpace({}));
}

class SplitKeySpace : public ::testing::TestWithParam<int> {};

TEST_P(SplitKeySpace, ProducesCoveringAdjacentRanges) {
  const std::vector<KeyRange> ranges = SplitKeySpaceEvenly(GetParam());
  EXPECT_EQ(ranges.size(), static_cast<size_t>(std::max(1, GetParam())));
  EXPECT_TRUE(RangesCoverKeySpace(ranges));
  // No two ranges overlap.
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      EXPECT_FALSE(ranges[i].Overlaps(ranges[j]))
          << ranges[i].ToString() << " vs " << ranges[j].ToString();
    }
  }
  // Every probe key lands in exactly one range.
  for (int c = 0; c < 256; c += 7) {
    const std::string key(1, static_cast<char>(c));
    int owners = 0;
    for (const KeyRange& range : ranges) {
      owners += range.Contains(key) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1) << "key byte " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitKeySpace,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 100));

}  // namespace
}  // namespace pileus
