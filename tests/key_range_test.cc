// Tests for half-open key ranges and keyspace tiling.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/key_range.h"

namespace pileus {
namespace {

TEST(KeyRangeTest, AllContainsEverything) {
  const KeyRange all = KeyRange::All();
  EXPECT_TRUE(all.Contains(""));
  EXPECT_TRUE(all.Contains("a"));
  EXPECT_TRUE(all.Contains(std::string(100, '\xff')));
}

TEST(KeyRangeTest, HalfOpenSemantics) {
  const KeyRange range{"b", "d"};
  EXPECT_FALSE(range.Contains("a"));
  EXPECT_TRUE(range.Contains("b"));   // Inclusive begin.
  EXPECT_TRUE(range.Contains("c"));
  EXPECT_TRUE(range.Contains("czzz"));
  EXPECT_FALSE(range.Contains("d"));  // Exclusive end.
  EXPECT_FALSE(range.Contains("e"));
}

TEST(KeyRangeTest, UnboundedEnd) {
  const KeyRange range{"m", ""};
  EXPECT_TRUE(range.Contains("m"));
  EXPECT_TRUE(range.Contains("zzzz"));
  EXPECT_FALSE(range.Contains("a"));
}

TEST(KeyRangeTest, EmptyRange) {
  EXPECT_TRUE((KeyRange{"d", "d"}).IsEmpty());
  EXPECT_TRUE((KeyRange{"e", "d"}).IsEmpty());
  EXPECT_FALSE((KeyRange{"d", "e"}).IsEmpty());
  EXPECT_FALSE(KeyRange::All().IsEmpty());
}

TEST(KeyRangeTest, OverlapCases) {
  const KeyRange bd{"b", "d"};
  EXPECT_TRUE(bd.Overlaps(KeyRange{"c", "e"}));
  EXPECT_TRUE(bd.Overlaps(KeyRange{"a", "c"}));
  EXPECT_TRUE(bd.Overlaps(KeyRange::All()));
  EXPECT_TRUE(bd.Overlaps(bd));
  // Adjacent ranges do not overlap (half-open).
  EXPECT_FALSE(bd.Overlaps(KeyRange{"d", "f"}));
  EXPECT_FALSE(bd.Overlaps(KeyRange{"a", "b"}));
  EXPECT_FALSE(bd.Overlaps(KeyRange{"x", "z"}));
  // Empty ranges overlap nothing.
  EXPECT_FALSE(bd.Overlaps(KeyRange{"c", "c"}));
}

TEST(KeyRangeTest, ToStringShowsBounds) {
  EXPECT_EQ(KeyRange::All().ToString(), "[-inf, +inf)");
  EXPECT_EQ((KeyRange{"a", "b"}).ToString(), "['a', 'b')");
}

TEST(KeyRangeTest, CoverageDetection) {
  EXPECT_TRUE(RangesCoverKeySpace({KeyRange::All()}));
  EXPECT_TRUE(RangesCoverKeySpace({{"", "m"}, {"m", ""}}));
  EXPECT_TRUE(RangesCoverKeySpace({{"m", ""}, {"", "m"}}));  // Any order.
  // Gap between "m" and "n".
  EXPECT_FALSE(RangesCoverKeySpace({{"", "m"}, {"n", ""}}));
  // Missing the low end.
  EXPECT_FALSE(RangesCoverKeySpace({{"a", "m"}, {"m", ""}}));
  // Missing the high end.
  EXPECT_FALSE(RangesCoverKeySpace({{"", "m"}, {"m", "z"}}));
  EXPECT_FALSE(RangesCoverKeySpace({}));
}

TEST(KeyRangeTest, SingleKeyRange) {
  // ["d", "d\0") holds exactly the key "d".
  const KeyRange range{"d", std::string("d") + '\0'};
  EXPECT_FALSE(range.IsEmpty());
  EXPECT_TRUE(range.Contains("d"));
  EXPECT_FALSE(range.Contains("c"));
  EXPECT_FALSE(range.Contains(std::string("d") + '\0'));
  // A single-key range has no strictly interior key, so it cannot split.
  EXPECT_FALSE(range.IsSplittable("d"));
}

TEST(KeyRangeTest, IsSplittableEdges) {
  const KeyRange range{"b", "d"};
  EXPECT_FALSE(range.IsSplittable("b"));  // Lower bound: empty lower half.
  EXPECT_FALSE(range.IsSplittable("d"));  // Not contained (exclusive end).
  EXPECT_FALSE(range.IsSplittable("a"));
  EXPECT_TRUE(range.IsSplittable("c"));
  EXPECT_TRUE(range.IsSplittable(std::string("b") + '\0'));
  // The unbounded range splits anywhere above the lowest key.
  EXPECT_FALSE(KeyRange::All().IsSplittable(""));
  EXPECT_TRUE(KeyRange::All().IsSplittable(std::string(1, '\0')));
}

TEST(KeyRangeTest, SplitAtRejectsBoundaryAndOutsideKeys) {
  const KeyRange range{"b", "d"};
  KeyRange lower, upper;
  EXPECT_FALSE(range.SplitAt("b", &lower, &upper));
  EXPECT_FALSE(range.SplitAt("d", &lower, &upper));
  EXPECT_FALSE(range.SplitAt("z", &lower, &upper));
  ASSERT_TRUE(range.SplitAt("c", &lower, &upper));
  EXPECT_EQ(lower, (KeyRange{"b", "c"}));
  EXPECT_EQ(upper, (KeyRange{"c", "d"}));
}

// Property: however a range is recursively split, the children are adjacent,
// non-overlapping, and re-tile the parent exactly — every key the parent
// contains lands in exactly one child. This is the invariant the tablet map
// relies on when the coordinator retiles an entry after a split.
TEST(KeyRangeTest, PropertySplitChildrenRetileParent) {
  std::mt19937_64 rng(20260808);
  const auto random_key = [&] {
    std::string key(1 + rng() % 6, 'a');
    for (char& c : key) {
      c = static_cast<char>('a' + rng() % 26);
    }
    return key;
  };
  for (int trial = 0; trial < 200; ++trial) {
    // Start from a random parent (sometimes unbounded on either side).
    KeyRange parent;
    if (rng() % 3 != 0) {
      parent.begin = random_key();
    }
    if (rng() % 3 != 0) {
      parent.end = random_key();
    }
    if (parent.IsEmpty()) {
      continue;
    }
    // Split fragments repeatedly at random keys (skipping non-interior ones).
    std::vector<KeyRange> fragments = {parent};
    for (int s = 0; s < 8; ++s) {
      const size_t pick = rng() % fragments.size();
      const std::string key = random_key();
      KeyRange lower, upper;
      if (!fragments[pick].SplitAt(key, &lower, &upper)) {
        EXPECT_FALSE(fragments[pick].IsSplittable(key));
        continue;
      }
      EXPECT_TRUE(fragments[pick].IsSplittable(key));
      fragments[pick] = lower;
      fragments.insert(fragments.begin() + static_cast<long>(pick) + 1,
                       upper);
    }
    // Children are sorted, adjacent, and preserve the parent's bounds.
    EXPECT_EQ(fragments.front().begin, parent.begin);
    EXPECT_EQ(fragments.back().end, parent.end);
    for (size_t i = 0; i + 1 < fragments.size(); ++i) {
      EXPECT_EQ(fragments[i].end, fragments[i + 1].begin);
      EXPECT_FALSE(fragments[i].IsEmpty());
      EXPECT_FALSE(fragments[i].Overlaps(fragments[i + 1]));
    }
    // Probe keys: membership in the parent == exactly one child owns it.
    for (int probe = 0; probe < 64; ++probe) {
      const std::string key = random_key();
      int owners = 0;
      for (const KeyRange& fragment : fragments) {
        owners += fragment.Contains(key) ? 1 : 0;
      }
      EXPECT_EQ(owners, parent.Contains(key) ? 1 : 0)
          << "key '" << key << "' in parent " << parent.ToString();
    }
  }
}

class SplitKeySpace : public ::testing::TestWithParam<int> {};

TEST_P(SplitKeySpace, ProducesCoveringAdjacentRanges) {
  const std::vector<KeyRange> ranges = SplitKeySpaceEvenly(GetParam());
  EXPECT_EQ(ranges.size(), static_cast<size_t>(std::max(1, GetParam())));
  EXPECT_TRUE(RangesCoverKeySpace(ranges));
  // No two ranges overlap.
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      EXPECT_FALSE(ranges[i].Overlaps(ranges[j]))
          << ranges[i].ToString() << " vs " << ranges[j].ToString();
    }
  }
  // Every probe key lands in exactly one range.
  for (int c = 0; c < 256; c += 7) {
    const std::string key(1, static_cast<char>(c));
    int owners = 0;
    for (const KeyRange& range : ranges) {
      owners += range.Contains(key) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1) << "key byte " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitKeySpace,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 100));

}  // namespace
}  // namespace pileus
