// Checker self-tests: hand-crafted histories with one planted inconsistency
// each, verifying the offline checker flags exactly the planted violation
// (with the offending op pair), plus matching clean histories that must pass.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/checker.h"
#include "src/audit/history.h"

namespace pileus::audit {
namespace {

using core::AuditOp;
using core::Guarantee;
using core::OpRecord;

proto::ObjectVersion V(const std::string& key, const std::string& value,
                       int64_t us, uint32_t seq = 1, bool tombstone = false) {
  proto::ObjectVersion v;
  v.key = key;
  v.value = value;
  v.timestamp = Timestamp{us, seq};
  v.is_tombstone = tombstone;
  return v;
}

proto::ObjectVersion Tomb(const std::string& key, int64_t us,
                          uint32_t seq = 1) {
  return V(key, "", us, seq, /*tombstone=*/true);
}

OpRecord Put(uint64_t session, const std::string& key, const Timestamp& ts) {
  OpRecord r;
  r.op = AuditOp::kPut;
  r.session_id = session;
  r.key = key;
  r.ok = true;
  r.write_timestamp = ts;
  return r;
}

OpRecord Del(uint64_t session, const std::string& key, const Timestamp& ts) {
  OpRecord r = Put(session, key, ts);
  r.op = AuditOp::kDelete;
  return r;
}

OpRecord Read(uint64_t session, const std::string& key, bool found,
              const std::string& value, const Timestamp& ts,
              const Timestamp& high) {
  OpRecord r;
  r.op = AuditOp::kGet;
  r.session_id = session;
  r.key = key;
  r.ok = true;
  r.found = found;
  r.value = value;
  r.value_timestamp = ts;
  r.high_timestamp = high;
  return r;
}

OpRecord Claiming(OpRecord r, Guarantee guarantee, int rank = 0,
                  MicrosecondCount latency_bound_us = 0) {
  r.claimed_met_rank = rank;
  r.claimed_guarantee = guarantee;
  r.claimed_latency_bound_us = latency_bound_us;
  return r;
}

bool Has(const AuditReport& report, ViolationType type) {
  for (const Violation& v : report.violations) {
    if (v.type == type) {
      return true;
    }
  }
  return false;
}

AuditReport Check(const History& history) {
  return ConsistencyChecker().Check(history);
}

// --- Planted violation 1: stale strong read ---

TEST(AuditCheckerTest, StaleStrongReadFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  OpRecord read = Claiming(
      Read(1, "a", true, "v1", Timestamp{1000, 1}, Timestamp{1000, 1}),
      Guarantee::Strong());
  read.from_primary = true;
  read.begin_us = 5000;  // Both commits finished before the read began.
  read.end_us = 5100;
  h.ops = {read};
  const AuditReport report = Check(h);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].type, ViolationType::kStaleStrongRead);
  EXPECT_EQ(report.violations[0].op_index, 0u);
}

TEST(AuditCheckerTest, StrongClaimFromNonAuthoritativeNodeFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  OpRecord read = Claiming(
      Read(1, "a", true, "v1", Timestamp{1000, 1}, Timestamp{1000, 1}),
      Guarantee::Strong());
  read.from_primary = false;  // Correct value, wrong kind of node.
  read.begin_us = 5000;
  h.ops = {read};
  EXPECT_TRUE(Has(Check(h), ViolationType::kStaleStrongRead));
}

TEST(AuditCheckerTest, FreshStrongReadPasses) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  OpRecord read = Claiming(
      Read(1, "a", true, "v2", Timestamp{2000, 1}, Timestamp{5000, 0}),
      Guarantee::Strong());
  read.from_primary = true;
  read.begin_us = 5000;
  read.end_us = 5100;
  h.ops = {read};
  const AuditReport report = Check(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.claims_checked, 1u);
}

// --- Planted violation 2: read-my-writes miss ---

TEST(AuditCheckerTest, ReadMyWritesMissFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Put(1, "a", Timestamp{2000, 1}),
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::ReadMyWrites()),
  };
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kReadMyWritesMiss))
      << report.ToString();
  for (const Violation& v : report.violations) {
    if (v.type == ViolationType::kReadMyWritesMiss) {
      EXPECT_EQ(v.op_index, 1u);
      EXPECT_EQ(v.related_op_index, 0u);  // The write it failed to see.
    }
  }
}

TEST(AuditCheckerTest, ReadMyWritesSeesOwnWritePasses) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Put(1, "a", Timestamp{2000, 1}),
      Claiming(Read(1, "a", true, "v2", Timestamp{2000, 1},
                    Timestamp{2000, 1}),
               Guarantee::ReadMyWrites()),
  };
  EXPECT_TRUE(Check(h).ok());
}

TEST(AuditCheckerTest, OtherSessionsWritesDoNotBindReadMyWrites) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Put(2, "a", Timestamp{2000, 1}),  // A *different* session's write.
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::ReadMyWrites()),
  };
  EXPECT_TRUE(Check(h).ok());
}

// --- Planted violation 3: monotonic regression ---

TEST(AuditCheckerTest, MonotonicRegressionFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Claiming(Read(1, "a", true, "v2", Timestamp{2000, 1},
                    Timestamp{2000, 1}),
               Guarantee::Eventual()),
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::Monotonic()),
  };
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kMonotonicRegression))
      << report.ToString();
  EXPECT_EQ(report.violations[0].op_index, 1u);
  EXPECT_EQ(report.violations[0].related_op_index, 0u);
}

TEST(AuditCheckerTest, MonotonicRereadOfSameVersionPasses) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Claiming(Read(1, "a", true, "v2", Timestamp{2000, 1},
                    Timestamp{2000, 1}),
               Guarantee::Eventual()),
      Claiming(Read(1, "a", true, "v2", Timestamp{2000, 1},
                    Timestamp{2000, 1}),
               Guarantee::Monotonic()),
  };
  EXPECT_TRUE(Check(h).ok());
}

TEST(AuditCheckerTest, MonotonicIsPerSession) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  h.ops = {
      Claiming(Read(1, "a", true, "v2", Timestamp{2000, 1},
                    Timestamp{2000, 1}),
               Guarantee::Eventual()),
      // Session 2 never read v2, so the older version is fine for it.
      Claiming(Read(2, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::Monotonic()),
  };
  EXPECT_TRUE(Check(h).ok());
}

// --- Planted violation 4: bounded-staleness overshoot ---

TEST(AuditCheckerTest, BoundedStalenessOvershootFlagged) {
  History h;
  h.ground_truth = {V("a", "old", 100'000), V("a", "mid", 1'400'000)};
  // Floor = begin - bound = 1.5 s: the read must reflect "mid" (1.4 s) but
  // returned "old" (0.1 s).
  OpRecord read = Claiming(
      Read(1, "a", true, "old", Timestamp{100'000, 1},
           Timestamp{1'450'000, 0}),
      Guarantee::Bounded(500'000));
  read.begin_us = 2'000'000;
  read.end_us = 2'000'100;
  h.ops = {read};
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kBoundedStalenessOverrun))
      << report.ToString();
}

TEST(AuditCheckerTest, BoundedWithinBoundPasses) {
  History h;
  h.ground_truth = {V("a", "old", 100'000), V("a", "mid", 1'400'000)};
  OpRecord read = Claiming(
      Read(1, "a", true, "mid", Timestamp{1'400'000, 1},
           Timestamp{1'600'000, 0}),
      Guarantee::Bounded(500'000));
  read.begin_us = 2'000'000;
  read.end_us = 2'000'100;
  h.ops = {read};
  EXPECT_TRUE(Check(h).ok());
}

TEST(AuditCheckerTest, BoundedHighTimestampBelowFloorFlagged) {
  History h;
  h.ground_truth = {V("a", "old", 100'000)};
  // The node's applied prefix ends before the staleness floor: even though
  // no newer committed version exists, the node could not have known that.
  OpRecord read = Claiming(
      Read(1, "a", true, "old", Timestamp{100'000, 1},
           Timestamp{1'000'000, 0}),
      Guarantee::Bounded(500'000));
  read.begin_us = 2'000'000;
  h.ops = {read};
  EXPECT_TRUE(Has(Check(h), ViolationType::kBoundedStalenessOverrun));
}

// --- Planted violation 5: resurrected tombstone ---

TEST(AuditCheckerTest, TombstoneResurrectionFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), Tomb("a", 3000)};
  h.ops = {
      // The session observed the deletion (not-found carrying the
      // tombstone's timestamp) ...
      Claiming(Read(1, "a", false, "", Timestamp{3000, 1},
                    Timestamp{3500, 0}),
               Guarantee::Eventual()),
      // ... then a monotonic read brought the deleted value back.
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::Monotonic()),
  };
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kTombstoneResurrection))
      << report.ToString();
}

TEST(AuditCheckerTest, OwnDeleteThenStaleValueUnderRmwFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), Tomb("a", 3000)};
  h.ops = {
      Del(1, "a", Timestamp{3000, 1}),
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::ReadMyWrites()),
  };
  const AuditReport report = Check(h);
  EXPECT_TRUE(Has(report, ViolationType::kTombstoneResurrection))
      << report.ToString();
}

TEST(AuditCheckerTest, OwnDeleteDoesNotBindMonotonicReads) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), Tomb("a", 3000)};
  h.ops = {
      Del(1, "a", Timestamp{3000, 1}),
      // Monotonic only promises no regression versus previous *reads*;
      // seeing the pre-delete value again is allowed under it.
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::Monotonic()),
  };
  EXPECT_TRUE(Check(h).ok()) << Check(h).ToString();
}

TEST(AuditCheckerTest, NotFoundAfterDeletePasses) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), Tomb("a", 3000)};
  h.ops = {
      Del(1, "a", Timestamp{3000, 1}),
      // "Gone" is the correct strong answer for a deleted key.
      Claiming(Read(1, "a", false, "", Timestamp{3000, 1},
                    Timestamp{3500, 0}),
               Guarantee::ReadMyWrites()),
  };
  EXPECT_TRUE(Check(h).ok()) << Check(h).ToString();
}

// --- Universal properties ---

TEST(AuditCheckerTest, PhantomReadFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  h.ops = {Read(1, "a", true, "ghost", Timestamp{9999, 9},
                Timestamp{9999, 9})};
  EXPECT_TRUE(Has(Check(h), ViolationType::kPhantomRead));
}

TEST(AuditCheckerTest, PhantomSkippedWhenGroundTruthIncomplete) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  h.ground_truth_complete = false;  // Compacted log: the version may be old.
  h.ops = {Read(1, "a", true, "ghost", Timestamp{9999, 9},
                Timestamp{9999, 9})};
  EXPECT_TRUE(Check(h).ok());
}

TEST(AuditCheckerTest, ValueMismatchFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  h.ops = {Read(1, "a", true, "not-v1", Timestamp{1000, 1},
                Timestamp{1000, 1})};
  EXPECT_TRUE(Has(Check(h), ViolationType::kPhantomRead));
}

TEST(AuditCheckerTest, LostWriteFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  h.ops = {Put(1, "a", Timestamp{4000, 1})};  // Acked but never committed.
  EXPECT_TRUE(Has(Check(h), ViolationType::kLostWrite));
}

TEST(AuditCheckerTest, FailedWriteMayBeAbsentFromCommitOrder) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  OpRecord put = Put(1, "a", Timestamp{4000, 1});
  put.ok = false;  // Timed out: may or may not have committed.
  h.ops = {put};
  EXPECT_TRUE(Check(h).ok());
}

TEST(AuditCheckerTest, PrefixViolationFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("a", "v2", 2000)};
  // The node advertises a prefix through 2.5 ms yet served the 1 ms version:
  // its "prefix" has a hole.
  h.ops = {Read(1, "a", true, "v1", Timestamp{1000, 1}, Timestamp{2500, 0})};
  EXPECT_TRUE(Has(Check(h), ViolationType::kPrefixViolation));
}

TEST(AuditCheckerTest, ReadAboveAdvertisedHighFlagged) {
  History h;
  h.ground_truth = {V("a", "v2", 2000)};
  h.ops = {Read(1, "a", true, "v2", Timestamp{2000, 1}, Timestamp{1500, 0})};
  EXPECT_TRUE(Has(Check(h), ViolationType::kPrefixViolation));
}

TEST(AuditCheckerTest, CausalRegressionFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000), V("b", "w1", 1500)};
  h.ops = {
      // Seeing "b"@1500 pulls "a"@1000 into the session's causal past.
      Claiming(Read(1, "b", true, "w1", Timestamp{1500, 1},
                    Timestamp{1500, 1}),
               Guarantee::Eventual()),
      Claiming(Read(1, "a", false, "", Timestamp::Zero(), Timestamp::Zero()),
               Guarantee::Causal()),
  };
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kCausalRegression))
      << report.ToString();
}

// --- Range scans ---

TEST(AuditCheckerTest, RangeItemAboveScanHighFlagged) {
  History h;
  h.ground_truth = {V("b", "w1", 3000)};
  OpRecord range;
  range.op = AuditOp::kRange;
  range.session_id = 1;
  range.key = "a";
  range.ok = true;
  range.high_timestamp = Timestamp{2500, 0};
  range.items = {V("b", "w1", 3000)};  // Newer than the scan's one bound.
  h.ops = {range};
  EXPECT_TRUE(Has(Check(h), ViolationType::kRangeBoundExceeded));
}

TEST(AuditCheckerTest, RangeListingDeletedKeyFlagged) {
  History h;
  h.ground_truth = {V("b", "w1", 1000), Tomb("b", 2000)};
  OpRecord range;
  range.op = AuditOp::kRange;
  range.session_id = 1;
  range.key = "a";
  range.ok = true;
  range.high_timestamp = Timestamp{2500, 0};
  range.items = {Tomb("b", 2000)};  // Scans must skip tombstones entirely.
  h.ops = {range};
  EXPECT_TRUE(Has(Check(h), ViolationType::kTombstoneResurrection));
}

TEST(AuditCheckerTest, StaleRangeScanUnderReadMyWritesFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 2000)};
  OpRecord range;
  range.op = AuditOp::kRange;
  range.session_id = 1;
  range.key = "a";
  range.ok = true;
  range.high_timestamp = Timestamp{1500, 0};  // Below the session's write.
  h.ops = {
      Put(1, "a", Timestamp{2000, 1}),
      Claiming(range, Guarantee::ReadMyWrites()),
  };
  const AuditReport report = Check(h);
  ASSERT_TRUE(Has(report, ViolationType::kStaleRangeScan))
      << report.ToString();
  for (const Violation& v : report.violations) {
    if (v.type == ViolationType::kStaleRangeScan) {
      EXPECT_EQ(v.related_op_index, 0u);
    }
  }
}

TEST(AuditCheckerTest, FreshRangeScanPasses) {
  History h;
  // Ground truth is a commit log: ascending timestamp order, not key order.
  h.ground_truth = {V("b", "w1", 1000), V("a", "v1", 2000)};
  OpRecord range;
  range.op = AuditOp::kRange;
  range.session_id = 1;
  range.key = "a";
  range.ok = true;
  range.high_timestamp = Timestamp{2500, 0};
  range.items = {V("a", "v1", 2000), V("b", "w1", 1000)};
  h.ops = {
      Put(1, "a", Timestamp{2000, 1}),
      Claiming(range, Guarantee::ReadMyWrites()),
  };
  const AuditReport report = Check(h);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ranges_checked, 1u);
}

// --- Latency claims ---

TEST(AuditCheckerTest, LatencyOverclaimFlagged) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  OpRecord read = Claiming(
      Read(1, "a", true, "v1", Timestamp{1000, 1}, Timestamp{1000, 1}),
      Guarantee::Eventual(), /*rank=*/0, /*latency_bound_us=*/100);
  read.begin_us = 10'000;
  read.end_us = 10'300;  // Took 300 us against a claimed 100 us bound.
  h.ops = {read};
  EXPECT_TRUE(Has(Check(h), ViolationType::kLatencyOverclaim));
}

// --- Report plumbing ---

TEST(AuditCheckerTest, CountersAndReportFormat) {
  History h;
  h.ground_truth = {V("a", "v1", 1000)};
  h.ops = {
      Put(1, "a", Timestamp{1000, 1}),
      Claiming(Read(1, "a", true, "v1", Timestamp{1000, 1},
                    Timestamp{1000, 1}),
               Guarantee::Eventual()),
  };
  const AuditReport report = Check(h);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.writes_checked, 1u);
  EXPECT_EQ(report.reads_checked, 1u);
  EXPECT_EQ(report.claims_checked, 1u);
  EXPECT_NE(report.ToString().find("0 violations"), std::string::npos);
}

TEST(AuditCheckerTest, ViolationToStringNamesTheOpPair) {
  Violation v;
  v.type = ViolationType::kMonotonicRegression;
  v.op_index = 7;
  v.related_op_index = 3;
  v.message = "went backwards";
  const std::string s = v.ToString();
  EXPECT_NE(s.find("op #7"), std::string::npos);
  EXPECT_NE(s.find("monotonic-regression"), std::string::npos);
  EXPECT_NE(s.find("op #3"), std::string::npos);
}

TEST(AuditCheckerTest, RecorderAccumulatesAndForwards) {
  HistoryRecorder recorder;
  HistoryRecorder downstream;
  recorder.set_forward_observer(&downstream);
  recorder.OnOp(Put(1, "a", Timestamp{1000, 1}));
  recorder.OnOp(Read(1, "a", true, "v1", Timestamp{1000, 1},
                     Timestamp{1000, 1}));
  EXPECT_EQ(recorder.op_count(), 2u);
  EXPECT_EQ(downstream.op_count(), 2u);
  recorder.SetGroundTruth({V("a", "v1", 1000)});
  const History h = recorder.Snapshot();
  EXPECT_EQ(h.ops.size(), 2u);
  EXPECT_EQ(h.ground_truth.size(), 1u);
  EXPECT_TRUE(ConsistencyChecker().Check(h).ok());
  recorder.Clear();
  EXPECT_EQ(recorder.op_count(), 0u);
}

}  // namespace
}  // namespace pileus::audit
