// Integration tests for the shared-monitoring control plane (DESIGN.md
// Section 12) over the real in-process transport: an AggregatorService
// endpoint on the InProcCluster network, warm clients reporting conditions,
// and cold clients ranking SLAs from the pushed digest with zero probes.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <variant>

#include "src/core/client.h"
#include "src/monitoring/aggregator.h"
#include "src/monitoring/digest.h"
#include "src/monitoring/pump.h"
#include "src/monitoring/service.h"
#include "src/net/inproc.h"
#include "src/proto/messages.h"
#include "tests/testbed_fixture.h"

namespace pileus {
namespace {

using core::Guarantee;
using core::PileusClient;
using core::Session;
using core::Sla;
using monitoring::AggregatorService;
using monitoring::DigestPump;
using monitoring::MonitorAggregator;
using testbed::InProcCluster;

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

// Strong within 5 ms (utility 1.0) vs eventual within 50 ms (utility 0.5).
// On the InProcCluster the primary's ~20 ms round trip breaks the strong
// bound while the 1 ms local secondary easily meets the eventual one, so a
// correctly informed client targets rank 1 and an optimistic blank one
// targets rank 0.
Sla SplitSla() {
  return Sla()
      .Add(Guarantee::Strong(), 5 * kMs, 1.0)
      .Add(Guarantee::Eventual(), 50 * kMs, 0.5);
}

// Registers `service` as its own endpoint named "aggregator". A crash is
// simulated by unregistering the endpoint: calls then fail kUnavailable,
// exactly like a dead process.
void RegisterAggregator(InProcCluster& cluster, AggregatorService* service) {
  cluster.network().RegisterEndpoint("aggregator", service->Wrap(nullptr));
}

// Warm a client the way a deployment would: probe every replica a few times
// so the monitor holds real latency and liveness evidence.
void WarmUp(PileusClient& client, int rounds = 5) {
  for (int i = 0; i < rounds; ++i) {
    ASSERT_TRUE(client.ProbeNode(0).ok());
    ASSERT_TRUE(client.ProbeNode(1).ok());
  }
}

TEST(MonitoringPlaneTest, ServiceAnswersReportsAndSubscriptionsOverWire) {
  MonitorAggregator aggregator(RealClock::Instance());
  AggregatorService service(&aggregator);
  InProcCluster cluster;
  RegisterAggregator(cluster, &service);
  auto channel = cluster.network().Connect("aggregator", 100);

  proto::MonitorReport report;
  report.reporter = "warm";
  report.seq = 1;
  report.table = "t";
  monitoring::NodeCondition cond;
  cond.node = "Local";
  cond.sample_count = 10;
  cond.mean_latency_us = 1200;
  cond.p50_latency_us = 1000;
  cond.p95_latency_us = 2000;
  cond.p99_latency_us = 3000;
  cond.p_up = 1.0;
  report.conditions.push_back(cond);

  Result<proto::Message> reply = channel->Call(report, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto* push = std::get_if<proto::DigestPush>(&reply.value());
  ASSERT_NE(push, nullptr);
  ASSERT_TRUE(push->has_digest);
  EXPECT_EQ(push->digest.version, 1u);
  ASSERT_EQ(push->digest.nodes.size(), 1u);
  EXPECT_EQ(push->digest.nodes[0].node, "Local");

  // An up-to-date subscriber gets a cheap not-modified answer.
  proto::DigestSubscribe current;
  current.table = "t";
  current.have_version = push->digest.version;
  reply = channel->Call(current, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok());
  push = std::get_if<proto::DigestPush>(&reply.value());
  ASSERT_NE(push, nullptr);
  EXPECT_FALSE(push->has_digest);

  // Non-monitoring traffic hits the null inner handler and errors cleanly.
  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  reply = channel->Call(get, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(std::get_if<proto::ErrorReply>(&reply.value()), nullptr);
}

TEST(MonitoringPlaneTest, ColdClientRanksCorrectlyWithZeroProbes) {
  InProcCluster cluster;

  // Seed data and replicate it to the secondary so eventual reads hit.
  auto warm = cluster.MakeClient(PileusClient::Options{});
  Session write_session = warm->BeginSession(SplitSla()).value();
  ASSERT_TRUE(warm->Put(write_session, "k", "v").ok());
  cluster.PullNow();

  // The warm client measures the fleet and reports into the aggregator.
  WarmUp(*warm);
  MonitorAggregator aggregator(RealClock::Instance());
  AggregatorService service(&aggregator);
  RegisterAggregator(cluster, &service);
  ASSERT_TRUE(aggregator.Ingest("warm", warm->monitor().state_version(),
                                warm->monitor().BuildReportConditions()));

  // A brand-new client subscribes before its first operation.
  auto cold = cluster.MakeClient(PileusClient::Options{});
  auto channel = cluster.network().Connect("aggregator", 100);
  DigestPump::Options pump_options;
  pump_options.reporter = "cold";
  pump_options.table = "t";
  pump_options.send_reports = false;
  DigestPump pump(&cold->monitor(), channel.get(), pump_options);
  ASSERT_TRUE(pump.PumpOnce().ok());
  pump.Stop();
  EXPECT_GE(cold->monitor().digest_version(), 1u);

  // The fresh prior suppresses probing entirely...
  EXPECT_FALSE(cold->monitor().NeedsProbe("England"));
  EXPECT_FALSE(cold->monitor().NeedsProbe("Local"));

  // ...and the very first operation already ranks like the warmed client:
  // rank 1 (eventual within 50 ms), not the optimistic rank-0 shot at the
  // distant primary.
  Session warmed_session = warm->BeginSession(SplitSla()).value();
  Result<core::GetResult> warmed_result = warm->Get(warmed_session, "k");
  ASSERT_TRUE(warmed_result.ok());
  EXPECT_EQ(warmed_result->outcome.target_rank, 1);

  Session session = cold->BeginSession(SplitSla()).value();
  Result<core::GetResult> result = cold->Get(session, "k");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome.target_rank, warmed_result->outcome.target_rank);
  EXPECT_DOUBLE_EQ(result->outcome.utility, 0.5);

  // Control: an equally cold client *without* the prior aims at rank 0.
  auto blank = cluster.MakeClient(PileusClient::Options{});
  Session blank_session = blank->BeginSession(SplitSla()).value();
  Result<core::GetResult> blank_result = blank->Get(blank_session, "k");
  ASSERT_TRUE(blank_result.ok());
  EXPECT_EQ(blank_result->outcome.target_rank, 0);
}

TEST(MonitoringPlaneTest, PumpReportsLocalEvidenceAndInstallsDigest) {
  InProcCluster cluster;
  auto warm = cluster.MakeClient(PileusClient::Options{});
  WarmUp(*warm);

  MonitorAggregator aggregator(RealClock::Instance());
  AggregatorService service(&aggregator);
  RegisterAggregator(cluster, &service);
  auto channel = cluster.network().Connect("aggregator", 100);

  DigestPump::Options pump_options;
  pump_options.reporter = "warm";
  pump_options.table = "t";
  DigestPump pump(&warm->monitor(), channel.get(), pump_options);
  ASSERT_TRUE(pump.PumpOnce().ok());
  pump.Stop();

  EXPECT_GE(pump.reports_sent(), 1u);
  EXPECT_GE(pump.digests_installed(), 1u);
  EXPECT_GE(aggregator.reports_ingested(), 1u);
  EXPECT_EQ(aggregator.node_count(), 2u);
  // The pushed-back digest installed as this client's own prior.
  EXPECT_GE(warm->monitor().digest_version(), 1u);
  EXPECT_EQ(warm->monitor().digests_installed(), 1u);
}

TEST(MonitoringPlaneTest, AggregatorCrashFallsBackToLocalProbing) {
  InProcCluster cluster;
  auto warm = cluster.MakeClient(PileusClient::Options{});
  Session write_session = warm->BeginSession(SplitSla()).value();
  ASSERT_TRUE(warm->Put(write_session, "k", "v").ok());
  cluster.PullNow();
  WarmUp(*warm);

  MonitorAggregator aggregator(RealClock::Instance());
  AggregatorService service(&aggregator);
  RegisterAggregator(cluster, &service);
  ASSERT_TRUE(aggregator.Ingest("warm", warm->monitor().state_version(),
                                warm->monitor().BuildReportConditions()));

  // The cold client runs with a deliberately short prior lifetime so the
  // crash fallback happens inside the test instead of over 15 wall seconds.
  PileusClient::Options cold_options;
  cold_options.monitor.prior_ttl_us = 500 * kMs;
  cold_options.monitor.prior_probe_suppress_us = 150 * kMs;
  auto cold = cluster.MakeClient(cold_options);
  auto channel = cluster.network().Connect("aggregator", 100);
  DigestPump::Options pump_options;
  pump_options.reporter = "cold";
  pump_options.table = "t";
  pump_options.send_reports = false;
  DigestPump pump(&cold->monitor(), channel.get(), pump_options);
  ASSERT_TRUE(pump.PumpOnce().ok());

  // Prior installed; probing suppressed while it is fresh.
  EXPECT_FALSE(cold->monitor().NeedsProbe("Local"));

  // Aggregator dies. Pump rounds fail but are survived: counted, no crash,
  // and the monitor keeps its last digest.
  cluster.network().Unregister("aggregator");
  EXPECT_FALSE(pump.PumpOnce().ok());
  EXPECT_GE(pump.failures(), 1u);
  pump.Stop();
  uint64_t version_before = cold->monitor().digest_version();
  EXPECT_GE(version_before, 1u);

  // Once the orphaned prior outgrows the suppression window, the normal
  // self-probing path resumes and the client keeps operating on fresh
  // local evidence.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(cold->monitor().NeedsProbe("Local"));
  ASSERT_TRUE(cold->ProbeNode(0).ok());
  ASSERT_TRUE(cold->ProbeNode(1).ok());
  Session session = cold->BeginSession(SplitSla()).value();
  Result<core::GetResult> result = cold->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.target_rank, 1);
  EXPECT_DOUBLE_EQ(result->outcome.utility, 0.5);
  EXPECT_EQ(cold->monitor().digest_version(), version_before);
}

}  // namespace
}  // namespace pileus
