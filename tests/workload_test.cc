// Tests for the YCSB-style workload generator and key distributions.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace pileus::workload {
namespace {

TEST(ZipfTest, UniformCoversRange) {
  UniformChooser chooser(100);
  Random rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = chooser.Next(rng);
    EXPECT_LT(v, 100u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ZipfTest, ZipfianStaysInRange) {
  ZipfianChooser chooser(1000, 0.99);
  Random rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(chooser.Next(rng), 1000u);
  }
}

TEST(ZipfTest, ZipfianIsSkewedTowardLowRanks) {
  ZipfianChooser chooser(10000, 0.99);
  Random rng(3);
  int rank0 = 0;
  for (int i = 0; i < 100000; ++i) {
    if (chooser.Next(rng) == 0) {
      ++rank0;
    }
  }
  // The top item of a 10k-item 0.99-zipfian draws ~10% of requests; uniform
  // would be 0.01%.
  EXPECT_GT(rank0, 5000);
}

TEST(ZipfTest, LowerThetaIsLessSkewed) {
  Random rng_a(4), rng_b(4);
  ZipfianChooser hot(10000, 0.99);
  ZipfianChooser mild(10000, 0.5);
  int hot0 = 0, mild0 = 0;
  for (int i = 0; i < 100000; ++i) {
    hot0 += hot.Next(rng_a) == 0 ? 1 : 0;
    mild0 += mild.Next(rng_b) == 0 ? 1 : 0;
  }
  EXPECT_GT(hot0, 5 * mild0);
}

TEST(ZipfTest, ScramblingSpreadsHotKeysAcrossKeyspace) {
  ScrambledZipfianChooser chooser(10000, 0.99);
  Random rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[chooser.Next(rng)];
  }
  // Find the hottest item: it should NOT be item 0 (scrambled) but should
  // still absorb a large share of requests.
  uint64_t hottest = 0;
  int hottest_count = 0;
  for (const auto& [item, count] : counts) {
    if (count > hottest_count) {
      hottest_count = count;
      hottest = item;
    }
  }
  EXPECT_GT(hottest_count, 5000);
  EXPECT_NE(hottest, 0u);
}

TEST(YcsbTest, KeyFormatIsStable) {
  EXPECT_EQ(YcsbWorkload::KeyForIndex(0), "user0000000000");
  EXPECT_EQ(YcsbWorkload::KeyForIndex(42), "user0000000042");
  EXPECT_EQ(YcsbWorkload::KeyForIndex(9999), "user0000009999");
}

TEST(YcsbTest, ReadFractionRoughlyHonored) {
  WorkloadOptions options;
  options.read_fraction = 0.5;
  YcsbWorkload workload(options);
  int gets = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    gets += workload.Next().is_get ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(gets) / kOps, 0.5, 0.02);
}

TEST(YcsbTest, ReadOnlyWorkload) {
  WorkloadOptions options;
  options.read_fraction = 1.0;
  YcsbWorkload workload(options);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(workload.Next().is_get);
  }
}

TEST(YcsbTest, SessionBoundariesEveryN) {
  WorkloadOptions options;
  options.ops_per_session = 400;
  YcsbWorkload workload(options);
  for (int i = 0; i < 1200; ++i) {
    const Operation op = workload.Next();
    EXPECT_EQ(op.starts_new_session, i % 400 == 0) << "op " << i;
  }
}

TEST(YcsbTest, KeysStayWithinKeyCount) {
  WorkloadOptions options;
  options.key_count = 50;
  YcsbWorkload workload(options);
  for (int i = 0; i < 5000; ++i) {
    const Operation op = workload.Next();
    EXPECT_GE(op.key, YcsbWorkload::KeyForIndex(0));
    EXPECT_LE(op.key, YcsbWorkload::KeyForIndex(49));
  }
}

TEST(YcsbTest, PutValuesAreDistinctAndSized) {
  WorkloadOptions options;
  options.value_size = 64;
  YcsbWorkload workload(options);
  std::set<std::string> values;
  int puts = 0;
  for (int i = 0; i < 2000 && puts < 100; ++i) {
    const Operation op = workload.Next();
    if (!op.is_get) {
      ++puts;
      EXPECT_EQ(op.value.size(), 64u);
      values.insert(op.value);
    }
  }
  EXPECT_EQ(values.size(), static_cast<size_t>(puts));
}

TEST(YcsbTest, GetsCarryNoValue) {
  YcsbWorkload workload(WorkloadOptions{});
  for (int i = 0; i < 1000; ++i) {
    const Operation op = workload.Next();
    if (op.is_get) {
      EXPECT_TRUE(op.value.empty());
    }
  }
}

TEST(YcsbTest, DeterministicForSameSeed) {
  WorkloadOptions options;
  options.seed = 99;
  YcsbWorkload a(options), b(options);
  for (int i = 0; i < 1000; ++i) {
    const Operation op_a = a.Next();
    const Operation op_b = b.Next();
    EXPECT_EQ(op_a.is_get, op_b.is_get);
    EXPECT_EQ(op_a.key, op_b.key);
    EXPECT_EQ(op_a.value, op_b.value);
  }
}

TEST(YcsbTest, DifferentSeedsDiffer) {
  WorkloadOptions a_options, b_options;
  a_options.seed = 1;
  b_options.seed = 2;
  YcsbWorkload a(a_options), b(b_options);
  int same_keys = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next().key == b.Next().key) {
      ++same_keys;
    }
  }
  EXPECT_LT(same_keys, 300);  // Hot keys collide sometimes; streams differ.
}

TEST(YcsbTest, UniformDistributionOption) {
  WorkloadOptions options;
  options.distribution = KeyDistribution::kUniform;
  options.key_count = 100;
  YcsbWorkload workload(options);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[workload.Next().key];
  }
  // Uniform: the hottest key should be within ~3x of the expected 500.
  int max_count = 0;
  for (const auto& [key, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_LT(max_count, 1500);
}

TEST(YcsbTest, OpsGeneratedCounter) {
  YcsbWorkload workload(WorkloadOptions{});
  EXPECT_EQ(workload.ops_generated(), 0u);
  workload.Next();
  workload.Next();
  EXPECT_EQ(workload.ops_generated(), 2u);
}

}  // namespace
}  // namespace pileus::workload
