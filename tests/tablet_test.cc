// Tests for the tablet: timestamp assignment, request handlers, replication
// apply, heartbeats, role changes, and transactional commit.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/storage/tablet.h"

namespace pileus::storage {
namespace {

Tablet::Options PrimaryOptions() {
  Tablet::Options options;
  options.is_primary = true;
  return options;
}

Tablet::Options SecondaryOptions() { return Tablet::Options{}; }

TEST(TabletTest, PutAssignsClockTimestamp) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  auto reply = tablet.HandlePut("k", "v");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->timestamp, (Timestamp{1000, 0}));
  EXPECT_EQ(tablet.high_timestamp(), (Timestamp{1000, 0}));
}

TEST(TabletTest, SameMicrosecondPutsGetIncreasingSequence) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  Timestamp last = Timestamp::Zero();
  for (int i = 0; i < 100; ++i) {
    auto reply = tablet.HandlePut("k" + std::to_string(i), "v");
    ASSERT_TRUE(reply.ok());
    EXPECT_GT(reply->timestamp, last);
    last = reply->timestamp;
  }
  EXPECT_EQ(last, (Timestamp{1000, 99}));
}

TEST(TabletTest, TimestampsStrictlyIncreaseAcrossClockAdvances) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  Timestamp last = Timestamp::Zero();
  for (int i = 0; i < 50; ++i) {
    if (i % 3 == 0) {
      clock.AdvanceMicros(1);
    }
    auto reply = tablet.HandlePut("k", "v");
    ASSERT_TRUE(reply.ok());
    EXPECT_GT(reply->timestamp, last);
    last = reply->timestamp;
  }
}

TEST(TabletTest, SecondaryRejectsPut) {
  ManualClock clock(1000);
  Tablet tablet(SecondaryOptions(), &clock);
  auto reply = tablet.HandlePut("k", "v");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotPrimary);
}

TEST(TabletTest, GetReturnsLatestVersionAndFlags) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  (void)tablet.HandlePut("k", "v1");
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("k", "v2");

  auto reply = tablet.HandleGet("k");
  EXPECT_TRUE(reply.found);
  EXPECT_EQ(reply.value, "v2");
  EXPECT_TRUE(reply.served_by_primary);
  EXPECT_GE(reply.high_timestamp, reply.value_timestamp);
}

TEST(TabletTest, GetMissingKey) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  auto reply = tablet.HandleGet("missing");
  EXPECT_FALSE(reply.found);
  // The primary still reports a meaningful high timestamp.
  EXPECT_GT(reply.high_timestamp, Timestamp::Zero());
}

TEST(TabletTest, PrimaryHeartbeatCoversAllAssignedTimestamps) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  // Burn through the same microsecond so last_assigned > {now-1, max}.
  Timestamp last;
  for (int i = 0; i < 10; ++i) {
    last = tablet.HandlePut("k", "v")->timestamp;
  }
  auto reply = tablet.HandleGet("k");
  EXPECT_GE(reply.high_timestamp, last);
}

TEST(TabletTest, SyncDeliversUpdatesInOrder) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);

  for (int i = 0; i < 20; ++i) {
    clock.AdvanceMicros(5);
    (void)primary.HandlePut("k" + std::to_string(i), "v");
  }
  auto reply = primary.HandleSync(secondary.high_timestamp(), 0);
  EXPECT_EQ(reply.versions.size(), 20u);
  for (size_t i = 1; i < reply.versions.size(); ++i) {
    EXPECT_GT(reply.versions[i].timestamp, reply.versions[i - 1].timestamp);
  }
  secondary.ApplySync(reply);
  EXPECT_EQ(secondary.high_timestamp(), reply.heartbeat);
  EXPECT_TRUE(secondary.HandleGet("k7").found);
  EXPECT_FALSE(secondary.HandleGet("k7").served_by_primary);
}

TEST(TabletTest, IdleHeartbeatAdvancesSecondaryHighTimestamp) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);
  (void)primary.HandlePut("k", "v");
  secondary.ApplySync(primary.HandleSync(secondary.high_timestamp(), 0));
  const Timestamp after_first = secondary.high_timestamp();

  // No new Puts, but time passes; the next sync still advances the high
  // timestamp via the heartbeat (Section 4.3).
  clock.AdvanceMicros(SecondsToMicroseconds(60));
  auto reply = primary.HandleSync(secondary.high_timestamp(), 0);
  EXPECT_TRUE(reply.versions.empty());
  secondary.ApplySync(reply);
  EXPECT_GT(secondary.high_timestamp(), after_first);
  EXPECT_GE(secondary.high_timestamp().physical_us,
            clock.NowMicros() - kMicrosecondsPerSecond);
}

TEST(TabletTest, ApplySyncIsIdempotent) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);
  (void)primary.HandlePut("k", "v1");
  auto reply = primary.HandleSync(Timestamp::Zero(), 0);
  secondary.ApplySync(reply);
  secondary.ApplySync(reply);  // Duplicate delivery.
  EXPECT_EQ(secondary.HandleGet("k").value, "v1");
  EXPECT_EQ(secondary.update_log().size(), 1u);
}

TEST(TabletTest, ChainedSyncThroughSecondary) {
  // Secondaries "could also receive updates from other secondary nodes"
  // (Section 4.1): a secondary can serve syncs from its own log.
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet mid(SecondaryOptions(), &clock);
  Tablet leaf(SecondaryOptions(), &clock);

  for (int i = 0; i < 5; ++i) {
    clock.AdvanceMicros(3);
    (void)primary.HandlePut("k" + std::to_string(i), "v");
  }
  mid.ApplySync(primary.HandleSync(mid.high_timestamp(), 0));
  leaf.ApplySync(mid.HandleSync(leaf.high_timestamp(), 0));
  EXPECT_TRUE(leaf.HandleGet("k4").found);
  // The leaf's high timestamp is bounded by what mid actually has.
  EXPECT_LE(leaf.high_timestamp(), mid.high_timestamp());
}

TEST(TabletTest, SyncAfterLogTruncationFallsBackToFullState) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceMicros(3);
    (void)primary.HandlePut("k" + std::to_string(i), "v");
  }
  primary.update_log().TruncateThrough(Timestamp{1015, 0});

  // A brand-new secondary asks from zero, below the truncation point.
  Tablet secondary(SecondaryOptions(), &clock);
  auto reply = primary.HandleSync(Timestamp::Zero(), 0);
  EXPECT_EQ(reply.versions.size(), 10u);  // Full-state transfer.
  secondary.ApplySync(reply);
  EXPECT_TRUE(secondary.HandleGet("k0").found);
  EXPECT_TRUE(secondary.HandleGet("k9").found);
}

TEST(TabletTest, ApplyReplicatedPutAdvancesHighTimestamp) {
  ManualClock clock(1000);
  Tablet sync_replica(SecondaryOptions(), &clock);
  proto::ObjectVersion version;
  version.key = "k";
  version.value = "v";
  version.timestamp = Timestamp{999, 0};
  sync_replica.ApplyReplicatedPut(version);
  EXPECT_EQ(sync_replica.high_timestamp(), version.timestamp);
  EXPECT_EQ(sync_replica.HandleGet("k").value, "v");
}

TEST(TabletTest, PromoteToPrimaryKeepsTimestampsIncreasing) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);
  clock.AdvanceMicros(100);
  const Timestamp put_ts = primary.HandlePut("k", "v")->timestamp;
  secondary.ApplySync(primary.HandleSync(Timestamp::Zero(), 0));

  // Simulate a clock skew: the new primary's clock is behind the timestamps
  // it already holds. Promotion must still keep timestamps increasing.
  secondary.SetPrimary(true);
  auto reply = secondary.HandlePut("k", "v2");
  ASSERT_TRUE(reply.ok());
  EXPECT_GT(reply->timestamp, put_ts);
}

TEST(TabletTest, DeleteHidesKeyButKeepsTimestamp) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  (void)tablet.HandlePut("k", "v");
  clock.AdvanceMicros(10);
  auto del = tablet.HandleDelete("k");
  ASSERT_TRUE(del.ok());

  const auto get = tablet.HandleGet("k");
  EXPECT_FALSE(get.found);
  EXPECT_TRUE(get.value.empty());
  // The tombstone's timestamp is visible: callers can see the deletion is at
  // least as new as their own writes.
  EXPECT_EQ(get.value_timestamp, del->timestamp);
  EXPECT_GE(tablet.high_timestamp(), del->timestamp);
}

TEST(TabletTest, DeleteRejectedAtSecondary) {
  ManualClock clock(1000);
  Tablet tablet(SecondaryOptions(), &clock);
  EXPECT_EQ(tablet.HandleDelete("k").status().code(),
            StatusCode::kNotPrimary);
}

TEST(TabletTest, DeleteReplicatesAsTombstone) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);
  (void)primary.HandlePut("k", "v");
  secondary.ApplySync(primary.HandleSync(Timestamp::Zero(), 0));
  EXPECT_TRUE(secondary.HandleGet("k").found);

  clock.AdvanceMicros(10);
  ASSERT_TRUE(primary.HandleDelete("k").ok());
  secondary.ApplySync(
      primary.HandleSync(secondary.high_timestamp(), 0));
  EXPECT_FALSE(secondary.HandleGet("k").found);
}

TEST(TabletTest, PutAfterDeleteResurrectsKey) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  (void)tablet.HandlePut("k", "v1");
  clock.AdvanceMicros(10);
  (void)tablet.HandleDelete("k");
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("k", "v2");
  const auto get = tablet.HandleGet("k");
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "v2");
}

TEST(TabletTest, DeletedKeysSkippedInRangeScans) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  for (const char* key : {"a", "b", "c"}) {
    clock.AdvanceMicros(1);
    (void)tablet.HandlePut(key, "v");
  }
  clock.AdvanceMicros(1);
  (void)tablet.HandleDelete("b");
  const auto range = tablet.HandleRange("", "", 0);
  ASSERT_EQ(range.items.size(), 2u);
  EXPECT_EQ(range.items[0].key, "a");
  EXPECT_EQ(range.items[1].key, "c");
}

TEST(TabletTest, SnapshotReadsSeePreDeleteValue) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  const Timestamp put_ts = tablet.HandlePut("k", "v")->timestamp;
  clock.AdvanceMicros(10);
  (void)tablet.HandleDelete("k");

  // At the pre-delete snapshot the value exists; at the latest it does not.
  auto before = tablet.HandleGetAt("k", put_ts);
  EXPECT_TRUE(before.found);
  EXPECT_EQ(before.value, "v");
  auto after = tablet.HandleGetAt("k", Timestamp::Max());
  EXPECT_FALSE(after.found);
  EXPECT_TRUE(after.snapshot_available);
}

TEST(TabletTest, CompactLogPreservesSyncCorrectness) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceMicros(5);
    (void)primary.HandlePut("k" + std::to_string(i), "v");
  }
  const Timestamp mid = primary.update_log()
                            .Scan(Timestamp::Zero(), 5)
                            .versions.back()
                            .timestamp;
  primary.CompactLog(mid);
  EXPECT_EQ(primary.update_log().size(), 5u);

  // A fresh secondary (from zero, below the compaction point) still gets a
  // complete, prefix-consistent state via the full-state fallback.
  Tablet fresh(SecondaryOptions(), &clock);
  fresh.ApplySync(primary.HandleSync(Timestamp::Zero(), 0));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fresh.HandleGet("k" + std::to_string(i)).found) << i;
  }

  // An up-to-date secondary keeps pulling incrementally.
  Tablet caught_up(SecondaryOptions(), &clock);
  caught_up.ApplySync(primary.HandleSync(mid, 0));
  EXPECT_TRUE(caught_up.HandleGet("k9").found);
}

TEST(TabletTest, ClockSkewShiftsBoundedStalenessByTheOffset) {
  // The paper assumes approximately synchronized clocks for bounded
  // staleness (Section 4.4): "staleness bounds tend to be large, often on
  // the order of minutes". This test quantifies the failure mode: a primary
  // whose clock runs ahead by S makes a secondary look S *fresher* than it
  // is; behind by S, S staler. Either way the error is bounded by the skew.
  ManualClock true_clock(SecondsToMicroseconds(1000));
  OffsetClock skewed(&true_clock, SecondsToMicroseconds(5));  // +5 s ahead.
  Tablet::Options primary_options;
  primary_options.is_primary = true;
  Tablet primary(primary_options, &skewed);
  Tablet secondary(Tablet::Options{}, &true_clock);

  (void)primary.HandlePut("k", "v");
  secondary.ApplySync(primary.HandleSync(Timestamp::Zero(), 0));

  // A client with the true clock checks bounded(30): the secondary's high
  // timestamp (stamped by the skewed primary) reads 5 s into the future, so
  // it satisfies bounds down to -5 s of real staleness - a 5 s error, well
  // within a 30 s bound but visible for tight ones.
  const Timestamp high = secondary.high_timestamp();
  const MicrosecondCount apparent_staleness =
      true_clock.NowMicros() - high.physical_us;
  EXPECT_LE(apparent_staleness, 0);  // Looks "fresher than now".
  EXPECT_GE(apparent_staleness, -SecondsToMicroseconds(6));
  // The guarantee check a client would run for bounded(30s) still passes,
  // as it should: the data genuinely is fresh.
  EXPECT_GE(high,
            (Timestamp{true_clock.NowMicros() - SecondsToMicroseconds(30),
                       0}));
}

TEST(TabletTest, GetAtServesSnapshots) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  const Timestamp t1 = tablet.HandlePut("k", "v1")->timestamp;
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("k", "v2");

  auto reply = tablet.HandleGetAt("k", t1);
  EXPECT_TRUE(reply.found);
  EXPECT_TRUE(reply.snapshot_available);
  EXPECT_EQ(reply.value, "v1");
}

// --- Transactional commit ---

TEST(TabletTest, CommitAppliesAllWritesAtomically) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);

  proto::CommitRequest request;
  request.snapshot = Timestamp::Zero();
  for (const char* key : {"a", "b", "c"}) {
    proto::ObjectVersion w;
    w.key = key;
    w.value = std::string("tx-") + key;
    request.writes.push_back(w);
  }
  auto reply = tablet.HandleCommit(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->committed);
  for (const char* key : {"a", "b", "c"}) {
    auto get = tablet.HandleGet(key);
    EXPECT_TRUE(get.found);
    EXPECT_EQ(get.value_timestamp, reply->commit_timestamp);
  }
}

TEST(TabletTest, CommitDetectsWriteWriteConflict) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  const Timestamp snapshot{clock.NowMicros(), 0};
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("a", "concurrent");  // After the snapshot.

  proto::CommitRequest request;
  request.snapshot = snapshot;
  proto::ObjectVersion w;
  w.key = "a";
  w.value = "tx";
  request.writes.push_back(w);

  auto reply = tablet.HandleCommit(request);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->committed);
  EXPECT_EQ(reply->conflict_key, "a");
  EXPECT_EQ(tablet.HandleGet("a").value, "concurrent");
}

TEST(TabletTest, CommitValidatesReadsWhenAsked) {
  ManualClock clock(1000);
  Tablet tablet(PrimaryOptions(), &clock);
  const Timestamp snapshot{clock.NowMicros(), 0};
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("r", "changed");

  proto::CommitRequest request;
  request.snapshot = snapshot;
  request.read_keys.push_back("r");
  proto::ObjectVersion w;
  w.key = "w";
  w.value = "tx";
  request.writes.push_back(w);

  request.validate_reads = false;
  auto no_validate = tablet.HandleCommit(request);
  ASSERT_TRUE(no_validate.ok());
  EXPECT_TRUE(no_validate->committed);  // Snapshot isolation allows it.

  // Second transaction with a fresh snapshot (so its write key is clean),
  // whose read key is then overwritten: read validation must reject it.
  clock.AdvanceMicros(10);
  proto::CommitRequest second = request;
  second.snapshot = Timestamp{clock.NowMicros(), 0};
  second.writes[0].key = "w2";
  clock.AdvanceMicros(10);
  (void)tablet.HandlePut("r", "changed again");
  second.validate_reads = true;
  auto validate = tablet.HandleCommit(second);
  ASSERT_TRUE(validate.ok());
  EXPECT_FALSE(validate->committed);  // Serializability check rejects it.
  EXPECT_EQ(validate->conflict_key, "r");
}

TEST(TabletTest, CommitRejectedAtSecondary) {
  ManualClock clock(1000);
  Tablet tablet(SecondaryOptions(), &clock);
  proto::CommitRequest request;
  proto::ObjectVersion w;
  w.key = "a";
  request.writes.push_back(w);
  auto reply = tablet.HandleCommit(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotPrimary);
}

TEST(TabletTest, CommittedBatchReplicatesAsAUnit) {
  ManualClock clock(1000);
  Tablet primary(PrimaryOptions(), &clock);
  Tablet secondary(SecondaryOptions(), &clock);

  proto::CommitRequest request;
  request.snapshot = Timestamp::Zero();
  for (const char* key : {"a", "b", "c"}) {
    proto::ObjectVersion w;
    w.key = key;
    w.value = "tx";
    request.writes.push_back(w);
  }
  ASSERT_TRUE(primary.HandleCommit(request)->committed);

  // Even with max_versions = 1, the same-timestamp batch arrives whole.
  auto reply = primary.HandleSync(Timestamp::Zero(), 1);
  EXPECT_EQ(reply.versions.size(), 3u);
  secondary.ApplySync(reply);
  EXPECT_TRUE(secondary.HandleGet("a").found);
  EXPECT_TRUE(secondary.HandleGet("c").found);
}

}  // namespace
}  // namespace pileus::storage
