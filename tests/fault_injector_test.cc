// Fault-injection coverage: unit tests for the FaultInjector rule engine and
// one deterministic virtual-time test per fault class on the GeoTestbed
// (silent drops, gray slowness, asymmetric partitions, payload corruption,
// crash + WAL recovery), plus the in-process transport hookup.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/common/random.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/net/inproc.h"
#include "src/proto/messages.h"
#include "src/sim/fault_injector.h"
#include "src/storage/storage_node.h"

namespace pileus {
namespace {

using core::Guarantee;
using experiments::GeoTestbed;
using experiments::GeoTestbedOptions;
using experiments::kChina;
using experiments::kEngland;
using experiments::kIndia;
using experiments::kTableName;
using experiments::kUs;
using experiments::PreloadKeys;
using experiments::SingleConsistencySla;

// ---------------------------------------------------------------------------
// FaultInjector rule engine (no testbed).
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, NodeRuleAffectsBothDirections) {
  sim::FaultInjector faults;
  Random rng(1);
  faults.SetSilentDrop("B", 1.0);
  EXPECT_TRUE(faults.OnMessage("A", "B", rng).drop);
  EXPECT_TRUE(faults.OnMessage("B", "A", rng).drop);
  EXPECT_FALSE(faults.OnMessage("A", "C", rng).drop);
  EXPECT_TRUE(faults.Affects("A", "B"));
  EXPECT_TRUE(faults.Affects("B", "A"));
  EXPECT_FALSE(faults.Affects("A", "C"));
}

TEST(FaultInjectorTest, LinkRuleIsDirected) {
  sim::FaultInjector faults;
  Random rng(1);
  faults.SetPartition("A", "B", true);
  EXPECT_TRUE(faults.OnMessage("A", "B", rng).drop);
  EXPECT_FALSE(faults.OnMessage("B", "A", rng).drop);  // Asymmetric.
  EXPECT_TRUE(faults.Affects("A", "B"));
  EXPECT_FALSE(faults.Affects("B", "A"));
  faults.SetPartition("A", "B", false);
  EXPECT_FALSE(faults.OnMessage("A", "B", rng).drop);
  EXPECT_FALSE(faults.Affects("A", "B"));
}

TEST(FaultInjectorTest, RulesCombine) {
  sim::FaultInjector faults;
  Random rng(1);
  // Node and link multipliers multiply; drop anywhere wins over everything.
  faults.SetGrayNode("G", 4.0);
  sim::FaultRule link;
  link.latency_multiplier = 2.0;
  faults.SetLinkRule("G", "H", link);
  sim::FaultDecision decision = faults.OnMessage("G", "H", rng);
  EXPECT_FALSE(decision.drop);
  EXPECT_DOUBLE_EQ(decision.latency_multiplier, 8.0);
  // The reverse direction only sees the node rule.
  EXPECT_DOUBLE_EQ(faults.OnMessage("H", "G", rng).latency_multiplier, 4.0);

  faults.CrashNode("H");
  decision = faults.OnMessage("G", "H", rng);
  EXPECT_TRUE(decision.drop);
  // A dropped message reports no other effects.
  EXPECT_FALSE(decision.corrupt);
  EXPECT_DOUBLE_EQ(decision.latency_multiplier, 1.0);
  EXPECT_GE(faults.messages_dropped(), 1u);
  EXPECT_GE(faults.messages_slowed(), 2u);
}

TEST(FaultInjectorTest, CrashAndRecoverSugar) {
  sim::FaultInjector faults;
  Random rng(1);
  faults.CrashNode("N");
  EXPECT_TRUE(faults.IsCrashed("N"));
  EXPECT_TRUE(faults.OnMessage("X", "N", rng).drop);
  faults.RecoverNode("N");
  EXPECT_FALSE(faults.IsCrashed("N"));
  EXPECT_FALSE(faults.OnMessage("X", "N", rng).drop);
  EXPECT_FALSE(faults.Affects("X", "N"));
}

TEST(FaultInjectorTest, CrashPointsFireExactlyOnceAndRecordVisits) {
  sim::FaultInjector faults;
  // Unarmed points are free no-ops, but the visit is recorded.
  EXPECT_FALSE(faults.ShouldCrash("phase.a"));
  EXPECT_EQ(faults.crash_points_fired(), 0u);

  // An armed point fires exactly once: the arm is consumed by the first
  // visit, so the recovery path can re-walk the same boundary safely.
  faults.ArmCrashPoint("phase.a");
  EXPECT_TRUE(faults.ShouldCrash("phase.a"));
  EXPECT_FALSE(faults.ShouldCrash("phase.a"));
  EXPECT_EQ(faults.crash_points_fired(), 1u);

  // Arming one point never affects another.
  faults.ArmCrashPoint("phase.b");
  EXPECT_FALSE(faults.ShouldCrash("phase.c"));
  EXPECT_TRUE(faults.ShouldCrash("phase.b"));
  EXPECT_EQ(faults.crash_points_fired(), 2u);

  // Every visit (fired or not) is remembered, sorted, deduplicated — the
  // matrix tests use this to prove they covered each protocol boundary.
  const std::vector<std::string> seen = faults.SeenCrashPoints();
  EXPECT_EQ(seen,
            (std::vector<std::string>{"phase.a", "phase.b", "phase.c"}));

  // Re-arming after a fire works (the next torture iteration).
  faults.ArmCrashPoint("phase.a");
  EXPECT_TRUE(faults.ShouldCrash("phase.a"));
  EXPECT_EQ(faults.crash_points_fired(), 3u);
}

TEST(FaultInjectorTest, CorruptFrameIsRejectedByCodecCrc) {
  // Flipped bytes in a real encoded frame must be caught by the wire CRC and
  // surface as a clean decode error - the contract every corruption path in
  // the transports relies on.
  proto::PutRequest request;
  request.table = "t";
  request.key = "some-key";
  request.value = std::string(200, 'v');
  const std::string original = proto::EncodeMessage(request);
  Random rng(99);
  int rejected = 0;
  for (int i = 0; i < 50; ++i) {
    std::string frame = original;
    sim::FaultInjector::CorruptFrame(frame, rng);
    EXPECT_EQ(frame.size(), original.size());
    EXPECT_NE(frame, original);
    if (!proto::DecodeMessage(frame).ok()) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 50);  // CRC-32 catches every 1-3 byte flip.
}

TEST(FaultInjectorTest, InProcTransportConsultsInjector) {
  net::InProcNetwork network;
  storage::StorageNode node("n1", "site", RealClock::Instance());
  storage::Tablet::Options tablet_options;
  tablet_options.range = KeyRange::All();
  tablet_options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", tablet_options).ok());
  network.RegisterEndpoint(
      "n1", [&node](const proto::Message& m) { return node.Handle(m); });

  sim::FaultInjector faults;
  network.SetFaultInjector(&faults);
  auto channel = network.Connect("n1", 0, "client");

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  // Healthy: the call goes through.
  EXPECT_TRUE(channel->Call(get, MillisecondsToMicroseconds(200)).ok());

  // Reply corruption (link rule so the request arrives intact): the client
  // codec rejects the damaged frame with a clean kCorruption.
  sim::FaultRule corrupt;
  corrupt.corrupt_probability = 1.0;
  faults.SetLinkRule("n1", "client", corrupt);
  Result<proto::Message> corrupted =
      channel->Call(get, MillisecondsToMicroseconds(200));
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kCorruption);
  faults.ClearLinkRule("n1", "client");

  // Silent drop: the caller learns nothing until the deadline expires.
  faults.SetSilentDrop("n1", 1.0);
  Result<proto::Message> dropped =
      channel->Call(get, MillisecondsToMicroseconds(20));
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kTimeout);

  // Healing the injector restores service on the same channel.
  faults.RecoverNode("n1");
  EXPECT_TRUE(channel->Call(get, MillisecondsToMicroseconds(200)).ok());
}

// ---------------------------------------------------------------------------
// GeoTestbed integration: one deterministic virtual-time scenario per fault
// class. Clients sit in China (client-only site) so node faults never also
// affect the client's own endpoint name.
// ---------------------------------------------------------------------------

GeoTestbedOptions FastOptions() {
  GeoTestbedOptions options;
  options.seed = 7;
  options.replication_period_us = SecondsToMicroseconds(10);
  return options;
}

// An availability-shaped SLA with a shortened tail so a silent drop burns two
// virtual seconds, not the paper's "unbounded" hour, per failed attempt.
core::Sla AvailabilitySla() {
  return core::Sla()
      .Add(Guarantee::Eventual(), MillisecondsToMicroseconds(400), 1.0)
      .Add(Guarantee::Eventual(), SecondsToMicroseconds(2), 0.1);
}

struct WarmClient {
  std::unique_ptr<experiments::GeoClient> client;
  core::Session session;
};

// Builds a China client, lets probes populate the monitor, and routes a few
// Gets so selection has settled (on the US node, China's best candidate).
WarmClient MakeWarmChinaClient(GeoTestbed& testbed) {
  auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
  client->StartProbing();
  testbed.env().RunFor(SecondsToMicroseconds(30));
  core::Session session =
      client->client().BeginSession(AvailabilitySla()).value();
  for (int i = 0; i < 10; ++i) {
    auto result =
        client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
    EXPECT_TRUE(result.ok());
  }
  return WarmClient{std::move(client), std::move(session)};
}

TEST(FaultGeoTest, SilentDropTripsBreakerAndIsRoutedAround) {
  GeoTestbed testbed(FastOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  WarmClient warm = MakeWarmChinaClient(testbed);
  core::PileusClient& client = warm.client->client();

  testbed.faults().SetSilentDrop(kUs, 1.0);
  int failures = 0;
  int successes_elsewhere = 0;
  for (int i = 0; i < 30; ++i) {
    Result<core::GetResult> result =
        client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(i));
    if (!result.ok()) {
      // A silent drop consumes the whole SLA deadline: the only evidence is
      // the expiry itself, never a fast error.
      ++failures;
      continue;
    }
    EXPECT_TRUE(result->found);
    if (result->outcome.node_name != kUs) {
      ++successes_elsewhere;
    }
  }
  // The first expiry poisons the latency window, so routing abandons the
  // node after at most a handful of wasted deadlines; from then on every Get
  // is served by the remaining replicas.
  EXPECT_GE(failures, 1);
  EXPECT_LE(failures, 6);
  EXPECT_GE(successes_elsewhere, 20);
  EXPECT_GT(testbed.faults().messages_dropped(), 0u);
  EXPECT_LT(client.monitor().PNodeUp(kUs), 1.0);

  // With foreground traffic gone, background probes keep checking the node;
  // their consecutive expiries trip the circuit breaker, which then
  // oscillates open <-> half-open (each probation probe drops too) but
  // never closes while the fault holds.
  testbed.env().RunFor(SecondsToMicroseconds(60));
  EXPECT_GE(client.monitor().breaker_trips(), 1u);
  EXPECT_NE(client.monitor().Breaker(kUs), core::Monitor::BreakerState::kClosed);

  // Recovery: the half-open probation probe succeeds, the breaker closes,
  // and reads migrate back to the nearest node.
  testbed.faults().RecoverNode(kUs);
  testbed.env().RunFor(SecondsToMicroseconds(120));
  bool back_home = false;
  for (int i = 0; i < 30 && !back_home; ++i) {
    Result<core::GetResult> result =
        client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(result.ok());
    back_home = result->outcome.node_name == kUs;
    testbed.env().RunFor(SecondsToMicroseconds(5));
  }
  EXPECT_TRUE(back_home);
}

TEST(FaultGeoTest, GrayNodeSlowsRepliesAndRoutingShiftsAway) {
  GeoTestbed testbed(FastOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  WarmClient warm = MakeWarmChinaClient(testbed);
  core::PileusClient& client = warm.client->client();

  // 6x slower: China-US round trips stretch from ~160 ms to ~1 s - inside
  // the 2 s tail, so the node still answers (a gray failure, not an outage).
  testbed.faults().SetGrayNode(kUs, 6.0);
  Result<core::GetResult> first =
      client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->outcome.node_name, kUs);
  EXPECT_GT(first->outcome.rtt_us, MillisecondsToMicroseconds(500));
  EXPECT_EQ(first->outcome.met_rank, 1);  // Missed the 400 ms rank.

  // The inflated samples push PNodeLat(US) down and selection moves to the
  // next-closest replica, which now delivers rank 0 again.
  Result<core::GetResult> settled{Status(StatusCode::kInternal, "")};
  for (int i = 1; i <= 10; ++i) {
    settled = client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(settled.ok());
  }
  EXPECT_EQ(settled->outcome.node_name, kIndia);
  EXPECT_EQ(settled->outcome.met_rank, 0);
  EXPECT_GT(testbed.faults().messages_slowed(), 0u);
}

TEST(FaultGeoTest, AsymmetricPartitionBlocksOneDirectionOnly) {
  GeoTestbed testbed(FastOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  WarmClient warm = MakeWarmChinaClient(testbed);
  core::PileusClient& client = warm.client->client();

  // Block England -> China: requests still reach the primary, replies die.
  testbed.faults().SetPartition(kEngland, kChina, true);

  // The Put times out on every bounded retry attempt...
  Result<core::PutResult> put = client.Put(warm.session, "partition-key", "v");
  EXPECT_FALSE(put.ok());
  // ...yet the forward direction worked: the write committed at the primary.
  // Exactly the trap of an asymmetric partition - a timed-out write is not
  // a failed write.
  EXPECT_TRUE(testbed.node(kEngland)
                  ->FindTablet(kTableName, "")
                  ->HandleGet("partition-key")
                  .found);

  // Reads are unaffected: the eventual tail is served by the secondaries.
  Result<core::GetResult> read =
      client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(1));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_NE(read->outcome.node_name, kEngland);

  // Healing the one directed link restores writes end to end.
  testbed.faults().SetPartition(kEngland, kChina, false);
  EXPECT_TRUE(client.Put(warm.session, "partition-key", "v2").ok());
}

TEST(FaultGeoTest, CorruptedRepliesFailCleanAndGetRetriesElsewhere) {
  GeoTestbed testbed(FastOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  WarmClient warm = MakeWarmChinaClient(testbed);
  core::PileusClient& client = warm.client->client();

  // Corrupt only US -> China reply frames (a link rule, so requests arrive
  // intact). Unlike a silent drop, the client hears back quickly - with a
  // frame its codec's CRC rejects - so the same Get retries other replicas
  // within its deadline budget and still succeeds.
  sim::FaultRule corrupt;
  corrupt.corrupt_probability = 1.0;
  testbed.faults().SetLinkRule(kUs, kChina, corrupt);
  for (int i = 0; i < 10; ++i) {
    Result<core::GetResult> result =
        client.Get(warm.session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(result.ok()) << i << ": " << result.status();
    EXPECT_TRUE(result->found);
    EXPECT_NE(result->outcome.node_name, kUs);
  }
  EXPECT_GT(testbed.faults().messages_corrupted(), 0u);
  // The corruption failures fed the monitor: US reachability took a hit.
  EXPECT_LT(client.monitor().PNodeUp(kUs), 1.0);
}

TEST(FaultGeoTest, CrashLosesVolatileStateAndWalRestoresIt) {
  char wal_dir[] = "/tmp/pileus_fault_wal_XXXXXX";
  ASSERT_NE(::mkdtemp(wal_dir), nullptr);
  GeoTestbedOptions options = FastOptions();
  options.durable_root = wal_dir;
  GeoTestbed testbed(options);
  testbed.StartReplication();

  // Write through the client so every version flows through Serve and is
  // journaled (at the primary on accept, at secondaries on replication).
  auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
  core::Session session =
      client->client().BeginSession(AvailabilitySla()).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->client()
                    .Put(session, workload::YcsbWorkload::KeyForIndex(i), "d")
                    .ok());
  }
  testbed.env().RunFor(SecondsToMicroseconds(11));  // Replicate + journal.
  ASSERT_TRUE(testbed.node(kUs)
                  ->FindTablet(kTableName, "")
                  ->HandleGet(workload::YcsbWorkload::KeyForIndex(0))
                  .found);

  testbed.CrashNode(kUs);
  EXPECT_TRUE(testbed.IsNodeCrashed(kUs));
  EXPECT_EQ(testbed.node(kUs), nullptr);  // Volatile state is gone.

  // A write accepted while the node is down must arrive via catch-up later.
  ASSERT_TRUE(client->client().Put(session, "while-down", "late").ok());

  ASSERT_TRUE(testbed.RestartNode(kUs).ok());
  EXPECT_FALSE(testbed.IsNodeCrashed(kUs));
  storage::Tablet* us = testbed.node(kUs)->FindTablet(kTableName, "");
  // WAL replay restored everything journaled before the crash...
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(us->HandleGet(workload::YcsbWorkload::KeyForIndex(i)).found)
        << i;
  }
  // ...but not the write it slept through; replication catches that up.
  EXPECT_FALSE(us->HandleGet("while-down").found);
  testbed.env().RunFor(SecondsToMicroseconds(11));
  EXPECT_TRUE(us->HandleGet("while-down").found);
}

TEST(FaultGeoTest, CrashWithoutWalRecoversViaReplicationAlone) {
  GeoTestbed testbed(FastOptions());  // No durable_root: nothing survives.
  testbed.StartReplication();
  auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
  core::Session session =
      client->client().BeginSession(AvailabilitySla()).value();
  ASSERT_TRUE(client->client().Put(session, "k", "v").ok());
  testbed.env().RunFor(SecondsToMicroseconds(11));
  ASSERT_TRUE(
      testbed.node(kIndia)->FindTablet(kTableName, "")->HandleGet("k").found);

  testbed.CrashNode(kIndia);
  ASSERT_TRUE(testbed.RestartNode(kIndia).ok());
  storage::Tablet* india = testbed.node(kIndia)->FindTablet(kTableName, "");
  EXPECT_FALSE(india->HandleGet("k").found);  // Came back empty.
  testbed.env().RunFor(SecondsToMicroseconds(11));
  EXPECT_TRUE(india->HandleGet("k").found);  // Refilled from the primary.
}

TEST(FaultGeoTest, FaultRunsAreDeterministic) {
  auto run = [] {
    GeoTestbed testbed(FastOptions());
    PreloadKeys(testbed, 50);
    testbed.StartReplication();
    auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
    client->StartProbing();
    testbed.env().RunFor(SecondsToMicroseconds(20));
    core::Session session =
        client->client().BeginSession(AvailabilitySla()).value();
    testbed.faults().SetSilentDrop(kUs, 0.4);
    std::string pattern;
    for (int i = 0; i < 30; ++i) {
      Result<core::GetResult> result =
          client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
      pattern.push_back(result.ok() ? 'o' + (result->outcome.node_name == kUs
                                                 ? 0
                                                 : 1)
                                    : 'x');
    }
    pattern += ':' + std::to_string(testbed.faults().messages_dropped());
    return pattern;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pileus
