// Tests for the client-side monitor (paper Section 4.5).

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/core/monitor.h"

namespace pileus::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : clock_(SecondsToMicroseconds(1000)), monitor_(&clock_) {}

  ManualClock clock_;
  Monitor monitor_;
};

TEST_F(MonitorTest, UnknownNodeIsOptimisticOnLatency) {
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("ghost", 1000), 1.0);
}

TEST_F(MonitorTest, UnknownNodeEstimateConfigurable) {
  Monitor::Options options;
  options.unknown_latency_estimate = 0.5;
  Monitor monitor(&clock_, options);
  EXPECT_DOUBLE_EQ(monitor.PNodeLat("ghost", 1000), 0.5);
}

TEST_F(MonitorTest, PNodeLatIsWindowFraction) {
  for (int i = 0; i < 8; ++i) {
    monitor_.RecordLatency("n", 1000);
  }
  for (int i = 0; i < 2; ++i) {
    monitor_.RecordLatency("n", 100000);
  }
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 2000), 0.8);
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 200000), 1.0);
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 100), 0.0);
}

TEST_F(MonitorTest, UnknownNodeHasZeroHighTimestamp) {
  EXPECT_EQ(monitor_.KnownHighTimestamp("ghost"), Timestamp::Zero());
  // PNodeCons for a zero threshold is still satisfied.
  EXPECT_DOUBLE_EQ(monitor_.PNodeCons("ghost", Timestamp::Zero()), 1.0);
  EXPECT_DOUBLE_EQ(monitor_.PNodeCons("ghost", Timestamp{1, 0}), 0.0);
}

TEST_F(MonitorTest, HighTimestampOnlyMovesForward) {
  monitor_.RecordHighTimestamp("n", Timestamp{500, 0});
  monitor_.RecordHighTimestamp("n", Timestamp{300, 0});  // Stale report.
  EXPECT_EQ(monitor_.KnownHighTimestamp("n"), (Timestamp{500, 0}));
  monitor_.RecordHighTimestamp("n", Timestamp{800, 0});
  EXPECT_EQ(monitor_.KnownHighTimestamp("n"), (Timestamp{800, 0}));
}

TEST_F(MonitorTest, PNodeConsIsBinaryAndConservative) {
  monitor_.RecordHighTimestamp("n", Timestamp{500, 0});
  EXPECT_DOUBLE_EQ(monitor_.PNodeCons("n", Timestamp{500, 0}), 1.0);
  EXPECT_DOUBLE_EQ(monitor_.PNodeCons("n", Timestamp{500, 1}), 0.0);
  EXPECT_DOUBLE_EQ(monitor_.PNodeCons("n", Timestamp{100, 0}), 1.0);
}

TEST_F(MonitorTest, PNodeSlaIsProduct) {
  monitor_.RecordHighTimestamp("n", Timestamp{500, 0});
  monitor_.RecordLatency("n", 1000);
  monitor_.RecordLatency("n", 3000);
  // PNodeLat(2000) = 0.5; PNodeCons({400,0}) = 1.
  EXPECT_DOUBLE_EQ(monitor_.PNodeSla("n", Timestamp{400, 0}, 2000), 0.5);
  // Consistency unsatisfied -> 0 regardless of latency.
  EXPECT_DOUBLE_EQ(monitor_.PNodeSla("n", Timestamp{600, 0}, 2000), 0.0);
}

TEST_F(MonitorTest, OldLatencySamplesAgeOut) {
  Monitor::Options options;
  options.latency_window.window_us = SecondsToMicroseconds(10);
  Monitor monitor(&clock_, options);
  monitor.RecordLatency("n", 100000);
  clock_.AdvanceMicros(SecondsToMicroseconds(60));
  // The slow sample expired; the node is unknown again (optimistic).
  EXPECT_DOUBLE_EQ(monitor.PNodeLat("n", 1000), 1.0);
}

TEST_F(MonitorTest, NeedsProbeForUnknownAndStaleNodes) {
  EXPECT_TRUE(monitor_.NeedsProbe("ghost"));
  monitor_.RecordLatency("n", 1000);
  EXPECT_FALSE(monitor_.NeedsProbe("n"));
  clock_.AdvanceMicros(monitor_.options().probe_interval_us + 1);
  EXPECT_TRUE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, HighTimestampReportRefreshesContact) {
  monitor_.RecordHighTimestamp("n", Timestamp{1, 0});
  EXPECT_FALSE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, MeanLatency) {
  EXPECT_EQ(monitor_.MeanLatency("ghost"), 0);
  monitor_.RecordLatency("n", 100);
  monitor_.RecordLatency("n", 300);
  EXPECT_EQ(monitor_.MeanLatency("n"), 200);
}

TEST_F(MonitorTest, SamplesRecordedCounter) {
  EXPECT_EQ(monitor_.samples_recorded(), 0u);
  monitor_.RecordLatency("a", 1);
  monitor_.RecordLatency("b", 2);
  EXPECT_EQ(monitor_.samples_recorded(), 2u);
}

TEST_F(MonitorTest, PredictorExtrapolatesHighTimestamp) {
  Monitor::Options options;
  options.predict_high_timestamp = true;
  options.prediction_rate = 1.0;
  Monitor monitor(&clock_, options);
  monitor.RecordHighTimestamp("n", Timestamp{clock_.NowMicros(), 0});
  const Timestamp observed = monitor.KnownHighTimestamp("n");

  clock_.AdvanceMicros(SecondsToMicroseconds(10));
  const Timestamp predicted = monitor.KnownHighTimestamp("n");
  EXPECT_EQ(predicted.physical_us - observed.physical_us,
            SecondsToMicroseconds(10));
}

TEST_F(MonitorTest, PredictorRateScalesExtrapolation) {
  Monitor::Options options;
  options.predict_high_timestamp = true;
  options.prediction_rate = 0.5;
  Monitor monitor(&clock_, options);
  monitor.RecordHighTimestamp("n", Timestamp{clock_.NowMicros(), 0});
  clock_.AdvanceMicros(SecondsToMicroseconds(10));
  const Timestamp predicted = monitor.KnownHighTimestamp("n");
  EXPECT_EQ(predicted.physical_us - SecondsToMicroseconds(1000),
            SecondsToMicroseconds(5));
}

TEST_F(MonitorTest, ConservativeModeNeverExtrapolates) {
  monitor_.RecordHighTimestamp("n", Timestamp{123, 0});
  clock_.AdvanceMicros(SecondsToMicroseconds(100));
  EXPECT_EQ(monitor_.KnownHighTimestamp("n"), (Timestamp{123, 0}));
}

TEST_F(MonitorTest, PNodeUpDefaultsToOne) {
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("ghost"), 1.0);
  monitor_.RecordLatency("n", 100);  // Latency alone is not an outcome.
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("n"), 1.0);
}

TEST_F(MonitorTest, FailuresLowerPNodeUp) {
  // Breaker disabled: this test checks the pure windowed estimate (three
  // consecutive failures would otherwise trip the breaker and force 0).
  Monitor::Options options;
  options.breaker_failure_threshold = 0;
  Monitor monitor(&clock_, options);
  monitor.RecordSuccess("n");
  monitor.RecordFailure("n");
  monitor.RecordFailure("n");
  monitor.RecordFailure("n");
  EXPECT_DOUBLE_EQ(monitor.PNodeUp("n"), 0.25);
}

TEST_F(MonitorTest, BreakerTripsAfterConsecutiveFailures) {
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kClosed);
  monitor_.RecordFailure("n");
  monitor_.RecordFailure("n");
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kClosed);
  monitor_.RecordFailure("n");  // Third consecutive failure: trip.
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kOpen);
  EXPECT_TRUE(monitor_.BreakerOpen("n"));
  EXPECT_EQ(monitor_.breaker_trips(), 1u);
  // While open: PNodeUp forced to 0 and probing is pointless.
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("n"), 0.0);
  EXPECT_FALSE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, InterleavedSuccessNeverTripsBreaker) {
  for (int i = 0; i < 10; ++i) {
    monitor_.RecordFailure("n");
    monitor_.RecordFailure("n");
    monitor_.RecordSuccess("n");  // Resets the consecutive count.
  }
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kClosed);
  EXPECT_EQ(monitor_.breaker_trips(), 0u);
}

TEST_F(MonitorTest, BreakerHalfOpensAfterCooldownAndClosesOnSuccess) {
  for (int i = 0; i < 3; ++i) {
    monitor_.RecordFailure("n");
  }
  ASSERT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kOpen);
  clock_.AdvanceMicros(monitor_.options().breaker_cooldown_us + 1);
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kHalfOpen);
  // Half-open: exactly the probation probes run again.
  EXPECT_TRUE(monitor_.NeedsProbe("n"));
  // PNodeUp is no longer forced to 0 (the windowed estimate returns).
  monitor_.RecordSuccess("n");
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kClosed);
}

TEST_F(MonitorTest, HalfOpenFailureRearmsFullCooldown) {
  for (int i = 0; i < 3; ++i) {
    monitor_.RecordFailure("n");
  }
  clock_.AdvanceMicros(monitor_.options().breaker_cooldown_us + 1);
  ASSERT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kHalfOpen);
  monitor_.RecordFailure("n");  // Probation probe failed.
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kOpen);
  // Re-opening an already-tripped breaker is not a new trip.
  EXPECT_EQ(monitor_.breaker_trips(), 1u);
  clock_.AdvanceMicros(monitor_.options().breaker_cooldown_us / 2);
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kOpen);
}

TEST_F(MonitorTest, SuccessFullyResetsBreakerHistory) {
  monitor_.RecordFailure("n");
  monitor_.RecordFailure("n");
  monitor_.RecordSuccess("n");
  // The count restarted: two more failures must not trip a threshold of 3.
  monitor_.RecordFailure("n");
  monitor_.RecordFailure("n");
  EXPECT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kClosed);
}

TEST_F(MonitorTest, RecoverySuccessesRestorePNodeUp) {
  for (int i = 0; i < 4; ++i) {
    monitor_.RecordFailure("n");
  }
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("n"), 0.0);
  for (int i = 0; i < 12; ++i) {
    monitor_.RecordSuccess("n");
  }
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("n"), 0.75);
}

TEST_F(MonitorTest, OldFailuresAgeOut) {
  Monitor::Options options;
  options.latency_window.window_us = SecondsToMicroseconds(10);
  Monitor monitor(&clock_, options);
  monitor.RecordFailure("n");
  clock_.AdvanceMicros(SecondsToMicroseconds(60));
  EXPECT_DOUBLE_EQ(monitor.PNodeUp("n"), 1.0);
}

TEST_F(MonitorTest, PNodeSlaIncludesUpFactor) {
  monitor_.RecordHighTimestamp("n", Timestamp{500, 0});
  monitor_.RecordLatency("n", 1000);
  monitor_.RecordSuccess("n");
  monitor_.RecordFailure("n");
  // PCons 1 * PLat 1 * PUp 0.5.
  EXPECT_DOUBLE_EQ(monitor_.PNodeSla("n", Timestamp{400, 0}, 2000), 0.5);
}

TEST_F(MonitorTest, FailureCountsAsContactForProbing) {
  monitor_.RecordFailure("n");
  EXPECT_FALSE(monitor_.NeedsProbe("n"));
  clock_.AdvanceMicros(monitor_.options().probe_interval_us + 1);
  EXPECT_TRUE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, SnapshotReportsPerNodeState) {
  monitor_.RecordLatency("a", 100);
  monitor_.RecordLatency("a", 300);
  monitor_.RecordHighTimestamp("a", Timestamp{999, 0});
  monitor_.RecordSuccess("a");
  monitor_.RecordLatency("b", 5000);
  monitor_.RecordSuccess("b");
  monitor_.RecordFailure("b");

  const std::vector<Monitor::NodeSnapshot> snapshot = monitor_.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].node, "a");  // Sorted by name.
  EXPECT_EQ(snapshot[1].node, "b");
  EXPECT_EQ(snapshot[0].latency_samples, 2u);
  EXPECT_EQ(snapshot[0].mean_latency_us, 200);
  EXPECT_EQ(snapshot[0].high_timestamp, (Timestamp{999, 0}));
  EXPECT_EQ(snapshot[0].last_contact_us, clock_.NowMicros());
  EXPECT_DOUBLE_EQ(snapshot[0].p_up, 1.0);
  EXPECT_EQ(snapshot[0].breaker, Monitor::BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(snapshot[1].p_up, 0.5);
  EXPECT_EQ(snapshot[1].consecutive_failures, 1);
}

TEST_F(MonitorTest, SnapshotReflectsOpenBreaker) {
  for (int i = 0; i < monitor_.options().breaker_failure_threshold; ++i) {
    monitor_.RecordFailure("n");
  }
  const std::vector<Monitor::NodeSnapshot> snapshot = monitor_.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].breaker, Monitor::BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(snapshot[0].p_up, 0.0);
  EXPECT_EQ(BreakerStateName(snapshot[0].breaker), "open");
  EXPECT_EQ(BreakerStateName(Monitor::BreakerState::kClosed), "closed");
  EXPECT_EQ(BreakerStateName(Monitor::BreakerState::kHalfOpen), "half-open");
}

TEST_F(MonitorTest, NodesAreIndependent) {
  monitor_.RecordLatency("a", 100);
  monitor_.RecordLatency("b", 100000);
  monitor_.RecordHighTimestamp("a", Timestamp{999, 0});
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("a", 1000), 1.0);
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("b", 1000), 0.0);
  EXPECT_EQ(monitor_.KnownHighTimestamp("b"), Timestamp::Zero());
}

// --- Fleet priors (DESIGN.md Section 12) ---

monitoring::ConditionDigest MakeDigest(uint64_t version,
                                       const std::string& node,
                                       MicrosecondCount p50_us,
                                       uint64_t samples = 20,
                                       double p_up = 1.0) {
  monitoring::NodeCondition cond;
  cond.node = node;
  cond.sample_count = samples;
  cond.mean_latency_us = p50_us;
  cond.p50_latency_us = p50_us;
  cond.p95_latency_us = p50_us * 2;
  cond.p99_latency_us = p50_us * 3;
  cond.p_up = p_up;
  monitoring::ConditionDigest digest;
  digest.version = version;
  digest.reports_merged = 1;
  digest.nodes.push_back(std::move(cond));
  return digest;
}

TEST_F(MonitorTest, InstallDigestIsMonotonicInVersion) {
  EXPECT_TRUE(monitor_.InstallDigest(MakeDigest(3, "n", 5000)));
  EXPECT_EQ(monitor_.digest_version(), 3u);
  EXPECT_FALSE(monitor_.InstallDigest(MakeDigest(3, "n", 9000)));
  EXPECT_FALSE(monitor_.InstallDigest(MakeDigest(2, "n", 9000)));
  EXPECT_TRUE(monitor_.InstallDigest(MakeDigest(4, "n", 9000)));
  EXPECT_EQ(monitor_.digests_installed(), 2u);
}

TEST_F(MonitorTest, FreshPriorDrivesPNodeLatWithoutLocalSamples) {
  // Prior p50 = 5 ms: half the windowed mass sits below 5 ms.
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000)));
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 5000), 0.5);
  // Above the prior's p99 the estimate approaches 1.
  EXPECT_GT(monitor_.PNodeLat("n", 16000), 0.98);
  // Far below p50 it scales linearly toward 0.
  EXPECT_NEAR(monitor_.PNodeLat("n", 500), 0.05, 1e-9);
}

TEST_F(MonitorTest, LocalSamplesOutweighPriorAsTheyAccumulate) {
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 100000)));
  // Prior says slow (p50 = 100 ms); local reality is fast (all < 1 ms).
  const double blind = monitor_.PNodeLat("n", 2000);
  EXPECT_LT(blind, 0.05);
  for (int i = 0; i < 100; ++i) {
    monitor_.RecordLatency("n", 500);
  }
  // n = 100 local samples vs k <= 8 prior pseudo-samples: local wins.
  EXPECT_GT(monitor_.PNodeLat("n", 2000), 0.9);
}

TEST_F(MonitorTest, PriorDecaysToNothingPastTtl) {
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 100000)));
  EXPECT_LT(monitor_.PNodeLat("n", 2000), 0.05);
  clock_.AdvanceMicros(monitor_.options().prior_ttl_us);
  // Expired prior: back to the optimistic unknown estimate.
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 2000), 1.0);
}

TEST_F(MonitorTest, PriorPUpBlendsAndFadesTowardOptimism) {
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000, 20, 0.0)));
  // Fresh "node down" prior dominates...
  EXPECT_LT(monitor_.PNodeUp("n"), 0.05);
  // ...but drifts back toward the optimistic default as it ages.
  clock_.AdvanceMicros(monitor_.options().prior_ttl_us / 2);
  EXPECT_NEAR(monitor_.PNodeUp("n"), 0.5, 0.05);
  clock_.AdvanceMicros(monitor_.options().prior_ttl_us / 2);
  EXPECT_DOUBLE_EQ(monitor_.PNodeUp("n"), 1.0);
}

TEST_F(MonitorTest, ZeroSamplePriorCarriesNoLatencyEvidence) {
  // A digest node seen only via server self-reports (sample_count 0) must
  // not shape PNodeLat: percentiles without samples are meaningless.
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 0, /*samples=*/0)));
  EXPECT_DOUBLE_EQ(monitor_.PNodeLat("n", 1000), 1.0);
}

TEST_F(MonitorTest, DigestAdvancesHighTimestampMonotonically) {
  monitor_.RecordHighTimestamp("n", Timestamp{5000, 0});
  monitoring::ConditionDigest digest = MakeDigest(1, "n", 5000);
  digest.nodes[0].high_timestamp = Timestamp{4000, 0};
  digest.nodes[0].high_age_us = 100;
  // An older fleet high timestamp never rolls the local view back.
  ASSERT_TRUE(monitor_.InstallDigest(digest));
  EXPECT_EQ(monitor_.KnownHighTimestamp("n"), (Timestamp{5000, 0}));
  digest = MakeDigest(2, "n", 5000);
  digest.nodes[0].high_timestamp = Timestamp{9000, 0};
  digest.nodes[0].high_age_us = 100;
  ASSERT_TRUE(monitor_.InstallDigest(digest));
  EXPECT_EQ(monitor_.KnownHighTimestamp("n"), (Timestamp{9000, 0}));
}

TEST_F(MonitorTest, FreshPriorSuppressesProbesThenStalenessResumes) {
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000)));
  EXPECT_FALSE(monitor_.NeedsProbe("n"));
  EXPECT_EQ(monitor_.probes_suppressed(), 1u);
  // Past the suppression window the never-contacted node probes again.
  clock_.AdvanceMicros(monitor_.options().prior_probe_suppress_us);
  EXPECT_TRUE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, HalfOpenBreakerProbesDespiteFreshPrior) {
  for (int i = 0; i < monitor_.options().breaker_failure_threshold; ++i) {
    monitor_.RecordFailure("n");
  }
  clock_.AdvanceMicros(monitor_.options().breaker_cooldown_us);
  ASSERT_EQ(monitor_.Breaker("n"), Monitor::BreakerState::kHalfOpen);
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000)));
  // Probation probes are the only way the breaker closes; a prior must not
  // silence them.
  EXPECT_TRUE(monitor_.NeedsProbe("n"));
}

TEST_F(MonitorTest, StateVersionBumpsOnLocalEvidenceOnly) {
  const uint64_t v0 = monitor_.state_version();
  monitor_.RecordLatency("n", 100);
  monitor_.RecordSuccess("n");
  monitor_.RecordHighTimestamp("n", Timestamp{1, 0});
  monitor_.RecordQueueDelay("n", 50);
  EXPECT_EQ(monitor_.state_version(), v0 + 4);
  // Installing a digest is not local evidence: reporters must not re-report
  // (and the aggregator must not accept) unchanged state.
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000)));
  EXPECT_EQ(monitor_.state_version(), v0 + 4);
}

TEST_F(MonitorTest, ReportConditionsExcludePriorOnlyNodes) {
  monitor_.RecordLatency("local", 100);
  monitor_.RecordSuccess("local");
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "hearsay", 5000)));
  const std::vector<monitoring::NodeCondition> report =
      monitor_.BuildReportConditions();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].node, "local");
  EXPECT_EQ(report[0].sample_count, 1u);
}

TEST_F(MonitorTest, QueueDelayFallsBackToPrior) {
  monitoring::ConditionDigest digest = MakeDigest(1, "n", 5000);
  digest.nodes[0].queue_delay_us = 4000;
  ASSERT_TRUE(monitor_.InstallDigest(digest));
  // Fresh prior: full reported delay. No local EWMA exists yet.
  EXPECT_EQ(monitor_.QueueDelayUs("n"), 4000);
  // Local reports override the prior entirely.
  monitor_.RecordQueueDelay("n", 1000);
  EXPECT_EQ(monitor_.QueueDelayUs("n"),
            static_cast<MicrosecondCount>(
                1000 * monitor_.options().queue_delay_alpha));
}

TEST_F(MonitorTest, SnapshotReportsPriorFields) {
  monitor_.RecordLatency("n", 100);
  ASSERT_TRUE(monitor_.InstallDigest(MakeDigest(1, "n", 5000)));
  clock_.AdvanceMicros(2500);
  const std::vector<Monitor::NodeSnapshot> snapshot = monitor_.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].total_samples, 1u);
  EXPECT_TRUE(snapshot[0].has_prior);
  EXPECT_EQ(snapshot[0].prior_age_us, 2500);
}

}  // namespace
}  // namespace pileus::core
