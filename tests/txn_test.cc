// Tests for snapshot-isolation transactions against real storage nodes.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/clock.h"
#include "src/core/client.h"
#include "src/storage/storage_node.h"
#include "src/txn/transaction.h"

namespace pileus::txn {
namespace {

using core::NodeConnection;
using core::PileusClient;
using core::Replica;
using core::Session;
using core::TableView;
using core::TimedReply;
using storage::StorageNode;
using storage::Tablet;

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

// Calls straight into a StorageNode, advancing a shared manual clock by the
// configured round-trip so time passes like it would over a network.
class DirectConnection : public NodeConnection {
 public:
  DirectConnection(StorageNode* node, ManualClock* clock,
                   MicrosecondCount rtt_us)
      : node_(node), clock_(clock), rtt_us_(rtt_us) {}

  TimedReply Call(const proto::Message& request,
                  MicrosecondCount /*timeout_us*/) override {
    ++calls_;
    clock_->AdvanceMicros(rtt_us_);
    return TimedReply(node_->Handle(request), rtt_us_);
  }

  int calls() const { return calls_; }

 private:
  StorageNode* node_;
  ManualClock* clock_;
  MicrosecondCount rtt_us_;
  int calls_ = 0;
};

class TxnTest : public ::testing::Test {
 protected:
  TxnTest()
      : clock_(SecondsToMicroseconds(1000)),
        primary_("primary", "England", &clock_),
        secondary_("secondary", "US", &clock_) {
    Tablet::Options primary_options;
    primary_options.is_primary = true;
    EXPECT_TRUE(primary_.AddTablet("t", primary_options).ok());
    EXPECT_TRUE(secondary_.AddTablet("t", Tablet::Options{}).ok());

    auto primary_conn =
        std::make_shared<DirectConnection>(&primary_, &clock_, 100 * kMs);
    auto secondary_conn =
        std::make_shared<DirectConnection>(&secondary_, &clock_, 1 * kMs);
    primary_conn_ = primary_conn.get();
    secondary_conn_ = secondary_conn.get();

    TableView view;
    view.table_name = "t";
    view.replicas = {Replica{"primary", true, primary_conn},
                     Replica{"secondary", false, secondary_conn}};
    view.primary_index = 0;
    client_ = std::make_unique<PileusClient>(std::move(view), &clock_);
    factory_ = std::make_unique<TransactionFactory>(client_.get());
  }

  // Copies everything the primary has onto the secondary.
  void Sync() {
    auto* src = primary_.FindTablet("t", "");
    auto* dst = secondary_.FindTablet("t", "");
    dst->ApplySync(src->HandleSync(dst->high_timestamp(), 0));
  }

  Session NewSession() {
    return client_->BeginSession(core::ShoppingCartSla()).value();
  }

  ManualClock clock_;
  StorageNode primary_;
  StorageNode secondary_;
  DirectConnection* primary_conn_ = nullptr;
  DirectConnection* secondary_conn_ = nullptr;
  std::unique_ptr<PileusClient> client_;
  std::unique_ptr<TransactionFactory> factory_;
};

TEST_F(TxnTest, BeginFixesSnapshotFromPrimary) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());
  Result<Transaction> txn = factory_->Begin(session);
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(txn->active());
  EXPECT_GE(txn->snapshot(), session.LastPutTimestamp("k"));
}

TEST_F(TxnTest, ReadsOwnBufferedWrites) {
  Session session = NewSession();
  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Put("k", "buffered").ok());
  Result<TxnGetResult> result = txn.Get("k");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->value, "buffered");
}

TEST_F(TxnTest, SnapshotReadIgnoresLaterWrites) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "k", "old").ok());
  Transaction txn = std::move(factory_->Begin(session)).value();
  // A write after the snapshot was taken.
  clock_.AdvanceMicros(10 * kMs);
  ASSERT_TRUE(client_->Put(session, "k", "new").ok());

  Result<TxnGetResult> result = txn.Get("k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "old");
}

TEST_F(TxnTest, CommitAppliesAllWritesWithOneTimestamp) {
  Session session = NewSession();
  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Put("a", "1").ok());
  ASSERT_TRUE(txn.Put("b", "2").ok());
  ASSERT_TRUE(txn.Put("a", "3").ok());  // Last write to a key wins.

  Result<CommitInfo> info = txn.Commit();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->writes_applied, 2);

  auto* tablet = primary_.FindTablet("t", "");
  const auto a = tablet->HandleGet("a");
  const auto b = tablet->HandleGet("b");
  EXPECT_EQ(a.value, "3");
  EXPECT_EQ(b.value, "2");
  EXPECT_EQ(a.value_timestamp, info->commit_timestamp);
  EXPECT_EQ(b.value_timestamp, info->commit_timestamp);
  // The session sees the transaction's writes for read-my-writes purposes.
  EXPECT_EQ(session.LastPutTimestamp("a"), info->commit_timestamp);
}

TEST_F(TxnTest, FirstCommitterWinsOnWriteConflict) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "k", "base").ok());

  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Put("k", "txn-value").ok());

  // A concurrent writer commits first.
  clock_.AdvanceMicros(5 * kMs);
  ASSERT_TRUE(client_->Put(session, "k", "sneaky").ok());

  Result<CommitInfo> info = txn.Commit();
  EXPECT_EQ(info.status().code(), StatusCode::kConflict);
  EXPECT_EQ(primary_.FindTablet("t", "")->HandleGet("k").value, "sneaky");
  EXPECT_FALSE(txn.active());
}

TEST_F(TxnTest, ReadValidationCatchesReadWriteConflicts) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "r", "base").ok());

  TxnOptions options;
  options.validate_reads = true;
  Transaction txn = std::move(factory_->Begin(session, options)).value();
  ASSERT_TRUE(txn.Get("r").ok());
  ASSERT_TRUE(txn.Put("w", "out").ok());

  clock_.AdvanceMicros(5 * kMs);
  ASSERT_TRUE(client_->Put(session, "r", "changed").ok());

  EXPECT_EQ(txn.Commit().status().code(), StatusCode::kConflict);
}

TEST_F(TxnTest, SnapshotIsolationAllowsReadWriteOverlapByDefault) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "r", "base").ok());
  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Get("r").ok());
  ASSERT_TRUE(txn.Put("w", "out").ok());
  clock_.AdvanceMicros(5 * kMs);
  ASSERT_TRUE(client_->Put(session, "r", "changed").ok());
  EXPECT_TRUE(txn.Commit().ok());
}

TEST_F(TxnTest, ReadOnlyCommitNeedsNoExtraRpc) {
  Session session = NewSession();
  Transaction txn = std::move(factory_->Begin(session)).value();
  const int calls_before = primary_conn_->calls() + secondary_conn_->calls();
  Result<CommitInfo> info = txn.Commit();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(primary_conn_->calls() + secondary_conn_->calls(), calls_before);
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  Session session = NewSession();
  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Put("k", "never").ok());
  txn.Abort();
  EXPECT_FALSE(txn.active());
  EXPECT_FALSE(primary_.FindTablet("t", "")->HandleGet("k").found);
}

TEST_F(TxnTest, OperationsAfterFinishRejected) {
  Session session = NewSession();
  Transaction txn = std::move(factory_->Begin(session)).value();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Put("k", "v").code(), StatusCode::kCancelled);
  EXPECT_EQ(txn.Get("k").status().code(), StatusCode::kCancelled);
  EXPECT_EQ(txn.Commit().status().code(), StatusCode::kCancelled);
}

TEST_F(TxnTest, SnapshotReadsPreferFreshNearbyReplica) {
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());
  Sync();  // Secondary now covers the snapshot.
  // Teach the monitor: the secondary is near and fresh.
  for (int i = 0; i < 5; ++i) {
    client_->monitor().RecordLatency("secondary", 1 * kMs);
    client_->monitor().RecordLatency("primary", 100 * kMs);
  }
  client_->monitor().RecordHighTimestamp(
      "secondary", secondary_.FindTablet("t", "")->high_timestamp());

  Transaction txn = std::move(factory_->Begin(session)).value();
  // Begin probed the primary; snapshot may now exceed the secondary's high
  // timestamp that we recorded... refresh the monitor to the actual value.
  client_->monitor().RecordHighTimestamp(
      "secondary", secondary_.FindTablet("t", "")->high_timestamp());

  const int secondary_calls = secondary_conn_->calls();
  Result<TxnGetResult> result = txn.Get("k");
  ASSERT_TRUE(result.ok());
  if (secondary_.FindTablet("t", "")->high_timestamp() >= txn.snapshot()) {
    EXPECT_GT(secondary_conn_->calls(), secondary_calls);
  }
  EXPECT_EQ(result->value, "v");
}

TEST_F(TxnTest, PrunedSnapshotFallsBackToPrimary) {
  // A secondary that keeps only one version cannot answer old snapshots; the
  // transaction must retry at the primary.
  Session session = NewSession();
  ASSERT_TRUE(client_->Put(session, "k", "v1").ok());
  Transaction txn = std::move(factory_->Begin(session)).value();

  clock_.AdvanceMicros(10 * kMs);
  ASSERT_TRUE(client_->Put(session, "k", "v2").ok());
  ASSERT_TRUE(client_->Put(session, "k", "v3").ok());

  Result<TxnGetResult> result = txn.Get("k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "v1");  // The primary retains history.
}

}  // namespace
}  // namespace pileus::txn
