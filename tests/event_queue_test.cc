// Tests for the discrete-event queue.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace pileus::sim {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.NextEventTime(), -1);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(300, [&] { order.push_back(3); });
  queue.ScheduleAt(100, [&] { order.push_back(1); });
  queue.ScheduleAt(200, [&] { order.push_back(2); });

  while (!queue.Empty()) {
    MicrosecondCount at;
    queue.PopNext(&at)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  while (!queue.Empty()) {
    MicrosecondCount at;
    queue.PopNext(&at)();
    EXPECT_EQ(at, 42);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, NextEventTimeReportsEarliest) {
  EventQueue queue;
  queue.ScheduleAt(500, [] {});
  queue.ScheduleAt(100, [] {});
  EXPECT_EQ(queue.NextEventTime(), 100);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const uint64_t id = queue.ScheduleAt(100, [&] { ran = true; });
  queue.ScheduleAt(200, [] {});
  queue.Cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.NextEventTime(), 200);

  MicrosecondCount at;
  queue.PopNext(&at)();
  EXPECT_EQ(at, 200);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue queue;
  queue.ScheduleAt(100, [] {});
  queue.Cancel(0);
  queue.Cancel(999);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, DoubleCancelCountsOnce) {
  EventQueue queue;
  const uint64_t id = queue.ScheduleAt(100, [] {});
  queue.ScheduleAt(200, [] {});
  queue.Cancel(id);
  queue.Cancel(id);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue queue;
  for (int i = 999; i >= 0; --i) {
    queue.ScheduleAt(i, [] {});
  }
  MicrosecondCount last = -1;
  while (!queue.Empty()) {
    MicrosecondCount at;
    queue.PopNext(&at);
    EXPECT_GT(at, last);
    last = at;
  }
  EXPECT_EQ(last, 999);
}

}  // namespace
}  // namespace pileus::sim
