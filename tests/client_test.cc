// Tests for PileusClient against scripted fake connections: target selection
// plumbing, subSLA-met determination (Figure 9 included), fixed strategies,
// fallback retry, parallel fan-out, and monitor/session bookkeeping.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "src/common/clock.h"
#include "src/core/client.h"

namespace pileus::core {
namespace {

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

class FakeConnection : public NodeConnection {
 public:
  using Script =
      std::function<TimedReply(const proto::Message&, MicrosecondCount)>;

  explicit FakeConnection(Script script) : script_(std::move(script)) {}

  TimedReply Call(const proto::Message& request,
                  MicrosecondCount timeout_us) override {
    ++calls_;
    last_timeout_us_ = timeout_us;
    return script_(request, timeout_us);
  }

  int calls() const { return calls_; }
  MicrosecondCount last_timeout_us() const { return last_timeout_us_; }

 private:
  Script script_;
  int calls_ = 0;
  MicrosecondCount last_timeout_us_ = -1;
};

// A GetReply TimedReply with the given RTT, high timestamp, and value ts.
TimedReply GetReplyWith(MicrosecondCount rtt, Timestamp high,
                        Timestamp value_ts, bool from_primary = false) {
  proto::GetReply reply;
  reply.found = true;
  reply.value = "value";
  reply.value_timestamp = value_ts;
  reply.high_timestamp = high;
  reply.served_by_primary = from_primary;
  return TimedReply(proto::Message(reply), rtt);
}

TimedReply PutReplyWith(MicrosecondCount rtt, Timestamp ts) {
  proto::PutReply reply;
  reply.timestamp = ts;
  reply.high_timestamp = ts;
  return TimedReply(proto::Message(reply), rtt);
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : clock_(SecondsToMicroseconds(1000)) {}

  // Builds a client over three fakes: primary / near / far.
  void Build(PileusClient::Options options,
             FakeConnection::Script primary_script,
             FakeConnection::Script near_script,
             FakeConnection::Script far_script) {
    auto primary = std::make_shared<FakeConnection>(primary_script);
    auto near = std::make_shared<FakeConnection>(near_script);
    auto far = std::make_shared<FakeConnection>(far_script);
    primary_ = primary.get();
    near_ = near.get();
    far_ = far.get();

    TableView view;
    view.table_name = "t";
    view.replicas = {Replica{"primary", true, primary},
                     Replica{"near", false, near},
                     Replica{"far", false, far}};
    view.primary_index = 0;
    ASSERT_TRUE(view.Validate().ok());
    client_ = std::make_unique<PileusClient>(std::move(view), &clock_,
                                             options, &fanout_);
  }

  // Teaches the client's monitor a stable picture of each node.
  void Teach(const std::string& node, MicrosecondCount rtt, Timestamp high) {
    for (int i = 0; i < 10; ++i) {
      client_->monitor().RecordLatency(node, rtt);
    }
    client_->monitor().RecordHighTimestamp(node, high);
  }

  Timestamp Now() const { return Timestamp{clock_.NowMicros(), 0}; }

  ManualClock clock_;
  ThreadFanoutCaller fanout_;
  std::unique_ptr<PileusClient> client_;
  FakeConnection* primary_ = nullptr;
  FakeConnection* near_ = nullptr;
  FakeConnection* far_ = nullptr;
};

TEST_F(ClientTest, TableViewValidation) {
  TableView view;
  EXPECT_FALSE(view.Validate().ok());  // No name, no replicas.
  view.table_name = "t";
  EXPECT_FALSE(view.Validate().ok());  // No replicas.
  auto conn = std::make_shared<FakeConnection>(
      [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  view.replicas = {Replica{"a", false, conn}};
  view.primary_index = 0;
  EXPECT_FALSE(view.Validate().ok());  // Primary not authoritative.
  view.replicas[0].authoritative = true;
  EXPECT_TRUE(view.Validate().ok());
  view.primary_index = 5;
  EXPECT_FALSE(view.Validate().ok());  // Out of range.
}

TEST_F(ClientTest, BeginSessionValidatesSla) {
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  EXPECT_FALSE(client_->BeginSession(Sla()).ok());
  EXPECT_TRUE(client_->BeginSession(ShoppingCartSla()).ok());
}

TEST_F(ClientTest, PutGoesToPrimaryAndUpdatesSession) {
  const Timestamp put_ts{clock_.NowMicros(), 7};
  Build(PileusClient::Options{},
        [&](const proto::Message& m, MicrosecondCount) {
          EXPECT_TRUE(std::holds_alternative<proto::PutRequest>(m));
          return PutReplyWith(2 * kMs, put_ts);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });

  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<PutResult> result = client_->Put(session, "cart", "item");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->timestamp, put_ts);
  EXPECT_EQ(primary_->calls(), 1);
  EXPECT_EQ(near_->calls(), 0);
  EXPECT_EQ(session.LastPutTimestamp("cart"), put_ts);
  // High-timestamp evidence recorded; latency not (record_put_latency off).
  EXPECT_EQ(client_->monitor().KnownHighTimestamp("primary"), put_ts);
  EXPECT_EQ(client_->monitor().MeanLatency("primary"), 0);
}

TEST_F(ClientTest, PutLatencyRecordedWhenEnabled) {
  PileusClient::Options options;
  options.record_put_latency = true;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return PutReplyWith(5 * kMs, Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());
  EXPECT_EQ(client_->monitor().MeanLatency("primary"), 5 * kMs);
}

TEST_F(ClientTest, PutErrorPropagates) {
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount) {
          proto::ErrorReply err;
          err.code = StatusCode::kNotPrimary;
          return TimedReply(proto::Message(err), kMs);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  EXPECT_EQ(client_->Put(session, "k", "v").status().code(),
            StatusCode::kNotPrimary);
  // Semantic errors are final: no blind retry against a node that answered.
  EXPECT_EQ(primary_->calls(), 1);
}

TEST_F(ClientTest, PutRetriesTransportFailureWithJitteredBackoff) {
  const Timestamp put_ts{clock_.NowMicros(), 1};
  std::vector<MicrosecondCount> sleeps;
  PileusClient::Options options;
  options.put_max_attempts = 3;
  options.put_backoff_initial_us = 100 * kMs;
  options.put_backoff_multiplier = 2.0;
  options.put_backoff_max_us = 150 * kMs;
  options.sleep_fn = [&sleeps](MicrosecondCount us) { sleeps.push_back(us); };
  int attempt = 0;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          if (++attempt < 3) {
            return TimedReply(
                Status(StatusCode::kUnavailable, "connection reset"), kMs);
          }
          return PutReplyWith(2 * kMs, put_ts);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });

  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<PutResult> result = client_->Put(session, "k", "v");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->timestamp, put_ts);
  EXPECT_EQ(primary_->calls(), 3);
  EXPECT_EQ(session.LastPutTimestamp("k"), put_ts);
  // One jittered wait before each retry: 50-100% of the nominal backoff,
  // with the second nominal capped by put_backoff_max_us.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_GE(sleeps[0], 50 * kMs);
  EXPECT_LE(sleeps[0], 100 * kMs);
  EXPECT_GE(sleeps[1], 75 * kMs);
  EXPECT_LE(sleeps[1], 150 * kMs);
  // Failed attempts fed the monitor; the final success repaired the streak
  // before the breaker (threshold 3) could trip.
  EXPECT_LT(client_->monitor().PNodeUp("primary"), 1.0);
  EXPECT_EQ(client_->monitor().breaker_trips(), 0u);
}

TEST_F(ClientTest, PutGivesUpAfterBoundedAttempts) {
  PileusClient::Options options;
  options.put_max_attempts = 4;
  options.sleep_fn = [](MicrosecondCount) {};
  Build(options,
        [](const proto::Message&, MicrosecondCount) {
          return TimedReply(Status(StatusCode::kTimeout, "silent drop"),
                            10 * kMs);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<PutResult> result = client_->Put(session, "k", "v");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(primary_->calls(), 4);  // Bounded: never an infinite retry loop.
  // Four consecutive transport failures tripped the primary's breaker.
  EXPECT_EQ(client_->monitor().breaker_trips(), 1u);
  EXPECT_DOUBLE_EQ(client_->monitor().PNodeUp("primary"), 0.0);
}

TEST_F(ClientTest, PutRetriesUnavailableErrorReply) {
  // A node that answers with kUnavailable (e.g. mid-restart) is retried just
  // like a transport failure; any other ErrorReply is final.
  const Timestamp put_ts{clock_.NowMicros(), 2};
  int attempt = 0;
  PileusClient::Options options;
  options.sleep_fn = [](MicrosecondCount) {};
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          if (++attempt == 1) {
            proto::ErrorReply err;
            err.code = StatusCode::kUnavailable;
            return TimedReply(proto::Message(err), kMs);
          }
          return PutReplyWith(kMs, put_ts);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());
  EXPECT_EQ(primary_->calls(), 2);
}

TEST_F(ClientTest, GetDeliversValueAndTopSubSla) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(2 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("near", 1 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->value, "value");
  EXPECT_EQ(result->outcome.met_rank, 0);
  EXPECT_DOUBLE_EQ(result->outcome.utility, 1.0);
  EXPECT_EQ(result->outcome.target_rank, 0);
  EXPECT_EQ(result->outcome.messages_sent, 1);
  // Session learned the read for monotonic guarantees.
  EXPECT_EQ(session.LastGetTimestamp("k"), result->timestamp);
}

TEST_F(ClientTest, SlowReplyMeetsOnlyLowerSubSla) {
  // Password SLA: 400 ms from the primary misses the 150 ms tier but meets
  // the 1 s strong tier.
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(400 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 100 * kMs, Now());
  Session session = client_->BeginSession(PasswordCheckingSla()).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.met_rank, 2);
  EXPECT_DOUBLE_EQ(result->outcome.utility, 0.25);
}

TEST_F(ClientTest, StaleReplyMeetsOnlyEventual) {
  const Timestamp stale{clock_.NowMicros() - SecondsToMicroseconds(100), 0};
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, stale, stale);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 400 * kMs, Now());  // Too slow for the 300 ms targets.
  Teach("near", 1 * kMs, stale);
  Teach("far", 300 * kMs, stale);
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  // A session Put newer than the near node's high timestamp.
  session.RecordPut("k", Timestamp{clock_.NowMicros(), 0});
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.met_rank, 1);  // Eventual tier.
  EXPECT_DOUBLE_EQ(result->outcome.utility, 0.5);
}

TEST_F(ClientTest, MetHigherThanTargetedFigure9) {
  // The monitor believes `near` is stale (target = subSLA 2), but the node
  // actually caught up: the reply's high timestamp proves read-my-writes.
  const Timestamp old_high{clock_.NowMicros() - SecondsToMicroseconds(60), 0};
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 350 * kMs, Now());  // Too slow for the 300 ms bound.
  Teach("near", 1 * kMs, old_high);
  Teach("far", 320 * kMs, old_high);
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  session.RecordPut("k", Timestamp{clock_.NowMicros() - 1000, 0});

  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.target_rank, 1);  // Expected only eventual.
  EXPECT_EQ(result->outcome.met_rank, 0);     // Actually got read-my-writes.
  EXPECT_DOUBLE_EQ(result->outcome.utility, 1.0);
}

TEST_F(ClientTest, NoSubSlaMetYieldsZeroUtility) {
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          // Responds, but far too slowly for both 300 ms tiers.
          return GetReplyWith(299 * kMs, Timestamp::Zero(), Timestamp::Zero());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 400 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 350 * kMs, Timestamp::Zero());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  session.RecordPut("k", Now());  // Makes rank 0 unmeetable by a stale node.
  // 299 ms meets the eventual tier though. Use a fresher put and higher rtt:
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.met_rank, 1);

  // Now an SLA whose tiers are all unmeetable by this reply.
  const Sla tight = Sla()
                        .Add(Guarantee::Eventual(), 100 * kMs, 1.0)
                        .Add(Guarantee::Eventual(), 200 * kMs, 0.5);
  Result<GetResult> missed = client_->Get(session, "k", tight);
  ASSERT_TRUE(missed.ok());
  EXPECT_EQ(missed->outcome.met_rank, -1);
  EXPECT_DOUBLE_EQ(missed->outcome.utility, 0.0);
  EXPECT_TRUE(missed->found);  // Data still returned.
}

TEST_F(ClientTest, FailedTargetFallsOverToAnotherReplica) {
  // The chosen node is dead; the availability retry serves the Get from the
  // next replica within the same call.
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) {
          return TimedReply(Status(StatusCode::kUnavailable, "dead"), 2 * kMs);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(40 * kMs, Now(), Now());
        });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 40 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(near_->calls(), 1);
  EXPECT_EQ(result->outcome.node_name, "far");
  EXPECT_TRUE(result->outcome.retried);
  EXPECT_EQ(result->outcome.messages_sent, 2);
  EXPECT_EQ(result->outcome.met_rank, 0);
  // The failure was recorded: the dead node's PNodeUp dropped.
  EXPECT_LT(client_->monitor().PNodeUp("near"), 1.0);
}

TEST_F(ClientTest, ErrorReplyAlsoTriggersFallover) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) {
          proto::ErrorReply err;
          err.code = StatusCode::kWrongNode;
          return TimedReply(proto::Message(err), 2 * kMs);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(40 * kMs, Now(), Now());
        });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 40 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, "far");
  // A WrongNode error means the node is up, just misconfigured: PNodeUp
  // stays intact.
  EXPECT_DOUBLE_EQ(client_->monitor().PNodeUp("near"), 1.0);
}

TEST_F(ClientTest, FalloverDisabledReturnsUnavailable) {
  PileusClient::Options options;
  options.retry_other_replicas_on_failure = false;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) {
          return TimedReply(Status(StatusCode::kUnavailable, "dead"), 2 * kMs);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(40 * kMs, Now(), Now());
        });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 40 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  EXPECT_EQ(client_->Get(session, "k").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(far_->calls(), 0);
}

TEST_F(ClientTest, AllRepliesFailingIsUnavailable) {
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount timeout) {
          return TimedReply(Status(StatusCode::kTimeout, "t"), timeout);
        },
        [](const proto::Message&, MicrosecondCount timeout) {
          return TimedReply(Status(StatusCode::kTimeout, "t"), timeout);
        },
        [](const proto::Message&, MicrosecondCount timeout) {
          return TimedReply(Status(StatusCode::kTimeout, "t"), timeout);
        });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<GetResult> result = client_->Get(session, "k");
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(ClientTest, GetTimeoutEqualsSlaMaxLatency) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(PasswordCheckingSla()).value();
  ASSERT_TRUE(client_->Get(session, "k").ok());
  EXPECT_EQ(primary_->last_timeout_us(), SecondsToMicroseconds(1));
}

TEST_F(ClientTest, FallbackRetryRecoversLowerSubSla) {
  PileusClient::Options options;
  options.fallback_to_primary_retry = true;
  const Sla sla = Sla()
                      .Add(Guarantee::Eventual(), 150 * kMs, 1.0)
                      .Add(Guarantee::Strong(), SecondsToMicroseconds(1),
                           0.5);
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          clock_.AdvanceMicros(150 * kMs);  // Wall time passes with the RTT.
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          // Local node suddenly slow: meets neither tier (not strong).
          clock_.AdvanceMicros(400 * kMs);
          return GetReplyWith(400 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("near", 1 * kMs, Now());
  Teach("primary", 150 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(sla).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcome.retried);
  EXPECT_EQ(result->outcome.met_rank, 1);
  EXPECT_EQ(result->outcome.node_name, "primary");
  EXPECT_EQ(result->outcome.messages_sent, 2);
  EXPECT_EQ(primary_->calls(), 1);
}

TEST_F(ClientTest, PrimaryStrategyAlwaysReadsPrimary) {
  PileusClient::Options options;
  options.strategy = ReadStrategy::kPrimary;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->Get(session, "k").ok());
  }
  EXPECT_EQ(primary_->calls(), 10);
  EXPECT_EQ(near_->calls(), 0);
}

TEST_F(ClientTest, RandomStrategySpreadsAcrossReplicas) {
  PileusClient::Options options;
  options.strategy = ReadStrategy::kRandom;
  auto reply_fast = [&](const proto::Message&, MicrosecondCount) {
    return GetReplyWith(1 * kMs, Now(), Now());
  };
  Build(options, reply_fast, reply_fast, reply_fast);
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(client_->Get(session, "k").ok());
  }
  EXPECT_GT(primary_->calls(), 10);
  EXPECT_GT(near_->calls(), 10);
  EXPECT_GT(far_->calls(), 10);
}

TEST_F(ClientTest, ClosestStrategyConvergesToFastestNode) {
  PileusClient::Options options;
  options.strategy = ReadStrategy::kClosest;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(300 * kMs, Now(), Now());
        });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->Get(session, "k").ok());
  }
  EXPECT_EQ(near_->calls(), 10);
}

TEST_F(ClientTest, ParallelFanoutCallsTiedCandidates) {
  PileusClient::Options options;
  options.parallel_fanout = 2;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(5 * kMs, Now(), Now());
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        });
  // near and far tie on expected utility for an eventual SLA.
  Teach("near", 5 * kMs, Now());
  Teach("far", 6 * kMs, Now());
  const Sla sla = Sla().Add(Guarantee::Eventual(), 300 * kMs, 1.0);
  Session session = client_->BeginSession(sla).value();
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.messages_sent, 2);
  EXPECT_EQ(near_->calls() + far_->calls() + primary_->calls(), 2);
  // The faster reply wins.
  EXPECT_EQ(result->outcome.rtt_us,
            result->outcome.node_name == "far" ? 1 * kMs : 5 * kMs);
}

TEST_F(ClientTest, ProbeNodeFeedsMonitor) {
  Build(PileusClient::Options{},
        [&](const proto::Message& m, MicrosecondCount) {
          EXPECT_TRUE(std::holds_alternative<proto::ProbeRequest>(m));
          proto::ProbeReply reply;
          reply.high_timestamp = Timestamp{777, 0};
          reply.is_primary = true;
          return TimedReply(proto::Message(reply), 3 * kMs);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  ASSERT_TRUE(client_->ProbeNode(0).ok());
  EXPECT_EQ(client_->monitor().KnownHighTimestamp("primary"),
            (Timestamp{777, 0}));
  EXPECT_EQ(client_->monitor().MeanLatency("primary"), 3 * kMs);
  EXPECT_FALSE(client_->ProbeNode(9).ok());
}

TEST_F(ClientTest, ProbeStaleNodesSkipsFreshOnes) {
  auto probe_reply = [&](const proto::Message&, MicrosecondCount) {
    proto::ProbeReply reply;
    reply.high_timestamp = Now();
    return TimedReply(proto::Message(reply), kMs);
  };
  Build(PileusClient::Options{}, probe_reply, probe_reply, probe_reply);
  // Make `near` freshly contacted; the others are unknown (stale).
  client_->monitor().RecordLatency("near", kMs);
  client_->ProbeStaleNodes();
  EXPECT_EQ(primary_->calls(), 1);
  EXPECT_EQ(near_->calls(), 0);
  EXPECT_EQ(far_->calls(), 1);
}

TimedReply RangeReplyWith(MicrosecondCount rtt, Timestamp high,
                          std::vector<std::string> keys,
                          bool from_primary = false) {
  proto::RangeReply reply;
  for (const std::string& key : keys) {
    proto::ObjectVersion v;
    v.key = key;
    v.value = "v:" + key;
    v.timestamp = high;
    reply.items.push_back(std::move(v));
  }
  reply.high_timestamp = high;
  reply.served_by_primary = from_primary;
  return TimedReply(proto::Message(reply), rtt);
}

TEST_F(ClientTest, DeleteGoesToPrimaryAndUpdatesSession) {
  const Timestamp tombstone_ts{clock_.NowMicros(), 9};
  Build(PileusClient::Options{},
        [&](const proto::Message& m, MicrosecondCount) {
          EXPECT_TRUE(std::holds_alternative<proto::DeleteRequest>(m));
          return PutReplyWith(2 * kMs, tombstone_ts);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<PutResult> result = client_->Delete(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->timestamp, tombstone_ts);
  EXPECT_EQ(primary_->calls(), 1);
  // The deletion is a session write: read-my-writes covers it.
  EXPECT_EQ(session.LastPutTimestamp("k"), tombstone_ts);
}

TEST_F(ClientTest, GetRangeDeliversItemsAndOutcome) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return RangeReplyWith(150 * kMs, Now(), {"a", "b"}, true);
        },
        [&](const proto::Message& m, MicrosecondCount) {
          EXPECT_TRUE(std::holds_alternative<proto::RangeRequest>(m));
          return RangeReplyWith(1 * kMs, Now(), {"a", "b", "c"});
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<RangeResult> result = client_->GetRange(session, "a", "z", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->items.size(), 3u);
  EXPECT_EQ(result->items[2].key, "c");
  EXPECT_EQ(result->outcome.met_rank, 0);
  EXPECT_EQ(result->outcome.node_name, "near");
  // The scan fed per-key monotonic state.
  EXPECT_GT(session.LastGetTimestamp("b"), Timestamp::Zero());
}

TEST_F(ClientTest, GetRangeScanGuaranteeUsesMaxWrite) {
  // After a Put anywhere, a read-my-writes scan needs a node whose high
  // timestamp covers it; a stale node only earns the eventual tier.
  const Timestamp stale{clock_.NowMicros() - SecondsToMicroseconds(100), 0};
  Build(PileusClient::Options{},
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          return RangeReplyWith(1 * kMs, stale, {"a"});
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 400 * kMs, Now());
  Teach("near", 1 * kMs, stale);
  Teach("far", 350 * kMs, stale);
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  session.RecordPut("zzz", Now());  // A write to a key outside the range.
  Result<RangeResult> result = client_->GetRange(session, "a", "m", 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.met_rank, 1);  // Only eventual.
}

TEST_F(ClientTest, GetRangeFailsOverToAnotherReplica) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return RangeReplyWith(150 * kMs, Now(), {"a"}, true);
        },
        [](const proto::Message&, MicrosecondCount) {
          return TimedReply(Status(StatusCode::kUnavailable, "dead"), 2 * kMs);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return RangeReplyWith(40 * kMs, Now(), {"a"});
        });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 40 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  Result<RangeResult> result = client_->GetRange(session, "", "", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->outcome.retried);
  EXPECT_NE(result->outcome.node_name, "near");
}

TEST_F(ClientTest, SharedMonitorIsVisibleAcrossClients) {
  // Section 6.1: co-located clients share monitoring state. Build a second
  // client over the same fakes that uses the first client's monitor.
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(150 * kMs, Now(), Now(), true);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());

  PileusClient::Options shared_options;
  shared_options.shared_monitor = &client_->monitor();
  TableView view;
  view.table_name = "t";
  view.replicas = client_->table().replicas;
  view.primary_index = 0;
  PileusClient second(std::move(view), &clock_, shared_options);
  EXPECT_EQ(&second.monitor(), &client_->monitor());

  // The second client starts warm: it knows `near` is fast without ever
  // having contacted anything.
  EXPECT_EQ(second.monitor().MeanLatency("near"), 1 * kMs);
  Session session = second.BeginSession(ShoppingCartSla()).value();
  Result<GetResult> result = second.Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, "near");

  // And its evidence flows back to the first client.
  const uint64_t samples = client_->monitor().samples_recorded();
  EXPECT_GT(samples, 0u);
}

TEST_F(ClientTest, MessageAccounting) {
  Build(PileusClient::Options{},
        [&](const proto::Message&, MicrosecondCount) {
          return PutReplyWith(kMs, Now());
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 400 * kMs, Now());
  Teach("near", kMs, Now());
  Teach("far", 350 * kMs, Now());
  Session session = client_->BeginSession(ShoppingCartSla()).value();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());
  ASSERT_TRUE(client_->Get(session, "other").ok());
  EXPECT_EQ(client_->puts_issued(), 1u);
  EXPECT_EQ(client_->gets_issued(), 1u);
  EXPECT_EQ(client_->messages_sent(), 2u);
}

// --- The consistency-aware client cache (DESIGN.md "Client cache") ---

class ClientCacheTest : public ClientTest {
 protected:
  Sla EventualSla() {
    return Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  }
  Sla RmwSla() {
    return Sla().Add(Guarantee::ReadMyWrites(), SecondsToMicroseconds(10),
                     1.0);
  }

  cache::ClientCache cache_;
};

TEST_F(ClientCacheTest, ReadThroughFillThenLocalServe) {
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(EventualSla()).value();

  // First Get fills the cache over the network.
  Result<GetResult> first = client_->Get(session, "k");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->outcome.from_cache);
  EXPECT_EQ(near_->calls(), 1);

  // Second Get of the same key serves locally: no network traffic.
  Result<GetResult> second = client_->Get(session, "k");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->outcome.from_cache);
  EXPECT_EQ(second->value, "value");
  EXPECT_EQ(second->timestamp, first->timestamp);
  EXPECT_EQ(second->outcome.node_name, kCacheNodeName);
  EXPECT_EQ(second->outcome.node_index, -1);
  EXPECT_EQ(second->outcome.messages_sent, 0);
  EXPECT_EQ(second->outcome.met_rank, 0);
  EXPECT_DOUBLE_EQ(second->outcome.utility, 1.0);
  EXPECT_EQ(near_->calls(), 1);
  EXPECT_EQ(client_->cache_serves(), 1u);
}

TEST_F(ClientCacheTest, WriteThroughServesOwnWriteUnderReadMyWrites) {
  const Timestamp put_ts{clock_.NowMicros(), 3};
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return PutReplyWith(2 * kMs, put_ts);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Session session = client_->BeginSession(RmwSla()).value();
  ASSERT_TRUE(client_->Put(session, "k", "v").ok());

  // The acked Put filled the cache with timestamp == valid_through == the
  // assigned timestamp, which exactly meets the read-my-writes floor: the
  // Get never touches the network (the fakes would error if asked).
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->outcome.from_cache);
  EXPECT_EQ(result->value, "v");
  EXPECT_EQ(result->timestamp, put_ts);
  EXPECT_EQ(result->outcome.met_rank, 0);
  EXPECT_EQ(primary_->calls(), 1);  // Just the Put.
}

TEST_F(ClientCacheTest, NotFoundReplyIsCachedAsTombstone) {
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          proto::GetReply reply;
          reply.found = false;
          reply.value_timestamp = Timestamp::Zero();
          reply.high_timestamp = Now();
          return TimedReply(proto::Message(reply), 1 * kMs);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(EventualSla()).value();

  ASSERT_TRUE(client_->Get(session, "ghost").ok());
  EXPECT_EQ(near_->calls(), 1);
  // The negative entry answers the repeat locally.
  Result<GetResult> again = client_->Get(session, "ghost");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->found);
  EXPECT_TRUE(again->outcome.from_cache);
  EXPECT_EQ(near_->calls(), 1);
}

TEST_F(ClientCacheTest, CacheServedGetEmitsAuditableOpRecord) {
  struct Capture : OpObserver {
    std::vector<OpRecord> records;
    void OnOp(const OpRecord& record) override { records.push_back(record); }
  } capture;
  PileusClient::Options options;
  options.cache = &cache_;
  options.op_observer = &capture;
  Build(options,
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(EventualSla()).value();
  ASSERT_TRUE(client_->Get(session, "k").ok());
  ASSERT_TRUE(client_->Get(session, "k").ok());

  ASSERT_EQ(capture.records.size(), 2u);
  const OpRecord& cached = capture.records[1];
  EXPECT_EQ(cached.op, AuditOp::kGet);
  EXPECT_TRUE(cached.ok);
  EXPECT_EQ(cached.node, kCacheNodeName);
  EXPECT_TRUE(cached.found);
  EXPECT_EQ(cached.value, "value");
  // The claim is fully auditable: the cached version plus its
  // valid_through bound, and the subSLA the local serve met.
  EXPECT_EQ(cached.value_timestamp, capture.records[0].value_timestamp);
  EXPECT_EQ(cached.high_timestamp, capture.records[0].high_timestamp);
  EXPECT_GE(cached.claimed_met_rank, 0);
  EXPECT_FALSE(cached.from_primary);
}

TEST_F(ClientCacheTest, SessionFloorAboveEntrySendsGetBackToNetwork) {
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(RmwSla()).value();
  ASSERT_TRUE(client_->Get(session, "k").ok());  // Fill (floor still Zero).
  EXPECT_EQ(near_->calls(), 1);

  // A newer write to the key raises the read-my-writes floor above the
  // cached entry's valid_through: the cache cannot honor the guarantee, so
  // the Get pays the round trip again (and refreshes the entry).
  session.RecordPut("k", Timestamp{clock_.NowMicros() + 100, 0});
  clock_.AdvanceMicros(200);
  Result<GetResult> result = client_->Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->outcome.from_cache);
  EXPECT_EQ(near_->calls(), 2);
}

TEST_F(ClientCacheTest, HandoffFloorDropsEntriesFromBeforeTheMove) {
  const Timestamp put_ts{clock_.NowMicros() + 500, 1};
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return PutReplyWith(2 * kMs, put_ts);
        },
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(1 * kMs, Now(), Now());
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 150 * kMs, Now());
  Teach("near", 1 * kMs, Now());
  Teach("far", 300 * kMs, Now());
  Session session = client_->BeginSession(EventualSla()).value();

  // Fill "a" read-through: its valid_through is the secondary's high
  // timestamp, which predates the upcoming write.
  ASSERT_TRUE(client_->Get(session, "a").ok());
  clock_.AdvanceMicros(400);
  ASSERT_TRUE(client_->Put(session, "b", "v").ok());

  // Without a hand-off the entry still serves (eventual floor is Zero).
  ASSERT_TRUE(client_->Get(session, "a")->outcome.from_cache);

  // Serialized hand-off: Deserialize conservatively floors the cache at
  // everything this session has seen or written, so the pre-move entry is
  // no longer trusted and the Get goes back to the network.
  Session moved = Session::Deserialize(session.Serialize()).value();
  EXPECT_EQ(moved.cache_floor(), put_ts);
  const int fills_before = near_->calls();
  Result<GetResult> result = client_->Get(moved, "a");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->outcome.from_cache);
  EXPECT_EQ(near_->calls(), fills_before + 1);
}

TEST_F(ClientCacheTest, StrongSlaBypassesCache) {
  PileusClient::Options options;
  options.cache = &cache_;
  Build(options,
        [&](const proto::Message&, MicrosecondCount) {
          return GetReplyWith(2 * kMs, Now(), Now(), true);
        },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); },
        [](const proto::Message&, MicrosecondCount) { return TimedReply(); });
  Teach("primary", 2 * kMs, Now());
  const Sla strong =
      Sla().Add(Guarantee::Strong(), SecondsToMicroseconds(10), 1.0);
  Session session = client_->BeginSession(strong).value();
  ASSERT_TRUE(client_->Get(session, "k").ok());
  Result<GetResult> again = client_->Get(session, "k");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->outcome.from_cache);
  EXPECT_EQ(primary_->calls(), 2);  // Both reads hit the primary.
}

}  // namespace
}  // namespace pileus::core
