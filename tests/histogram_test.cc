// Tests for the log-bucketed latency histogram.

#include <gtest/gtest.h>

#include "src/util/histogram.h"

namespace pileus {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_DOUBLE_EQ(h.Mean(), 1234.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, QuantilesApproximateWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(i);
  }
  // Buckets are ~4.5% wide, so allow 10% relative error.
  EXPECT_NEAR(h.Quantile(0.5), 5000, 500);
  EXPECT_NEAR(h.Quantile(0.9), 9000, 900);
  EXPECT_NEAR(h.Quantile(0.99), 9900, 990);
}

TEST(HistogramTest, ZeroAndNegativeValuesLandInFirstBucket) {
  Histogram h;
  h.Record(0);
  h.Record(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.Quantile(0.0), -5);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(INT64_MAX / 2);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), INT64_MAX / 2);
  EXPECT_GE(h.Quantile(1.0), 1);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  b.Record(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 40);
  EXPECT_DOUBLE_EQ(a.Mean(), 25.0);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a, empty;
  a.Record(10);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 10);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SummaryContainsKeyFields) {
  Histogram h;
  h.Record(100);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
  EXPECT_NE(summary.find("mean=100"), std::string::npos);
}

TEST(HistogramTest, ForEachNonEmptyBucketCoversAllSamples) {
  Histogram h;
  h.Record(0);
  h.Record(5);
  h.Record(5);
  h.Record(1000000);
  uint64_t total = 0;
  int64_t last_hi = -1;
  h.ForEachNonEmptyBucket([&](int64_t lo, int64_t hi, uint64_t count) {
    EXPECT_GT(lo, last_hi - 1);  // Ascending, non-overlapping.
    EXPECT_GE(hi, lo);
    total += count;
    last_hi = hi;
  });
  EXPECT_EQ(total, 4u);
  // The final visited bucket's exclusive upper bound covers the max sample.
  EXPECT_GT(last_hi, h.max() - 1);
}

TEST(HistogramTest, BucketsJsonListsNonEmptyBuckets) {
  Histogram empty;
  EXPECT_EQ(empty.BucketsJson(), "[]");

  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.BucketsJson(), "[{\"lo\":0,\"hi\":1,\"count\":2}]");

  h.Record(500);
  const std::string json = h.BucketsJson();
  EXPECT_EQ(json.find("[{\"lo\":0,\"hi\":1,\"count\":2},{\"lo\":"), 0u);
  EXPECT_NE(json.find("\"count\":1}]"), std::string::npos);
}

}  // namespace
}  // namespace pileus
