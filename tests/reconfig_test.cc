// Tests for the reconfiguration subsystem (paper Section 6.2): config
// epochs and their codec, the lease-based failover coordinator's detection
// and promotion logic, and the SLA-driven placement policy built on top.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/monitor.h"
#include "src/core/sla.h"
#include "src/experiments/placement.h"
#include "src/reconfig/config_epoch.h"
#include "src/reconfig/coordinator.h"
#include "src/util/codec.h"

namespace pileus::reconfig {
namespace {

ConfigEpoch MakeConfig() {
  ConfigEpoch config;
  config.epoch = 3;
  config.primary = "England";
  config.members = {"England", "US", "India"};
  config.sync_members = {"US"};
  return config;
}

TEST(ConfigEpochTest, Membership) {
  const ConfigEpoch config = MakeConfig();
  EXPECT_TRUE(config.IsMember("England"));
  EXPECT_TRUE(config.IsMember("India"));
  EXPECT_FALSE(config.IsMember("China"));
  EXPECT_TRUE(config.IsSyncMember("US"));
  EXPECT_FALSE(config.IsSyncMember("England"));
}

TEST(ConfigEpochTest, CodecRoundtrip) {
  const ConfigEpoch config = MakeConfig();
  Encoder enc;
  EncodeConfigEpoch(enc, config);

  Decoder dec(enc.buffer());
  ConfigEpoch decoded;
  ASSERT_TRUE(DecodeConfigEpoch(dec, &decoded).ok());
  EXPECT_EQ(decoded, config);
}

TEST(ConfigEpochTest, CodecRoundtripEmpty) {
  Encoder enc;
  EncodeConfigEpoch(enc, ConfigEpoch{});

  Decoder dec(enc.buffer());
  ConfigEpoch decoded;
  ASSERT_TRUE(DecodeConfigEpoch(dec, &decoded).ok());
  EXPECT_EQ(decoded, ConfigEpoch{});
}

TEST(ConfigEpochTest, DecodeTruncatedFails) {
  Encoder enc;
  EncodeConfigEpoch(enc, MakeConfig());
  const std::string& full = enc.buffer();

  Decoder dec(std::string_view(full).substr(0, full.size() / 2));
  ConfigEpoch decoded;
  EXPECT_FALSE(DecodeConfigEpoch(dec, &decoded).ok());
}

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : coordinator_(MakeConfig(), MakeOptions()) {}

  static FailoverCoordinator::Options MakeOptions() {
    FailoverCoordinator::Options options;
    options.heartbeat_period_us = MillisecondsToMicroseconds(500);
    options.missed_heartbeats_to_fail = 3;
    options.sync_member_target = 1;
    return options;
  }

  // One heartbeat round at time `now`: the primary acks unless listed dead,
  // the secondaries ack with the given durable timestamps.
  void Round(MicrosecondCount now, bool primary_alive,
             const Timestamp& us_durable, const Timestamp& india_durable) {
    if (primary_alive) {
      coordinator_.OnHeartbeatAck("England", now, Timestamp{900, 0});
    } else {
      coordinator_.OnHeartbeatMiss("England", now);
    }
    coordinator_.OnHeartbeatAck("US", now, us_durable);
    coordinator_.OnHeartbeatAck("India", now, india_durable);
  }

  FailoverCoordinator coordinator_;
};

TEST_F(CoordinatorTest, LeaseDurationIsDetectionThreshold) {
  EXPECT_EQ(MakeOptions().lease_duration_us(),
            3 * MillisecondsToMicroseconds(500));
}

TEST_F(CoordinatorTest, HealthyPrimaryProducesNoPlan) {
  for (int i = 0; i < 10; ++i) {
    Round(i * 500000, /*primary_alive=*/true, Timestamp{500, 0},
          Timestamp{400, 0});
    EXPECT_FALSE(coordinator_.MaybePlanFailover(i * 500000).has_value());
  }
}

TEST_F(CoordinatorTest, NoPlanBelowMissThreshold) {
  Round(0, true, Timestamp{500, 0}, Timestamp{400, 0});
  Round(500000, false, Timestamp{500, 0}, Timestamp{400, 0});
  Round(1000000, false, Timestamp{500, 0}, Timestamp{400, 0});
  EXPECT_FALSE(coordinator_.MaybePlanFailover(1000000).has_value());
}

TEST_F(CoordinatorTest, PromotesHighestDurableMember) {
  Round(0, true, Timestamp{500, 0}, Timestamp{700, 0});
  for (int i = 1; i <= 3; ++i) {
    Round(i * 500000, /*primary_alive=*/false, Timestamp{500, 0},
          Timestamp{700, 0});
  }
  auto plan = coordinator_.MaybePlanFailover(1500000);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->next.primary, "India");  // Highest durable timestamp wins.
  EXPECT_EQ(plan->next.epoch, MakeConfig().epoch + 1);
  EXPECT_EQ(plan->old_primary, "England");
  EXPECT_EQ(plan->promoted_from, (Timestamp{700, 0}));
  EXPECT_TRUE(plan->next.IsMember("England"));  // Membership survives.
}

TEST_F(CoordinatorTest, AdoptPlanCommitsAndResetsDetection) {
  for (int i = 1; i <= 3; ++i) {
    Round(i * 500000, /*primary_alive=*/false, Timestamp{800, 0},
          Timestamp{700, 0});
  }
  auto plan = coordinator_.MaybePlanFailover(1500000);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->next.primary, "US");

  coordinator_.AdoptPlan(*plan);
  EXPECT_EQ(coordinator_.config(), plan->next);
  EXPECT_EQ(coordinator_.failovers(), 1u);
  // Detection starts fresh: the new primary has not missed anything yet.
  EXPECT_FALSE(coordinator_.MaybePlanFailover(1500000).has_value());
}

TEST_F(CoordinatorTest, PlanMoveValidatesTarget) {
  EXPECT_FALSE(coordinator_.PlanMove("China").has_value());    // Not a member.
  EXPECT_FALSE(coordinator_.PlanMove("England").has_value());  // Already it.

  Round(0, true, Timestamp{500, 0}, Timestamp{400, 0});
  auto plan = coordinator_.PlanMove("US");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->next.primary, "US");
  EXPECT_EQ(plan->next.epoch, MakeConfig().epoch + 1);
  EXPECT_EQ(plan->old_primary, "England");
}

}  // namespace
}  // namespace pileus::reconfig

namespace pileus::experiments {
namespace {

using core::Guarantee;
using core::Monitor;
using core::Sla;

// Strong nearby is worth 1.0; the eventual fallback anywhere fast is 0.5.
Sla PlacementSla() {
  return Sla()
      .Add(Guarantee::Strong(), MillisecondsToMicroseconds(50), 1.0)
      .Add(Guarantee::Eventual(), MillisecondsToMicroseconds(50), 0.5);
}

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : clock_(SecondsToMicroseconds(1000)),
        near_a_(&clock_),
        near_b_(&clock_) {
    // near_a_ measures A as local and B as far; near_b_ the reverse. Both
    // see every replica fully caught up (high timestamps are irrelevant to
    // the fresh-session floors but recorded for realism).
    for (int i = 0; i < 8; ++i) {
      near_a_.RecordLatency("A", MillisecondsToMicroseconds(5));
      near_a_.RecordLatency("B", MillisecondsToMicroseconds(200));
      near_b_.RecordLatency("A", MillisecondsToMicroseconds(200));
      near_b_.RecordLatency("B", MillisecondsToMicroseconds(5));
    }
  }

  ManualClock clock_;
  Monitor near_a_;
  Monitor near_b_;
};

TEST_F(PlacementTest, PrimaryFollowsTheOnlyClient) {
  const std::vector<std::string> sites = {"A", "B"};
  const std::vector<PlacementClient> clients = {
      {.monitor = &near_a_, .sla = PlacementSla()}};

  const auto ranked = RankPrimaryPlacements(sites, sites, clients);
  ASSERT_EQ(ranked.size(), 2u);
  // Primary at A: strong served locally, utility 1.0. Primary at B: strong
  // is 200 ms away, so the client falls back to eventual at A, utility 0.5.
  EXPECT_EQ(ranked[0].site, "A");
  EXPECT_DOUBLE_EQ(ranked[0].utility, 1.0);
  EXPECT_EQ(ranked[1].site, "B");
  EXPECT_DOUBLE_EQ(ranked[1].utility, 0.5);
  EXPECT_EQ(RecommendPrimaryPlacement(sites, sites, clients), "A");
}

TEST_F(PlacementTest, WeightedPopulationDecides) {
  const std::vector<std::string> sites = {"A", "B"};
  const std::vector<PlacementClient> heavier_b = {
      {.monitor = &near_a_, .sla = PlacementSla(), .weight = 1.0},
      {.monitor = &near_b_, .sla = PlacementSla(), .weight = 3.0}};

  const auto ranked = RankPrimaryPlacements(sites, sites, heavier_b);
  ASSERT_EQ(ranked.size(), 2u);
  // Placement at B: (1*0.5 + 3*1.0) / 4 = 0.875 beats A's 0.625.
  EXPECT_EQ(ranked[0].site, "B");
  EXPECT_DOUBLE_EQ(ranked[0].utility, 0.875);
  EXPECT_DOUBLE_EQ(ranked[1].utility, 0.625);
  EXPECT_EQ(RecommendPrimaryPlacement(sites, sites, heavier_b), "B");
}

TEST_F(PlacementTest, BalancedPopulationTiesKeepCandidateOrder) {
  const std::vector<std::string> sites = {"B", "A"};
  const std::vector<PlacementClient> balanced = {
      {.monitor = &near_a_, .sla = PlacementSla()},
      {.monitor = &near_b_, .sla = PlacementSla()}};

  const auto ranked = RankPrimaryPlacements(sites, sites, balanced);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_DOUBLE_EQ(ranked[0].utility, ranked[1].utility);
  // Stable sort: the incumbent-first candidate order survives a tie.
  EXPECT_EQ(ranked[0].site, "B");
}

TEST_F(PlacementTest, EmptyInputs) {
  EXPECT_TRUE(RankPrimaryPlacements({}, {"A"}, {}).empty());
  EXPECT_EQ(RecommendPrimaryPlacement({}, {"A"}, {}), "");
  // Clients with no monitor or zero weight are skipped, not crashed on.
  const std::vector<PlacementClient> degenerate = {
      {.monitor = nullptr, .sla = PlacementSla()},
      {.monitor = &near_a_, .sla = PlacementSla(), .weight = 0.0}};
  const auto ranked = RankPrimaryPlacements({"A"}, {"A"}, degenerate);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_DOUBLE_EQ(ranked[0].utility, 0.0);
}

}  // namespace
}  // namespace pileus::experiments
