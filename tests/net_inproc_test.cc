// Tests for the in-process transport.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/net/inproc.h"
#include "src/storage/storage_node.h"

namespace pileus::net {
namespace {

proto::Message Echo(const proto::Message& request) {
  if (const auto* get = std::get_if<proto::GetRequest>(&request)) {
    proto::GetReply reply;
    reply.found = true;
    reply.value = "echo:" + get->key;
    return reply;
  }
  proto::ErrorReply err;
  err.code = StatusCode::kInvalidArgument;
  return err;
}

TEST(InProcTest, CallRoundTrip) {
  InProcNetwork network;
  network.RegisterEndpoint("node", Echo);
  auto channel = network.Connect("node", 0);

  proto::GetRequest request;
  request.table = "t";
  request.key = "k";
  Result<proto::Message> reply = channel->Call(request, 0);
  ASSERT_TRUE(reply.ok());
  const auto* get_reply = std::get_if<proto::GetReply>(&reply.value());
  ASSERT_NE(get_reply, nullptr);
  EXPECT_EQ(get_reply->value, "echo:k");
}

TEST(InProcTest, UnknownEndpointIsUnavailable) {
  InProcNetwork network;
  auto channel = network.Connect("missing", 0);
  Result<proto::Message> reply = channel->Call(proto::GetRequest{}, 0);
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(InProcTest, LateRegistrationWorks) {
  InProcNetwork network;
  auto channel = network.Connect("node", 0);
  EXPECT_FALSE(channel->Call(proto::GetRequest{}, 0).ok());
  network.RegisterEndpoint("node", Echo);
  EXPECT_TRUE(channel->Call(proto::GetRequest{}, 0).ok());
}

TEST(InProcTest, UnregisterDisconnects) {
  InProcNetwork network;
  network.RegisterEndpoint("node", Echo);
  auto channel = network.Connect("node", 0);
  EXPECT_TRUE(channel->Call(proto::GetRequest{}, 0).ok());
  network.Unregister("node");
  EXPECT_EQ(channel->Call(proto::GetRequest{}, 0).status().code(),
            StatusCode::kUnavailable);
}

TEST(InProcTest, DelayIsApplied) {
  InProcNetwork network;
  network.RegisterEndpoint("node", Echo);
  auto channel = network.Connect("node", MillisecondsToMicroseconds(10));
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  ASSERT_TRUE(channel->Call(proto::GetRequest{}, 0).ok());
  const MicrosecondCount elapsed = RealClock::Instance()->NowMicros() - start;
  EXPECT_GE(elapsed, MillisecondsToMicroseconds(20));  // Two one-way legs.
}

TEST(InProcTest, DeadlineShorterThanDelayTimesOut) {
  InProcNetwork network;
  network.RegisterEndpoint("node", Echo);
  auto channel = network.Connect("node", MillisecondsToMicroseconds(50));
  Result<proto::Message> reply =
      channel->Call(proto::GetRequest{}, MillisecondsToMicroseconds(10));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
}

TEST(InProcTest, SharedDelayChangesTakeEffect) {
  InProcNetwork network;
  network.RegisterEndpoint("node", Echo);
  auto delay = std::make_shared<InProcNetwork::SharedDelay>(
      MillisecondsToMicroseconds(50));
  auto channel = network.ConnectShared("node", delay);
  EXPECT_EQ(channel->Call(proto::GetRequest{}, MillisecondsToMicroseconds(10))
                .status()
                .code(),
            StatusCode::kTimeout);
  delay->Set(0);
  EXPECT_TRUE(
      channel->Call(proto::GetRequest{}, MillisecondsToMicroseconds(10)).ok());
}

TEST(InProcTest, RoundTripsThroughRealWireFormat) {
  // The inproc transport encodes and decodes through the codec, so a handler
  // sees a faithfully reconstructed request.
  InProcNetwork network;
  proto::PutRequest seen;
  network.RegisterEndpoint("node", [&](const proto::Message& request) {
    seen = std::get<proto::PutRequest>(request);
    return proto::Message(proto::PutReply{});
  });
  auto channel = network.Connect("node", 0);
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = std::string("\x00\x01\x02", 3);
  ASSERT_TRUE(channel->Call(put, 0).ok());
  EXPECT_EQ(seen.value, put.value);
}

TEST(InProcTest, WorksAgainstRealStorageNode) {
  ManualClock clock(1000);
  storage::StorageNode node("n", "s", &clock);
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());

  InProcNetwork network;
  network.RegisterEndpoint("n", [&](const proto::Message& request) {
    return node.Handle(request);
  });
  auto channel = network.Connect("n", 0);

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  ASSERT_TRUE(channel->Call(put, 0).ok());

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  Result<proto::Message> reply = channel->Call(get, 0);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(std::get<proto::GetReply>(reply.value()).found);
}

}  // namespace
}  // namespace pileus::net
