// Tests for the multi-version tablet store.

#include <gtest/gtest.h>

#include "src/storage/versioned_store.h"

namespace pileus::storage {
namespace {

proto::ObjectVersion V(const std::string& key, const std::string& value,
                       int64_t ts, uint32_t seq = 0) {
  proto::ObjectVersion version;
  version.key = key;
  version.value = value;
  version.timestamp = Timestamp{ts, seq};
  return version;
}

TEST(VersionedStoreTest, GetLatestOnEmptyStore) {
  VersionedStore store;
  EXPECT_FALSE(store.GetLatest("missing").has_value());
  EXPECT_EQ(store.key_count(), 0u);
}

TEST(VersionedStoreTest, ApplyAndGetLatest) {
  VersionedStore store;
  EXPECT_TRUE(store.Apply(V("k", "v1", 10)));
  auto latest = store.GetLatest("k");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value, "v1");
  EXPECT_EQ(latest->timestamp, (Timestamp{10, 0}));
}

TEST(VersionedStoreTest, NewerVersionReplacesLatest) {
  VersionedStore store;
  store.Apply(V("k", "v1", 10));
  store.Apply(V("k", "v2", 20));
  EXPECT_EQ(store.GetLatest("k")->value, "v2");
}

TEST(VersionedStoreTest, StaleApplyIsIgnored) {
  VersionedStore store;
  store.Apply(V("k", "v2", 20));
  EXPECT_FALSE(store.Apply(V("k", "v1", 10)));
  EXPECT_EQ(store.GetLatest("k")->value, "v2");
}

TEST(VersionedStoreTest, DuplicateApplyIsIdempotent) {
  VersionedStore store;
  store.Apply(V("k", "v1", 10));
  EXPECT_TRUE(store.Apply(V("k", "v1", 10)));
  EXPECT_EQ(store.GetLatest("k")->value, "v1");
}

TEST(VersionedStoreTest, GetAtFindsHistoricalVersion) {
  VersionedStore store;
  store.Apply(V("k", "v1", 10));
  store.Apply(V("k", "v2", 20));
  store.Apply(V("k", "v3", 30));

  auto result = store.GetAt("k", Timestamp{25, 0});
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.snapshot_available);
  EXPECT_EQ(result.version.value, "v2");

  result = store.GetAt("k", Timestamp{30, 0});  // Inclusive.
  EXPECT_EQ(result.version.value, "v3");
}

TEST(VersionedStoreTest, GetAtBeforeFirstVersion) {
  VersionedStore store;
  store.Apply(V("k", "v1", 10));
  auto result = store.GetAt("k", Timestamp{5, 0});
  EXPECT_FALSE(result.found);
  // Nothing was pruned, so the snapshot is still answerable: the key simply
  // did not exist then.
  EXPECT_TRUE(result.snapshot_available);
}

TEST(VersionedStoreTest, GetAtUnknownKey) {
  VersionedStore store;
  auto result = store.GetAt("missing", Timestamp{100, 0});
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.snapshot_available);
}

TEST(VersionedStoreTest, HistoryLimitPrunesAndMarksUnavailable) {
  VersionedStore::Options options;
  options.history_limit = 2;
  VersionedStore store(options);
  store.Apply(V("k", "v1", 10));
  store.Apply(V("k", "v2", 20));
  store.Apply(V("k", "v3", 30));  // Prunes v1.

  EXPECT_EQ(store.GetLatest("k")->value, "v3");
  // v2 still reachable.
  EXPECT_EQ(store.GetAt("k", Timestamp{20, 0}).version.value, "v2");
  // Snapshot at 15 needed v1, which was pruned.
  auto result = store.GetAt("k", Timestamp{15, 0});
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.snapshot_available);
}

TEST(VersionedStoreTest, HistoryLimitOneMatchesPaperPrototype) {
  VersionedStore::Options options;
  options.history_limit = 1;
  VersionedStore store(options);
  store.Apply(V("k", "v1", 10));
  store.Apply(V("k", "v2", 20));
  EXPECT_EQ(store.GetLatest("k")->value, "v2");
  auto result = store.GetAt("k", Timestamp{15, 0});
  EXPECT_FALSE(result.snapshot_available);
}

TEST(VersionedStoreTest, LatestVersionsAfterSortsByTimestamp) {
  VersionedStore store;
  store.Apply(V("b", "vb", 30));
  store.Apply(V("a", "va", 10));
  store.Apply(V("c", "vc", 20));

  auto versions = store.LatestVersionsAfter(Timestamp{5, 0});
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].key, "a");
  EXPECT_EQ(versions[1].key, "c");
  EXPECT_EQ(versions[2].key, "b");
}

TEST(VersionedStoreTest, LatestVersionsAfterFiltersByTimestamp) {
  VersionedStore store;
  store.Apply(V("a", "va", 10));
  store.Apply(V("b", "vb", 30));
  auto versions = store.LatestVersionsAfter(Timestamp{10, 0});
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].key, "b");
}

TEST(VersionedStoreTest, LatestVersionsAfterTieBreaksByKey) {
  VersionedStore store;
  store.Apply(V("z", "v", 10));
  store.Apply(V("a", "v", 10));
  auto versions = store.LatestVersionsAfter(Timestamp::Zero());
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].key, "a");
  EXPECT_EQ(versions[1].key, "z");
}

TEST(VersionedStoreTest, ScanRangeReturnsKeyOrder) {
  VersionedStore store;
  store.Apply(V("delta", "4", 40));
  store.Apply(V("alpha", "1", 10));
  store.Apply(V("charlie", "3", 30));
  store.Apply(V("bravo", "2", 20));

  bool truncated = true;
  auto items = store.ScanRange("", "", 0, &truncated);
  ASSERT_EQ(items.size(), 4u);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(items[0].key, "alpha");
  EXPECT_EQ(items[3].key, "delta");
}

TEST(VersionedStoreTest, ScanRangeHonorsBounds) {
  VersionedStore store;
  for (const char* key : {"a", "b", "c", "d", "e"}) {
    store.Apply(V(key, "v", 10));
  }
  bool truncated = false;
  auto items = store.ScanRange("b", "d", 0, &truncated);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].key, "b");  // Inclusive begin.
  EXPECT_EQ(items[1].key, "c");  // Exclusive end.

  items = store.ScanRange("c", "", 0, &truncated);
  ASSERT_EQ(items.size(), 3u);  // c, d, e: unbounded end.
}

TEST(VersionedStoreTest, ScanRangeLimitTruncates) {
  VersionedStore store;
  for (int i = 0; i < 10; ++i) {
    store.Apply(V("k" + std::to_string(i), "v", 10 + i));
  }
  bool truncated = false;
  auto items = store.ScanRange("", "", 3, &truncated);
  EXPECT_EQ(items.size(), 3u);
  EXPECT_TRUE(truncated);

  items = store.ScanRange("", "", 10, &truncated);
  EXPECT_EQ(items.size(), 10u);
  EXPECT_FALSE(truncated);
}

TEST(VersionedStoreTest, ScanRangeReturnsLatestVersions) {
  VersionedStore store;
  store.Apply(V("k", "old", 10));
  store.Apply(V("k", "new", 20));
  bool truncated = false;
  auto items = store.ScanRange("", "", 0, &truncated);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].value, "new");
}

TEST(VersionedStoreTest, CollectTombstonesDropsOnlyOldDeletes) {
  VersionedStore store;
  store.Apply(V("live", "v", 10));
  proto::ObjectVersion old_tombstone = V("old-dead", "", 20);
  old_tombstone.is_tombstone = true;
  store.Apply(old_tombstone);
  proto::ObjectVersion fresh_tombstone = V("fresh-dead", "", 90);
  fresh_tombstone.is_tombstone = true;
  store.Apply(fresh_tombstone);

  EXPECT_EQ(store.CollectTombstones(Timestamp{50, 0}), 1u);
  EXPECT_EQ(store.key_count(), 2u);
  EXPECT_FALSE(store.GetLatest("old-dead").has_value());  // Collected.
  ASSERT_TRUE(store.GetLatest("fresh-dead").has_value());  // Kept.
  EXPECT_TRUE(store.GetLatest("fresh-dead")->is_tombstone);
  EXPECT_TRUE(store.GetLatest("live").has_value());
}

TEST(VersionedStoreTest, CollectedTombstoneStillReadsNotFound) {
  VersionedStore store;
  store.Apply(V("k", "v", 10));
  proto::ObjectVersion tombstone = V("k", "", 20);
  tombstone.is_tombstone = true;
  store.Apply(tombstone);
  store.CollectTombstones(Timestamp{100, 0});
  EXPECT_FALSE(store.GetLatest("k").has_value());
  bool truncated = false;
  EXPECT_TRUE(store.ScanRange("", "", 0, &truncated).empty());
}

TEST(VersionedStoreTest, ManyKeysIndependentChains) {
  VersionedStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Apply(V("key" + std::to_string(i), "v", 100 + i));
  }
  EXPECT_EQ(store.key_count(), 1000u);
  EXPECT_EQ(store.GetLatest("key500")->timestamp, (Timestamp{600, 0}));
}

}  // namespace
}  // namespace pileus::storage
