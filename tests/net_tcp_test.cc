// Tests for the TCP transport: framed request/reply over real loopback
// sockets.

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/net/tcp.h"
#include "src/storage/storage_node.h"

namespace pileus::net {
namespace {

proto::Message Echo(const proto::Message& request) {
  if (const auto* get = std::get_if<proto::GetRequest>(&request)) {
    proto::GetReply reply;
    reply.found = true;
    reply.value = "echo:" + get->key;
    return reply;
  }
  if (std::holds_alternative<proto::PutRequest>(request)) {
    return proto::PutReply{};
  }
  proto::ErrorReply err;
  err.code = StatusCode::kInvalidArgument;
  return err;
}

TEST(TcpTest, StartStopLifecycle) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(TcpTest, CallRoundTrip) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port());

  proto::GetRequest request;
  request.table = "t";
  request.key = "hello";
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value, "echo:hello");
  EXPECT_EQ(server.requests_handled(), 1u);
}

TEST(TcpTest, ManySequentialCallsOnOneConnection) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port());
  for (int i = 0; i < 200; ++i) {
    proto::GetRequest request;
    request.key = "k" + std::to_string(i);
    Result<proto::Message> reply =
        channel.Call(request, SecondsToMicroseconds(5));
    ASSERT_TRUE(reply.ok()) << i;
    EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value,
              "echo:k" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_handled(), 200u);
}

TEST(TcpTest, ConcurrentClients) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  constexpr int kThreads = 8;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TcpChannel channel(server.port());
      for (int i = 0; i < kCallsEach; ++i) {
        proto::GetRequest request;
        request.key = std::to_string(t) + ":" + std::to_string(i);
        Result<proto::Message> reply =
            channel.Call(request, SecondsToMicroseconds(5));
        if (!reply.ok() ||
            std::get<proto::GetReply>(reply.value()).value !=
                "echo:" + request.key) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_handled(),
            static_cast<uint64_t>(kThreads * kCallsEach));
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close it.
  uint16_t dead_port;
  {
    TcpServer server;
    ASSERT_TRUE(server.Start(0, Echo).ok());
    dead_port = server.port();
  }
  TcpChannel channel(dead_port);
  Result<proto::Message> reply =
      channel.Call(proto::GetRequest{}, MillisecondsToMicroseconds(500));
  ASSERT_FALSE(reply.ok());
  // Connection refused is a fast, clean kUnavailable - never a timeout and
  // never a crash.
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(TcpTest, ServerKilledMidStreamThenRestartedOnSamePort) {
  auto server = std::make_unique<TcpServer>();
  ASSERT_TRUE(server->Start(0, Echo).ok());
  const uint16_t port = server->port();
  TcpChannel channel(port);

  proto::GetRequest request;
  request.table = "t";
  request.key = "before";
  ASSERT_TRUE(channel.Call(request, SecondsToMicroseconds(5)).ok());

  // Kill the server: the channel is left holding a dead socket mid-stream.
  server->Stop();
  server.reset();
  request.key = "down";
  Result<proto::Message> down =
      channel.Call(request, SecondsToMicroseconds(2));
  ASSERT_FALSE(down.ok());
  // The dead socket surfaces as kUnavailable (reset/refused), distinct from
  // kTimeout: the caller can safely retry because the frame never landed.
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);

  // Restart on the same port: the same channel object reconnects lazily and
  // the next call goes through without any explicit reset.
  TcpServer revived;
  ASSERT_TRUE(revived.Start(port, Echo).ok());
  request.key = "after";
  Result<proto::Message> after =
      channel.Call(request, SecondsToMicroseconds(5));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(std::get<proto::GetReply>(after.value()).value, "echo:after");
}

TEST(TcpTest, LargeValuesCrossIntact) {
  TcpServer server;
  std::string received;
  ASSERT_TRUE(server
                  .Start(0,
                         [&](const proto::Message& request) {
                           received =
                               std::get<proto::PutRequest>(request).value;
                           return proto::Message(proto::PutReply{});
                         })
                  .ok());
  TcpChannel channel(server.port());

  proto::PutRequest put;
  put.table = "t";
  put.key = "big";
  put.value.resize(4 * 1024 * 1024);
  for (size_t i = 0; i < put.value.size(); ++i) {
    put.value[i] = static_cast<char>(i * 2654435761u);
  }
  Result<proto::Message> reply = channel.Call(put, SecondsToMicroseconds(10));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(received, put.value);
}

TEST(TcpTest, SlowHandlerHitsClientDeadline) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [](const proto::Message&) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(300));
                           return proto::Message(proto::PutReply{});
                         })
                  .ok());
  TcpChannel channel(server.port());
  Result<proto::Message> reply =
      channel.Call(proto::PutRequest{}, MillisecondsToMicroseconds(50));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, ArtificialDelayEmulatesWan) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port(), MillisecondsToMicroseconds(20));
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  ASSERT_TRUE(channel.Call(proto::GetRequest{}, 0).ok());
  EXPECT_GE(RealClock::Instance()->NowMicros() - start,
            MillisecondsToMicroseconds(40));
}

// --- Pipelining: the multiplexing guarantees CallAsync documents ---

// Collects async completions and lets the test thread block until N arrived.
struct CompletionLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<std::string, Result<proto::Message>>> done;

  void Record(std::string tag, Result<proto::Message> reply) {
    std::lock_guard<std::mutex> lock(mu);
    done.emplace_back(std::move(tag), std::move(reply));
    cv.notify_all();
  }
  bool WaitFor(size_t n, MicrosecondCount budget_us) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::microseconds(budget_us),
                       [&] { return done.size() >= n; });
  }
};

TEST(TcpPipelineTest, OutOfOrderRepliesMapToTheRightRequest) {
  // The server parks every request and, once all four are in, answers them
  // in REVERSE arrival order. Only the request-id multiplexing can route
  // each reply to its caller; position on the wire says the opposite.
  constexpr int kCalls = 4;
  struct Parked {
    std::mutex mu;
    std::vector<std::pair<std::string, std::function<void(proto::Message)>>>
        waiting;
  };
  auto parked = std::make_shared<Parked>();
  TcpServer server;
  ASSERT_TRUE(server
                  .StartAsync(0,
                              [parked](const proto::Message& request,
                                       std::function<void(proto::Message)>
                                           done) {
                                const auto& get =
                                    std::get<proto::GetRequest>(request);
                                std::lock_guard<std::mutex> lock(parked->mu);
                                parked->waiting.emplace_back(get.key,
                                                             std::move(done));
                                if (parked->waiting.size() == kCalls) {
                                  for (int i = kCalls - 1; i >= 0; --i) {
                                    proto::GetReply reply;
                                    reply.found = true;
                                    reply.value =
                                        "echo:" + parked->waiting[i].first;
                                    parked->waiting[i].second(reply);
                                  }
                                }
                              })
                  .ok());
  TcpChannel channel(server.port());
  CompletionLog log;
  for (int i = 0; i < kCalls; ++i) {
    proto::GetRequest request;
    request.key = "k" + std::to_string(i);
    channel.CallAsync(request, SecondsToMicroseconds(10),
                      [&log, key = request.key](Result<proto::Message> reply) {
                        log.Record(key, std::move(reply));
                      });
  }
  ASSERT_TRUE(log.WaitFor(kCalls, SecondsToMicroseconds(15)));
  // Every caller got the reply for ITS OWN key...
  for (const auto& [key, reply] : log.done) {
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status();
    EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value, "echo:" + key);
  }
  // ...and the completions genuinely arrived out of issue order.
  EXPECT_EQ(log.done.front().first, "k" + std::to_string(kCalls - 1));
  EXPECT_EQ(log.done.back().first, "k0");
}

TEST(TcpPipelineTest, DisconnectFailsInFlightCallsFast) {
  // A server that parks requests forever; stopping it must fail every
  // in-flight call promptly with kUnavailable - no waiting out the 10 s
  // deadline, no dropped callbacks.
  struct Parked {
    std::mutex mu;
    std::vector<std::function<void(proto::Message)>> waiting;
  };
  auto parked = std::make_shared<Parked>();
  TcpServer server;
  ASSERT_TRUE(server
                  .StartAsync(0,
                              [parked](const proto::Message&,
                                       std::function<void(proto::Message)>
                                           done) {
                                std::lock_guard<std::mutex> lock(parked->mu);
                                parked->waiting.push_back(std::move(done));
                              })
                  .ok());
  TcpChannel channel(server.port());
  constexpr int kCalls = 3;
  CompletionLog log;
  for (int i = 0; i < kCalls; ++i) {
    channel.CallAsync(proto::GetRequest{}, SecondsToMicroseconds(10),
                      [&log](Result<proto::Message> reply) {
                        log.Record("", std::move(reply));
                      });
  }
  // Wait until the server has parked all three, so the frames are known to
  // be past the client's send queue.
  for (int i = 0; i < 1000; ++i) {
    {
      std::lock_guard<std::mutex> lock(parked->mu);
      if (parked->waiting.size() == kCalls) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(channel.in_flight(), static_cast<size_t>(kCalls));

  const MicrosecondCount stop_start = RealClock::Instance()->NowMicros();
  server.Stop();
  ASSERT_TRUE(log.WaitFor(kCalls, SecondsToMicroseconds(5)));
  const MicrosecondCount elapsed =
      RealClock::Instance()->NowMicros() - stop_start;
  for (const auto& [tag, reply] : log.done) {
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_LT(elapsed, SecondsToMicroseconds(5));
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(TcpPipelineTest, LateReplyAfterTimeoutIsDiscarded) {
  // A reply that arrives after the caller's deadline must be dropped
  // silently: the timed-out call completed exactly once (kTimeout), the
  // connection stays up, and the next call reuses it without desync.
  struct Parked {
    std::mutex mu;
    std::function<void(proto::Message)> done;
  };
  auto parked = std::make_shared<Parked>();
  std::atomic<int> requests_seen{0};
  TcpServer server;
  ASSERT_TRUE(
      server
          .StartAsync(0,
                      [parked, &requests_seen](
                          const proto::Message& request,
                          std::function<void(proto::Message)> done) {
                        if (requests_seen.fetch_add(1) == 0) {
                          std::lock_guard<std::mutex> lock(parked->mu);
                          parked->done = std::move(done);  // Hold the first.
                          return;
                        }
                        done(Echo(request));
                      })
          .ok());
  TcpChannel channel(server.port());
  CompletionLog log;
  channel.CallAsync(proto::GetRequest{}, MillisecondsToMicroseconds(100),
                    [&log](Result<proto::Message> reply) {
                      log.Record("first", std::move(reply));
                    });
  ASSERT_TRUE(log.WaitFor(1, SecondsToMicroseconds(5)));
  EXPECT_EQ(log.done[0].second.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(channel.in_flight(), 0u);

  // Now release the parked reply: it lands with a request id nobody is
  // waiting on and must be discarded, not crash or complete anyone twice.
  {
    std::lock_guard<std::mutex> lock(parked->mu);
    ASSERT_TRUE(parked->done != nullptr);
    proto::GetReply late;
    late.value = "too-late";
    parked->done(late);
  }
  // Same connection still healthy for the next exchange.
  proto::GetRequest request;
  request.key = "fresh";
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value, "echo:fresh");
  EXPECT_EQ(log.done.size(), 1u);  // The timed-out call never fired again.
}

TEST(TcpPipelineTest, PipelinedWritesToStorageNodeApplyInOrder) {
  // Session guarantees ride on write order: frames pipelined on one
  // connection must be parsed and applied in send order, so the last Put
  // wins and timestamps ascend with issue order.
  storage::StorageNode node("n", "s", RealClock::Instance());
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());
  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [&](const proto::Message& request) {
                           return node.Handle(request);
                         })
                  .ok());
  TcpChannel channel(server.port());

  constexpr int kWrites = 100;
  CompletionLog log;
  for (int i = 0; i < kWrites; ++i) {
    proto::PutRequest put;
    put.table = "t";
    put.key = "k";
    put.value = "v" + std::to_string(i);
    channel.CallAsync(put, SecondsToMicroseconds(10),
                      [&log, tag = put.value](Result<proto::Message> reply) {
                        log.Record(tag, std::move(reply));
                      });
  }
  ASSERT_TRUE(log.WaitFor(kWrites, SecondsToMicroseconds(15)));
  Timestamp previous = Timestamp::Zero();
  // Completions arrive in server apply order here (the sync handler replies
  // in place), so the acked timestamps must strictly ascend.
  for (const auto& [tag, reply] : log.done) {
    ASSERT_TRUE(reply.ok()) << tag << ": " << reply.status();
    const Timestamp ts = std::get<proto::PutReply>(reply.value()).timestamp;
    EXPECT_GT(ts, previous) << tag;
    previous = ts;
  }

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  Result<proto::Message> got = channel.Call(get, SecondsToMicroseconds(5));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::get<proto::GetReply>(got.value()).value,
            "v" + std::to_string(kWrites - 1));
}

TEST(TcpTest, ServesRealStorageNode) {
  ManualClock clock(1000);
  storage::StorageNode node("n", "s", &clock);
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());

  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [&](const proto::Message& request) {
                           return node.Handle(request);
                         })
                  .ok());
  TcpChannel channel(server.port());

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  Result<proto::Message> put_reply =
      channel.Call(put, SecondsToMicroseconds(5));
  ASSERT_TRUE(put_reply.ok());
  const Timestamp ts = std::get<proto::PutReply>(put_reply.value()).timestamp;
  EXPECT_GT(ts, Timestamp::Zero());

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  Result<proto::Message> get_reply =
      channel.Call(get, SecondsToMicroseconds(5));
  ASSERT_TRUE(get_reply.ok());
  const auto& reply = std::get<proto::GetReply>(get_reply.value());
  EXPECT_TRUE(reply.found);
  EXPECT_EQ(reply.value, "v");
  EXPECT_EQ(reply.value_timestamp, ts);
}

}  // namespace
}  // namespace pileus::net
