// Tests for the TCP transport: framed request/reply over real loopback
// sockets.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/net/tcp.h"
#include "src/storage/storage_node.h"

namespace pileus::net {
namespace {

proto::Message Echo(const proto::Message& request) {
  if (const auto* get = std::get_if<proto::GetRequest>(&request)) {
    proto::GetReply reply;
    reply.found = true;
    reply.value = "echo:" + get->key;
    return reply;
  }
  if (std::holds_alternative<proto::PutRequest>(request)) {
    return proto::PutReply{};
  }
  proto::ErrorReply err;
  err.code = StatusCode::kInvalidArgument;
  return err;
}

TEST(TcpTest, StartStopLifecycle) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(TcpTest, CallRoundTrip) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port());

  proto::GetRequest request;
  request.table = "t";
  request.key = "hello";
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(5));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value, "echo:hello");
  EXPECT_EQ(server.requests_handled(), 1u);
}

TEST(TcpTest, ManySequentialCallsOnOneConnection) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port());
  for (int i = 0; i < 200; ++i) {
    proto::GetRequest request;
    request.key = "k" + std::to_string(i);
    Result<proto::Message> reply =
        channel.Call(request, SecondsToMicroseconds(5));
    ASSERT_TRUE(reply.ok()) << i;
    EXPECT_EQ(std::get<proto::GetReply>(reply.value()).value,
              "echo:k" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_handled(), 200u);
}

TEST(TcpTest, ConcurrentClients) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  constexpr int kThreads = 8;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TcpChannel channel(server.port());
      for (int i = 0; i < kCallsEach; ++i) {
        proto::GetRequest request;
        request.key = std::to_string(t) + ":" + std::to_string(i);
        Result<proto::Message> reply =
            channel.Call(request, SecondsToMicroseconds(5));
        if (!reply.ok() ||
            std::get<proto::GetReply>(reply.value()).value !=
                "echo:" + request.key) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_handled(),
            static_cast<uint64_t>(kThreads * kCallsEach));
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close it.
  uint16_t dead_port;
  {
    TcpServer server;
    ASSERT_TRUE(server.Start(0, Echo).ok());
    dead_port = server.port();
  }
  TcpChannel channel(dead_port);
  Result<proto::Message> reply =
      channel.Call(proto::GetRequest{}, MillisecondsToMicroseconds(500));
  ASSERT_FALSE(reply.ok());
  // Connection refused is a fast, clean kUnavailable - never a timeout and
  // never a crash.
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(TcpTest, ServerKilledMidStreamThenRestartedOnSamePort) {
  auto server = std::make_unique<TcpServer>();
  ASSERT_TRUE(server->Start(0, Echo).ok());
  const uint16_t port = server->port();
  TcpChannel channel(port);

  proto::GetRequest request;
  request.table = "t";
  request.key = "before";
  ASSERT_TRUE(channel.Call(request, SecondsToMicroseconds(5)).ok());

  // Kill the server: the channel is left holding a dead socket mid-stream.
  server->Stop();
  server.reset();
  request.key = "down";
  Result<proto::Message> down =
      channel.Call(request, SecondsToMicroseconds(2));
  ASSERT_FALSE(down.ok());
  // The dead socket surfaces as kUnavailable (reset/refused), distinct from
  // kTimeout: the caller can safely retry because the frame never landed.
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);

  // Restart on the same port: the same channel object reconnects lazily and
  // the next call goes through without any explicit reset.
  TcpServer revived;
  ASSERT_TRUE(revived.Start(port, Echo).ok());
  request.key = "after";
  Result<proto::Message> after =
      channel.Call(request, SecondsToMicroseconds(5));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(std::get<proto::GetReply>(after.value()).value, "echo:after");
}

TEST(TcpTest, LargeValuesCrossIntact) {
  TcpServer server;
  std::string received;
  ASSERT_TRUE(server
                  .Start(0,
                         [&](const proto::Message& request) {
                           received =
                               std::get<proto::PutRequest>(request).value;
                           return proto::Message(proto::PutReply{});
                         })
                  .ok());
  TcpChannel channel(server.port());

  proto::PutRequest put;
  put.table = "t";
  put.key = "big";
  put.value.resize(4 * 1024 * 1024);
  for (size_t i = 0; i < put.value.size(); ++i) {
    put.value[i] = static_cast<char>(i * 2654435761u);
  }
  Result<proto::Message> reply = channel.Call(put, SecondsToMicroseconds(10));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(received, put.value);
}

TEST(TcpTest, SlowHandlerHitsClientDeadline) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [](const proto::Message&) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(300));
                           return proto::Message(proto::PutReply{});
                         })
                  .ok());
  TcpChannel channel(server.port());
  Result<proto::Message> reply =
      channel.Call(proto::PutRequest{}, MillisecondsToMicroseconds(50));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
}

TEST(TcpTest, ArtificialDelayEmulatesWan) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port(), MillisecondsToMicroseconds(20));
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  ASSERT_TRUE(channel.Call(proto::GetRequest{}, 0).ok());
  EXPECT_GE(RealClock::Instance()->NowMicros() - start,
            MillisecondsToMicroseconds(40));
}

TEST(TcpTest, ServesRealStorageNode) {
  ManualClock clock(1000);
  storage::StorageNode node("n", "s", &clock);
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());

  TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [&](const proto::Message& request) {
                           return node.Handle(request);
                         })
                  .ok());
  TcpChannel channel(server.port());

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  Result<proto::Message> put_reply =
      channel.Call(put, SecondsToMicroseconds(5));
  ASSERT_TRUE(put_reply.ok());
  const Timestamp ts = std::get<proto::PutReply>(put_reply.value()).timestamp;
  EXPECT_GT(ts, Timestamp::Zero());

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  Result<proto::Message> get_reply =
      channel.Call(get, SecondsToMicroseconds(5));
  ASSERT_TRUE(get_reply.ok());
  const auto& reply = std::get<proto::GetReply>(get_reply.value());
  EXPECT_TRUE(reply.found);
  EXPECT_EQ(reply.value, "v");
  EXPECT_EQ(reply.value_timestamp, ts);
}

}  // namespace
}  // namespace pileus::net
