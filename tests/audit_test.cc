// Acceptance tests for the consistency-audit harness (DESIGN.md "Consistency
// auditing"): seeded scenario runs come back clean, the offline checker's
// verdicts agree with the client's claimed subSLA telemetry (the PR-2
// TraceEvent stream), and sessions keep their audit identity across
// serialized hand-off between frontends.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/audit/checker.h"
#include "src/audit/history.h"
#include "src/cache/client_cache.h"
#include "src/core/client.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/scenario.h"
#include "src/telemetry/trace.h"
#include "src/workload/ycsb.h"
#include "tests/testbed_fixture.h"

namespace pileus::experiments {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/pileus_audit_test.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr) << "mkdtemp failed";
  return dir == nullptr ? "" : dir;
}

TEST(FaultScenarioTest, NamesRoundTrip) {
  for (const FaultScenario scenario : AllFaultScenarios()) {
    const std::optional<FaultScenario> parsed =
        ParseFaultScenario(FaultScenarioName(scenario));
    ASSERT_TRUE(parsed.has_value()) << FaultScenarioName(scenario);
    EXPECT_EQ(*parsed, scenario);
  }
  EXPECT_FALSE(ParseFaultScenario("no-such-scenario").has_value());
}

TEST(AuditScenarioTest, CleanRunsAcrossSeedsAndScenarios) {
  for (const FaultScenario scenario :
       {FaultScenario::kNone, FaultScenario::kPartition,
        FaultScenario::kDrops, FaultScenario::kHandoff}) {
    for (const uint64_t seed : {1u, 2u}) {
      ScenarioOptions options;
      options.seed = seed;
      options.scenario = scenario;
      options.total_ops = 300;
      options.key_count = 50;
      options.durable_root = MakeTempDir();
      const ScenarioResult result = RunAuditScenario(options);
      EXPECT_TRUE(result.ok())
          << result.Summary() << "\n" << result.report.ToString();
      EXPECT_EQ(result.ops_attempted, 300u) << result.Summary();
      EXPECT_GT(result.sessions, 1u) << result.Summary();
      EXPECT_GT(result.report.reads_checked, 0u) << result.Summary();
      EXPECT_GT(result.report.claims_checked, 0u) << result.Summary();
      if (scenario == FaultScenario::kHandoff) {
        EXPECT_GT(result.handoffs, 0u) << result.Summary();
      }
    }
  }
}

TEST(AuditScenarioTest, CrashRestartRecoversFromWalAndStaysClean) {
  ScenarioOptions options;
  options.seed = 5;
  options.scenario = FaultScenario::kCrashRestart;
  options.total_ops = 400;
  options.durable_root = MakeTempDir();
  const ScenarioResult result = RunAuditScenario(options);
  EXPECT_TRUE(result.ok())
      << result.Summary() << "\n" << result.report.ToString();
  // The crashed secondary makes some ops fail or reroute, but the run must
  // still produce a substantial audited history.
  EXPECT_GT(result.report.reads_checked, 50u) << result.Summary();
  EXPECT_GT(result.report.writes_checked, 50u) << result.Summary();
}

TEST(AuditScenarioTest, FailoverSweepPromotesAndStaysClean) {
  for (const uint64_t seed : {3u, 11u}) {
    ScenarioOptions options;
    options.seed = seed;
    options.scenario = FaultScenario::kFailover;
    options.total_ops = 400;
    options.key_count = 50;
    options.durable_root = MakeTempDir();
    const ScenarioResult result = RunAuditScenario(options);
    EXPECT_TRUE(result.ok())
        << result.Summary() << "\n" << result.report.ToString();
    // The schedule crashes the primary mid-run, so the lease-based
    // coordinator must have promoted at least once...
    EXPECT_GE(result.failovers, 1u) << result.Summary();
    // ...and the audited history (including the commit-order continuity
    // check across the epochs) must stay spotless.
    EXPECT_GT(result.report.reads_checked, 50u) << result.Summary();
    EXPECT_GT(result.report.writes_checked, 50u) << result.Summary();
  }
}

TEST(AuditScenarioTest, AggregatorPrimedSweepStaysCleanThroughItsDeath) {
  // Shared-monitoring priors (DESIGN.md Section 12) feed every frontend's
  // monitor for the first half of the run, then the aggregator pump dies
  // mid-run. Neither phase may produce an audit violation: priors only
  // steer selection, never the guarantees themselves.
  for (const FaultScenario scenario :
       {FaultScenario::kNone, FaultScenario::kPartition}) {
    for (const uint64_t seed : {4u, 13u}) {
      ScenarioOptions options;
      options.seed = seed;
      options.scenario = scenario;
      options.total_ops = 300;
      options.key_count = 50;
      options.enable_aggregator = true;
      options.durable_root = MakeTempDir();
      const ScenarioResult result = RunAuditScenario(options);
      EXPECT_TRUE(result.ok())
          << result.Summary() << "\n" << result.report.ToString();
      EXPECT_GT(result.report.reads_checked, 0u) << result.Summary();
      EXPECT_GT(result.report.claims_checked, 0u) << result.Summary();
    }
  }
}

TEST(AuditScenarioTest, SameSeedIsReproducible) {
  ScenarioOptions options;
  options.seed = 9;
  options.scenario = FaultScenario::kPartition;
  options.total_ops = 200;
  options.durable_root = MakeTempDir();
  const ScenarioResult first = RunAuditScenario(options);
  options.durable_root = MakeTempDir();
  const ScenarioResult second = RunAuditScenario(options);
  EXPECT_EQ(first.Summary(), second.Summary());
  ASSERT_EQ(first.history.ops.size(), second.history.ops.size());
  // Session ids come from a process-global counter, so two runs in one
  // process assign different raw ids; compare them up to renumbering by
  // first appearance.
  std::map<uint64_t, uint64_t> renumber_first;
  std::map<uint64_t, uint64_t> renumber_second;
  const auto canonical = [](const core::OpRecord& op,
                            std::map<uint64_t, uint64_t>& renumber) {
    core::OpRecord copy = op;
    copy.session_id =
        renumber.emplace(op.session_id, renumber.size() + 1).first->second;
    return audit::DescribeOp(copy);
  };
  for (size_t i = 0; i < first.history.ops.size(); ++i) {
    EXPECT_EQ(canonical(first.history.ops[i], renumber_first),
              canonical(second.history.ops[i], renumber_second))
        << "op #" << i;
  }
}

TEST(AuditScenarioTest, SummaryCitesTheSeedOnFailure) {
  // A summary for a failing report must contain the repro handle. Forge a
  // failing result rather than hunting for a real violation.
  ScenarioResult result;
  result.seed = 42;
  result.scenario = FaultScenario::kGray;
  result.report.violations.push_back(audit::Violation{
      audit::ViolationType::kStaleStrongRead, 0, audit::kNoRelatedOp, "x"});
  const std::string summary = result.Summary();
  EXPECT_NE(summary.find("FAIL"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--seed 42"), std::string::npos) << summary;
  EXPECT_NE(summary.find("gray"), std::string::npos) << summary;
}

// The checker's input (OpRecord claims) and the PR-2 telemetry stream
// (TraceEvent met_rank/consistency) are emitted by the same client code path;
// this acceptance test pins them together so neither can drift silently, and
// then has the checker re-verify every claim it just cross-validated.
TEST(AuditTelemetryTest, CheckerInputMatchesClaimedSubSlaTelemetry) {
  GeoTestbed testbed(pileus::testbed::FastGeoOptions(11));
  pileus::testbed::PreloadAndReplicate(testbed, 50);

  telemetry::TraceBuffer trace;
  audit::HistoryRecorder recorder;
  core::PileusClient::Options options;
  options.trace_sink = &trace;
  options.op_observer = &recorder;
  auto client = testbed.MakeClient(kUs, options);
  client->StartProbing();
  testbed.env().RunFor(SecondsToMicroseconds(2));

  core::Session session =
      client->client().BeginSession(core::ShoppingCartSla()).value();
  for (int i = 0; i < 200; ++i) {
    const std::string key = workload::YcsbWorkload::KeyForIndex(i % 50);
    if (i % 3 == 0) {
      ASSERT_TRUE(client->client().Put(session, key, "v").ok());
    } else {
      ASSERT_TRUE(client->client().Get(session, key).ok());
    }
    testbed.env().RunFor(MillisecondsToMicroseconds(5));
  }

  // Pair the Get traces with the Get records, in emission order.
  std::vector<telemetry::TraceEvent> get_events;
  for (const telemetry::TraceEvent& event : trace.Snapshot()) {
    if (event.op == telemetry::TraceOp::kGet) {
      get_events.push_back(event);
    }
  }
  std::vector<core::OpRecord> get_records;
  for (const core::OpRecord& record : recorder.Snapshot().ops) {
    if (record.op == core::AuditOp::kGet) {
      get_records.push_back(record);
    }
  }
  ASSERT_EQ(get_events.size(), get_records.size());
  ASSERT_GT(get_events.size(), 100u);
  int met_claims = 0;
  for (size_t i = 0; i < get_events.size(); ++i) {
    const telemetry::TraceEvent& event = get_events[i];
    const core::OpRecord& record = get_records[i];
    EXPECT_EQ(event.key, record.key) << "op " << i;
    EXPECT_EQ(event.node, record.node) << "op " << i;
    EXPECT_EQ(event.met_rank, record.claimed_met_rank) << "op " << i;
    EXPECT_EQ(event.from_primary, record.from_primary) << "op " << i;
    EXPECT_EQ(event.read_timestamp, record.high_timestamp) << "op " << i;
    if (record.claimed_met_rank >= 0) {
      ++met_claims;
      EXPECT_EQ(event.consistency, record.claimed_guarantee.ToString())
          << "op " << i;
    }
  }
  EXPECT_GT(met_claims, 100);

  // And the claims both streams agree on must actually be true.
  bool contiguous = true;
  recorder.SetGroundTruth(
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous),
      contiguous);
  const audit::AuditReport report =
      audit::ConsistencyChecker().Check(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.claims_checked, 100u);
}

TEST(AuditHandoffTest, SerializedHandoffKeepsOneSessionIdentity) {
  GeoTestbed testbed(pileus::testbed::FastGeoOptions(12));
  pileus::testbed::PreloadAndReplicate(testbed, 20);

  audit::HistoryRecorder recorder;
  core::PileusClient::Options options;
  options.op_observer = &recorder;
  auto us = testbed.MakeClient(kUs, options);
  auto india = testbed.MakeClient(kIndia, options);
  testbed.env().RunFor(SecondsToMicroseconds(2));

  core::Session session =
      us->client().BeginSession(AuditSla()).value();
  ASSERT_TRUE(us->client().Put(session, "h", "before").ok());
  ASSERT_TRUE(us->client().Get(session, "h").ok());

  // Move the session to the other frontend, as scenario kHandoff does.
  Result<core::Session> resumed =
      core::Session::Deserialize(session.Serialize());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(india->client().Put(*resumed, "h", "after").ok());
  ASSERT_TRUE(india->client().Get(*resumed, "h").ok());

  const audit::History history = recorder.Snapshot();
  ASSERT_EQ(history.ops.size(), 4u);
  for (const core::OpRecord& record : history.ops) {
    EXPECT_EQ(record.session_id, history.ops[0].session_id)
        << audit::DescribeOp(record);
  }
  // The moved session still carries read-my-writes state: the checker must
  // see one continuous session, not two.
  bool contiguous = true;
  recorder.SetGroundTruth(
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous),
      contiguous);
  const audit::AuditReport report =
      audit::ConsistencyChecker().Check(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditCacheTest, CacheEnabledSweepsStayClean) {
  // Same scenarios as the plain sweep, but every frontend now owns a
  // consistency-aware client cache, so the checker audits locally served
  // reads (claimed subSLA + cached timestamp) like any network read.
  uint64_t total_cache_served = 0;
  for (const FaultScenario scenario :
       {FaultScenario::kNone, FaultScenario::kPartition,
        FaultScenario::kCrashRestart}) {
    for (const uint64_t seed : {1u, 2u}) {
      ScenarioOptions options;
      options.seed = seed;
      options.scenario = scenario;
      options.total_ops = 300;
      options.key_count = 50;
      options.client_cache = true;
      options.durable_root = MakeTempDir();
      const ScenarioResult result = RunAuditScenario(options);
      EXPECT_TRUE(result.ok())
          << result.Summary() << "\n" << result.report.ToString();
      EXPECT_GT(result.report.reads_checked, 0u) << result.Summary();
      total_cache_served += result.cache_served;
    }
  }
  // The cache must actually participate, not just sit there unused.
  EXPECT_GT(total_cache_served, 0u);
}

TEST(AuditCacheTest, HandoffFloorsStaleCacheOnTheNewFrontend) {
  // Regression for the hand-off rule: the receiving frontend's cache may
  // hold entries that predate everything the moved session has seen, and
  // must not serve them to it. Session::Deserialize floors the cache at
  // max(max_read, max_write), which the client checks per entry.
  GeoTestbed testbed(pileus::testbed::FastGeoOptions(21));
  pileus::testbed::PreloadAndReplicate(testbed, 20);

  audit::HistoryRecorder recorder;
  cache::ClientCache us_cache;
  cache::ClientCache india_cache;
  core::PileusClient::Options us_options;
  us_options.op_observer = &recorder;
  us_options.cache = &us_cache;
  core::PileusClient::Options india_options;
  india_options.op_observer = &recorder;
  india_options.cache = &india_cache;
  auto us = testbed.MakeClient(kUs, us_options);
  auto india = testbed.MakeClient(kIndia, india_options);
  testbed.env().RunFor(SecondsToMicroseconds(2));

  const core::Sla eventual =
      core::Sla().Add(core::Guarantee::Eventual(), SecondsToMicroseconds(10),
                      1.0);

  // India's cache learns "h" does not exist (a negative entry).
  core::Session scout = india->client().BeginSession(eventual).value();
  Result<core::GetResult> absent = india->client().Get(scout, "h");
  ASSERT_TRUE(absent.ok());
  ASSERT_FALSE(absent->found);

  // The session writes and reads "h" on the US frontend, then waits long
  // enough for replication to carry the write everywhere.
  core::Session session = us->client().BeginSession(eventual).value();
  ASSERT_TRUE(us->client().Put(session, "h", "moved").ok());
  ASSERT_TRUE(us->client().Get(session, "h").ok());
  testbed.env().RunFor(SecondsToMicroseconds(30));

  // A *fresh* session on India happily serves the stale negative entry —
  // legal under eventual consistency with no history.
  core::Session fresh = india->client().BeginSession(eventual).value();
  Result<core::GetResult> stale_ok = india->client().Get(fresh, "h");
  ASSERT_TRUE(stale_ok.ok());
  EXPECT_TRUE(stale_ok->outcome.from_cache);
  EXPECT_FALSE(stale_ok->found);

  // The moved session must not see it: its cache floor (the hand-off
  // write's timestamp) exceeds the entry's valid_through, so the Get goes
  // to the network and finds the write.
  Result<core::Session> moved =
      core::Session::Deserialize(session.Serialize());
  ASSERT_TRUE(moved.ok());
  EXPECT_GE(moved->cache_floor(), session.LastPutTimestamp("h"));
  Result<core::GetResult> after = india->client().Get(*moved, "h");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->outcome.from_cache);
  ASSERT_TRUE(after->found);
  EXPECT_EQ(after->value, "moved");

  // The whole history — stale-but-legal serve included — audits clean.
  bool contiguous = true;
  recorder.SetGroundTruth(
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous),
      contiguous);
  const audit::AuditReport report =
      audit::ConsistencyChecker().Check(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace pileus::experiments
