// Stress tests for the event-driven TCP transport: many concurrent
// pipelining clients, server kills mid-stream, reconnects, and shared-channel
// thrash. Sized to stay meaningful under ThreadSanitizer (the CI tsan job
// runs this binary): enough concurrency to expose races, op counts small
// enough that the instrumented run finishes in seconds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/net/tcp.h"

namespace pileus::net {
namespace {

proto::Message Echo(const proto::Message& request) {
  if (const auto* get = std::get_if<proto::GetRequest>(&request)) {
    proto::GetReply reply;
    reply.found = true;
    reply.value = "echo:" + get->key;
    return reply;
  }
  proto::ErrorReply err;
  err.code = StatusCode::kInvalidArgument;
  return err;
}

// One client worker: issues `total` pipelined Gets keeping up to `depth` in
// flight, tagging each request so a cross-wired reply (the bug pipelining
// multiplexing exists to prevent) is detected, not just counted.
struct PipelineWorker {
  std::mutex mu;
  std::condition_variable cv;
  int issued = 0;
  int completed = 0;
  int mismatches = 0;
  int errors = 0;

  void Run(TcpChannel& channel, const std::string& tag, int total,
           int depth) {
    std::unique_lock<std::mutex> lock(mu);
    while (completed < total) {
      while (issued < total && issued - completed < depth) {
        const std::string key = tag + ":" + std::to_string(issued);
        ++issued;
        proto::GetRequest request;
        request.key = key;
        lock.unlock();
        channel.CallAsync(
            request, SecondsToMicroseconds(30),
            [this, key](Result<proto::Message> reply) {
              std::lock_guard<std::mutex> inner(mu);
              ++completed;
              if (!reply.ok()) {
                ++errors;
              } else if (std::get<proto::GetReply>(reply.value()).value !=
                         "echo:" + key) {
                ++mismatches;
              }
              cv.notify_all();
            });
        lock.lock();
      }
      cv.wait(lock, [&] {
        return completed == total ||
               (issued < total && issued - completed < depth);
      });
    }
  }
};

TEST(NetStressTest, SixteenPipeliningClientsHammerOneServer) {
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());

  constexpr int kClients = 16;
  constexpr int kOpsEach = 100;
  constexpr int kDepth = 8;
  std::vector<std::unique_ptr<PipelineWorker>> workers;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    workers.push_back(std::make_unique<PipelineWorker>());
    threads.emplace_back([&server, worker = workers.back().get(), c] {
      TcpChannel channel(server.port());
      worker->Run(channel, "c" + std::to_string(c), kOpsEach, kDepth);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const auto& worker : workers) {
    EXPECT_EQ(worker->completed, kOpsEach);
    EXPECT_EQ(worker->errors, 0);
    EXPECT_EQ(worker->mismatches, 0);
  }
  EXPECT_EQ(server.requests_handled(),
            static_cast<uint64_t>(kClients * kOpsEach));
}

TEST(NetStressTest, ServerKilledMidStreamClientsReconnectAndFinish) {
  auto server = std::make_unique<TcpServer>();
  ASSERT_TRUE(server->Start(0, Echo).ok());
  const uint16_t port = server->port();

  // Clients run sync Calls in a loop across the outage. During the outage
  // calls may fail (kUnavailable, or kTimeout for one caught mid-teardown) -
  // but never wedge, never crash, and never return a wrong payload. After
  // the restart every client must complete a successful call again.
  constexpr int kClients = 8;
  std::atomic<bool> stop{false};
  std::atomic<bool> restarted{false};
  std::atomic<int> wrong_payloads{0};
  std::atomic<int> ok_after_restart{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpChannel channel(port);
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        proto::GetRequest request;
        request.key = std::to_string(c) + ":" + std::to_string(i++);
        Result<proto::Message> reply =
            channel.Call(request, MillisecondsToMicroseconds(500));
        if (reply.ok()) {
          if (std::get<proto::GetReply>(reply.value()).value !=
              "echo:" + request.key) {
            ++wrong_payloads;
          } else if (restarted.load(std::memory_order_acquire)) {
            ++ok_after_restart;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();  // Mid-stream: clients hold connected sockets.
  server.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server = std::make_unique<TcpServer>();
  ASSERT_TRUE(server->Start(port, Echo).ok());
  restarted.store(true, std::memory_order_release);

  // Run until every client proved it reconnected (bounded by a deadline so
  // a wedged client fails the assertion instead of hanging the test).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (ok_after_restart.load() < kClients &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(wrong_payloads.load(), 0);
  EXPECT_GE(ok_after_restart.load(), kClients);
}

TEST(NetStressTest, SharedChannelMixedSyncAndAsyncCallers) {
  // One channel, many threads: pipelined CallAsync racing synchronous Call
  // on the same connection. Every call completes exactly once with the
  // payload it asked for.
  TcpServer server;
  ASSERT_TRUE(server.Start(0, Echo).ok());
  TcpChannel channel(server.port());

  constexpr int kThreads = 8;
  constexpr int kOpsEach = 50;
  std::atomic<int> failures{0};
  std::atomic<int> async_done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsEach; ++i) {
        proto::GetRequest request;
        request.key = std::to_string(t) + ":" + std::to_string(i);
        if (t % 2 == 0) {
          Result<proto::Message> reply =
              channel.Call(request, SecondsToMicroseconds(30));
          if (!reply.ok() ||
              std::get<proto::GetReply>(reply.value()).value !=
                  "echo:" + request.key) {
            ++failures;
          }
        } else {
          channel.CallAsync(request, SecondsToMicroseconds(30),
                            [&, key = request.key](
                                Result<proto::Message> reply) {
                              if (!reply.ok() ||
                                  std::get<proto::GetReply>(reply.value())
                                          .value != "echo:" + key) {
                                ++failures;
                              }
                              ++async_done;
                            });
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const int async_expected = kThreads / 2 * kOpsEach;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (async_done.load() < async_expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(async_done.load(), async_expected);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(NetStressTest, StopWithDeferredRepliesInFlightDropsNoCallback) {
  // An async server that parks a slice of requests and never answers them;
  // Stop() while they are parked must still complete every client callback
  // exactly once (kUnavailable), even as other replies are in the write
  // queues. Exercises the teardown path racing handler completions.
  struct Parked {
    std::mutex mu;
    std::vector<std::function<void(proto::Message)>> held;
  };
  auto parked = std::make_shared<Parked>();
  TcpServer server;
  std::atomic<int> seen{0};
  ASSERT_TRUE(server
                  .StartAsync(0,
                              [parked, &seen](
                                  const proto::Message& request,
                                  std::function<void(proto::Message)> done) {
                                if (seen.fetch_add(1) % 4 == 0) {
                                  std::lock_guard<std::mutex> lock(
                                      parked->mu);
                                  parked->held.push_back(std::move(done));
                                  return;  // Never answered.
                                }
                                done(Echo(request));
                              })
                  .ok());

  constexpr int kClients = 4;
  constexpr int kOpsEach = 32;
  std::atomic<int> completions{0};
  std::vector<std::unique_ptr<TcpChannel>> channels;
  for (int c = 0; c < kClients; ++c) {
    channels.push_back(std::make_unique<TcpChannel>(server.port()));
    for (int i = 0; i < kOpsEach; ++i) {
      proto::GetRequest request;
      request.key = std::to_string(c) + ":" + std::to_string(i);
      channels.back()->CallAsync(request, SecondsToMicroseconds(30),
                                 [&completions](Result<proto::Message>) {
                                   ++completions;
                                 });
    }
  }
  // Let a healthy chunk land, then pull the rug with replies still parked.
  const auto arm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (seen.load() < kClients * kOpsEach / 2 &&
         std::chrono::steady_clock::now() < arm_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completions.load() < kClients * kOpsEach &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(completions.load(), kClients * kOpsEach);
  for (const auto& channel : channels) {
    EXPECT_EQ(channel->in_flight(), 0u);
  }
  // The parked `done` closures die with the server; invoking one after Stop
  // would be a use-after-free in a sloppy design - here they are inert
  // because the connection owner is shared and checks its own liveness.
  {
    std::lock_guard<std::mutex> lock(parked->mu);
    if (!parked->held.empty()) {
      parked->held.front()(proto::GetReply{});  // Must be a safe no-op.
    }
  }
}

}  // namespace
}  // namespace pileus::net
