// Tests for SelectTarget (paper Figure 8): expected-utility maximization,
// the tie semantics, tie-break policies, and the parallel-Get candidate set.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/core/selection.h"

namespace pileus::core {
namespace {

constexpr MicrosecondCount kNow = SecondsToMicroseconds(1000);

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest()
      : clock_(kNow), monitor_(&clock_), session_(ShoppingCartSla()) {
    replicas_ = {
        ReplicaView{"primary", /*authoritative=*/true},
        ReplicaView{"near", false},
        ReplicaView{"far", false},
    };
  }

  // Fills the monitor so `node` has the given mean RTT (all samples equal)
  // and high timestamp.
  void Teach(const std::string& node, MicrosecondCount rtt,
             Timestamp high) {
    for (int i = 0; i < 10; ++i) {
      monitor_.RecordLatency(node, rtt);
    }
    monitor_.RecordHighTimestamp(node, high);
  }

  SelectionResult Select(const Sla& sla, std::string_view key = "k") {
    return SelectTarget(sla, replicas_, session_, key, clock_.NowMicros(),
                        monitor_, options_, &rng_);
  }

  ManualClock clock_;
  Monitor monitor_;
  Session session_;
  std::vector<ReplicaView> replicas_;
  SelectionOptions options_;
  Random rng_{1};
};

TEST_F(SelectionTest, EmptyReplicasYieldsInvalidResult) {
  const SelectionResult result =
      SelectTarget(ShoppingCartSla(), {}, session_, "k", kNow, monitor_,
                   options_, &rng_);
  EXPECT_EQ(result.target_rank, -1);
  EXPECT_EQ(result.node_index, -1);
}

TEST_F(SelectionTest, StrongGoesOnlyToAuthoritative) {
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{1, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{999999, 0});
  const Sla sla = Sla().Add(Guarantee::Strong(), SecondsToMicroseconds(10),
                            1.0);
  const SelectionResult result = Select(sla);
  EXPECT_EQ(result.target_rank, 0);
  EXPECT_EQ(result.node_index, 0);  // The primary despite being slower.
}

TEST_F(SelectionTest, EventualPrefersClosestOnTies) {
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(300), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const SelectionResult result = Select(sla);
  EXPECT_EQ(result.node_index, 1);
  EXPECT_EQ(result.candidates.size(), 3u);  // All tied at utility 1.
}

TEST_F(SelectionTest, StaleNodeLosesOnConsistency) {
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{600, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{400, 0});  // Stale.
  const Sla sla =
      Sla().Add(Guarantee::ReadMyWrites(), SecondsToMicroseconds(10), 1.0);
  const SelectionResult result = Select(sla);
  EXPECT_EQ(result.node_index, 0);  // Primary: near can't provide RMW.
}

TEST_F(SelectionTest, AuthoritativeSatisfiesAnyThreshold) {
  // Even with no recorded high timestamp, the primary qualifies for
  // timestamp-based guarantees.
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp::Zero());
  const Sla sla =
      Sla().Add(Guarantee::ReadMyWrites(), SecondsToMicroseconds(10), 1.0);
  EXPECT_EQ(Select(sla).node_index, 0);
}

TEST_F(SelectionTest, FallsToSecondSubSlaWhenFirstUnattainable) {
  // Password-checking shape: strong@150ms impossible (primary too far),
  // eventual@150ms possible locally.
  Teach("primary", MillisecondsToMicroseconds(400), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(300), Timestamp{100, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::Strong(),
                           MillisecondsToMicroseconds(150), 1.0)
                      .Add(Guarantee::Eventual(),
                           MillisecondsToMicroseconds(150), 0.5);
  const SelectionResult result = Select(sla);
  EXPECT_EQ(result.target_rank, 1);
  EXPECT_EQ(result.node_index, 1);
  EXPECT_DOUBLE_EQ(result.expected_utility, 0.5);
}

TEST_F(SelectionTest, HigherRankWinsEqualExpectedUtility) {
  // Figure 8 semantics: when a later subSLA pair merely equals maxutil, the
  // target stays with the earlier subSLA.
  Teach("primary", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::Strong(), SecondsToMicroseconds(10), 1.0)
                      .Add(Guarantee::Eventual(), SecondsToMicroseconds(10),
                           1.0);
  const SelectionResult result = Select(sla);
  EXPECT_EQ(result.target_rank, 0);
}

TEST_F(SelectionTest, SecondSubSlaCanBeatFirstOnProbability) {
  // The paper's example (Section 4.6.1): if subSLA 2 is nearly as valuable
  // and far more likely, it becomes the target.
  session_.RecordPut("k", Timestamp{500, 0});
  // Primary is slow: only 20% of samples under 300 ms.
  for (int i = 0; i < 2; ++i) {
    monitor_.RecordLatency("primary", MillisecondsToMicroseconds(100));
  }
  for (int i = 0; i < 8; ++i) {
    monitor_.RecordLatency("primary", MillisecondsToMicroseconds(500));
  }
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{400, 0});
  Teach("far", MillisecondsToMicroseconds(400), Timestamp{400, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::ReadMyWrites(),
                           MillisecondsToMicroseconds(300), 1.0)
                      .Add(Guarantee::Eventual(),
                           MillisecondsToMicroseconds(300), 0.9);
  const SelectionResult result = Select(sla);
  // SubSLA1 via primary: 0.2 * 1.0 = 0.2. SubSLA2 via near: 1.0 * 0.9.
  EXPECT_EQ(result.target_rank, 1);
  EXPECT_EQ(result.node_index, 1);
}

TEST_F(SelectionTest, RandomTieBreakUsesAllCandidates) {
  Teach("primary", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  options_.tie_break = TieBreak::kRandom;
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  std::set<int> chosen;
  for (int i = 0; i < 100; ++i) {
    chosen.insert(Select(sla).node_index);
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST_F(SelectionTest, FreshestTieBreakPicksHighestTimestamp) {
  Teach("primary", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(10), Timestamp{300, 0});
  Teach("far", MillisecondsToMicroseconds(10), Timestamp{200, 0});
  options_.tie_break = TieBreak::kFreshest;
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  EXPECT_EQ(Select(sla).node_index, 1);
}

TEST_F(SelectionTest, CandidateEpsilonWidensFanoutSet) {
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("primary", MillisecondsToMicroseconds(100), Timestamp{600, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{400, 0});
  Teach("far", MillisecondsToMicroseconds(5), Timestamp{400, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::ReadMyWrites(),
                           MillisecondsToMicroseconds(300), 1.0)
                      .Add(Guarantee::Eventual(),
                           MillisecondsToMicroseconds(300), 0.8);

  // Exact ties only: the primary (1.0) is the sole candidate.
  const SelectionResult tight = Select(sla);
  EXPECT_EQ(tight.node_index, 0);
  EXPECT_EQ(tight.candidates.size(), 1u);

  // With epsilon 0.3 the eventual nodes (best 0.8) join the fan-out set, but
  // the chosen node is unchanged.
  options_.candidate_epsilon = 0.3;
  const SelectionResult wide = Select(sla);
  EXPECT_EQ(wide.node_index, 0);
  EXPECT_EQ(wide.candidates.size(), 3u);
  EXPECT_EQ(wide.candidates[0], 0);  // Chosen node first.
}

TEST_F(SelectionTest, ExpectedUtilityHelperMatchesManualProduct) {
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{600, 0});
  const SubSla sub{Guarantee::ReadMyWrites(), MillisecondsToMicroseconds(300),
                   0.7};
  EXPECT_DOUBLE_EQ(
      ExpectedUtility(sub, replicas_[1], session_, "k", kNow, monitor_),
      0.7);  // PCons 1 * PLat 1 * utility.
  const SubSla slow{Guarantee::ReadMyWrites(), 500, 0.7};  // 0.5 ms target.
  EXPECT_DOUBLE_EQ(
      ExpectedUtility(slow, replicas_[1], session_, "k", kNow, monitor_),
      0.0);  // No sample under 0.5 ms.
}

TEST_F(SelectionTest, DownNodeIsAvoided) {
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(50), Timestamp{100, 0});
  // The near node is dead: every recent outcome is a failure.
  for (int i = 0; i < 10; ++i) {
    monitor_.RecordFailure("near");
  }
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const SelectionResult result = Select(sla);
  EXPECT_NE(result.node_index, 1);
  EXPECT_EQ(result.node_index, 2);  // Next closest live node.
}

TEST_F(SelectionTest, DegradedNodeLosesToHealthyOne) {
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(50), Timestamp{100, 0});
  // near answers only half the time.
  for (int i = 0; i < 5; ++i) {
    monitor_.RecordSuccess("near");
    monitor_.RecordFailure("near");
    monitor_.RecordSuccess("far");
  }
  Teach("primary", MillisecondsToMicroseconds(400), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  // far: 1.0 expected; near: 0.5 expected.
  EXPECT_EQ(Select(sla).node_index, 2);
}

TEST_F(SelectionTest, BoundedUsesNow) {
  Teach("near", MillisecondsToMicroseconds(1),
        Timestamp{kNow - SecondsToMicroseconds(10), 0});
  const Sla sla = Sla().Add(Guarantee::BoundedSeconds(30),
                            SecondsToMicroseconds(10), 1.0);
  // Within the bound now...
  EXPECT_EQ(Select(sla).expected_utility, 1.0);
  // ...but not after 25 more seconds without fresh evidence.
  clock_.AdvanceMicros(SecondsToMicroseconds(25));
  const SelectionResult result = Select(sla);
  // Only the (authoritative) primary can still promise the bound.
  EXPECT_EQ(result.node_index, 0);
}

// Property test: against an oracle. For randomized monitor/session states,
// SelectTarget's expected_utility must equal the brute-force maximum over
// every (subSLA, replica) pair, and the chosen node must achieve it.
TEST_F(SelectionTest, MatchesBruteForceOracleOnRandomStates) {
  Random rng(2026);
  const Sla slas[] = {ShoppingCartSla(), PasswordCheckingSla(),
                      WebApplicationSla()};
  for (int trial = 0; trial < 500; ++trial) {
    Monitor monitor(&clock_);
    Session session(ShoppingCartSla());
    // Random evidence for each node.
    for (const ReplicaView& replica : replicas_) {
      const int samples = static_cast<int>(rng.NextUint64(12));
      for (int s = 0; s < samples; ++s) {
        monitor.RecordLatency(
            replica.name,
            MillisecondsToMicroseconds(1 + rng.NextUint64(600)));
      }
      if (rng.NextBool(0.8)) {
        monitor.RecordHighTimestamp(
            replica.name,
            Timestamp{clock_.NowMicros() -
                          static_cast<MicrosecondCount>(
                              rng.NextUint64(SecondsToMicroseconds(120))),
                      0});
      }
      if (rng.NextBool(0.2)) {
        monitor.RecordFailure(replica.name);
      }
    }
    // Random session history.
    if (rng.NextBool(0.5)) {
      session.RecordPut("k", Timestamp{clock_.NowMicros() -
                                           static_cast<MicrosecondCount>(
                                               rng.NextUint64(1000000)),
                                       0});
    }
    if (rng.NextBool(0.5)) {
      session.RecordGet("k", Timestamp{clock_.NowMicros() -
                                           static_cast<MicrosecondCount>(
                                               rng.NextUint64(1000000)),
                                       0});
    }

    const Sla& sla = slas[trial % 3];
    const SelectionResult result =
        SelectTarget(sla, replicas_, session, "k", clock_.NowMicros(),
                     monitor, options_, &rng_);

    double oracle_max = 0.0;
    for (size_t rank = 0; rank < sla.size(); ++rank) {
      for (const ReplicaView& replica : replicas_) {
        oracle_max = std::max(
            oracle_max, ExpectedUtility(sla[rank], replica, session, "k",
                                        clock_.NowMicros(), monitor));
      }
    }
    ASSERT_DOUBLE_EQ(result.expected_utility, oracle_max) << "trial " << trial;

    // The chosen node achieves the maximum through some subSLA.
    double chosen_best = 0.0;
    for (size_t rank = 0; rank < sla.size(); ++rank) {
      chosen_best = std::max(
          chosen_best,
          ExpectedUtility(sla[rank], replicas_[result.node_index], session,
                          "k", clock_.NowMicros(), monitor));
    }
    ASSERT_DOUBLE_EQ(chosen_best, oracle_max) << "trial " << trial;

    // A target subSLA was always selected. (Note: Figure 8 ties are pooled
    // across subSLAs, so the *chosen node* may reach maxutil through a
    // different subSLA than the target - that is the paper's semantics.)
    ASSERT_GE(result.target_rank, 0);
  }
}

// --- The client cache as a zero-RTT pseudo-replica ---

class CacheSelectionTest : public SelectionTest {
 protected:
  SelectionResult SelectWithCache(const Sla& sla, const CacheView& cached,
                                  std::string_view key = "k") {
    return SelectTarget(sla, replicas_, &cached, session_, key,
                        clock_.NowMicros(), monitor_, options_, &rng_);
  }
};

TEST_F(CacheSelectionTest, CacheWinsExactTieAtSameRank) {
  // Figure 8 keeps the earlier target on equality; within a rank the cache
  // is considered first, so an exact tie at the same rank serves locally.
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(300), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const CacheView cached{Timestamp{50, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_TRUE(result.cache_selected);
  EXPECT_EQ(result.target_rank, 0);
  EXPECT_DOUBLE_EQ(result.expected_utility, 1.0);
  // The network fallback is still computed and still excludes the cache.
  EXPECT_EQ(result.node_index, 1);
}

TEST_F(CacheSelectionTest, CacheAtLaterRankLosesToEarlierRankReplica) {
  // The cache's best subSLA is eventual (its entry predates the session's
  // write), the primary satisfies read-my-writes at the same utility: the
  // earlier-rank replica keeps the target.
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("primary", MillisecondsToMicroseconds(1), Timestamp{600, 0});
  Teach("near", MillisecondsToMicroseconds(5), Timestamp{400, 0});
  Teach("far", MillisecondsToMicroseconds(5), Timestamp{400, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::ReadMyWrites(),
                           SecondsToMicroseconds(10), 1.0)
                      .Add(Guarantee::Eventual(), SecondsToMicroseconds(10),
                           1.0);
  const CacheView cached{Timestamp{400, 0}, 0};  // Below the RMW floor.
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_FALSE(result.cache_selected);
  EXPECT_EQ(result.target_rank, 0);
  EXPECT_EQ(result.node_index, 0);
}

TEST_F(CacheSelectionTest, CacheBeatsReplicasWhenFresherThanFloor) {
  // Only the cache clears the read-my-writes floor within the latency
  // budget: the primary is too far, the secondaries too stale.
  session_.RecordPut("k", Timestamp{500, 0});
  Teach("primary", MillisecondsToMicroseconds(400), Timestamp{600, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{400, 0});
  const Sla sla = Sla()
                      .Add(Guarantee::ReadMyWrites(),
                           MillisecondsToMicroseconds(100), 1.0)
                      .Add(Guarantee::Eventual(),
                           MillisecondsToMicroseconds(100), 0.5);
  const CacheView cached{Timestamp{500, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_TRUE(result.cache_selected);
  EXPECT_EQ(result.target_rank, 0);
  EXPECT_DOUBLE_EQ(result.expected_utility, 1.0);
}

TEST_F(CacheSelectionTest, StrongIsNeverServedFromCache) {
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Strong(), SecondsToMicroseconds(10), 1.0);
  // Even an impossibly fresh entry: the cache is not authoritative.
  const CacheView cached{Timestamp{kNow, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_FALSE(result.cache_selected);
  EXPECT_EQ(result.node_index, 0);
}

TEST_F(CacheSelectionTest, SlowCacheTierLosesOnLatency) {
  Teach("primary", MillisecondsToMicroseconds(150), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(300), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), MillisecondsToMicroseconds(5), 1.0);
  // A modelled local tier slower than the subSLA's latency budget.
  const CacheView cached{Timestamp{100, 0}, MillisecondsToMicroseconds(10)};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_FALSE(result.cache_selected);
  EXPECT_EQ(result.node_index, 1);
}

TEST_F(CacheSelectionTest, CacheNeverJoinsCandidatesEvenWithEpsilon) {
  // Parallel-Get fan-out is a network concept: with a wide epsilon the
  // candidate list still holds only replica indices, cache win or not.
  Teach("primary", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("far", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  options_.candidate_epsilon = 1.0;
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const CacheView cached{Timestamp{100, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_TRUE(result.cache_selected);
  EXPECT_EQ(result.candidates.size(), 3u);
  for (const int index : result.candidates) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
  }
}

TEST_F(CacheSelectionTest, FreshestTieBreakStillGovernsNetworkFallback) {
  Teach("primary", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(10), Timestamp{300, 0});
  Teach("far", MillisecondsToMicroseconds(10), Timestamp{200, 0});
  options_.tie_break = TieBreak::kFreshest;
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const CacheView cached{Timestamp{999, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  // The cache serves, but the fallback node is still the freshest replica —
  // the pseudo-replica never participates in replica tie-breaking.
  EXPECT_TRUE(result.cache_selected);
  EXPECT_EQ(result.node_index, 1);
}

TEST_F(CacheSelectionTest, EmptyReplicaSetCanStillServeFromCache) {
  replicas_.clear();
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const CacheView cached{Timestamp{100, 0}, 0};
  const SelectionResult result = SelectWithCache(sla, cached);
  EXPECT_TRUE(result.cache_selected);
  EXPECT_EQ(result.target_rank, 0);
  EXPECT_EQ(result.node_index, -1);  // Nowhere to fall back to.
}

TEST_F(CacheSelectionTest, NullCacheMatchesPlainSelection) {
  Teach("primary", MillisecondsToMicroseconds(10), Timestamp{100, 0});
  Teach("near", MillisecondsToMicroseconds(1), Timestamp{100, 0});
  const Sla sla =
      Sla().Add(Guarantee::Eventual(), SecondsToMicroseconds(10), 1.0);
  const SelectionResult with_null =
      SelectTarget(sla, replicas_, nullptr, session_, "k", clock_.NowMicros(),
                   monitor_, options_, &rng_);
  const SelectionResult plain = Select(sla);
  EXPECT_FALSE(with_null.cache_selected);
  EXPECT_EQ(with_null.node_index, plain.node_index);
  EXPECT_EQ(with_null.target_rank, plain.target_rank);
  EXPECT_DOUBLE_EQ(with_null.expected_utility, plain.expected_utility);
}

TEST_F(CacheSelectionTest, CacheExpectedUtilityIsDeterministic) {
  const auto floor_400 = [](const Guarantee&) { return Timestamp{400, 0}; };
  const SubSla eventual{Guarantee::Eventual(), MillisecondsToMicroseconds(100),
                        0.7};
  const SubSla strong{Guarantee::Strong(), SecondsToMicroseconds(10), 1.0};
  // Fresh enough + fast enough: full utility, no probabilities involved.
  EXPECT_DOUBLE_EQ(
      CacheExpectedUtility(eventual, CacheView{Timestamp{500, 0}, 0},
                           floor_400),
      0.7);
  // Below the floor: zero.
  EXPECT_DOUBLE_EQ(
      CacheExpectedUtility(eventual, CacheView{Timestamp{300, 0}, 0},
                           floor_400),
      0.0);
  // Slower than the subSLA's budget: zero.
  EXPECT_DOUBLE_EQ(
      CacheExpectedUtility(
          eventual,
          CacheView{Timestamp{500, 0}, MillisecondsToMicroseconds(200)},
          floor_400),
      0.0);
  // Strong: always zero, regardless of freshness.
  EXPECT_DOUBLE_EQ(
      CacheExpectedUtility(strong, CacheView{Timestamp{500, 0}, 0},
                           [](const Guarantee&) { return Timestamp::Zero(); }),
      0.0);
}

}  // namespace
}  // namespace pileus::core
