// Tests for the consistency-aware client cache: the entry-invariant merge
// rule, LRU ordering under a byte budget, tombstones, invalidation, and the
// telemetry counters (DESIGN.md "Client cache").

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/cache/client_cache.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"

namespace pileus::cache {
namespace {

Timestamp Ts(int64_t physical) { return Timestamp{physical, 0}; }

ClientCache::Options SingleShard(size_t capacity_bytes) {
  ClientCache::Options options;
  options.capacity_bytes = capacity_bytes;
  options.shard_count = 1;  // Deterministic LRU order across keys.
  return options;
}

TEST(ClientCacheTest, MissThenHit) {
  ClientCache cache;
  EXPECT_FALSE(cache.Lookup("t", "k").has_value());
  cache.Admit("t", "k", "v", Ts(10), /*is_tombstone=*/false, Ts(20));
  const auto entry = cache.Lookup("t", "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, "v");
  EXPECT_EQ(entry->timestamp, Ts(10));
  EXPECT_EQ(entry->valid_through, Ts(20));
  EXPECT_FALSE(entry->is_tombstone);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ClientCacheTest, KeysAreTableScoped) {
  ClientCache cache;
  cache.Admit("t1", "k", "v1", Ts(10), false, Ts(10));
  cache.Admit("t2", "k", "v2", Ts(11), false, Ts(11));
  EXPECT_EQ(cache.Lookup("t1", "k")->value, "v1");
  EXPECT_EQ(cache.Lookup("t2", "k")->value, "v2");
}

TEST(ClientCacheTest, NewerTimestampReplacesAndKeepsMaxBound) {
  ClientCache cache;
  // An older fill with a *later* validity bound (e.g. read from a fresh
  // secondary) followed by a newer version with a tighter bound (e.g. our
  // own write-through): both assertions were sound, so the merged entry is
  // the newer version valid through the max of both bounds.
  cache.Admit("t", "k", "old", Ts(10), false, Ts(50));
  cache.Admit("t", "k", "new", Ts(20), false, Ts(20));
  const auto entry = cache.Lookup("t", "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, "new");
  EXPECT_EQ(entry->timestamp, Ts(20));
  EXPECT_EQ(entry->valid_through, Ts(50));
}

TEST(ClientCacheTest, EqualTimestampOnlyExtendsValidity) {
  ClientCache cache;
  cache.Admit("t", "k", "v", Ts(10), false, Ts(20));
  cache.Admit("t", "k", "v", Ts(10), false, Ts(90));
  EXPECT_EQ(cache.Lookup("t", "k")->valid_through, Ts(90));
  // A shorter bound for the same version must not shrink the entry.
  cache.Admit("t", "k", "v", Ts(10), false, Ts(30));
  EXPECT_EQ(cache.Lookup("t", "k")->valid_through, Ts(90));
}

TEST(ClientCacheTest, OlderEvidenceIsIgnored) {
  ClientCache cache;
  cache.Admit("t", "k", "new", Ts(20), false, Ts(25));
  cache.Admit("t", "k", "stale", Ts(10), false, Ts(99));
  const auto entry = cache.Lookup("t", "k");
  EXPECT_EQ(entry->value, "new");
  EXPECT_EQ(entry->timestamp, Ts(20));
  // The stale read's bound cannot vouch for this newer version.
  EXPECT_EQ(entry->valid_through, Ts(25));
}

TEST(ClientCacheTest, ValidThroughFlooredAtTimestamp) {
  ClientCache cache;
  cache.Admit("t", "k", "v", Ts(30), false, Ts(5));
  EXPECT_EQ(cache.Lookup("t", "k")->valid_through, Ts(30));
}

TEST(ClientCacheTest, TombstoneReplacesValueAndViceVersa) {
  ClientCache cache;
  cache.Admit("t", "k", "v", Ts(10), false, Ts(10));
  cache.Admit("t", "k", "", Ts(20), /*is_tombstone=*/true, Ts(20));
  auto entry = cache.Lookup("t", "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_tombstone);
  cache.Admit("t", "k", "reborn", Ts(30), false, Ts(30));
  entry = cache.Lookup("t", "k");
  EXPECT_FALSE(entry->is_tombstone);
  EXPECT_EQ(entry->value, "reborn");
}

TEST(ClientCacheTest, NegativeEntryForNeverExistedKey) {
  // A not-found reply admits a tombstone with timestamp Zero: "nothing at or
  // below valid_through".
  ClientCache cache;
  cache.Admit("t", "ghost", "", Timestamp::Zero(), true, Ts(40));
  const auto entry = cache.Lookup("t", "ghost");
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_tombstone);
  EXPECT_EQ(entry->timestamp, Timestamp::Zero());
  EXPECT_EQ(entry->valid_through, Ts(40));
}

TEST(ClientCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget for roughly two entries (cost = namespaced key + value + 64).
  ClientCache cache(SingleShard(200));
  cache.Admit("t", "a", std::string(20, 'x'), Ts(1), false, Ts(1));
  cache.Admit("t", "b", std::string(20, 'x'), Ts(2), false, Ts(2));
  EXPECT_TRUE(cache.Lookup("t", "a").has_value());  // a is now most recent.
  cache.Admit("t", "c", std::string(20, 'x'), Ts(3), false, Ts(3));
  const CacheStats stats = cache.Stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 200u);
  // b was least recently used, so it goes first.
  EXPECT_FALSE(cache.Lookup("t", "b").has_value());
  EXPECT_TRUE(cache.Lookup("t", "a").has_value());
  EXPECT_TRUE(cache.Lookup("t", "c").has_value());
}

TEST(ClientCacheTest, OversizedEntryNeverExceedsBudget) {
  ClientCache cache(SingleShard(100));
  cache.Admit("t", "huge", std::string(4096, 'x'), Ts(1), false, Ts(1));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_FALSE(cache.Lookup("t", "huge").has_value());
}

TEST(ClientCacheTest, ZeroCapacityDisablesAdmission) {
  ClientCache cache(SingleShard(0));
  cache.Admit("t", "k", "v", Ts(1), false, Ts(1));
  EXPECT_FALSE(cache.Lookup("t", "k").has_value());
  EXPECT_EQ(cache.Stats().admissions, 0u);
}

TEST(ClientCacheTest, InvalidateAndClear) {
  ClientCache cache;
  cache.Admit("t", "a", "v", Ts(1), false, Ts(1));
  cache.Admit("t", "b", "v", Ts(2), false, Ts(2));
  cache.Invalidate("t", "a");
  EXPECT_FALSE(cache.Lookup("t", "a").has_value());
  EXPECT_TRUE(cache.Lookup("t", "b").has_value());
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("t", "b").has_value());
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.invalidations, 2u);
}

TEST(ClientCacheTest, MetricsFlowThroughRegistryAndExporters) {
  telemetry::MetricsRegistry registry;
  ClientCache::Options options;
  options.metrics = &registry;
  ClientCache cache(options);
  cache.Admit("t", "k", "v", Ts(1), false, Ts(1));
  (void)cache.Lookup("t", "k");
  (void)cache.Lookup("t", "absent");
  EXPECT_EQ(registry.GetCounter("pileus_cache_hits_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("pileus_cache_misses_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("pileus_cache_admissions_total")->Value(), 1u);
  EXPECT_EQ(registry.GetGauge("pileus_cache_entries")->Value(), 1);
  EXPECT_GT(registry.GetGauge("pileus_cache_bytes")->Value(), 0);
  // The generic exporters pick the cache series up with no special-casing.
  EXPECT_NE(telemetry::ExportPrometheus(registry).find("pileus_cache_hits"),
            std::string::npos);
  EXPECT_NE(telemetry::ExportJson(registry).find("pileus_cache_bytes"),
            std::string::npos);
}

TEST(ClientCacheTest, ShardedCacheKeepsGlobalCounts) {
  ClientCache::Options options;
  options.shard_count = 4;
  options.capacity_bytes = size_t{1} << 20;
  ClientCache cache(options);
  for (int i = 0; i < 100; ++i) {
    cache.Admit("t", "k" + std::to_string(i), "v", Ts(i + 1), false,
                Ts(i + 1));
  }
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.admissions, 100u);
  EXPECT_EQ(stats.entries, 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cache.Lookup("t", "k" + std::to_string(i)).has_value());
  }
  EXPECT_EQ(cache.Stats().hits, 100u);
}

}  // namespace
}  // namespace pileus::cache
