// End-to-end tests over the *real* transports (threads, sockets, wall-clock
// time): a miniature geo deployment with in-process WAN emulation, and a TCP
// cluster, both driven through the public client API.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/client.h"
#include "src/core/prober.h"
#include "src/net/inproc.h"
#include "src/net/tcp.h"
#include "src/replication/replication_agent.h"
#include "src/storage/storage_node.h"
#include "src/txn/transaction.h"
#include "tests/testbed_fixture.h"

namespace pileus {
namespace {

using core::ChannelConnection;
using core::PileusClient;
using core::Replica;
using core::Session;
using core::TableView;
using storage::StorageNode;
using storage::Tablet;
using testbed::InProcCluster;

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

TEST(EndToEndInProcTest, PutThenStrongAndEventualReads) {
  InProcCluster cluster;
  auto client = cluster.MakeClient(PileusClient::Options{});
  Session session =
      client->BeginSession(core::PasswordCheckingSla()).value();

  ASSERT_TRUE(client->Put(session, "pw:alice", "hunter2").ok());

  Result<core::GetResult> strong = client->Get(session, "pw:alice");
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(strong->value, "hunter2");
  EXPECT_TRUE(strong->outcome.from_primary);
  EXPECT_EQ(strong->outcome.met_rank, 0);  // ~20 ms RTT < 150 ms.
}

TEST(EndToEndInProcTest, ReplicationMakesDataLocal) {
  InProcCluster cluster;
  auto client = cluster.MakeClient(PileusClient::Options{});
  Session session = client->BeginSession(core::ShoppingCartSla()).value();

  ASSERT_TRUE(client->Put(session, "cart", "3 items").ok());
  EXPECT_FALSE(cluster.local().FindTablet("t", "")->HandleGet("cart").found);

  cluster.PullNow();
  for (int i = 0; i < 100; ++i) {
    if (cluster.local().FindTablet("t", "")->HandleGet("cart").found) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(cluster.local().FindTablet("t", "")->HandleGet("cart").found);

  // Tell the monitor (as probes would) and watch the read turn local. Both
  // nodes need latency samples: an unmeasured node reports mean 0 and would
  // win the closest tie-break.
  ASSERT_TRUE(client->ProbeNode(0).ok());
  ASSERT_TRUE(client->ProbeNode(1).ok());
  Result<core::GetResult> result = client->Get(session, "cart");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "3 items");
  EXPECT_EQ(result->outcome.node_name, "Local");
  EXPECT_EQ(result->outcome.met_rank, 0);  // Read-my-writes, locally.
}

TEST(EndToEndInProcTest, ProberKeepsMonitorFresh) {
  InProcCluster cluster;
  PileusClient::Options options;
  options.monitor.probe_interval_us = 20 * kMs;
  auto client = cluster.MakeClient(options);
  {
    core::ThreadedProber prober(client.get(), 10 * kMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  EXPECT_GT(client->monitor().MeanLatency("England"), 0);
  EXPECT_GT(client->monitor().MeanLatency("Local"), 0);
}

TEST(EndToEndTcpTest, FullStackOverSockets) {
  // One primary storage node served over TCP; client + transactions on top.
  StorageNode node("primary", "dc1", RealClock::Instance());
  Tablet::Options tablet_options;
  tablet_options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", tablet_options).ok());

  net::TcpServer server;
  ASSERT_TRUE(
      server.Start(0, [&](const proto::Message& m) { return node.Handle(m); })
          .ok());

  TableView view;
  view.table_name = "t";
  view.replicas = {
      Replica{"primary", true,
              std::make_shared<ChannelConnection>(
                  std::make_shared<net::TcpChannel>(server.port()),
                  RealClock::Instance())}};
  view.primary_index = 0;
  PileusClient client(std::move(view), RealClock::Instance());

  Session session = client.BeginSession(core::ShoppingCartSla()).value();
  ASSERT_TRUE(client.Put(session, "k", "v-over-tcp").ok());
  Result<core::GetResult> got = client.Get(session, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v-over-tcp");
  EXPECT_EQ(got->outcome.met_rank, 0);

  // Transactions across the same socket.
  txn::TransactionFactory factory(&client);
  txn::Transaction txn = std::move(factory.Begin(session)).value();
  ASSERT_TRUE(txn.Put("a", "1").ok());
  ASSERT_TRUE(txn.Put("b", "2").ok());
  Result<txn::CommitInfo> commit = txn.Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->writes_applied, 2);

  Result<core::GetResult> a = client.Get(session, "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value, "1");
  EXPECT_EQ(a->timestamp, commit->commit_timestamp);
  server.Stop();
}

TEST(EndToEndTcpTest, SessionGuaranteesAcrossRestart) {
  // Monotonic reads hold even when the client reconnects mid-session.
  StorageNode node("primary", "dc1", RealClock::Instance());
  Tablet::Options tablet_options;
  tablet_options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", tablet_options).ok());

  net::TcpServer server;
  ASSERT_TRUE(
      server.Start(0, [&](const proto::Message& m) { return node.Handle(m); })
          .ok());

  TableView view;
  view.table_name = "t";
  auto channel = std::make_shared<net::TcpChannel>(server.port());
  view.replicas = {Replica{
      "primary", true,
      std::make_shared<ChannelConnection>(channel, RealClock::Instance())}};
  view.primary_index = 0;
  PileusClient client(std::move(view), RealClock::Instance());

  Session session =
      client
          .BeginSession(core::Sla().Add(core::Guarantee::Monotonic(),
                                        SecondsToMicroseconds(5), 1.0))
          .value();
  ASSERT_TRUE(client.Put(session, "k", "v1").ok());
  Result<core::GetResult> first = client.Get(session, "k");
  ASSERT_TRUE(first.ok());

  ASSERT_TRUE(client.Put(session, "k", "v2").ok());
  Result<core::GetResult> second = client.Get(session, "k");
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->timestamp, first->timestamp);
  EXPECT_EQ(second->value, "v2");
  server.Stop();
}

}  // namespace
}  // namespace pileus
