// End-to-end tests over the *real* transports (threads, sockets, wall-clock
// time): a miniature geo deployment with in-process WAN emulation, and a TCP
// cluster, both driven through the public client API.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/client.h"
#include "src/core/prober.h"
#include "src/net/inproc.h"
#include "src/net/tcp.h"
#include "src/replication/replication_agent.h"
#include "src/storage/storage_node.h"
#include "src/txn/transaction.h"

namespace pileus {
namespace {

using core::ChannelConnection;
using core::PileusClient;
using core::Replica;
using core::Session;
using core::TableView;
using replication::ReplicationAgent;
using replication::ThreadedPuller;
using storage::StorageNode;
using storage::Tablet;

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

// A two-node deployment over the in-process transport: "England" primary
// (20 ms away) and a "local" secondary (1 ms away), replicating every 50 ms.
class InProcCluster {
 public:
  InProcCluster()
      : primary_("England", "England", RealClock::Instance()),
        local_("Local", "Local", RealClock::Instance()) {
    Tablet::Options primary_options;
    primary_options.is_primary = true;
    EXPECT_TRUE(primary_.AddTablet("t", primary_options).ok());
    EXPECT_TRUE(local_.AddTablet("t", Tablet::Options{}).ok());

    network_.RegisterEndpoint("England", [this](const proto::Message& m) {
      return primary_.Handle(m);
    });
    network_.RegisterEndpoint("Local", [this](const proto::Message& m) {
      return local_.Handle(m);
    });

    agent_ = std::make_unique<ReplicationAgent>(
        local_.FindTablet("t", ""),
        ReplicationAgent::Options{.table = "t"});
    // The replication agent pulls over its own channel to the primary.
    auto sync_channel = std::shared_ptr<net::Channel>(
        network_.Connect("England", 10 * kMs));
    puller_ = std::make_unique<ThreadedPuller>(
        agent_.get(),
        [this, sync_channel](const proto::SyncRequest& request)
            -> Result<proto::SyncReply> {
          // Serialize through the node's lock via Handle().
          Result<proto::Message> reply =
              sync_channel->Call(request, SecondsToMicroseconds(5));
          if (!reply.ok()) {
            return reply.status();
          }
          if (auto* sync = std::get_if<proto::SyncReply>(&reply.value())) {
            return std::move(*sync);
          }
          return Status(StatusCode::kInternal, "unexpected sync reply");
        },
        50 * kMs);
  }

  std::unique_ptr<PileusClient> MakeClient(PileusClient::Options options) {
    TableView view;
    view.table_name = "t";
    view.replicas = {
        Replica{"England", true,
                std::make_shared<ChannelConnection>(
                    network_.Connect("England", 10 * kMs),
                    RealClock::Instance())},
        Replica{"Local", false,
                std::make_shared<ChannelConnection>(
                    network_.Connect("Local", 500),
                    RealClock::Instance())}};
    view.primary_index = 0;
    return std::make_unique<PileusClient>(std::move(view),
                                          RealClock::Instance(), options,
                                          nullptr);
  }

  void PullNow() { puller_->PullNow(); }
  StorageNode& local() { return local_; }

 private:
  StorageNode primary_;
  StorageNode local_;
  net::InProcNetwork network_;
  std::unique_ptr<ReplicationAgent> agent_;
  std::unique_ptr<ThreadedPuller> puller_;
};

TEST(EndToEndInProcTest, PutThenStrongAndEventualReads) {
  InProcCluster cluster;
  auto client = cluster.MakeClient(PileusClient::Options{});
  Session session =
      client->BeginSession(core::PasswordCheckingSla()).value();

  ASSERT_TRUE(client->Put(session, "pw:alice", "hunter2").ok());

  Result<core::GetResult> strong = client->Get(session, "pw:alice");
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(strong->value, "hunter2");
  EXPECT_TRUE(strong->outcome.from_primary);
  EXPECT_EQ(strong->outcome.met_rank, 0);  // ~20 ms RTT < 150 ms.
}

TEST(EndToEndInProcTest, ReplicationMakesDataLocal) {
  InProcCluster cluster;
  auto client = cluster.MakeClient(PileusClient::Options{});
  Session session = client->BeginSession(core::ShoppingCartSla()).value();

  ASSERT_TRUE(client->Put(session, "cart", "3 items").ok());
  EXPECT_FALSE(cluster.local().FindTablet("t", "")->HandleGet("cart").found);

  cluster.PullNow();
  for (int i = 0; i < 100; ++i) {
    if (cluster.local().FindTablet("t", "")->HandleGet("cart").found) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(cluster.local().FindTablet("t", "")->HandleGet("cart").found);

  // Tell the monitor (as probes would) and watch the read turn local. Both
  // nodes need latency samples: an unmeasured node reports mean 0 and would
  // win the closest tie-break.
  ASSERT_TRUE(client->ProbeNode(0).ok());
  ASSERT_TRUE(client->ProbeNode(1).ok());
  Result<core::GetResult> result = client->Get(session, "cart");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, "3 items");
  EXPECT_EQ(result->outcome.node_name, "Local");
  EXPECT_EQ(result->outcome.met_rank, 0);  // Read-my-writes, locally.
}

TEST(EndToEndInProcTest, ProberKeepsMonitorFresh) {
  InProcCluster cluster;
  PileusClient::Options options;
  options.monitor.probe_interval_us = 20 * kMs;
  auto client = cluster.MakeClient(options);
  {
    core::ThreadedProber prober(client.get(), 10 * kMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  EXPECT_GT(client->monitor().MeanLatency("England"), 0);
  EXPECT_GT(client->monitor().MeanLatency("Local"), 0);
}

TEST(EndToEndTcpTest, FullStackOverSockets) {
  // One primary storage node served over TCP; client + transactions on top.
  StorageNode node("primary", "dc1", RealClock::Instance());
  Tablet::Options tablet_options;
  tablet_options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", tablet_options).ok());

  net::TcpServer server;
  ASSERT_TRUE(
      server.Start(0, [&](const proto::Message& m) { return node.Handle(m); })
          .ok());

  TableView view;
  view.table_name = "t";
  view.replicas = {
      Replica{"primary", true,
              std::make_shared<ChannelConnection>(
                  std::make_shared<net::TcpChannel>(server.port()),
                  RealClock::Instance())}};
  view.primary_index = 0;
  PileusClient client(std::move(view), RealClock::Instance());

  Session session = client.BeginSession(core::ShoppingCartSla()).value();
  ASSERT_TRUE(client.Put(session, "k", "v-over-tcp").ok());
  Result<core::GetResult> got = client.Get(session, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v-over-tcp");
  EXPECT_EQ(got->outcome.met_rank, 0);

  // Transactions across the same socket.
  txn::TransactionFactory factory(&client);
  txn::Transaction txn = std::move(factory.Begin(session)).value();
  ASSERT_TRUE(txn.Put("a", "1").ok());
  ASSERT_TRUE(txn.Put("b", "2").ok());
  Result<txn::CommitInfo> commit = txn.Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->writes_applied, 2);

  Result<core::GetResult> a = client.Get(session, "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value, "1");
  EXPECT_EQ(a->timestamp, commit->commit_timestamp);
  server.Stop();
}

TEST(EndToEndTcpTest, SessionGuaranteesAcrossRestart) {
  // Monotonic reads hold even when the client reconnects mid-session.
  StorageNode node("primary", "dc1", RealClock::Instance());
  Tablet::Options tablet_options;
  tablet_options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", tablet_options).ok());

  net::TcpServer server;
  ASSERT_TRUE(
      server.Start(0, [&](const proto::Message& m) { return node.Handle(m); })
          .ok());

  TableView view;
  view.table_name = "t";
  auto channel = std::make_shared<net::TcpChannel>(server.port());
  view.replicas = {Replica{
      "primary", true,
      std::make_shared<ChannelConnection>(channel, RealClock::Instance())}};
  view.primary_index = 0;
  PileusClient client(std::move(view), RealClock::Instance());

  Session session =
      client
          .BeginSession(core::Sla().Add(core::Guarantee::Monotonic(),
                                        SecondsToMicroseconds(5), 1.0))
          .value();
  ASSERT_TRUE(client.Put(session, "k", "v1").ok());
  Result<core::GetResult> first = client.Get(session, "k");
  ASSERT_TRUE(first.ok());

  ASSERT_TRUE(client.Put(session, "k", "v2").ok());
  Result<core::GetResult> second = client.Get(session, "k");
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->timestamp, first->timestamp);
  EXPECT_EQ(second->value, "v2");
  server.Stop();
}

}  // namespace
}  // namespace pileus
