// Integration tests on the simulated Figure 10 test bed: replication flow,
// SLA-driven routing, latency injection, reconfiguration, and determinism.

#include <gtest/gtest.h>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "tests/testbed_fixture.h"

namespace pileus::experiments {
namespace {

using core::Guarantee;
using pileus::testbed::FastGeoOptions;

TEST(GeoTestbedTest, TopologyIsBuilt) {
  GeoTestbed testbed(FastGeoOptions());
  EXPECT_NE(testbed.node(kUs), nullptr);
  EXPECT_NE(testbed.node(kEngland), nullptr);
  EXPECT_NE(testbed.node(kIndia), nullptr);
  EXPECT_EQ(testbed.node(kChina), nullptr);  // Client-only site.
  EXPECT_EQ(testbed.primary_site(), kEngland);
  EXPECT_TRUE(
      testbed.node(kEngland)->FindTablet(kTableName, "k")->is_primary());
  EXPECT_FALSE(testbed.node(kUs)->FindTablet(kTableName, "k")->is_primary());
}

TEST(GeoTestbedTest, ReplicationPropagatesWithinOnePeriod) {
  GeoTestbed testbed(FastGeoOptions());
  testbed.StartReplication();

  auto* primary = testbed.node(kEngland)->FindTablet(kTableName, "");
  ASSERT_TRUE(primary->HandlePut("k", "v").ok());

  auto* us = testbed.node(kUs)->FindTablet(kTableName, "");
  EXPECT_FALSE(us->HandleGet("k").found);

  // One period + one WAN round trip is plenty.
  testbed.env().RunFor(SecondsToMicroseconds(11));
  EXPECT_TRUE(us->HandleGet("k").found);
  EXPECT_TRUE(
      testbed.node(kIndia)->FindTablet(kTableName, "")->HandleGet("k").found);
  EXPECT_GE(testbed.replication_rounds(), 2u);
}

TEST(GeoTestbedTest, IdleHeartbeatsAdvanceSecondaries) {
  GeoTestbed testbed(FastGeoOptions());
  testbed.StartReplication();
  auto* us = testbed.node(kUs)->FindTablet(kTableName, "");
  testbed.env().RunFor(SecondsToMicroseconds(11));
  const Timestamp first = us->high_timestamp();
  EXPECT_GT(first, Timestamp::Zero());
  testbed.env().RunFor(SecondsToMicroseconds(10));
  EXPECT_GT(us->high_timestamp(), first);  // No Puts, yet it advances.
}

TEST(GeoTestbedTest, ClientGetLatencyTracksRttMatrix) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();

  core::PileusClient::Options options;
  auto client = testbed.MakeClient(kUs, options);
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Strong()))
          .value();
  Result<core::GetResult> result =
      client->client().Get(session, workload::YcsbWorkload::KeyForIndex(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, kEngland);
  EXPECT_TRUE(result->outcome.from_primary);
  // US <-> England is ~147 ms.
  EXPECT_NEAR(static_cast<double>(result->outcome.rtt_us),
              MillisecondsToMicroseconds(147), 20000.0);
}

TEST(GeoTestbedTest, EventualReadsStayLocal) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Eventual()))
          .value();
  // Warm up the monitor, then check routing.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        client->client()
            .Get(session, workload::YcsbWorkload::KeyForIndex(i))
            .ok());
  }
  Result<core::GetResult> result =
      client->client().Get(session, workload::YcsbWorkload::KeyForIndex(50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, kUs);
  EXPECT_LT(result->outcome.rtt_us, MillisecondsToMicroseconds(5));
}

TEST(GeoTestbedTest, ReadMyWritesVisibleThroughLocalNodeAfterSync) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::ReadMyWrites()))
          .value();
  ASSERT_TRUE(client->client().Put(session, "mine", "my-value").ok());

  // Immediately after the Put only the primary can satisfy RMW.
  Result<core::GetResult> before = client->client().Get(session, "mine");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->value, "my-value");
  EXPECT_EQ(before->outcome.node_name, kEngland);

  // After a replication period the local secondary catches up; piggybacked
  // evidence or probes tell the client.
  testbed.env().RunFor(SecondsToMicroseconds(25));
  client->client().monitor().RecordHighTimestamp(
      kUs, testbed.node(kUs)->FindTablet(kTableName, "")->high_timestamp());
  Result<core::GetResult> after = client->client().Get(session, "mine");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value, "my-value");
  EXPECT_EQ(after->outcome.node_name, kUs);
}

TEST(GeoTestbedTest, LatencyInjectionIsVisibleToClients) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Strong()))
          .value();
  Result<core::GetResult> before = client->client().Get(session, "k");
  ASSERT_TRUE(before.ok());

  testbed.SetRttDelta(kUs, kEngland, MillisecondsToMicroseconds(300));
  Result<core::GetResult> during = client->client().Get(session, "k");
  ASSERT_TRUE(during.ok());
  EXPECT_GT(during->outcome.rtt_us,
            before->outcome.rtt_us + MillisecondsToMicroseconds(250));

  testbed.SetRttDelta(kUs, kEngland, 0);
  Result<core::GetResult> after = client->client().Get(session, "k");
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->outcome.rtt_us, MillisecondsToMicroseconds(200));
}

TEST(GeoTestbedTest, ProbesPopulateMonitorWithoutForegroundTraffic) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 10);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
  client->StartProbing();
  testbed.env().RunFor(SecondsToMicroseconds(30));
  // All three nodes have been probed: latency and staleness known.
  for (const char* node : {kUs, kEngland, kIndia}) {
    EXPECT_GT(client->client().monitor().MeanLatency(node), 0) << node;
    EXPECT_GT(client->client().monitor().KnownHighTimestamp(node),
              Timestamp::Zero())
        << node;
  }
  EXPECT_GT(client->probes_sent(), 0u);
  client->StopProbing();
}

TEST(GeoTestbedTest, MovePrimaryRetargetsReplicationAndClients) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 10);
  testbed.MovePrimary(kUs);
  EXPECT_EQ(testbed.primary_site(), kUs);
  testbed.StartReplication();

  EXPECT_TRUE(testbed.node(kUs)->FindTablet(kTableName, "")->is_primary());
  EXPECT_FALSE(
      testbed.node(kEngland)->FindTablet(kTableName, "")->is_primary());

  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Strong()))
          .value();
  ASSERT_TRUE(client->client().Put(session, "k", "v").ok());
  Result<core::GetResult> result = client->client().Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, kUs);
  EXPECT_LT(result->outcome.rtt_us, MillisecondsToMicroseconds(5));

  // The old primary receives the new data via replication.
  testbed.env().RunFor(SecondsToMicroseconds(11));
  EXPECT_TRUE(testbed.node(kEngland)
                  ->FindTablet(kTableName, "")
                  ->HandleGet("k")
                  .found);
}

TEST(GeoTestbedTest, SyncReplicasServeLocalStrongReads) {
  GeoTestbedOptions options = FastGeoOptions();
  options.sync_replica_count = 2;  // England + US.
  GeoTestbed testbed(options);
  PreloadKeys(testbed, 10);
  testbed.StartReplication();

  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Strong()))
          .value();
  // The Put pays the sync fan-out...
  Result<core::PutResult> put = client->client().Put(session, "k", "v");
  ASSERT_TRUE(put.ok());
  EXPECT_GT(put->rtt_us, MillisecondsToMicroseconds(250));

  // ...and the strong read is then served by the local sync replica.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->client().Get(session, "k").ok());
  }
  Result<core::GetResult> result = client->client().Get(session, "k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.node_name, kUs);
  EXPECT_TRUE(result->outcome.from_primary);
  EXPECT_EQ(result->value, "v");
}

TEST(GeoTestbedTest, DeleteReplicatesAndHonorsReadMyWrites) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  client->StartProbing();
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::ReadMyWrites()))
          .value();

  const std::string key = workload::YcsbWorkload::KeyForIndex(7);
  // The preloaded key exists, then this session deletes it. Read-my-writes
  // must observe the deletion immediately, even though the local secondary
  // still holds the old value.
  Result<core::GetResult> before = client->client().Get(session, key);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->found);

  ASSERT_TRUE(client->client().Delete(session, key).ok());
  Result<core::GetResult> after = client->client().Get(session, key);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->found);
  EXPECT_EQ(after->outcome.met_rank, 0);  // RMW satisfied (via the primary).

  // Replication spreads the tombstone to secondaries.
  testbed.env().RunFor(SecondsToMicroseconds(11));
  EXPECT_FALSE(
      testbed.node(kUs)->FindTablet(kTableName, "")->HandleGet(key).found);
  EXPECT_FALSE(
      testbed.node(kIndia)->FindTablet(kTableName, "")->HandleGet(key).found);
}

TEST(GeoTestbedTest, MonotonicNeverResurrectsDeletedValues) {
  // After observing a deletion (not-found with a tombstone timestamp), a
  // monotonic session must never see the old live value again, even from a
  // stale secondary.
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  client->StartProbing();
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Monotonic()))
          .value();

  const std::string key = workload::YcsbWorkload::KeyForIndex(3);
  // Delete at the primary, then observe the deletion via a strong read.
  ASSERT_TRUE(client->client().Delete(session, key).ok());
  Result<core::GetResult> observed = client->client().Get(
      session, key, SingleConsistencySla(Guarantee::Strong()));
  ASSERT_TRUE(observed.ok());
  EXPECT_FALSE(observed->found);

  // Monotonic reads for the rest of the session (the local secondary still
  // holds the live value until replication catches up) must stay not-found.
  for (int i = 0; i < 20; ++i) {
    Result<core::GetResult> result = client->client().Get(session, key);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->found) << "resurrected deleted value on read " << i;
    testbed.env().RunFor(MillisecondsToMicroseconds(200));
  }
}

TEST(GeoTestbedTest, RangeScanOverSimTestbed) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  client->StartProbing();
  testbed.env().RunFor(SecondsToMicroseconds(12));  // One replication round.
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Eventual()))
          .value();
  Result<core::RangeResult> result = client->client().GetRange(
      session, workload::YcsbWorkload::KeyForIndex(10),
      workload::YcsbWorkload::KeyForIndex(20), 0);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->items.size(), 10u);
  EXPECT_EQ(result->outcome.met_rank, 0);
  EXPECT_EQ(result->items.front().key,
            workload::YcsbWorkload::KeyForIndex(10));
}

TEST(GeoTestbedTest, NodeFailureIsRoutedAround) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  client->StartProbing();
  core::Session session =
      client->client()
          .BeginSession(SingleConsistencySla(Guarantee::Eventual()))
          .value();
  // Warm up: reads go to the local US node.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        client->client()
            .Get(session, workload::YcsbWorkload::KeyForIndex(i))
            .ok());
  }

  testbed.SetNodeDown(kUs, true);
  // Every Get during the outage still returns data (availability retries +
  // PNodeUp-driven selection route around the dead node).
  for (int i = 0; i < 20; ++i) {
    Result<core::GetResult> result =
        client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(result.ok()) << i << ": " << result.status();
    EXPECT_TRUE(result->found);
    EXPECT_NE(result->outcome.node_name, kUs);
  }

  // After recovery, probes rediscover the local node and reads return home.
  testbed.SetNodeDown(kUs, false);
  testbed.env().RunFor(SecondsToMicroseconds(120));
  bool back_home = false;
  for (int i = 0; i < 30 && !back_home; ++i) {
    Result<core::GetResult> result =
        client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(result.ok());
    back_home = result->outcome.node_name == kUs;
    testbed.env().RunFor(SecondsToMicroseconds(5));
  }
  EXPECT_TRUE(back_home);
}

TEST(GeoTestbedTest, CrashedNodeRecoversStalenessAndLocalRouting) {
  // Crash (silent, volatile state lost) instead of SetNodeDown (fast, clean
  // kUnavailable): the client must survive the outage window, and after
  // RestartNode the node must catch up on staleness via replication before
  // probes route reads back to it.
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kChina, core::PileusClient::Options{});
  client->StartProbing();
  core::Session session =
      client->client()
          .BeginSession(core::Sla()
                            .Add(Guarantee::Eventual(),
                                 MillisecondsToMicroseconds(400), 1.0)
                            .Add(Guarantee::Eventual(),
                                 SecondsToMicroseconds(2), 0.1))
          .value();
  // Warm up: China's reads settle on the US node (its closest replica).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        client->client()
            .Get(session, workload::YcsbWorkload::KeyForIndex(i))
            .ok());
  }

  testbed.CrashNode(kUs);
  // The outage is silent, so the first Get burns its whole deadline before
  // the monitor learns anything; after that reads are served elsewhere.
  int failures = 0;
  for (int i = 0; i < 15; ++i) {
    Result<core::GetResult> result =
        client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
    if (!result.ok()) {
      ++failures;
      continue;
    }
    EXPECT_TRUE(result->found);
    EXPECT_NE(result->outcome.node_name, kUs);
  }
  EXPECT_GE(failures, 1);
  EXPECT_LE(failures, 6);

  // A write lands at the primary while the node is dead: the restarted node
  // comes back both empty and stale.
  ASSERT_TRUE(client->client().Put(session, "fresh-key", "fresh").ok());
  const Timestamp fresh_high =
      testbed.primary_node()->FindTablet(kTableName, "")->high_timestamp();

  ASSERT_TRUE(testbed.RestartNode(kUs).ok());
  testbed.env().RunFor(SecondsToMicroseconds(120));
  // Replication caught the node up past the crash-window write...
  auto* us = testbed.node(kUs)->FindTablet(kTableName, "");
  EXPECT_TRUE(us->HandleGet("fresh-key").found);
  EXPECT_GE(us->high_timestamp(), fresh_high);
  // ...probes re-learned its staleness, and routing returned to the nearest
  // node.
  bool back_home = false;
  for (int i = 0; i < 30 && !back_home; ++i) {
    Result<core::GetResult> result =
        client->client().Get(session, workload::YcsbWorkload::KeyForIndex(i));
    ASSERT_TRUE(result.ok());
    back_home = result->outcome.node_name == kUs;
    testbed.env().RunFor(SecondsToMicroseconds(5));
  }
  EXPECT_TRUE(back_home);
  EXPECT_GT(client->client().monitor().KnownHighTimestamp(kUs),
            Timestamp::Zero());
}

TEST(GeoTestbedTest, PrimaryFailureKillsPutsButNotWeakReads) {
  GeoTestbed testbed(FastGeoOptions());
  PreloadKeys(testbed, 100);
  testbed.StartReplication();
  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client().BeginSession(core::ShoppingCartSla()).value();

  testbed.SetNodeDown(kEngland, true);
  EXPECT_FALSE(client->client().Put(session, "k", "v").ok());
  Result<core::GetResult> result =
      client->client().Get(session, workload::YcsbWorkload::KeyForIndex(3));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
}

// --- Live reconfiguration (Section 6.2) ---

TEST(GeoTestbedTest, TriggerFailoverMovesRoleAndRedirectsClients) {
  GeoTestbedOptions options = FastGeoOptions();
  options.sync_replica_count = 2;  // US holds the complete prefix: lossless.
  GeoTestbed testbed(options);
  PreloadKeys(testbed, 10);
  testbed.StartReplication();
  testbed.StartReconfiguration();
  EXPECT_EQ(testbed.current_config().epoch, 1u);
  EXPECT_EQ(testbed.current_config().primary, kEngland);

  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client().BeginSession(core::ShoppingCartSla()).value();
  ASSERT_TRUE(client->client().Put(session, "before", "v1").ok());

  ASSERT_TRUE(testbed.TriggerFailover(kUs).ok());
  EXPECT_EQ(testbed.primary_site(), kUs);
  EXPECT_EQ(testbed.current_config().epoch, 2u);
  EXPECT_EQ(testbed.failovers(), 1u);
  EXPECT_TRUE(testbed.node(kUs)->FindTablet(kTableName, "")->is_primary());
  EXPECT_FALSE(
      testbed.node(kEngland)->FindTablet(kTableName, "")->is_primary());

  // A write routed at the demoted primary bounces with the redirect payload.
  proto::PutRequest put;
  put.table = kTableName;
  put.key = "direct";
  put.value = "v";
  proto::Message bounced = testbed.node(kEngland)->Handle(put);
  const auto* err = std::get_if<proto::ErrorReply>(&bounced);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kNotPrimary);
  EXPECT_EQ(err->config_epoch, 2u);
  EXPECT_EQ(err->primary_hint, kUs);

  // The epoch-1 client redirects its next Put transparently and keeps its
  // session guarantees across the epochs.
  ASSERT_TRUE(client->client().Put(session, "after", "v2").ok());
  Result<core::GetResult> new_write = client->client().Get(session, "after");
  ASSERT_TRUE(new_write.ok());
  EXPECT_EQ(new_write->value, "v2");
  Result<core::GetResult> old_write = client->client().Get(session, "before");
  ASSERT_TRUE(old_write.ok());
  EXPECT_EQ(old_write->value, "v1");  // Read-my-writes spans the failover.
}

TEST(GeoTestbedTest, AutoFailoverPromotesSyncMemberOnPrimaryCrash) {
  GeoTestbedOptions options = FastGeoOptions();
  options.sync_replica_count = 2;  // England primary + US sync.
  options.enable_failover = true;
  GeoTestbed testbed(options);
  PreloadKeys(testbed, 50);
  testbed.StartReplication();
  testbed.StartReconfiguration();

  auto client = testbed.MakeClient(kUs, core::PileusClient::Options{});
  core::Session session =
      client->client().BeginSession(core::ShoppingCartSla()).value();
  ASSERT_TRUE(client->client().Put(session, "acked", "v").ok());

  testbed.CrashNode(kEngland);
  // Detection needs missed_heartbeats_to_fail (3) periods of 500 ms; give
  // the coordinator a few extra rounds.
  testbed.env().RunFor(SecondsToMicroseconds(5));

  EXPECT_GE(testbed.failovers(), 1u);
  EXPECT_GE(testbed.current_config().epoch, 2u);
  // The sync member holds the highest durable timestamp, so it wins.
  EXPECT_EQ(testbed.primary_site(), kUs);
  // No acked write lost: the promoted primary serves it...
  EXPECT_TRUE(testbed.primary_node()
                  ->FindTablet(kTableName, "")
                  ->HandleGet("acked")
                  .found);
  // ...and accepts new writes in the new epoch.
  proto::PutRequest put;
  put.table = kTableName;
  put.key = "post-failover";
  put.value = "v";
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(
      testbed.primary_node()->Handle(put)));
}

TEST(GeoTestbedTest, RestartedExPrimaryRejoinsFencedAsSecondary) {
  GeoTestbedOptions options = FastGeoOptions();
  options.sync_replica_count = 2;
  options.enable_failover = true;
  GeoTestbed testbed(options);
  PreloadKeys(testbed, 10);
  testbed.StartReplication();
  testbed.StartReconfiguration();

  testbed.CrashNode(kEngland);
  testbed.env().RunFor(SecondsToMicroseconds(5));
  ASSERT_GE(testbed.failovers(), 1u);
  const uint64_t epoch = testbed.current_config().epoch;

  ASSERT_TRUE(testbed.RestartNode(kEngland).ok());
  // The restarted ex-primary rejoins under the current epoch, demoted.
  auto installed = testbed.node(kEngland)->InstalledConfig(kTableName);
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->epoch, epoch);
  EXPECT_NE(installed->primary, kEngland);

  proto::PutRequest put;
  put.table = kTableName;
  put.key = "stale-route";
  put.value = "v";
  proto::Message reply = testbed.node(kEngland)->Handle(put);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kNotPrimary);
  EXPECT_EQ(err->primary_hint, testbed.primary_site());

  // As a plain secondary it catches up via replication.
  proto::PutRequest fresh;
  fresh.table = kTableName;
  fresh.key = "fresh";
  fresh.value = "v";
  ASSERT_TRUE(std::holds_alternative<proto::PutReply>(
      testbed.primary_node()->Handle(fresh)));
  testbed.env().RunFor(SecondsToMicroseconds(25));
  EXPECT_TRUE(testbed.node(kEngland)
                  ->FindTablet(kTableName, "")
                  ->HandleGet("fresh")
                  .found);
}

TEST(GeoTestbedTest, RunsAreDeterministic) {
  auto run = [] {
    ComparisonOptions options;
    options.sla = core::ShoppingCartSla();
    options.total_ops = 500;
    options.warmup_ops = 100;
    options.seed = 5;
    return RunStrategyCell(kIndia, core::ReadStrategy::kPileus, options)
        .AvgUtility();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(GeoTestbedTest, PileusMatchesOrBeatsFixedSchemes) {
  // The paper's headline (Section 5.6): at every site, Pileus delivers at
  // least the utility of the best fixed scheme. Mini version of Fig 11/12.
  for (const char* site : {kUs, kIndia, kChina}) {
    ComparisonOptions options;
    options.sla = core::PasswordCheckingSla();
    options.total_ops = 1500;
    options.warmup_ops = 500;
    options.seed = 21;
    double best_fixed = 0.0;
    for (core::ReadStrategy strategy :
         {core::ReadStrategy::kPrimary, core::ReadStrategy::kRandom,
          core::ReadStrategy::kClosest}) {
      best_fixed = std::max(best_fixed,
                            RunStrategyCell(site, strategy, options)
                                .AvgUtility());
    }
    const double pileus =
        RunStrategyCell(site, core::ReadStrategy::kPileus, options)
            .AvgUtility();
    EXPECT_GE(pileus + 0.02, best_fixed) << "site " << site;
  }
}

}  // namespace
}  // namespace pileus::experiments
