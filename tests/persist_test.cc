// Tests for durability: CRC32, the write-ahead log (including crash-shaped
// torn tails and corruption), checkpoints, and full tablet recovery.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/persist/durable_tablet.h"
#include "src/persist/group_commit.h"
#include "src/persist/wal.h"
#include "src/util/crc32.h"

namespace pileus::persist {
namespace {

// Unique temp directory per test, removed on teardown.
class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/pileus_persist_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    // Best-effort cleanup of the flat directory.
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)::system(cmd.c_str());
  }

  std::string WalPath() const { return dir_ + "/wal.log"; }

  // Truncates a file to `bytes` (simulating a crash mid-write).
  void TruncateFile(const std::string& path, off_t bytes) {
    ASSERT_EQ(::truncate(path.c_str(), bytes), 0);
  }

  off_t FileSize(const std::string& path) {
    struct stat st;
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return st.st_size;
  }

  // Flips one byte at `offset`.
  void CorruptByte(const std::string& path, off_t offset) {
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char b;
    ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
    b = static_cast<char>(b ^ 0xff);
    ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
    ::close(fd);
  }

  proto::ObjectVersion V(const std::string& key, const std::string& value,
                         int64_t ts) {
    proto::ObjectVersion version;
    version.key = key;
    version.value = value;
    version.timestamp = Timestamp{ts, 0};
    return version;
  }

  std::string dir_;
};

// --- CRC32 ---

TEST(Crc32Test, KnownVectors) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  const std::string data = "the quick brown fox";
  const uint32_t original = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(Crc32(mutated), original) << "flip at " << i;
  }
}

TEST(Crc32Test, SeedContinuation) {
  const uint32_t whole = Crc32("hello world");
  const uint32_t split = Crc32(" world", Crc32("hello"));
  EXPECT_EQ(split, whole);
}

// --- WriteAheadLog ---

TEST_F(PersistTest, ReplayOfMissingFileIsEmpty) {
  auto stats = WriteAheadLog::Replay(WalPath(), nullptr, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->versions, 0u);
  EXPECT_FALSE(stats->tail_torn);
}

TEST_F(PersistTest, AppendReplayRoundTrip) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(wal->AppendVersion(V("key" + std::to_string(i),
                                       "value" + std::to_string(i),
                                       1000 + i))
                      .ok());
    }
    ASSERT_TRUE(wal->AppendHeartbeat(Timestamp{5000, 0}).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }

  std::vector<proto::ObjectVersion> versions;
  std::vector<Timestamp> heartbeats;
  auto stats = WriteAheadLog::Replay(
      WalPath(),
      [&](const proto::ObjectVersion& v) { versions.push_back(v); },
      [&](const Timestamp& hb) { heartbeats.push_back(hb); });
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->versions, 100u);
  EXPECT_EQ(stats->heartbeats, 1u);
  EXPECT_FALSE(stats->tail_torn);
  ASSERT_EQ(versions.size(), 100u);
  EXPECT_EQ(versions[42].key, "key42");
  EXPECT_EQ(versions[42].value, "value42");
  EXPECT_EQ(versions[42].timestamp, (Timestamp{1042, 0}));
  ASSERT_EQ(heartbeats.size(), 1u);
  EXPECT_EQ(heartbeats[0], (Timestamp{5000, 0}));
}

TEST_F(PersistTest, ConfigRecordsReplayInLogOrder) {
  reconfig::ConfigEpoch first;
  first.epoch = 1;
  first.primary = "England";
  first.members = {"England", "US", "India"};
  first.sync_members = {"US"};
  reconfig::ConfigEpoch second = first;
  second.epoch = 2;
  second.primary = "US";
  second.sync_members = {"India"};
  {
    auto wal = WriteAheadLog::Open(WalPath());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->AppendConfig(first).ok());
    ASSERT_TRUE(wal->AppendVersion(V("k", "v", 100)).ok());
    ASSERT_TRUE(wal->AppendConfig(second).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }

  std::vector<reconfig::ConfigEpoch> configs;
  uint64_t versions = 0;
  auto stats = WriteAheadLog::Replay(
      WalPath(), [&](const proto::ObjectVersion&) { ++versions; }, nullptr,
      [&](const reconfig::ConfigEpoch& config) { configs.push_back(config); });
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->configs, 2u);
  EXPECT_EQ(versions, 1u);
  ASSERT_EQ(configs.size(), 2u);
  // A restarted node adopts the *last* journaled config; log order matters.
  EXPECT_EQ(configs[0], first);
  EXPECT_EQ(configs[1], second);
}

TEST_F(PersistTest, ConfigRecordsInvisibleToVersionReaders) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    ASSERT_TRUE(wal.ok());
    reconfig::ConfigEpoch config;
    config.epoch = 5;
    config.primary = "US";
    config.members = {"US"};
    ASSERT_TRUE(wal->AppendConfig(config).ok());
    ASSERT_TRUE(wal->AppendVersion(V("k", "v", 100)).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto versions = WriteAheadLog::ReadVersions(WalPath());
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 1u);
  EXPECT_EQ((*versions)[0].key, "k");
}

TEST_F(PersistTest, ReopenAppends) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    ASSERT_TRUE(wal->AppendVersion(V("a", "1", 1)).ok());
  }
  {
    auto wal = WriteAheadLog::Open(WalPath());
    ASSERT_TRUE(wal->AppendVersion(V("b", "2", 2)).ok());
  }
  auto stats = WriteAheadLog::Replay(WalPath(), nullptr, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->versions, 2u);
}

TEST_F(PersistTest, TornTailIsDiscardedNotFatal) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal->AppendVersion(V("k" + std::to_string(i), "v", i)).ok());
    }
  }
  // Chop a few bytes off the end: a crash mid-append.
  TruncateFile(WalPath(), FileSize(WalPath()) - 3);

  std::vector<proto::ObjectVersion> versions;
  auto stats = WriteAheadLog::Replay(
      WalPath(),
      [&](const proto::ObjectVersion& v) { versions.push_back(v); }, nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->tail_torn);
  EXPECT_EQ(stats->versions, 9u);  // The last record was torn.
  EXPECT_EQ(versions.back().key, "k8");
}

TEST_F(PersistTest, EverySuffixTruncationRecoversAPrefix) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->AppendVersion(V("k" + std::to_string(i), "v", i)).ok());
    }
  }
  const off_t full = FileSize(WalPath());
  uint64_t last_count = 5;
  for (off_t cut = full - 1; cut >= 0; cut -= 7) {
    TruncateFile(WalPath(), cut);
    auto stats = WriteAheadLog::Replay(WalPath(), nullptr, nullptr);
    ASSERT_TRUE(stats.ok()) << "cut at " << cut << ": " << stats.status();
    EXPECT_LE(stats->versions, last_count);
    last_count = stats->versions;
  }
}

TEST_F(PersistTest, MidLogCorruptionIsReported) {
  {
    auto wal = WriteAheadLog::Open(WalPath());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          wal->AppendVersion(V("k" + std::to_string(i), "vvvv", i)).ok());
    }
  }
  // Flip a payload byte in the middle of the file.
  CorruptByte(WalPath(), FileSize(WalPath()) / 2);
  auto stats = WriteAheadLog::Replay(WalPath(), nullptr, nullptr);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistTest, ResetEmptiesTheLog) {
  auto wal = WriteAheadLog::Open(WalPath());
  ASSERT_TRUE(wal->AppendVersion(V("a", "1", 1)).ok());
  ASSERT_GT(wal->bytes_written(), 0u);
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->bytes_written(), 0u);
  auto stats = WriteAheadLog::Replay(WalPath(), nullptr, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->versions, 0u);
}

// --- DurableTablet ---

TEST_F(PersistTest, DurableTabletSurvivesReopen) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;

  Timestamp last_put;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    ASSERT_TRUE(tablet.ok()) << tablet.status();
    for (int i = 0; i < 50; ++i) {
      clock.AdvanceMicros(5);
      auto reply = (*tablet)->HandlePut("k" + std::to_string(i),
                                        "v" + std::to_string(i));
      ASSERT_TRUE(reply.ok());
      last_put = reply->timestamp;
    }
  }  // "Crash": the tablet object is destroyed.

  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery_info().wal_versions, 50u);
  for (int i = 0; i < 50; ++i) {
    const auto reply = (*reopened)->HandleGet("k" + std::to_string(i));
    ASSERT_TRUE(reply.found) << i;
    EXPECT_EQ(reply.value, "v" + std::to_string(i));
  }
  EXPECT_GE((*reopened)->tablet().high_timestamp(), last_put);

  // The recovered primary never re-issues an old update timestamp, even if
  // the clock regressed across the restart.
  clock.SetMicros(500);
  auto fresh = (*reopened)->HandlePut("k0", "post-recovery");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->timestamp, last_put);
}

TEST_F(PersistTest, CheckpointPlusWalRecovery) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;

  {
    auto tablet = DurableTablet::Open(options, &clock);
    ASSERT_TRUE(tablet.ok());
    for (int i = 0; i < 20; ++i) {
      clock.AdvanceMicros(5);
      ASSERT_TRUE((*tablet)->HandlePut("pre" + std::to_string(i), "x").ok());
    }
    ASSERT_TRUE((*tablet)->Checkpoint().ok());
    EXPECT_EQ((*tablet)->wal().bytes_written(), 0u);
    for (int i = 0; i < 10; ++i) {
      clock.AdvanceMicros(5);
      ASSERT_TRUE((*tablet)->HandlePut("post" + std::to_string(i), "y").ok());
    }
  }

  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery_info().checkpoint_versions, 20u);
  EXPECT_EQ((*reopened)->recovery_info().wal_versions, 10u);
  EXPECT_TRUE((*reopened)->HandleGet("pre5").found);
  EXPECT_TRUE((*reopened)->HandleGet("post5").found);
}

TEST_F(PersistTest, TornWalTailAfterCrashStillRecovers) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    for (int i = 0; i < 10; ++i) {
      clock.AdvanceMicros(5);
      ASSERT_TRUE((*tablet)->HandlePut("k" + std::to_string(i), "v").ok());
    }
  }
  TruncateFile(dir_ + "/wal.log", FileSize(dir_ + "/wal.log") - 2);

  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->recovery_info().wal_tail_torn);
  EXPECT_EQ((*reopened)->recovery_info().wal_versions, 9u);
  EXPECT_TRUE((*reopened)->HandleGet("k8").found);
  EXPECT_FALSE((*reopened)->HandleGet("k9").found);  // The torn write.
}

TEST_F(PersistTest, ReplicatedStateIsJournaled) {
  ManualClock clock(1000);
  // A durable *secondary* applying a sync batch.
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = false;

  storage::Tablet::Options primary_options;
  primary_options.is_primary = true;
  storage::Tablet primary(primary_options, &clock);
  for (int i = 0; i < 15; ++i) {
    clock.AdvanceMicros(5);
    (void)primary.HandlePut("k" + std::to_string(i), "v");
  }

  Timestamp high_after_sync;
  {
    auto secondary = DurableTablet::Open(options, &clock);
    ASSERT_TRUE(secondary.ok());
    const proto::SyncReply reply =
        primary.HandleSync(Timestamp::Zero(), 0);
    ASSERT_TRUE((*secondary)->ApplySync(reply).ok());
    high_after_sync = (*secondary)->tablet().high_timestamp();
  }

  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->HandleGet("k14").found);
  // The heartbeat survived too: staleness knowledge is durable.
  EXPECT_EQ((*reopened)->tablet().high_timestamp(), high_after_sync);
}

TEST_F(PersistTest, AutoCheckpointTriggersOnThreshold) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  options.checkpoint_threshold_bytes = 2048;

  auto tablet = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(tablet.ok());
  const std::string value(128, 'v');
  for (int i = 0; i < 100; ++i) {
    clock.AdvanceMicros(5);
    ASSERT_TRUE((*tablet)->HandlePut("k" + std::to_string(i), value).ok());
  }
  // The WAL was truncated at least once.
  EXPECT_LT((*tablet)->wal().bytes_written(), 100 * (128 + 32));
  EXPECT_EQ(FileSize(dir_ + "/checkpoint.db") > 0, true);
}

TEST_F(PersistTest, CommitIsJournaled) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    proto::CommitRequest request;
    request.snapshot = Timestamp::Zero();
    for (const char* key : {"a", "b"}) {
      proto::ObjectVersion w;
      w.key = key;
      w.value = "tx";
      request.writes.push_back(w);
    }
    auto reply = (*tablet)->HandleCommit(request);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->committed);
  }
  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->HandleGet("a").found);
  EXPECT_TRUE((*reopened)->HandleGet("b").found);
  EXPECT_EQ((*reopened)->HandleGet("a").value_timestamp,
            (*reopened)->HandleGet("b").value_timestamp);
}

TEST_F(PersistTest, DeletesSurviveRecovery) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    ASSERT_TRUE((*tablet)->HandlePut("keep", "v").ok());
    clock.AdvanceMicros(10);
    ASSERT_TRUE((*tablet)->HandlePut("drop", "v").ok());
    clock.AdvanceMicros(10);
    ASSERT_TRUE((*tablet)->HandleDelete("drop").ok());
  }
  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->HandleGet("keep").found);
  EXPECT_FALSE((*reopened)->HandleGet("drop").found);
}

TEST_F(PersistTest, DeletesSurviveCheckpointedRecovery) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    ASSERT_TRUE((*tablet)->HandlePut("drop", "v").ok());
    clock.AdvanceMicros(10);
    ASSERT_TRUE((*tablet)->HandleDelete("drop").ok());
    ASSERT_TRUE((*tablet)->Checkpoint().ok());  // Tombstone in the snapshot.
  }
  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->HandleGet("drop").found);
  // A re-put after recovery must get a timestamp above the tombstone's.
  clock.SetMicros(500);  // Clock regression across restart.
  auto reput = (*reopened)->HandlePut("drop", "back");
  ASSERT_TRUE(reput.ok());
  EXPECT_TRUE((*reopened)->HandleGet("drop").found);
}

TEST_F(PersistTest, SyncEveryAppendMode) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  options.sync_every_append = true;
  auto tablet = DurableTablet::Open(options, &clock);
  ASSERT_TRUE(tablet.ok());
  ASSERT_TRUE((*tablet)->HandlePut("k", "v").ok());
  EXPECT_TRUE((*tablet)->HandleGet("k").found);
}

TEST_F(PersistTest, CorruptCheckpointIsRejected) {
  ManualClock clock(1000);
  DurableTablet::Options options;
  options.directory = dir_;
  options.tablet.is_primary = true;
  {
    auto tablet = DurableTablet::Open(options, &clock);
    for (int i = 0; i < 5; ++i) {
      clock.AdvanceMicros(5);
      ASSERT_TRUE((*tablet)->HandlePut("k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*tablet)->Checkpoint().ok());
  }
  CorruptByte(dir_ + "/checkpoint.db", FileSize(dir_ + "/checkpoint.db") / 2);
  auto reopened = DurableTablet::Open(options, &clock);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

// --- GroupCommitter unit tests ---
//
// The committer's contract (group_commit.h): an ack registered after its
// append runs only once a covering sync has completed, many acks share one
// sync, and a failed sync reports failure to every waiting ack instead of
// acking success for data that never reached disk.

TEST(GroupCommitTest, ManyAcksShareFewSyncs) {
  // A deliberately slow SyncFn makes registrations pile up behind the
  // in-progress barrier, so the next sync covers the whole backlog. 32 acks
  // must not cost anywhere near 32 syncs.
  std::atomic<int> sync_calls{0};
  GroupCommitter::Options options;
  options.max_batch = 64;
  options.max_delay_us = 50'000;
  GroupCommitter committer(
      [&sync_calls] {
        ++sync_calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return Status::Ok();
      },
      options);
  ASSERT_TRUE(committer.Start().ok());

  constexpr int kAcks = 32;
  std::atomic<int> acked_ok{0};
  std::atomic<int> acked_failed{0};
  for (int i = 0; i < kAcks; ++i) {
    committer.AckAfterSync([&](const Status& status) {
      if (status.ok()) {
        ++acked_ok;
      } else {
        ++acked_failed;
      }
    });
  }
  ASSERT_TRUE(committer.SyncNow().ok());
  committer.Stop();

  EXPECT_EQ(acked_ok.load(), kAcks);
  EXPECT_EQ(acked_failed.load(), 0);
  // 32 registered acks + SyncNow's own barrier ack.
  EXPECT_EQ(committer.acked(), static_cast<uint64_t>(kAcks) + 1);
  EXPECT_GE(committer.syncs(), 1u);
  // Registering 32 acks takes microseconds; each sync takes 10ms. Even with
  // maximal scheduler malice the backlog drains in a handful of batches.
  EXPECT_LE(committer.syncs(), 6u);
  EXPECT_LT(committer.syncs(), committer.acked());
}

TEST(GroupCommitTest, SyncFailureIsReportedToEveryWaitingAck) {
  // If fdatasync fails, acking success would tell clients their writes are
  // durable when they are not. Every ack in the failed batch must see the
  // error.
  GroupCommitter::Options options;
  options.max_batch = 1000;
  options.max_delay_us = SecondsToMicroseconds(10);
  GroupCommitter committer(
      [] { return Status(StatusCode::kUnavailable, "disk gone"); }, options);
  ASSERT_TRUE(committer.Start().ok());

  std::mutex mu;
  std::vector<Status> outcomes;
  for (int i = 0; i < 5; ++i) {
    committer.AckAfterSync([&](const Status& status) {
      std::lock_guard<std::mutex> lock(mu);
      outcomes.push_back(status);
    });
  }
  EXPECT_FALSE(committer.SyncNow().ok());
  committer.Stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(outcomes.size(), 5u);
  for (const Status& status : outcomes) {
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
}

TEST(GroupCommitTest, StopReleasesPendingAcksAfterAFinalSync) {
  // Acks registered just before shutdown must not be dropped: Stop() runs
  // one last covering sync and releases them, so a daemon draining its
  // request queue never strands a client reply.
  std::atomic<int> sync_calls{0};
  GroupCommitter::Options options;
  options.max_batch = 1000;
  options.max_delay_us = SecondsToMicroseconds(10);  // Never fires on its own.
  GroupCommitter committer(
      [&sync_calls] {
        ++sync_calls;
        return Status::Ok();
      },
      options);
  ASSERT_TRUE(committer.Start().ok());

  std::atomic<int> released{0};
  for (int i = 0; i < 7; ++i) {
    committer.AckAfterSync([&](const Status& status) {
      EXPECT_TRUE(status.ok());
      ++released;
    });
  }
  committer.Stop();
  EXPECT_EQ(released.load(), 7);
  EXPECT_GE(sync_calls.load(), 1);
  EXPECT_EQ(committer.acked(), 7u);
}

TEST(GroupCommitTest, AckWithoutRunningCommitterSyncsInline) {
  // Before Start() (or after Stop()) there is no committer thread to defer
  // to, so AckAfterSync degrades to sync-then-ack inline rather than parking
  // the ack forever.
  std::atomic<int> sync_calls{0};
  GroupCommitter committer(
      [&sync_calls] {
        ++sync_calls;
        return Status::Ok();
      },
      GroupCommitter::Options{});

  bool acked = false;
  committer.AckAfterSync([&acked](const Status& status) {
    EXPECT_TRUE(status.ok());
    acked = true;
  });
  EXPECT_TRUE(acked);
  EXPECT_EQ(sync_calls.load(), 1);
}

}  // namespace
}  // namespace pileus::persist
