// Tests for src/common: Status/Result, Timestamp, clocks, Random.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace pileus {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(StatusCode::kNotFound, "key 'x' missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "key 'x' missing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: key 'x' missing");
}

TEST(StatusTest, ErrorWithoutMessage) {
  Status status(StatusCode::kTimeout);
  EXPECT_EQ(status.ToString(), "TIMEOUT");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status(StatusCode::kTimeout, "a"), Status(StatusCode::kTimeout, "b"));
  EXPECT_NE(Status(StatusCode::kTimeout), Status(StatusCode::kUnavailable));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kOutOfRange);
       ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN")
        << "code " << code;
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status(StatusCode::kConflict, "boom"); };
  auto outer = [&]() -> Status {
    PILEUS_RETURN_IF_ERROR(inner());
    ADD_FAILURE() << "should not reach";
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kConflict);
}

// --- Result ---

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(StatusCode::kNotFound, "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(result).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

// --- Timestamp ---

TEST(TimestampTest, OrderingByPhysicalThenSequence) {
  const Timestamp a{100, 0};
  const Timestamp b{100, 1};
  const Timestamp c{101, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Timestamp{100, 0}));
}

TEST(TimestampTest, ZeroAndMax) {
  EXPECT_TRUE(Timestamp::Zero().IsZero());
  EXPECT_FALSE(Timestamp::Max().IsZero());
  EXPECT_LT(Timestamp::Zero(), Timestamp::Max());
  EXPECT_LT((Timestamp{INT64_MAX, 0}), Timestamp::Max());
}

TEST(TimestampTest, MaxTimestampPicksLarger) {
  const Timestamp a{5, 9};
  const Timestamp b{6, 0};
  EXPECT_EQ(MaxTimestamp(a, b), b);
  EXPECT_EQ(MaxTimestamp(b, a), b);
  EXPECT_EQ(MaxTimestamp(a, a), a);
}

TEST(TimestampTest, ToStringIsReadable) {
  EXPECT_EQ((Timestamp{1234, 7}).ToString(), "1234.000007");
}

// --- Clocks ---

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetMicros(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock* clock = RealClock::Instance();
  const MicrosecondCount a = clock->NowMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const MicrosecondCount b = clock->NowMicros();
  EXPECT_GE(b - a, 1000);
}

TEST(ClockTest, OffsetClockShiftsBase) {
  ManualClock base(1000);
  OffsetClock ahead(&base, 500);
  OffsetClock behind(&base, -300);
  EXPECT_EQ(ahead.NowMicros(), 1500);
  EXPECT_EQ(behind.NowMicros(), 700);
  base.AdvanceMicros(100);
  EXPECT_EQ(ahead.NowMicros(), 1600);
  ahead.set_offset(0);
  EXPECT_EQ(ahead.NowMicros(), base.NowMicros());
}

TEST(ClockTest, UnitConversions) {
  EXPECT_EQ(MillisecondsToMicroseconds(3), 3000);
  EXPECT_EQ(SecondsToMicroseconds(2), 2000000);
  EXPECT_DOUBLE_EQ(MicrosecondsToMilliseconds(1500), 1.5);
}

// --- Random ---

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, Int64RangeInclusive) {
  Random rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt64InRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit over 1000 draws.
}

TEST(RandomTest, BoolProbabilityExtremes) {
  Random rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RandomTest, BoolProbabilityRoughlyCalibrated) {
  Random rng(15);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RandomTest, ForkGivesIndependentStream) {
  Random parent(19);
  Random child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace pileus
