// Telemetry subsystem tests: registry semantics, label handling, exporter
// goldens, trace-buffer ring behavior, multi-threaded recording (exercised
// under TSan in CI), and the acceptance check that a simulated GeoTestbed
// run's telemetry matches the workload runner's own tallies.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pileus::telemetry {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops_total");
  Counter* b = registry.GetCounter("ops_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "ops_total");
  EXPECT_NE(registry.GetCounter("other_total"), a);
  EXPECT_EQ(registry.GetGauge("depth"), registry.GetGauge("depth"));
  EXPECT_EQ(registry.GetHistogram("lat_us"), registry.GetHistogram("lat_us"));
}

TEST(MetricsRegistryTest, CounterAccumulatesAcrossShards) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ops_total");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(MetricsRegistryTest, HistogramMergesShards) {
  MetricsRegistry registry;
  HistogramMetric* histogram = registry.GetHistogram("lat_us");
  for (int i = 1; i <= 100; ++i) {
    histogram->Record(i);
  }
  Histogram merged = histogram->Merged();
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 100);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsRecordings) {
  MetricsRegistry registry(/*enabled=*/false);
  Counter* counter = registry.GetCounter("ops_total");
  HistogramMetric* histogram = registry.GetHistogram("lat_us");
  Gauge* gauge = registry.GetGauge("depth");
  counter->Increment(5);
  histogram->Record(123);
  gauge->Set(9);  // Gauges are scrape-time mirrors; never gated.
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Merged().count(), 0u);
  EXPECT_EQ(gauge->Value(), 9);

  registry.SetEnabled(true);
  counter->Increment(5);
  histogram->Record(123);
  EXPECT_EQ(counter->Value(), 5u);
  EXPECT_EQ(histogram->Merged().count(), 1u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsGauges) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total")->Increment(3);
  registry.GetHistogram("lat_us")->Record(50);
  registry.GetGauge("depth")->Set(11);
  registry.ResetValues();
  EXPECT_EQ(registry.GetCounter("ops_total")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("lat_us")->Merged().count(), 0u);
  EXPECT_EQ(registry.GetGauge("depth")->Value(), 11);
}

TEST(MetricsRegistryTest, CollectSortsByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total")->Increment();
  registry.GetCounter("aa_total")->Increment(2);
  MetricsRegistry::Snapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "aa_total");
  EXPECT_EQ(snapshot.counters[0].value, 2u);
  EXPECT_EQ(snapshot.counters[1].name, "zz_total");
}

TEST(MetricsRegistryTest, WithLabelsBuildsAndSplitsRoundTrip) {
  const std::string name =
      WithLabels("pileus_client_gets_total", {{"table", "ycsb"}, {"rank", "0"}});
  EXPECT_EQ(name, "pileus_client_gets_total{table=\"ycsb\",rank=\"0\"}");
  std::string base;
  std::string labels;
  SplitLabels(name, &base, &labels);
  EXPECT_EQ(base, "pileus_client_gets_total");
  EXPECT_EQ(labels, "table=\"ycsb\",rank=\"0\"");

  SplitLabels("plain_total", &base, &labels);
  EXPECT_EQ(base, "plain_total");
  EXPECT_TRUE(labels.empty());
}

TEST(MetricsRegistryTest, WithLabelsSanitizesBaseAndEscapesValues) {
  EXPECT_EQ(WithLabels("bad name-1!", {}), "bad_name_1_");
  EXPECT_EQ(WithLabels("m", {{"k", "a\"b\\c"}}), "m{k=\"a\\\"b\\\\c\"}");
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  // Run under TSan in CI: hammers the sharded counter and histogram paths
  // from many threads while a scraper collects concurrently.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ops_total");
  HistogramMetric* histogram = registry.GetHistogram("lat_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        if (i % 100 == 0) {
          histogram->Record(i);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      (void)registry.Collect();
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->Merged().count(),
            static_cast<uint64_t>(kThreads) * (kPerThread / 100));
}

TEST(ExportTest, PrometheusCountersAndGaugesGolden) {
  MetricsRegistry registry;
  registry.GetCounter(WithLabels("requests_total", {{"region", "eu"}}))
      ->Increment(3);
  registry.GetCounter(WithLabels("requests_total", {{"region", "us"}}))
      ->Increment(5);
  registry.GetGauge("queue_depth")->Set(7);
  EXPECT_EQ(ExportPrometheus(registry),
            "# TYPE requests_total counter\n"
            "requests_total{region=\"eu\"} 3\n"
            "requests_total{region=\"us\"} 5\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 7\n");
}

TEST(ExportTest, PrometheusHistogramIsCumulative) {
  MetricsRegistry registry;
  HistogramMetric* histogram = registry.GetHistogram("lat_us");
  histogram->Record(1);
  histogram->Record(1);
  histogram->Record(1000);
  const std::string out = ExportPrometheus(registry);
  EXPECT_NE(out.find("# TYPE lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: the +Inf bucket and _count both see every sample.
  EXPECT_NE(out.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_us_count 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_us_sum 1002\n"), std::string::npos);
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total")->Increment(4);
  registry.GetGauge("depth")->Set(-2);
  EXPECT_EQ(ExportJson(registry),
            "{\"counters\":{\"ops_total\":4},"
            "\"gauges\":{\"depth\":-2},\"histograms\":{}}");
}

TEST(ExportTest, SummaryListsSectionsAndHandlesEmpty) {
  MetricsRegistry empty;
  EXPECT_EQ(ExportSummary(empty), "(no metrics recorded)\n");

  MetricsRegistry registry;
  registry.GetCounter("ops_total")->Increment(9);
  registry.GetGauge("depth")->Set(1);
  registry.GetHistogram("lat_us")->Record(10);
  const std::string out = ExportSummary(registry);
  EXPECT_NE(out.find("counters:\n"), std::string::npos);
  EXPECT_NE(out.find("gauges:\n"), std::string::npos);
  EXPECT_NE(out.find("histograms:\n"), std::string::npos);
  EXPECT_NE(out.find("ops_total"), std::string::npos);
}

TEST(ExportTest, ExportAsDispatchesOnFormat) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total")->Increment();
  EXPECT_EQ(ExportAs(registry, "prometheus"), ExportPrometheus(registry));
  EXPECT_EQ(ExportAs(registry, "json"), ExportJson(registry));
  EXPECT_EQ(ExportAs(registry, "summary"), ExportSummary(registry));
  EXPECT_EQ(ExportAs(registry, ""), ExportSummary(registry));
}

TEST(TraceTest, EventToJsonGolden) {
  TraceEvent event;
  event.op = TraceOp::kGet;
  event.time_us = 1234;
  event.table = "ycsb";
  event.key = "user42";
  event.node = "US";
  event.node_index = 1;
  event.target_rank = 0;
  event.met_rank = 1;
  event.consistency = "eventual";
  event.utility = 0.5;
  event.rtt_us = 1500;
  event.read_timestamp = Timestamp{1000, 2};
  event.min_acceptable = Timestamp{900, 0};
  event.from_primary = false;
  event.retried = true;
  event.ok = true;
  EXPECT_EQ(event.ToJson(),
            "{\"op\":\"get\",\"time_us\":1234,\"table\":\"ycsb\","
            "\"key\":\"user42\",\"node\":\"US\",\"node_index\":1,"
            "\"target_rank\":0,\"met_rank\":1,\"consistency\":\"eventual\","
            "\"utility\":0.5,\"rtt_us\":1500,"
            "\"read_ts\":{\"physical_us\":1000,\"sequence\":2},"
            "\"min_acceptable\":{\"physical_us\":900,\"sequence\":0},"
            "\"from_primary\":false,\"retried\":true,\"ok\":true}");
}

TEST(TraceTest, RingOverwritesOldestAndCountsDrops) {
  TraceBuffer buffer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.time_us = i;
    buffer.OnTrace(event);
  }
  EXPECT_EQ(buffer.total_recorded(), 5u);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time_us, 2);  // Oldest surviving.
  EXPECT_EQ(events[2].time_us, 4);  // Newest.

  std::vector<TraceEvent> drained = buffer.Drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(buffer.size(), 0u);
}

class RecordingSink : public TraceSink {
 public:
  void OnTrace(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

TEST(TraceTest, ForwardSinkSeesEveryEvent) {
  TraceBuffer buffer(/*capacity=*/2);
  RecordingSink sink;
  buffer.set_forward_sink(&sink);
  for (int i = 0; i < 4; ++i) {
    TraceEvent event;
    event.time_us = i;
    buffer.OnTrace(event);
  }
  // The ring kept 2; the forward sink got all 4, including overwritten ones.
  EXPECT_EQ(buffer.size(), 2u);
  ASSERT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(sink.events[3].time_us, 3);
}

TEST(TraceTest, ExportTracesJsonHonorsMaxEvents) {
  TraceBuffer buffer(/*capacity=*/8);
  for (int i = 0; i < 3; ++i) {
    TraceEvent event;
    event.time_us = i;
    buffer.OnTrace(event);
  }
  EXPECT_EQ(ExportTracesJson(buffer, 0).find('['), 0u);
  const std::string last_one = ExportTracesJson(buffer, 1);
  EXPECT_NE(last_one.find("\"time_us\":2"), std::string::npos);
  EXPECT_EQ(last_one.find("\"time_us\":0"), std::string::npos);
}

// Acceptance: a simulated worldwide run's telemetry must agree with the
// workload runner's own accounting — per-subSLA target/met counts, error
// counts, and total delivered utility.
TEST(GeoTestbedTelemetryTest, TelemetryMatchesRunnerTallies) {
  using experiments::GeoTestbed;
  using experiments::GeoTestbedOptions;
  using experiments::kTableName;
  using experiments::kUs;

  GeoTestbedOptions testbed_options;
  testbed_options.seed = 11;
  testbed_options.replication_period_us = SecondsToMicroseconds(10);
  GeoTestbed testbed(testbed_options);
  experiments::PreloadKeys(testbed, 200);
  testbed.StartReplication();

  MetricsRegistry registry;
  TraceBuffer traces(/*capacity=*/1 << 15);
  core::PileusClient::Options client_options;
  client_options.metrics = &registry;
  client_options.trace_sink = &traces;
  std::unique_ptr<experiments::GeoClient> client =
      testbed.MakeClient(kUs, client_options);

  experiments::RunOptions run_options;
  run_options.sla = core::Sla()
                        .Add(core::Guarantee::Strong(),
                             MillisecondsToMicroseconds(200), 1.0)
                        .Add(core::Guarantee::Eventual(),
                             MillisecondsToMicroseconds(400), 0.5);
  run_options.workload.key_count = 200;
  run_options.total_ops = 1200;
  // Zero warm-up so the client-side counters and the runner count the same
  // operations.
  run_options.warmup_ops = 0;
  const experiments::RunStats stats =
      experiments::RunYcsb(testbed, *client, run_options);

  ASSERT_GT(stats.gets, 0u);
  ASSERT_GT(stats.puts, 0u);

  const auto counter_value = [&](std::string_view base,
                                 std::initializer_list<
                                     std::pair<std::string_view,
                                               std::string_view>>
                                     labels) {
    return registry.GetCounter(WithLabels(base, labels))->Value();
  };
  const uint64_t gets =
      counter_value("pileus_client_gets_total", {{"table", kTableName}});
  const uint64_t puts =
      counter_value("pileus_client_puts_total", {{"table", kTableName}});
  const uint64_t get_errors =
      counter_value("pileus_client_get_errors_total", {{"table", kTableName}});
  const uint64_t met_none = counter_value(
      "pileus_client_sla_met_total", {{"table", kTableName}, {"rank", "none"}});
  EXPECT_EQ(gets, stats.gets);
  EXPECT_EQ(puts, stats.puts);
  EXPECT_EQ(get_errors, stats.get_errors);

  // Per-rank met/target counts. RunStats lumps "no subSLA met" and outright
  // errors together under rank -1; the client telemetry splits them.
  uint64_t runner_met_total = 0;
  for (const auto& [rank, count] : stats.met_counts) {
    if (rank < 0) {
      EXPECT_EQ(count, met_none + get_errors);
      continue;
    }
    runner_met_total += count;
    EXPECT_EQ(counter_value("pileus_client_sla_met_total",
                            {{"table", kTableName},
                             {"rank", std::to_string(rank)}}),
              count)
        << "met rank " << rank;
  }
  std::map<int, uint64_t> runner_targets;
  for (const auto& [key, count] : stats.target_node_counts) {
    runner_targets[key.first] += count;
  }
  for (const auto& [rank, count] : runner_targets) {
    if (rank < 0) {
      continue;
    }
    EXPECT_EQ(counter_value("pileus_client_sla_target_total",
                            {{"table", kTableName},
                             {"rank", std::to_string(rank)}}),
              count)
        << "target rank " << rank;
  }

  // Utility: the counter accumulates micro-utils, rounded per operation.
  const double telemetry_utility =
      static_cast<double>(counter_value("pileus_client_utility_micros_total",
                                        {{"table", kTableName}})) /
      1e6;
  EXPECT_NEAR(telemetry_utility, stats.utility_sum, 0.01);

  // The Get latency histogram records successful Gets only (errors are
  // counted, not timed), so it must match the runner's success count.
  const Histogram get_latency =
      registry
          .GetHistogram(WithLabels("pileus_client_get_latency_us",
                                   {{"table", kTableName}}))
          ->Merged();
  EXPECT_EQ(get_latency.count(), stats.gets - stats.get_errors);

  // Traces: one kGet event per Get, one kPut per Put, nothing dropped.
  EXPECT_EQ(traces.dropped(), 0u);
  uint64_t trace_gets = 0;
  uint64_t trace_puts = 0;
  uint64_t trace_met[2] = {0, 0};
  for (const TraceEvent& event : traces.Snapshot()) {
    if (event.op == TraceOp::kGet) {
      ++trace_gets;
      if (event.met_rank >= 0 && event.met_rank < 2) {
        ++trace_met[event.met_rank];
      }
    } else if (event.op == TraceOp::kPut) {
      ++trace_puts;
    }
  }
  EXPECT_EQ(trace_gets, stats.gets);
  EXPECT_EQ(trace_puts, stats.puts);
  for (int rank = 0; rank < 2; ++rank) {
    const auto it = stats.met_counts.find(rank);
    EXPECT_EQ(trace_met[rank], it == stats.met_counts.end() ? 0u : it->second)
        << "trace met rank " << rank;
  }
  EXPECT_GT(runner_met_total, 0u);
}

}  // namespace
}  // namespace pileus::telemetry
