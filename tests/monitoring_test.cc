// Tests for the shared-monitoring merge engine and digest codec
// (DESIGN.md Section 12).

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/monitoring/aggregator.h"
#include "src/monitoring/digest.h"

namespace pileus::monitoring {
namespace {

NodeCondition MakeCondition(const std::string& node, uint64_t samples,
                            MicrosecondCount p50_us, double p_up = 1.0) {
  NodeCondition cond;
  cond.node = node;
  cond.sample_count = samples;
  cond.mean_latency_us = p50_us;
  cond.p50_latency_us = p50_us;
  cond.p95_latency_us = p50_us * 2;
  cond.p99_latency_us = p50_us * 3;
  cond.high_timestamp = Timestamp{SecondsToMicroseconds(500), 1};
  cond.high_age_us = 1000;
  cond.p_up = p_up;
  return cond;
}

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest()
      : clock_(SecondsToMicroseconds(1000)), aggregator_(&clock_) {}

  ManualClock clock_;
  MonitorAggregator aggregator_;
};

TEST_F(AggregatorTest, EmptyDigestHasVersionZero) {
  const ConditionDigest digest = aggregator_.Digest();
  EXPECT_EQ(digest.version, 0u);
  EXPECT_TRUE(digest.nodes.empty());
}

TEST_F(AggregatorTest, IngestBumpsVersionAndExposesNode) {
  ASSERT_TRUE(aggregator_.Ingest("client-a", 1, {MakeCondition("n1", 10, 5000)}));
  const ConditionDigest digest = aggregator_.Digest();
  EXPECT_EQ(digest.version, 1u);
  ASSERT_EQ(digest.nodes.size(), 1u);
  EXPECT_EQ(digest.nodes[0].node, "n1");
  EXPECT_EQ(digest.nodes[0].p50_latency_us, 5000);
  EXPECT_EQ(aggregator_.reports_ingested(), 1u);
}

TEST_F(AggregatorTest, StaleOrDuplicateSeqRejected) {
  ASSERT_TRUE(aggregator_.Ingest("client-a", 5, {MakeCondition("n1", 10, 5000)}));
  // Same seq again: a duplicate report must not touch the state.
  EXPECT_FALSE(
      aggregator_.Ingest("client-a", 5, {MakeCondition("n1", 10, 9000)}));
  // Lower seq: a reordered report must not regress the state.
  EXPECT_FALSE(
      aggregator_.Ingest("client-a", 4, {MakeCondition("n1", 10, 9000)}));
  const ConditionDigest digest = aggregator_.Digest();
  EXPECT_EQ(digest.version, 1u);
  EXPECT_EQ(digest.nodes[0].p50_latency_us, 5000);
  EXPECT_EQ(aggregator_.reports_rejected(), 2u);
}

TEST_F(AggregatorTest, SeqTrackedPerReporter) {
  ASSERT_TRUE(aggregator_.Ingest("client-a", 5, {MakeCondition("n1", 10, 5000)}));
  // A different reporter with a smaller seq is fine: seq spaces are per
  // reporter, not global.
  EXPECT_TRUE(aggregator_.Ingest("client-b", 1, {MakeCondition("n1", 10, 7000)}));
  EXPECT_EQ(aggregator_.Digest().version, 2u);
}

TEST_F(AggregatorTest, MergesLatencyAcrossReportersByWeight) {
  // Same age, same sample count: percentiles average evenly.
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {MakeCondition("n1", 10, 4000)}));
  ASSERT_TRUE(aggregator_.Ingest("b", 1, {MakeCondition("n1", 10, 8000)}));
  const ConditionDigest digest = aggregator_.Digest();
  ASSERT_EQ(digest.nodes.size(), 1u);
  EXPECT_EQ(digest.nodes[0].p50_latency_us, 6000);
  EXPECT_EQ(digest.nodes[0].sample_count, 20u);
}

TEST_F(AggregatorTest, SampleHeavyReporterDominates) {
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {MakeCondition("n1", 90, 4000)}));
  ASSERT_TRUE(aggregator_.Ingest("b", 1, {MakeCondition("n1", 10, 8000)}));
  const ConditionDigest digest = aggregator_.Digest();
  // Weighted mean: (90*4000 + 10*8000) / 100 = 4400.
  EXPECT_EQ(digest.nodes[0].p50_latency_us, 4400);
}

TEST_F(AggregatorTest, ZeroSampleReportsCarryNoLatencyEvidence) {
  // A server self-report (sample_count 0) merged with a client report: the
  // latency percentiles come from the client alone.
  NodeCondition self = MakeCondition("n1", 0, 0);
  self.queue_delay_us = 2000;
  ASSERT_TRUE(aggregator_.Ingest("self:n1", 1, {self}));
  ASSERT_TRUE(aggregator_.Ingest("client", 1, {MakeCondition("n1", 10, 5000)}));
  const ConditionDigest digest = aggregator_.Digest();
  EXPECT_EQ(digest.nodes[0].p50_latency_us, 5000);
  EXPECT_EQ(digest.nodes[0].sample_count, 10u);
  EXPECT_GT(digest.nodes[0].queue_delay_us, 0);
}

TEST_F(AggregatorTest, OldEntriesDecayAgainstFreshOnes) {
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {MakeCondition("n1", 10, 4000)}));
  // Two half-lives later a fresh equal-sample report carries 4x the weight.
  clock_.AdvanceMicros(2 * aggregator_.options().half_life_us);
  ASSERT_TRUE(aggregator_.Ingest("b", 1, {MakeCondition("n1", 10, 8000)}));
  const ConditionDigest digest = aggregator_.Digest();
  // (0.25*4000 + 1.0*8000) / 1.25 = 7200.
  EXPECT_NEAR(static_cast<double>(digest.nodes[0].p50_latency_us), 7200.0,
              10.0);
}

TEST_F(AggregatorTest, ExpiredEntriesArePruned) {
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {MakeCondition("n1", 10, 4000)}));
  clock_.AdvanceMicros(aggregator_.options().entry_ttl_us + 1);
  ASSERT_TRUE(aggregator_.Ingest("b", 1, {MakeCondition("n2", 10, 8000)}));
  const ConditionDigest digest = aggregator_.Digest();
  ASSERT_EQ(digest.nodes.size(), 1u);
  EXPECT_EQ(digest.nodes[0].node, "n2");
}

TEST_F(AggregatorTest, HighTimestampMergesAsMax) {
  NodeCondition older = MakeCondition("n1", 10, 5000);
  older.high_timestamp = Timestamp{1000, 0};
  older.high_age_us = 50;
  NodeCondition newer = MakeCondition("n1", 10, 5000);
  newer.high_timestamp = Timestamp{2000, 0};
  newer.high_age_us = 500;
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {older}));
  ASSERT_TRUE(aggregator_.Ingest("b", 1, {newer}));
  const ConditionDigest digest = aggregator_.Digest();
  EXPECT_EQ(digest.nodes[0].high_timestamp, (Timestamp{2000, 0}));
}

TEST_F(AggregatorTest, NeverObservedHighTimestampStaysUnknown) {
  NodeCondition cond = MakeCondition("n1", 10, 5000);
  cond.high_timestamp = Timestamp::Zero();
  cond.high_age_us = -1;
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {cond}));
  EXPECT_EQ(aggregator_.Digest().nodes[0].high_age_us, -1);
}

TEST_F(AggregatorTest, OverloadedIsStickyForOneHalfLife) {
  NodeCondition cond = MakeCondition("n1", 10, 5000);
  cond.overloaded = true;
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {cond}));
  EXPECT_TRUE(aggregator_.Digest().nodes[0].overloaded);
  clock_.AdvanceMicros(aggregator_.options().half_life_us + 1);
  EXPECT_FALSE(aggregator_.Digest().nodes[0].overloaded);
}

TEST_F(AggregatorTest, DigestAgesReanchorOnIngest) {
  NodeCondition cond = MakeCondition("n1", 10, 5000);
  cond.high_age_us = 1000;
  ASSERT_TRUE(aggregator_.Ingest("a", 1, {cond}));
  clock_.AdvanceMicros(4000);
  // The digest's age includes both the reported age and the time the entry
  // sat in the aggregator.
  EXPECT_EQ(aggregator_.Digest().nodes[0].high_age_us, 5000);
}

// --- Digest codec round trips ---

TEST(DigestCodecTest, NodeConditionRoundTrip) {
  NodeCondition cond = MakeCondition("node-7", 42, 12345, 0.75);
  cond.queue_delay_us = 800;
  cond.overloaded = true;
  Encoder encoder;
  EncodeNodeCondition(encoder, cond);
  Decoder decoder(encoder.buffer());
  NodeCondition decoded;
  ASSERT_TRUE(DecodeNodeCondition(decoder, &decoded).ok());
  EXPECT_EQ(decoded, cond);
}

TEST(DigestCodecTest, ConditionDigestRoundTrip) {
  ConditionDigest digest;
  digest.version = 9;
  digest.reports_merged = 3;
  digest.nodes.push_back(MakeCondition("a", 1, 100));
  digest.nodes.push_back(MakeCondition("b", 2, 200, 0.5));
  digest.nodes[1].high_age_us = -1;
  Encoder encoder;
  EncodeConditionDigest(encoder, digest);
  Decoder decoder(encoder.buffer());
  ConditionDigest decoded;
  ASSERT_TRUE(DecodeConditionDigest(decoder, &decoded).ok());
  EXPECT_EQ(decoded, digest);
}

TEST(DigestCodecTest, TruncatedDigestFailsCleanly) {
  ConditionDigest digest;
  digest.version = 1;
  digest.nodes.push_back(MakeCondition("a", 1, 100));
  Encoder encoder;
  EncodeConditionDigest(encoder, digest);
  const std::string bytes = encoder.Release();
  for (size_t len = 0; len < bytes.size(); ++len) {
    Decoder decoder(std::string_view(bytes).substr(0, len));
    ConditionDigest decoded;
    EXPECT_FALSE(DecodeConditionDigest(decoder, &decoded).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace pileus::monitoring
