// Deterministic fuzzing of the decode paths: the wire codec, the message
// decoder, the multiplexed FrameParser, and WAL replay must never crash or
// read out of bounds on adversarial input - a storage node's parser is
// directly reachable from the network.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/net/tcp.h"
#include "src/persist/wal.h"
#include "src/proto/messages.h"
#include "src/sim/fault_injector.h"
#include "src/util/codec.h"

namespace pileus {
namespace {

std::string RandomBytes(Random& rng, size_t max_len) {
  const size_t len = rng.NextUint64(max_len + 1);
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>(rng.NextUint64(256));
  }
  return out;
}

TEST(FuzzTest, DecodeMessageNeverCrashesOnRandomBytes) {
  Random rng(0xF00D);
  int decoded_ok = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::string bytes = RandomBytes(rng, 128);
    Result<proto::Message> result = proto::DecodeMessage(bytes);
    decoded_ok += result.ok() ? 1 : 0;
  }
  // Random bytes essentially never form a valid message.
  EXPECT_LT(decoded_ok, 50);
}

TEST(FuzzTest, DecodeMessageSurvivesMutatedValidMessages) {
  Random rng(0xBEEF);
  // Seed corpus: one of each message type with non-trivial contents.
  std::vector<std::string> corpus;
  {
    proto::GetRequest get;
    get.table = "table";
    get.key = "some-key";
    corpus.push_back(proto::EncodeMessage(get));
    proto::GetReply reply;
    reply.found = true;
    reply.value = std::string(64, 'v');
    reply.value_timestamp = Timestamp{123456, 3};
    reply.high_timestamp = Timestamp{123999, 0};
    corpus.push_back(proto::EncodeMessage(reply));
    proto::SyncReply sync;
    for (int i = 0; i < 5; ++i) {
      proto::ObjectVersion v;
      v.key = "k" + std::to_string(i);
      v.value = "vv";
      v.timestamp = Timestamp{100 + i, 0};
      sync.versions.push_back(v);
    }
    sync.heartbeat = Timestamp{200, 0};
    corpus.push_back(proto::EncodeMessage(sync));
    proto::CommitRequest commit;
    commit.table = "t";
    commit.read_keys = {"a", "b"};
    proto::ObjectVersion w;
    w.key = "c";
    w.value = "val";
    commit.writes.push_back(w);
    corpus.push_back(proto::EncodeMessage(commit));
  }

  for (int round = 0; round < 20000; ++round) {
    std::string bytes = corpus[rng.NextUint64(corpus.size())];
    // Apply 1-4 random mutations: byte flips, truncations, extensions.
    const int mutations = 1 + static_cast<int>(rng.NextUint64(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextUint64(3)) {
        case 0:
          if (!bytes.empty()) {
            bytes[rng.NextUint64(bytes.size())] =
                static_cast<char>(rng.NextUint64(256));
          }
          break;
        case 1:
          bytes.resize(rng.NextUint64(bytes.size() + 1));
          break;
        case 2:
          bytes += RandomBytes(rng, 8);
          break;
      }
    }
    Result<proto::Message> result = proto::DecodeMessage(bytes);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      (void)proto::EncodeMessage(result.value());
    }
  }
}

TEST(FuzzTest, ByteFlippedFramesFailWithCleanStatus) {
  // The fault injector's corruption model: 1-3 flipped bytes anywhere in an
  // otherwise valid frame. The wire CRC must reject every such frame with a
  // clean Status - no crash, no hang, and (with this seed) no false accept.
  Random rng(0x51AB);
  std::vector<std::string> corpus;
  {
    proto::PutRequest put;
    put.table = "t";
    put.key = "key";
    put.value = std::string(300, 'x');
    corpus.push_back(proto::EncodeMessage(put));
    proto::GetReply reply;
    reply.found = true;
    reply.value = std::string(64, 'v');
    reply.value_timestamp = Timestamp{77, 1};
    corpus.push_back(proto::EncodeMessage(reply));
    proto::ErrorReply err;
    err.code = StatusCode::kUnavailable;
    err.message = "node down";
    corpus.push_back(proto::EncodeMessage(err));
    proto::SyncReply sync;
    for (int i = 0; i < 8; ++i) {
      proto::ObjectVersion v;
      v.key = "k" + std::to_string(i);
      v.value = std::string(16, 'd');
      v.timestamp = Timestamp{500 + i, 0};
      sync.versions.push_back(v);
    }
    corpus.push_back(proto::EncodeMessage(sync));
  }
  int accepted = 0;
  for (int round = 0; round < 20000; ++round) {
    const std::string& original = corpus[rng.NextUint64(corpus.size())];
    std::string frame = original;
    sim::FaultInjector::CorruptFrame(frame, rng);
    if (frame == original) {
      continue;  // Multiple flips on one byte can cancel out (rare).
    }
    Result<proto::Message> result = proto::DecodeMessage(frame);
    if (result.ok()) {
      ++accepted;
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzTest, DecoderPrimitivesNeverOverread) {
  Random rng(0xCAFE);
  for (int i = 0; i < 20000; ++i) {
    const std::string bytes = RandomBytes(rng, 32);
    Decoder dec(bytes);
    // Drain the buffer with a random sequence of typed reads.
    while (!dec.AtEnd()) {
      bool progressed = false;
      switch (rng.NextUint64(6)) {
        case 0: {
          uint8_t v;
          progressed = dec.GetUint8(&v).ok();
          break;
        }
        case 1: {
          uint32_t v;
          progressed = dec.GetFixed32(&v).ok();
          break;
        }
        case 2: {
          uint64_t v;
          progressed = dec.GetVarint64(&v).ok();
          break;
        }
        case 3: {
          std::string s;
          progressed = dec.GetLengthPrefixedString(&s).ok();
          break;
        }
        case 4: {
          Timestamp ts;
          progressed = dec.GetTimestamp(&ts).ok();
          break;
        }
        case 5: {
          double d;
          progressed = dec.GetDouble(&d).ok();
          break;
        }
      }
      if (!progressed) {
        break;  // An error consumed nothing further; stop this round.
      }
    }
  }
}

// --- FrameParser: the multiplexed transport's stream reassembler ---

// A valid pipelined batch: `count` wire frames back to back, as they would
// sit in one TCP segment after writev coalescing.
std::string PipelinedBatch(Random& rng, int count,
                           std::vector<uint64_t>* ids) {
  std::string batch;
  for (int i = 0; i < count; ++i) {
    const uint64_t id = rng.NextUint64();
    if (ids != nullptr) {
      ids->push_back(id);
    }
    proto::GetRequest request;
    request.table = "t";
    request.key = "key" + std::to_string(i) +
                  std::string(rng.NextUint64(40), 'k');
    batch += net::EncodeWireFrame(id, request);
  }
  return batch;
}

TEST(FuzzTest, FrameParserReassemblesArbitraryFragmentation) {
  // Any split of the byte stream - mid length prefix, mid request id, mid
  // payload, several frames per chunk - must reassemble to exactly the sent
  // frames, ids intact and in order.
  Random rng(0xF7A6);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint64_t> ids;
    const std::string batch =
        PipelinedBatch(rng, 1 + static_cast<int>(rng.NextUint64(6)), &ids);
    net::FrameParser parser;
    std::vector<net::FrameParser::Frame> frames;
    size_t offset = 0;
    while (offset < batch.size()) {
      const size_t chunk = 1 + rng.NextUint64(9);
      const size_t len = std::min(chunk, batch.size() - offset);
      parser.Feed(std::string_view(batch).substr(offset, len));
      offset += len;
      std::optional<net::FrameParser::Frame> frame;
      while (parser.Next(&frame).ok() && frame.has_value()) {
        frames.push_back(std::move(*frame));
        frame.reset();
      }
    }
    ASSERT_EQ(frames.size(), ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(frames[i].request_id, ids[i]);
      EXPECT_TRUE(proto::DecodeMessage(frames[i].message_bytes).ok());
    }
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

TEST(FuzzTest, FrameParserRejectsAbsurdLengthsStickily) {
  Random rng(0xABCD);
  for (int round = 0; round < 200; ++round) {
    net::FrameParser parser(64 * 1024);  // Small cap to hit fast.
    // A length prefix far past the cap (sometimes the 4-byte maximum).
    const uint32_t absurd =
        rng.NextBool(0.3) ? 0xFFFFFFFFu
                          : 64 * 1024 + 9 + static_cast<uint32_t>(
                                                rng.NextUint64(1 << 20));
    std::string prefix(4, '\0');
    prefix[0] = static_cast<char>(absurd & 0xFF);
    prefix[1] = static_cast<char>((absurd >> 8) & 0xFF);
    prefix[2] = static_cast<char>((absurd >> 16) & 0xFF);
    prefix[3] = static_cast<char>((absurd >> 24) & 0xFF);
    parser.Feed(prefix);
    std::optional<net::FrameParser::Frame> frame;
    EXPECT_EQ(parser.Next(&frame).code(), StatusCode::kCorruption);
    // Sticky: feeding perfectly valid frames afterwards cannot resync a
    // stream whose framing is lost.
    parser.Feed(PipelinedBatch(rng, 1, nullptr));
    EXPECT_EQ(parser.Next(&frame).code(), StatusCode::kCorruption);
    // A new connection resets cleanly.
    parser.Reset();
    parser.Feed(PipelinedBatch(rng, 1, nullptr));
    EXPECT_TRUE(parser.Next(&frame).ok());
    EXPECT_TRUE(frame.has_value());
  }
}

TEST(FuzzTest, FrameParserSurvivesMutatedAndTruncatedBatches) {
  // Byte flips and truncations of valid pipelined batches: every outcome is
  // acceptable except a crash, a hang, or unbounded buffering - frames out
  // (whose payloads may then fail DecodeMessage cleanly), a sticky
  // kCorruption, or "need more bytes" on a truncated tail.
  Random rng(0x7EAD);
  for (int round = 0; round < 4000; ++round) {
    std::string batch = PipelinedBatch(
        rng, 1 + static_cast<int>(rng.NextUint64(5)), nullptr);
    const int mutations = 1 + static_cast<int>(rng.NextUint64(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextUint64(3)) {
        case 0:  // Byte flip (length prefixes included).
          batch[rng.NextUint64(batch.size())] =
              static_cast<char>(rng.NextUint64(256));
          break;
        case 1:  // Truncate: a pipelined batch cut mid-frame.
          batch.resize(rng.NextUint64(batch.size() + 1));
          break;
        case 2:  // Garbage tail.
          batch += RandomBytes(rng, 16);
          break;
      }
      if (batch.empty()) {
        break;
      }
    }
    net::FrameParser parser(1 << 20);
    size_t offset = 0;
    bool corrupt = false;
    while (offset < batch.size() && !corrupt) {
      const size_t len =
          std::min<size_t>(1 + rng.NextUint64(64), batch.size() - offset);
      parser.Feed(std::string_view(batch).substr(offset, len));
      offset += len;
      std::optional<net::FrameParser::Frame> frame;
      Status status;
      while ((status = parser.Next(&frame)).ok() && frame.has_value()) {
        (void)proto::DecodeMessage(frame->message_bytes);
        frame.reset();
      }
      if (!status.ok()) {
        EXPECT_EQ(status.code(), StatusCode::kCorruption);
        corrupt = true;  // Sticky by contract; connection would tear down.
      }
    }
    // Whatever happened, the parser never buffered more than it was fed.
    EXPECT_LE(parser.buffered_bytes(), batch.size());
  }
}

TEST(FuzzTest, LiveServerSurvivesRawSocketGarbage) {
  // Adversarial peers against a real listening TcpServer: random bytes,
  // absurd length prefixes, and valid-but-truncated pipelined batches, each
  // followed by an abrupt close. The server must tear those connections
  // down cleanly and keep serving well-formed clients throughout.
  net::TcpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [](const proto::Message&) {
                           return proto::Message(proto::PutReply{});
                         })
                  .ok());
  Random rng(0x5AFE);
  for (int round = 0; round < 60; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string payload;
    switch (rng.NextUint64(3)) {
      case 0:  // Pure garbage.
        payload = RandomBytes(rng, 256);
        break;
      case 1: {  // Absurd length prefix, then garbage.
        payload = std::string("\xff\xff\xff\xff", 4) + RandomBytes(rng, 64);
        break;
      }
      case 2: {  // Valid batch cut mid-frame: the server waits, we hang up.
        std::string batch = PipelinedBatch(rng, 3, nullptr);
        payload = batch.substr(0, 1 + rng.NextUint64(batch.size()));
        break;
      }
    }
    if (!payload.empty()) {
      (void)!::write(fd, payload.data(), payload.size());
    }
    ::close(fd);

    if (round % 10 == 0) {
      // The server is still alive and correct for a real client.
      net::TcpChannel channel(server.port());
      Result<proto::Message> reply =
          channel.Call(proto::PutRequest{}, SecondsToMicroseconds(5));
      ASSERT_TRUE(reply.ok()) << "round " << round << ": " << reply.status();
    }
  }
  net::TcpChannel channel(server.port());
  EXPECT_TRUE(channel.Call(proto::PutRequest{}, SecondsToMicroseconds(5))
                  .ok());
}

TEST(FuzzTest, WalReplaySurvivesGarbageFiles) {
  char tmpl[] = "/tmp/pileus_fuzz_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string path = dir + "/wal.log";

  Random rng(0xD00D);
  for (int round = 0; round < 200; ++round) {
    const std::string contents = RandomBytes(rng, 512);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, contents.data(), contents.size()),
              static_cast<ssize_t>(contents.size()));
    ::close(fd);
    // Must terminate with either a clean result (possibly torn tail) or a
    // corruption error - never crash or hang.
    (void)persist::WriteAheadLog::Replay(path, nullptr, nullptr);
  }
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)::system(cmd.c_str());
}

}  // namespace
}  // namespace pileus
