// Deterministic fuzzing of the decode paths: the wire codec, the message
// decoder, and WAL replay must never crash or read out of bounds on
// adversarial input - a storage node's parser is directly reachable from the
// network.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>

#include "src/common/random.h"
#include "src/persist/wal.h"
#include "src/proto/messages.h"
#include "src/sim/fault_injector.h"
#include "src/util/codec.h"

namespace pileus {
namespace {

std::string RandomBytes(Random& rng, size_t max_len) {
  const size_t len = rng.NextUint64(max_len + 1);
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>(rng.NextUint64(256));
  }
  return out;
}

TEST(FuzzTest, DecodeMessageNeverCrashesOnRandomBytes) {
  Random rng(0xF00D);
  int decoded_ok = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::string bytes = RandomBytes(rng, 128);
    Result<proto::Message> result = proto::DecodeMessage(bytes);
    decoded_ok += result.ok() ? 1 : 0;
  }
  // Random bytes essentially never form a valid message.
  EXPECT_LT(decoded_ok, 50);
}

TEST(FuzzTest, DecodeMessageSurvivesMutatedValidMessages) {
  Random rng(0xBEEF);
  // Seed corpus: one of each message type with non-trivial contents.
  std::vector<std::string> corpus;
  {
    proto::GetRequest get;
    get.table = "table";
    get.key = "some-key";
    corpus.push_back(proto::EncodeMessage(get));
    proto::GetReply reply;
    reply.found = true;
    reply.value = std::string(64, 'v');
    reply.value_timestamp = Timestamp{123456, 3};
    reply.high_timestamp = Timestamp{123999, 0};
    corpus.push_back(proto::EncodeMessage(reply));
    proto::SyncReply sync;
    for (int i = 0; i < 5; ++i) {
      proto::ObjectVersion v;
      v.key = "k" + std::to_string(i);
      v.value = "vv";
      v.timestamp = Timestamp{100 + i, 0};
      sync.versions.push_back(v);
    }
    sync.heartbeat = Timestamp{200, 0};
    corpus.push_back(proto::EncodeMessage(sync));
    proto::CommitRequest commit;
    commit.table = "t";
    commit.read_keys = {"a", "b"};
    proto::ObjectVersion w;
    w.key = "c";
    w.value = "val";
    commit.writes.push_back(w);
    corpus.push_back(proto::EncodeMessage(commit));
  }

  for (int round = 0; round < 20000; ++round) {
    std::string bytes = corpus[rng.NextUint64(corpus.size())];
    // Apply 1-4 random mutations: byte flips, truncations, extensions.
    const int mutations = 1 + static_cast<int>(rng.NextUint64(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextUint64(3)) {
        case 0:
          if (!bytes.empty()) {
            bytes[rng.NextUint64(bytes.size())] =
                static_cast<char>(rng.NextUint64(256));
          }
          break;
        case 1:
          bytes.resize(rng.NextUint64(bytes.size() + 1));
          break;
        case 2:
          bytes += RandomBytes(rng, 8);
          break;
      }
    }
    Result<proto::Message> result = proto::DecodeMessage(bytes);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      (void)proto::EncodeMessage(result.value());
    }
  }
}

TEST(FuzzTest, ByteFlippedFramesFailWithCleanStatus) {
  // The fault injector's corruption model: 1-3 flipped bytes anywhere in an
  // otherwise valid frame. The wire CRC must reject every such frame with a
  // clean Status - no crash, no hang, and (with this seed) no false accept.
  Random rng(0x51AB);
  std::vector<std::string> corpus;
  {
    proto::PutRequest put;
    put.table = "t";
    put.key = "key";
    put.value = std::string(300, 'x');
    corpus.push_back(proto::EncodeMessage(put));
    proto::GetReply reply;
    reply.found = true;
    reply.value = std::string(64, 'v');
    reply.value_timestamp = Timestamp{77, 1};
    corpus.push_back(proto::EncodeMessage(reply));
    proto::ErrorReply err;
    err.code = StatusCode::kUnavailable;
    err.message = "node down";
    corpus.push_back(proto::EncodeMessage(err));
    proto::SyncReply sync;
    for (int i = 0; i < 8; ++i) {
      proto::ObjectVersion v;
      v.key = "k" + std::to_string(i);
      v.value = std::string(16, 'd');
      v.timestamp = Timestamp{500 + i, 0};
      sync.versions.push_back(v);
    }
    corpus.push_back(proto::EncodeMessage(sync));
  }
  int accepted = 0;
  for (int round = 0; round < 20000; ++round) {
    const std::string& original = corpus[rng.NextUint64(corpus.size())];
    std::string frame = original;
    sim::FaultInjector::CorruptFrame(frame, rng);
    if (frame == original) {
      continue;  // Multiple flips on one byte can cancel out (rare).
    }
    Result<proto::Message> result = proto::DecodeMessage(frame);
    if (result.ok()) {
      ++accepted;
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzTest, DecoderPrimitivesNeverOverread) {
  Random rng(0xCAFE);
  for (int i = 0; i < 20000; ++i) {
    const std::string bytes = RandomBytes(rng, 32);
    Decoder dec(bytes);
    // Drain the buffer with a random sequence of typed reads.
    while (!dec.AtEnd()) {
      bool progressed = false;
      switch (rng.NextUint64(6)) {
        case 0: {
          uint8_t v;
          progressed = dec.GetUint8(&v).ok();
          break;
        }
        case 1: {
          uint32_t v;
          progressed = dec.GetFixed32(&v).ok();
          break;
        }
        case 2: {
          uint64_t v;
          progressed = dec.GetVarint64(&v).ok();
          break;
        }
        case 3: {
          std::string s;
          progressed = dec.GetLengthPrefixedString(&s).ok();
          break;
        }
        case 4: {
          Timestamp ts;
          progressed = dec.GetTimestamp(&ts).ok();
          break;
        }
        case 5: {
          double d;
          progressed = dec.GetDouble(&d).ok();
          break;
        }
      }
      if (!progressed) {
        break;  // An error consumed nothing further; stop this round.
      }
    }
  }
}

TEST(FuzzTest, WalReplaySurvivesGarbageFiles) {
  char tmpl[] = "/tmp/pileus_fuzz_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string path = dir + "/wal.log";

  Random rng(0xD00D);
  for (int round = 0; round < 200; ++round) {
    const std::string contents = RandomBytes(rng, 512);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, contents.data(), contents.size()),
              static_cast<ssize_t>(contents.size()));
    ::close(fd);
    // Must terminate with either a clean result (possibly torn tail) or a
    // corruption error - never crash or hang.
    (void)persist::WriteAheadLog::Replay(path, nullptr, nullptr);
  }
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)::system(cmd.c_str());
}

}  // namespace
}  // namespace pileus
