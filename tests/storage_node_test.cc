// Tests for StorageNode: tablet registration, request dispatch, and the
// errors a node returns for misrouted or malformed requests.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/storage/storage_node.h"

namespace pileus::storage {
namespace {

class StorageNodeTest : public ::testing::Test {
 protected:
  StorageNodeTest() : clock_(1000), node_("node-1", "US", &clock_) {
    Tablet::Options options;
    options.is_primary = true;
    EXPECT_TRUE(node_.AddTablet("t", options).ok());
  }

  ManualClock clock_;
  StorageNode node_;
};

TEST_F(StorageNodeTest, NameAndSite) {
  EXPECT_EQ(node_.name(), "node-1");
  EXPECT_EQ(node_.site(), "US");
}

TEST_F(StorageNodeTest, PutThenGet) {
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message put_reply = node_.Handle(put);
  ASSERT_TRUE(std::holds_alternative<proto::PutReply>(put_reply));

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  proto::Message get_reply = node_.Handle(get);
  const auto* reply = std::get_if<proto::GetReply>(&get_reply);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->found);
  EXPECT_EQ(reply->value, "v");
  EXPECT_EQ(node_.requests_served(), 2u);
}

TEST_F(StorageNodeTest, GetUnknownTableIsWrongNode) {
  proto::GetRequest get;
  get.table = "nope";
  get.key = "k";
  proto::Message reply = node_.Handle(get);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kWrongNode);
}

TEST_F(StorageNodeTest, KeyOutsideTabletRangeIsWrongNode) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  Tablet::Options options;
  options.range = KeyRange{"a", "m"};
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());

  proto::GetRequest get;
  get.table = "t";
  get.key = "zzz";
  proto::Message reply = node.Handle(get);
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(reply));
}

TEST_F(StorageNodeTest, MultipleTabletsRouteByRange) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  for (const auto& range : SplitKeySpaceEvenly(4)) {
    Tablet::Options options;
    options.range = range;
    options.is_primary = true;
    ASSERT_TRUE(node.AddTablet("t", options).ok());
  }
  // Keys across the spectrum all land somewhere.
  for (const char* key : {"", "Alpha", "m-middle", "zz-top"}) {
    proto::PutRequest put;
    put.table = "t";
    put.key = key;
    put.value = "v";
    EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node.Handle(put)))
        << key;
  }
  EXPECT_EQ(node.TabletsForTable("t").size(), 4u);
}

// --- Configuration epochs (Section 6.2) ---

reconfig::ConfigEpoch EpochWithPrimary(uint64_t epoch,
                                       const std::string& primary) {
  reconfig::ConfigEpoch config;
  config.epoch = epoch;
  config.primary = primary;
  config.members = {"node-1", "node-2"};
  return config;
}

TEST_F(StorageNodeTest, InstallConfigAdoptsAndStampsReplies) {
  proto::ConfigRequest install;
  install.table = "t";
  install.install = true;
  install.config = EpochWithPrimary(1, "node-1");
  proto::Message reply = node_.Handle(install);
  const auto* config_reply = std::get_if<proto::ConfigReply>(&reply);
  ASSERT_NE(config_reply, nullptr);
  EXPECT_TRUE(config_reply->accepted);
  ASSERT_TRUE(node_.InstalledConfig("t").has_value());
  EXPECT_EQ(node_.InstalledConfig("t")->epoch, 1u);

  // Every data reply now carries the epoch piggyback.
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message put_msg = node_.Handle(put);
  const auto* put_reply = std::get_if<proto::PutReply>(&put_msg);
  ASSERT_NE(put_reply, nullptr);
  EXPECT_EQ(put_reply->config_epoch, 1u);
  EXPECT_EQ(put_reply->primary_hint, "node-1");
}

TEST_F(StorageNodeTest, StaleEpochInstallRejected) {
  node_.InstallConfig(EpochWithPrimary(3, "node-1"), "t");

  proto::ConfigRequest stale;
  stale.table = "t";
  stale.install = true;
  stale.config = EpochWithPrimary(2, "node-2");
  proto::Message reply = node_.Handle(stale);
  const auto* config_reply = std::get_if<proto::ConfigReply>(&reply);
  ASSERT_NE(config_reply, nullptr);
  EXPECT_FALSE(config_reply->accepted);
  EXPECT_EQ(config_reply->config.epoch, 3u);
  EXPECT_EQ(node_.InstalledConfig("t")->primary, "node-1");
}

TEST_F(StorageNodeTest, NonPrimaryEpochRejectsPutsWithHint) {
  node_.InstallConfig(EpochWithPrimary(2, "node-2"), "t");

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message reply = node_.Handle(put);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kNotPrimary);
  // The redirect payload: enough for the client to retry at the primary.
  EXPECT_EQ(err->config_epoch, 2u);
  EXPECT_EQ(err->primary_hint, "node-2");
}

TEST_F(StorageNodeTest, ExpiredLeaseFencesThenRenewalUnfences) {
  proto::ConfigRequest install;
  install.table = "t";
  install.install = true;
  install.config = EpochWithPrimary(1, "node-1");
  install.lease_duration_us = 1000;
  proto::Message installed = node_.Handle(install);
  ASSERT_TRUE(std::get_if<proto::ConfigReply>(&installed)->accepted);

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));

  // Past the lease the node self-fences even though it still holds the role.
  clock_.AdvanceMicros(2000);
  proto::Message fenced = node_.Handle(put);
  const auto* err = std::get_if<proto::ErrorReply>(&fenced);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kNotPrimary);

  // A same-epoch re-install is a lease renewal: writable again, roles
  // untouched.
  proto::Message renewed = node_.Handle(install);
  ASSERT_TRUE(std::get_if<proto::ConfigReply>(&renewed)->accepted);
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
  EXPECT_EQ(node_.InstalledConfig("t")->epoch, 1u);
}

TEST_F(StorageNodeTest, ConfigQueryReportsDurableTimestamp) {
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message put_msg = node_.Handle(put);
  const auto* put_reply = std::get_if<proto::PutReply>(&put_msg);
  ASSERT_NE(put_reply, nullptr);

  proto::ConfigRequest query;
  query.table = "t";
  proto::Message reply = node_.Handle(query);
  const auto* config_reply = std::get_if<proto::ConfigReply>(&reply);
  ASSERT_NE(config_reply, nullptr);
  EXPECT_TRUE(config_reply->accepted);
  EXPECT_EQ(config_reply->config.epoch, 0u);  // Never installed one.
  EXPECT_EQ(config_reply->durable_timestamp, put_reply->timestamp);
}

TEST_F(StorageNodeTest, OverlappingTabletRejected) {
  Tablet::Options options;
  options.range = KeyRange{"a", "z"};
  const Status status = node_.AddTablet("t", options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(StorageNodeTest, PutToSecondaryReturnsNotPrimary) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  ASSERT_TRUE(node.AddTablet("t", Tablet::Options{}).ok());
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  proto::Message reply = node.Handle(put);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kNotPrimary);
}

TEST_F(StorageNodeTest, ProbeReportsHighTimestampAndRole) {
  proto::ProbeRequest probe;
  probe.table = "t";
  proto::Message reply = node_.Handle(probe);
  const auto* probe_reply = std::get_if<proto::ProbeReply>(&reply);
  ASSERT_NE(probe_reply, nullptr);
  EXPECT_TRUE(probe_reply->is_primary);
  EXPECT_GT(probe_reply->high_timestamp, Timestamp::Zero());
}

TEST_F(StorageNodeTest, ProbeUnknownTableFails) {
  proto::ProbeRequest probe;
  probe.table = "nope";
  proto::Message reply = node_.Handle(probe);
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(reply));
}

TEST_F(StorageNodeTest, SyncDispatch) {
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  (void)node_.Handle(put);

  proto::SyncRequest sync;
  sync.table = "t";
  sync.after = Timestamp::Zero();
  proto::Message reply = node_.Handle(sync);
  const auto* sync_reply = std::get_if<proto::SyncReply>(&reply);
  ASSERT_NE(sync_reply, nullptr);
  EXPECT_EQ(sync_reply->versions.size(), 1u);
}

TEST_F(StorageNodeTest, GetAtDispatch) {
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  (void)node_.Handle(put);

  proto::GetAtRequest get_at;
  get_at.table = "t";
  get_at.key = "k";
  get_at.snapshot = Timestamp::Max();
  proto::Message reply = node_.Handle(get_at);
  const auto* at_reply = std::get_if<proto::GetAtReply>(&reply);
  ASSERT_NE(at_reply, nullptr);
  EXPECT_TRUE(at_reply->found);
}

TEST_F(StorageNodeTest, ReadOnlyCommitTriviallySucceeds) {
  proto::CommitRequest commit;
  commit.table = "t";
  proto::Message reply = node_.Handle(commit);
  const auto* commit_reply = std::get_if<proto::CommitReply>(&reply);
  ASSERT_NE(commit_reply, nullptr);
  EXPECT_TRUE(commit_reply->committed);
}

TEST_F(StorageNodeTest, CrossTabletCommitRejected) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  for (const auto& range : SplitKeySpaceEvenly(2)) {
    Tablet::Options options;
    options.range = range;
    options.is_primary = true;
    ASSERT_TRUE(node.AddTablet("t", options).ok());
  }
  proto::CommitRequest commit;
  commit.table = "t";
  proto::ObjectVersion low;
  low.key = "A-low-half";  // Byte 0x41: below the 0x80 split.
  proto::ObjectVersion high;
  high.key = "\xF0-high-half";  // Byte 0xF0: above the split.
  commit.writes = {low, high};
  proto::Message reply = node.Handle(commit);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kInvalidArgument);
}

TEST_F(StorageNodeTest, RangeScanAcrossMultipleTablets) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  for (const auto& range : SplitKeySpaceEvenly(4)) {
    Tablet::Options options;
    options.range = range;
    options.is_primary = true;
    ASSERT_TRUE(node.AddTablet("t", options).ok());
  }
  // Keys spread across all four tablets.
  for (int c = 10; c < 250; c += 20) {
    proto::PutRequest put;
    put.table = "t";
    put.key = std::string(1, static_cast<char>(c));
    put.value = "v" + std::to_string(c);
    clock.AdvanceMicros(1);
    ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node.Handle(put)));
  }

  proto::RangeRequest range;
  range.table = "t";
  proto::Message reply = node.Handle(range);
  const auto* rr = std::get_if<proto::RangeReply>(&reply);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->items.size(), 12u);
  for (size_t i = 1; i < rr->items.size(); ++i) {
    EXPECT_LT(rr->items[i - 1].key, rr->items[i].key);  // Global key order.
  }
  EXPECT_TRUE(rr->served_by_primary);
  EXPECT_GT(rr->high_timestamp, Timestamp::Zero());
}

TEST_F(StorageNodeTest, RangeScanLimitAcrossTablets) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  for (const auto& range : SplitKeySpaceEvenly(2)) {
    Tablet::Options options;
    options.range = range;
    options.is_primary = true;
    ASSERT_TRUE(node.AddTablet("t", options).ok());
  }
  for (int c = 10; c < 250; c += 10) {
    proto::PutRequest put;
    put.table = "t";
    put.key = std::string(1, static_cast<char>(c));
    put.value = "v";
    clock.AdvanceMicros(1);
    (void)node.Handle(put);
  }
  proto::RangeRequest range;
  range.table = "t";
  range.limit = 5;
  proto::Message reply = node.Handle(range);
  const auto* rr = std::get_if<proto::RangeReply>(&reply);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->items.size(), 5u);
  EXPECT_TRUE(rr->truncated);
}

TEST_F(StorageNodeTest, RangeScanUnknownTable) {
  proto::RangeRequest range;
  range.table = "nope";
  proto::Message reply = node_.Handle(range);
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(reply));
}

TEST_F(StorageNodeTest, ReplyMessageAsRequestIsRejected) {
  proto::Message reply = node_.Handle(proto::Message(proto::GetReply{}));
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kInvalidArgument);
}

TEST_F(StorageNodeTest, RoleFlipsForWholeTable) {
  node_.SetPrimaryForTable("t", false);
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(node_.Handle(put)));
  node_.SetPrimaryForTable("t", true);
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
}

TEST_F(StorageNodeTest, SyncReplicaFlagAffectsAuthoritativeness) {
  ManualClock clock(1);
  StorageNode node("n", "s", &clock);
  ASSERT_TRUE(node.AddTablet("t", Tablet::Options{}).ok());
  EXPECT_FALSE(node.FindTablet("t", "k")->authoritative());
  node.SetSyncReplicaForTable("t", true);
  EXPECT_TRUE(node.FindTablet("t", "k")->authoritative());
  // Still not a primary: Puts are rejected.
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(node.Handle(put)));
}

TEST_F(StorageNodeTest, HighTimestampAccessor) {
  EXPECT_EQ(node_.HighTimestamp("missing", "k"), Timestamp::Zero());
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  (void)node_.Handle(put);
  EXPECT_GT(node_.HighTimestamp("t", "k"), Timestamp::Zero());
}

}  // namespace
}  // namespace pileus::storage
