// Tests for the dynamic-tablet subsystem (DESIGN.md Sections 14 and 15):
// the versioned TabletMap and its codec, per-node load sampling, the
// rebalance planner, map installation and kWrongTablet fencing on storage
// nodes, the coordinator's split and live-migration protocols including
// rollback, the durable intent log, coordinator crash recovery (a
// crash-point torture matrix over every phase boundary), and lease-based
// coordinator failover.

#include <fcntl.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/proto/messages.h"
#include "src/sim/fault_injector.h"
#include "src/storage/storage_node.h"
#include "src/tablets/coordinator.h"
#include "src/tablets/intent_log.h"
#include "src/tablets/manager.h"
#include "src/tablets/rebalancer.h"
#include "src/tablets/tablet_map.h"
#include "src/util/codec.h"

namespace pileus::tablets {
namespace {

constexpr const char* kTable = "accounts";

TabletInfo MakeInfo(std::string begin, std::string end, uint64_t epoch,
                    std::string primary,
                    std::vector<std::string> members = {}) {
  TabletInfo info;
  info.range.begin = std::move(begin);
  info.range.end = std::move(end);
  info.config.epoch = epoch;
  if (members.empty()) {
    members = {primary};
  }
  info.config.primary = std::move(primary);
  info.config.members = std::move(members);
  return info;
}

TabletMap TwoTabletMap() {
  TabletMap map;
  map.table = kTable;
  map.version = 3;
  map.tablets.push_back(MakeInfo("", "m", 1, "alpha"));
  map.tablets.push_back(MakeInfo("m", "", 2, "beta", {"beta", "gamma"}));
  return map;
}

// --- TabletMap: validation, ownership, codec ---

TEST(TabletMapTest, ValidMapValidates) {
  EXPECT_TRUE(TwoTabletMap().Validate().ok());
}

TEST(TabletMapTest, EmptyMapIsInvalid) {
  TabletMap map;
  map.table = kTable;
  map.version = 1;
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, GapBetweenRangesIsInvalid) {
  TabletMap map = TwoTabletMap();
  map.tablets[1].range.begin = "n";  // [ "", "m") then ["n", "") — gap at "m".
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, OverlapIsInvalid) {
  TabletMap map = TwoTabletMap();
  map.tablets[1].range.begin = "l";  // Overlaps ["", "m").
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, MustStartAtLowestKeyAndEndUnbounded) {
  TabletMap starts_late = TwoTabletMap();
  starts_late.tablets[0].range.begin = "a";
  EXPECT_FALSE(starts_late.Validate().ok());

  TabletMap ends_early = TwoTabletMap();
  ends_early.tablets[1].range.end = "z";
  EXPECT_FALSE(ends_early.Validate().ok());
}

TEST(TabletMapTest, PrimaryMustBeMember) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "stranger";
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, OwnerOfRespectsHalfOpenBounds) {
  const TabletMap map = TwoTabletMap();
  ASSERT_NE(map.OwnerOf(""), nullptr);
  EXPECT_EQ(map.OwnerOf("")->config.primary, "alpha");
  EXPECT_EQ(map.OwnerOf("lzz")->config.primary, "alpha");
  // The split key itself belongs to the upper sibling (begin inclusive).
  EXPECT_EQ(map.OwnerOf("m")->config.primary, "beta");
  EXPECT_EQ(map.OwnerOf("zzz")->config.primary, "beta");
}

TEST(TabletMapTest, OwnerOfEmptyMapIsNull) {
  TabletMap map;
  map.table = kTable;
  EXPECT_EQ(map.OwnerOf("k"), nullptr);
}

TEST(TabletMapTest, CodecRoundTripPreservesEverything) {
  TabletMap map = TwoTabletMap();
  map.coordinator_epoch = 9;
  map.tablets[0].size_bytes = 123456;
  map.tablets[0].ops_per_sec = 789;
  map.tablets[1].config.sync_members = {"gamma"};

  Encoder enc;
  EncodeTabletMap(enc, map);
  Decoder dec(enc.buffer());
  TabletMap decoded;
  ASSERT_TRUE(DecodeTabletMap(dec, &decoded).ok());
  EXPECT_EQ(decoded, map);
}

// --- TabletManager: sampling and split proposals ---

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : clock_(1'000'000), node_("alpha", "dc1", &clock_) {
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(node_.AddTablet(kTable, options).ok());
  }

  void PutKeys(int count, int offset = 0) {
    for (int i = 0; i < count; ++i) {
      proto::PutRequest put;
      put.table = kTable;
      put.key = "key" + std::to_string(offset + i);
      put.value = "value";
      ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
      clock_.AdvanceMicros(10);
    }
  }

  ManualClock clock_;
  storage::StorageNode node_;
};

TEST_F(ManagerTest, FirstSampleHasNoRateBaseline) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  PutKeys(100);
  const std::vector<TabletManager::TabletStat> stats = manager.Sample(kTable);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].ops_per_sec, 0u) << "no previous sample to diff against";
  EXPECT_EQ(stats[0].ops_total, 100u);
  EXPECT_TRUE(stats[0].is_primary);
}

TEST_F(ManagerTest, SecondSampleDerivesRateFromCounterDelta) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  (void)manager.Sample(kTable);  // Establish the baseline.
  PutKeys(100);
  clock_.AdvanceMicros(1'000'000 - 100 * 10);  // Exactly 1s since baseline.
  const std::vector<TabletManager::TabletStat> stats = manager.Sample(kTable);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].ops_per_sec, 100u);
}

TEST_F(ManagerTest, BackToBackSampleReusesPreviousRate) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(50);
  clock_.AdvanceMicros(1'000'000 - 50 * 10);
  const uint64_t rate = manager.Sample(kTable)[0].ops_per_sec;
  EXPECT_EQ(rate, 50u);
  // A re-sample < 1ms later must not divide the tiny delta by ~0.
  const std::vector<TabletManager::TabletStat> again = manager.Sample(kTable);
  EXPECT_EQ(again[0].ops_per_sec, rate);
}

TEST_F(ManagerTest, SplitCandidatesRequireThresholdAndPivot) {
  TabletManager::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 10;
  TabletManager manager(&node_, options, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(100);
  clock_.AdvanceMicros(1'000'000 - 100 * 10);
  (void)manager.Sample(kTable);

  const std::vector<TabletManager::SplitProposal> proposals =
      manager.SplitCandidates(kTable);
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_FALSE(proposals[0].split_key.empty());
  EXPECT_TRUE(proposals[0].range.IsSplittable(proposals[0].split_key));
}

TEST_F(ManagerTest, ColdTabletProposesNoSplit) {
  TabletManager::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 1'000'000;
  TabletManager manager(&node_, options, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(20);
  clock_.AdvanceMicros(1'000'000);
  (void)manager.Sample(kTable);
  EXPECT_TRUE(manager.SplitCandidates(kTable).empty());
}

// --- Rebalancer: pure planning policy ---

TabletLoad MakeLoad(std::string begin, std::string end, std::string primary,
                    uint64_t ops, std::string split_key = "") {
  TabletLoad load;
  load.range.begin = std::move(begin);
  load.range.end = std::move(end);
  load.primary = std::move(primary);
  load.ops_per_sec = ops;
  load.split_key = std::move(split_key);
  return load;
}

TEST(RebalancerTest, SplitsPlannedBeforeMoves) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 100;
  options.imbalance_ratio = 1.2;
  options.max_actions_per_round = 2;
  const Rebalancer rebalancer(options);

  // n1 is both over the split threshold and the hottest node.
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 500, "g"),
      MakeLoad("m", "", "n2", 10),
  };
  const std::vector<RebalanceAction> actions =
      rebalancer.Plan(loads, {"n1", "n2"});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, RebalanceAction::Kind::kSplit);
  EXPECT_EQ(actions[0].split_key, "g");
  // The tablet being split must not also be planned as a move this round.
  for (const RebalanceAction& action : actions) {
    if (action.kind == RebalanceAction::Kind::kMove) {
      EXPECT_NE(action.range.begin, "");
    }
  }
}

TEST(RebalancerTest, HotTabletWithoutPivotCannotSplit) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 100;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {MakeLoad("", "", "n1", 500)};
  for (const RebalanceAction& action : rebalancer.Plan(loads, {"n1", "n2"})) {
    EXPECT_NE(action.kind, RebalanceAction::Kind::kSplit);
  }
}

TEST(RebalancerTest, BalancedLoadPlansNothing) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;  // Splitting disabled.
  options.imbalance_ratio = 1.5;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 100),
      MakeLoad("m", "", "n2", 110),
  };
  EXPECT_TRUE(rebalancer.Plan(loads, {"n1", "n2"}).empty())
      << "spread below imbalance_ratio must not trigger migration";
}

TEST(RebalancerTest, ImbalanceMovesHottestMovableTabletToCoolestNode) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;
  options.imbalance_ratio = 1.5;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "f", "n1", 300),
      MakeLoad("f", "m", "n1", 200),
      MakeLoad("m", "", "n2", 10),
  };
  // n3 holds nothing and is the coolest — this is how an empty node fills.
  const std::vector<RebalanceAction> actions =
      rebalancer.Plan(loads, {"n1", "n2", "n3"});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, RebalanceAction::Kind::kMove);
  EXPECT_EQ(actions[0].from, "n1");
  EXPECT_EQ(actions[0].to, "n3");
  EXPECT_EQ(actions[0].range.begin, "");  // The 300 ops/s tablet.
}

TEST(RebalancerTest, MoveThatWouldSwapTheHotspotIsRejected) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;
  options.imbalance_ratio = 1.2;
  const Rebalancer rebalancer(options);
  // One giant tablet: moving it would just relocate the problem.
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 1000),
      MakeLoad("m", "", "n2", 10),
  };
  EXPECT_TRUE(rebalancer.Plan(loads, {"n1", "n2"}).empty());
}

TEST(RebalancerTest, ActionBudgetCapsTheRound) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 10;
  options.max_actions_per_round = 1;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "f", "n1", 500, "c"),
      MakeLoad("f", "m", "n1", 400, "h"),
      MakeLoad("m", "", "n2", 300, "r"),
  };
  EXPECT_EQ(rebalancer.Plan(loads, {"n1", "n2"}).size(), 1u);
}

// --- StorageNode: map installation and kWrongTablet fencing ---

class NodeMapTest : public ::testing::Test {
 protected:
  NodeMapTest() : clock_(1'000'000), node_("alpha", "dc1", &clock_) {
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(node_.AddTablet(kTable, options).ok());
  }

  ManualClock clock_;
  storage::StorageNode node_;
};

TEST_F(NodeMapTest, InstallIsVersionMonotonic) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "alpha";
  map.tablets[0].config.members = {"alpha"};
  EXPECT_TRUE(node_.InstallTabletMap(map));

  TabletMap stale = map;
  stale.version = map.version - 1;
  EXPECT_FALSE(node_.InstallTabletMap(stale));
  EXPECT_EQ(node_.InstalledTabletMap(kTable)->version, map.version);

  // Same-version re-install is idempotent (the cutover relies on it).
  EXPECT_TRUE(node_.InstallTabletMap(map));

  TabletMap newer = map;
  newer.version = map.version + 5;
  EXPECT_TRUE(node_.InstallTabletMap(newer));
  EXPECT_EQ(node_.InstalledTabletMap(kTable)->version, newer.version);
}

TEST_F(NodeMapTest, VersionZeroAndInvalidMapsAreRejected) {
  TabletMap zero = TwoTabletMap();
  zero.version = 0;
  EXPECT_FALSE(node_.InstallTabletMap(zero));

  TabletMap invalid = TwoTabletMap();
  invalid.tablets.pop_back();  // No longer tiles the keyspace.
  EXPECT_FALSE(node_.InstallTabletMap(invalid));
  EXPECT_FALSE(node_.InstalledTabletMap(kTable).has_value());
}

TEST_F(NodeMapTest, OlderCoordinatorEpochRejectedEvenWithNewerVersion) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "alpha";
  map.tablets[0].config.members = {"alpha"};
  map.coordinator_epoch = 5;
  ASSERT_TRUE(node_.InstallTabletMap(map));

  // A deposed coordinator may have a higher map version (it was mid-flight
  // when it lost the lease); the epoch fence must still reject it.
  TabletMap deposed = map;
  deposed.version = map.version + 1;
  deposed.coordinator_epoch = 4;
  EXPECT_FALSE(node_.InstallTabletMap(deposed));
  EXPECT_EQ(node_.InstalledTabletMap(kTable)->version, map.version);

  // Epoch 0 marks a legacy (pre-Section-15) coordinator: never fenced.
  TabletMap legacy = map;
  legacy.version = map.version + 1;
  legacy.coordinator_epoch = 0;
  EXPECT_TRUE(node_.InstallTabletMap(legacy));

  // A successor's higher epoch installs fine at any version.
  TabletMap successor = legacy;
  successor.version = legacy.version + 1;
  successor.coordinator_epoch = 6;
  EXPECT_TRUE(node_.InstallTabletMap(successor));
}

TEST_F(NodeMapTest, MisroutedRequestFencedWithOwnerHint) {
  // The map assigns ["m", "") to beta; alpha must fence requests for it.
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "alpha";
  map.tablets[0].config.members = {"alpha"};
  ASSERT_TRUE(node_.InstallTabletMap(map));

  proto::PutRequest put;
  put.table = kTable;
  put.key = "zebra";
  put.value = "v";
  const proto::Message reply = node_.Handle(put);
  const auto* error = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kWrongTablet);
  EXPECT_EQ(error->primary_hint, "beta");
  EXPECT_EQ(error->map_version, map.version);

  // Keys the map assigns here still serve normally.
  put.key = "apple";
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
}

// --- TabletCoordinator: split, migration, rollback ---

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : clock_(1'000'000) {
    TabletMap initial;
    initial.table = kTable;
    initial.version = 1;
    TabletInfo info = MakeInfo("", "", 1, "alpha");
    initial.tablets.push_back(info);

    alpha_ = std::make_unique<storage::StorageNode>("alpha", "dc1", &clock_);
    beta_ = std::make_unique<storage::StorageNode>("beta", "dc1", &clock_);
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(alpha_->AddTablet(kTable, options).ok());

    TabletCoordinator::Options coordinator_options;
    coordinator_options.reachable = [this](const std::string& node) {
      return unreachable_.count(node) == 0;
    };
    coordinator_ = std::make_unique<TabletCoordinator>(
        std::move(initial), &clock_, std::move(coordinator_options));
    coordinator_->RegisterNode(alpha_.get());
    coordinator_->RegisterNode(beta_.get());
    EXPECT_TRUE(coordinator_->PublishMap().ok());
  }

  void PutKey(storage::StorageNode& node, const std::string& key) {
    proto::PutRequest put;
    put.table = kTable;
    put.key = key;
    put.value = "v:" + key;
    ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node.Handle(put)))
        << key;
    clock_.AdvanceMicros(10);
  }

  std::optional<std::string> GetValue(storage::StorageNode& node,
                                      const std::string& key) {
    proto::GetRequest get;
    get.table = kTable;
    get.key = key;
    const proto::Message reply = node.Handle(get);
    const auto* got = std::get_if<proto::GetReply>(&reply);
    if (got == nullptr || !got->found) {
      return std::nullopt;
    }
    return got->value;
  }

  ManualClock clock_;
  std::set<std::string> unreachable_;
  std::unique_ptr<storage::StorageNode> alpha_;
  std::unique_ptr<storage::StorageNode> beta_;
  std::unique_ptr<TabletCoordinator> coordinator_;
};

TEST_F(CoordinatorTest, ExecuteSplitRetilesAndPublishes) {
  PutKey(*alpha_, "apple");
  PutKey(*alpha_, "zebra");
  ASSERT_TRUE(coordinator_->ExecuteSplit("m").ok());

  const TabletMap& map = coordinator_->map();
  EXPECT_EQ(map.version, 2u);
  ASSERT_EQ(map.tablets.size(), 2u);
  EXPECT_EQ(map.tablets[0].range.end, "m");
  EXPECT_EQ(map.tablets[1].range.begin, "m");
  EXPECT_TRUE(map.Validate().ok());
  EXPECT_EQ(coordinator_->splits(), 1u);

  // The node adopted the published map and still serves both halves.
  EXPECT_EQ(alpha_->InstalledTabletMap(kTable)->version, 2u);
  EXPECT_EQ(alpha_->LocalTabletStats(kTable).size(), 2u);
  EXPECT_EQ(GetValue(*alpha_, "apple"), "v:apple");
  EXPECT_EQ(GetValue(*alpha_, "zebra"), "v:zebra");
}

TEST_F(CoordinatorTest, SplitAtRangeBoundaryRejected) {
  const Status status = coordinator_->ExecuteSplit("");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(coordinator_->map().version, 1u);
}

TEST_F(CoordinatorTest, MigrationMovesDataAndFencesTheSource) {
  for (int i = 0; i < 20; ++i) {
    PutKey(*alpha_, "key" + std::to_string(i));
  }
  ASSERT_TRUE(coordinator_->ExecuteMigration("", "beta").ok());
  EXPECT_EQ(coordinator_->migrations(), 1u);

  const TabletMap& map = coordinator_->map();
  ASSERT_EQ(map.tablets.size(), 1u);
  EXPECT_EQ(map.tablets[0].config.primary, "beta");
  EXPECT_EQ(map.tablets[0].config.epoch, 2u);

  // Every acked write survived the move and the new primary serves it.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(GetValue(*beta_, key), "v:" + key) << key;
  }
  // New writes land on beta; alpha (which dropped the tablet) fences.
  PutKey(*beta_, "after-move");
  proto::PutRequest put;
  put.table = kTable;
  put.key = "rejected";
  put.value = "v";
  const proto::Message reply = alpha_->Handle(put);
  const auto* error = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kWrongTablet);
  EXPECT_EQ(error->primary_hint, "beta");
}

TEST_F(CoordinatorTest, MigrationToUnreachableTargetFailsCleanly) {
  PutKey(*alpha_, "kept");
  unreachable_.insert("beta");
  const Status status = coordinator_->ExecuteMigration("", "beta");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(coordinator_->migration_failures(), 0u)
      << "rejected before any phase ran";
  EXPECT_EQ(coordinator_->migrations(), 0u);
  // Nothing changed: alpha still primary, still serving.
  EXPECT_EQ(coordinator_->map().tablets[0].config.primary, "alpha");
  EXPECT_EQ(GetValue(*alpha_, "kept"), "v:kept");
}

TEST_F(CoordinatorTest, MigrationToSelfRejected) {
  EXPECT_EQ(coordinator_->ExecuteMigration("", "alpha").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, MigrationOfUnknownRangeRejected) {
  EXPECT_EQ(coordinator_->ExecuteMigration("nope", "beta").code(),
            StatusCode::kNotFound);
}

TEST_F(CoordinatorTest, RebalanceRoundSplitsThenMovesUnderHotspot) {
  // Prime the rate baselines, then drive traffic so alpha's single tablet
  // is far over a tiny threshold.
  (void)coordinator_->SampleLoads();
  for (int i = 0; i < 60; ++i) {
    PutKey(*alpha_, "key" + std::to_string(i));
  }
  clock_.AdvanceMicros(1'000'000);

  Rebalancer::Options policy;
  policy.split_threshold_bytes = 0;
  policy.split_threshold_ops_per_sec = 5;
  policy.imbalance_ratio = 1.2;
  const Rebalancer rebalancer(policy);

  // Round 1 must split the only (hot) tablet; later rounds can move pieces.
  const std::vector<RebalanceAction> first =
      coordinator_->RunRebalanceRound(rebalancer);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first[0].kind, RebalanceAction::Kind::kSplit);
  EXPECT_GE(coordinator_->splits(), 1u);
  EXPECT_EQ(coordinator_->map().tablets.size(), 2u);
  EXPECT_TRUE(coordinator_->map().Validate().ok());

  // All data is still served by the current map's owners.
  for (int i = 0; i < 60; ++i) {
    const std::string key = "key" + std::to_string(i);
    const TabletInfo* owner = coordinator_->map().OwnerOf(key);
    ASSERT_NE(owner, nullptr);
    storage::StorageNode& node =
        owner->config.primary == "alpha" ? *alpha_ : *beta_;
    EXPECT_EQ(GetValue(node, key), "v:" + key) << key;
  }
}

// --- IntentLog: codec, replay, torn tails (DESIGN.md Section 15) ---

TabletIntent SampleIntent() {
  TabletIntent intent;
  intent.intent_id = 7;
  intent.phase = IntentPhase::kMigrationCutover;
  intent.table = kTable;
  intent.range.begin = "g";
  intent.range.end = "t";
  intent.split_key = "m";
  intent.from = "alpha";
  intent.to = "beta";
  intent.next_version = 4;
  intent.next_epoch = 3;
  intent.target_hosted = true;
  intent.coordinator_epoch = 2;
  intent.started_us = 1'234'567;
  return intent;
}

class IntentLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/pileus_intent_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)::system(cmd.c_str());
  }

  std::string LogPath() const { return dir_ + "/intents.log"; }

  off_t FileSize(const std::string& path) {
    struct stat st;
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return st.st_size;
  }

  // Flips one byte at `offset` (simulating on-disk corruption).
  void CorruptByte(const std::string& path, off_t offset) {
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char b;
    ASSERT_EQ(::pread(fd, &b, 1, offset), 1);
    b = static_cast<char>(b ^ 0xff);
    ASSERT_EQ(::pwrite(fd, &b, 1, offset), 1);
    ::close(fd);
  }

  std::string dir_;
};

TEST_F(IntentLogTest, IntentCodecRoundTripPreservesEverything) {
  const TabletIntent intent = SampleIntent();
  Encoder enc;
  EncodeTabletIntent(enc, intent);
  Decoder dec(enc.buffer());
  TabletIntent decoded;
  ASSERT_TRUE(DecodeTabletIntent(dec, &decoded).ok());
  EXPECT_EQ(decoded, intent);
  EXPECT_TRUE(dec.AtEnd());
}

TEST_F(IntentLogTest, IntentCodecRejectsUnknownPhase) {
  Encoder enc;
  EncodeTabletIntent(enc, SampleIntent());
  std::string bytes(enc.buffer());
  bytes[1] = 99;  // The phase byte follows the one-byte intent id varint.
  Decoder dec(bytes);
  TabletIntent decoded;
  EXPECT_EQ(DecodeTabletIntent(dec, &decoded).code(), StatusCode::kCorruption);
}

TEST_F(IntentLogTest, LeaseCodecRoundTrip) {
  CoordinatorLease lease;
  lease.epoch = 11;
  lease.holder = "coord-b";
  lease.expiry_us = 99'000'000;
  Encoder enc;
  EncodeCoordinatorLease(enc, lease);
  Decoder dec(enc.buffer());
  CoordinatorLease decoded;
  ASSERT_TRUE(DecodeCoordinatorLease(dec, &decoded).ok());
  EXPECT_EQ(decoded, lease);
}

TEST_F(IntentLogTest, RecoverReplaysLeaseIntentAndCommit) {
  CoordinatorLease lease;
  lease.epoch = 3;
  lease.holder = "coord-a";
  lease.expiry_us = 5'000'000;
  const TabletIntent intent = SampleIntent();
  {
    Result<IntentLog> log = IntentLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->WriteLease(lease).ok());
    ASSERT_TRUE(log->WriteIntent(intent).ok());
  }
  Result<IntentLog::RecoveredState> state = IntentLog::Recover(LogPath());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->lease, lease);
  ASSERT_TRUE(state->intent.has_value());
  EXPECT_EQ(*state->intent, intent);
  EXPECT_EQ(state->next_intent_id, intent.intent_id + 1);
  EXPECT_EQ(state->map.version, 0u) << "no map was ever committed";
  EXPECT_FALSE(state->tail_torn);

  // A committed map supersedes (clears) the live intent.
  TabletMap map = TwoTabletMap();
  {
    Result<IntentLog> log = IntentLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->CommitMap(map).ok());
  }
  state = IntentLog::Recover(LogPath());
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->intent.has_value());
  EXPECT_EQ(state->map, map);
  EXPECT_EQ(state->next_intent_id, intent.intent_id + 1)
      << "intent ids never regress, even across commits";
}

TEST_F(IntentLogTest, TornTailDiscardsOnlyTheLastRecord) {
  CoordinatorLease lease;
  lease.epoch = 1;
  lease.holder = "coord-a";
  {
    Result<IntentLog> log = IntentLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->WriteLease(lease).ok());
    ASSERT_TRUE(log->WriteIntent(SampleIntent()).ok());
  }
  // Chop one byte off the tail: a crash mid-append of the intent record.
  ASSERT_EQ(::truncate(LogPath().c_str(), FileSize(LogPath()) - 1), 0);
  Result<IntentLog::RecoveredState> state = IntentLog::Recover(LogPath());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->tail_torn);
  EXPECT_FALSE(state->intent.has_value()) << "the torn intent never happened";
  EXPECT_EQ(state->lease, lease) << "records before the tear are kept";
}

TEST_F(IntentLogTest, CorruptionBeforeTheTailIsLoud) {
  {
    Result<IntentLog> log = IntentLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    CoordinatorLease lease;
    lease.epoch = 1;
    lease.holder = "coord-a";
    ASSERT_TRUE(log->WriteLease(lease).ok());
    ASSERT_TRUE(log->WriteIntent(SampleIntent()).ok());
    ASSERT_TRUE(log->CommitMap(TwoTabletMap()).ok());
  }
  // Flip a payload byte of the FIRST record (header is 9 bytes). With
  // records after it this cannot be a torn tail: recovery must refuse to
  // silently skip it.
  CorruptByte(LogPath(), 10);
  EXPECT_EQ(IntentLog::Recover(LogPath()).status().code(),
            StatusCode::kCorruption);
}

// --- Durable coordinator: crash-point torture matrix, rollback
// idempotency, lease failover (DESIGN.md Section 15) ---

class DurableCoordinatorTest : public ::testing::Test {
 protected:
  DurableCoordinatorTest() : clock_(1'000'000) {}

  void SetUp() override {
    char tmpl[] = "/tmp/pileus_durable_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)::system(cmd.c_str());
  }

  TabletMap SeedMap() {
    TabletMap map;
    map.table = kTable;
    map.version = 1;
    map.tablets.push_back(MakeInfo("", "", 1, "alpha"));
    return map;
  }

  // Fresh fleet: alpha hosts the whole keyspace as primary, beta is empty.
  void FreshNodes() {
    alpha_ = std::make_unique<storage::StorageNode>("alpha", "dc1", &clock_);
    beta_ = std::make_unique<storage::StorageNode>("beta", "dc1", &clock_);
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    ASSERT_TRUE(alpha_->AddTablet(kTable, options).ok());
  }

  TabletCoordinator::Options DurableOptions(const std::string& log_path) {
    TabletCoordinator::Options options;
    options.intent_log_path = log_path;
    options.fault_injector = &injector_;
    return options;
  }

  // One coordinator (re)start: replay the log, take the lease, register the
  // fleet. CompleteRecovery is left to the caller so tests can crash it.
  std::unique_ptr<TabletCoordinator> RecoverCoordinator(
      const std::string& log_path, bool register_beta = true) {
    Result<std::unique_ptr<TabletCoordinator>> recovered =
        TabletCoordinator::Recover(SeedMap(), &clock_,
                                   DurableOptions(log_path));
    if (!recovered.ok()) {
      ADD_FAILURE() << "Recover failed: " << recovered.status().message();
      return nullptr;
    }
    std::unique_ptr<TabletCoordinator> coordinator = std::move(*recovered);
    coordinator->RegisterNode(alpha_.get());
    if (register_beta) {
      coordinator->RegisterNode(beta_.get());
    }
    return coordinator;
  }

  storage::StorageNode& NodeNamed(const std::string& name) {
    return name == "alpha" ? *alpha_ : *beta_;
  }

  void PutKey(storage::StorageNode& node, const std::string& key) {
    proto::PutRequest put;
    put.table = kTable;
    put.key = key;
    put.value = "v:" + key;
    ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node.Handle(put)))
        << key;
    clock_.AdvanceMicros(10);
  }

  std::optional<std::string> GetValue(storage::StorageNode& node,
                                      const std::string& key) {
    proto::GetRequest get;
    get.table = kTable;
    get.key = key;
    const proto::Message reply = node.Handle(get);
    const auto* got = std::get_if<proto::GetReply>(&reply);
    if (got == nullptr || !got->found) {
      return std::nullopt;
    }
    return got->value;
  }

  // The ISSUE's convergence bar, asserted after every recovery: a valid
  // tiling, zero lost acked writes, and no range left fenced (each range
  // accepts a probe write on its current primary).
  void ExpectConverged(TabletCoordinator& coordinator,
                       const std::vector<std::string>& keys) {
    const TabletMap& map = coordinator.map();
    ASSERT_TRUE(map.Validate().ok());
    for (const std::string& key : keys) {
      const TabletInfo* owner = map.OwnerOf(key);
      ASSERT_NE(owner, nullptr) << key;
      EXPECT_EQ(GetValue(NodeNamed(owner->config.primary), key), "v:" + key)
          << key;
    }
    for (const TabletInfo& info : map.tablets) {
      proto::PutRequest probe;
      probe.table = kTable;
      probe.key = info.range.begin;  // begin is inclusive: always in range.
      probe.value = "probe";
      const proto::Message reply =
          NodeNamed(info.config.primary).Handle(probe);
      EXPECT_TRUE(std::holds_alternative<proto::PutReply>(reply))
          << "range " << info.range.ToString() << " is still fenced on "
          << info.config.primary;
    }
  }

  ManualClock clock_;
  sim::FaultInjector injector_;
  std::string dir_;
  std::unique_ptr<storage::StorageNode> alpha_;
  std::unique_ptr<storage::StorageNode> beta_;
};

TEST_F(DurableCoordinatorTest, SplitCrashMatrixRecoversEverywhere) {
  int index = 0;
  for (const std::string& point : TabletCoordinator::SplitCrashPoints()) {
    SCOPED_TRACE(point);
    FreshNodes();
    const std::string log_path =
        dir_ + "/split" + std::to_string(index++) + ".log";
    std::unique_ptr<TabletCoordinator> coordinator =
        RecoverCoordinator(log_path);
    ASSERT_NE(coordinator, nullptr);
    ASSERT_TRUE(coordinator->CompleteRecovery().ok());
    const uint64_t epoch_before = coordinator->coordinator_epoch();

    std::vector<std::string> keys = {"apple", "zebra"};
    for (int i = 0; i < 6; ++i) {
      keys.push_back("key" + std::to_string(i));
    }
    for (const std::string& key : keys) {
      PutKey(*alpha_, key);
    }

    injector_.ArmCrashPoint(point);
    const Status crashed = coordinator->ExecuteSplit("m");
    ASSERT_EQ(crashed.code(), StatusCode::kCancelled) << crashed.message();
    coordinator.reset();  // The process dies; only the intent log survives.

    coordinator = RecoverCoordinator(log_path);
    ASSERT_NE(coordinator, nullptr);
    ASSERT_TRUE(coordinator->CompleteRecovery().ok());
    EXPECT_GT(coordinator->coordinator_epoch(), epoch_before);
    ExpectConverged(*coordinator, keys);
  }
}

// Recovery while the split's primary is partitioned away: the standby must
// come up healthy (a split fences nothing — the intent is abandoned, not
// replayed forever), and a later coordinator can retry the split once the
// partition heals.
TEST_F(DurableCoordinatorTest, SplitIntentWithPartitionedPrimaryIsAbandoned) {
  FreshNodes();
  const std::string log_path = dir_ + "/split_partitioned.log";
  std::unique_ptr<TabletCoordinator> coordinator =
      RecoverCoordinator(log_path);
  ASSERT_NE(coordinator, nullptr);
  ASSERT_TRUE(coordinator->CompleteRecovery().ok());

  std::vector<std::string> keys = {"apple", "mango", "zebra"};
  for (const std::string& key : keys) {
    PutKey(*alpha_, key);
  }

  // Die with the intent journaled but the split not yet executed.
  injector_.ArmCrashPoint("tablets.split.after_intent");
  ASSERT_EQ(coordinator->ExecuteSplit("m").code(), StatusCode::kCancelled);
  coordinator.reset();

  // The standby recovers while alpha (the range's primary) is unreachable.
  TabletCoordinator::Options partitioned = DurableOptions(log_path);
  partitioned.reachable = [](const std::string& name) {
    return name != "alpha";
  };
  Result<std::unique_ptr<TabletCoordinator>> standby =
      TabletCoordinator::Recover(SeedMap(), &clock_, partitioned);
  ASSERT_TRUE(standby.ok()) << standby.status().message();
  coordinator = std::move(*standby);
  coordinator->RegisterNode(alpha_.get());
  coordinator->RegisterNode(beta_.get());
  const Status recovered = coordinator->CompleteRecovery();
  ASSERT_TRUE(recovered.ok()) << recovered.message();
  EXPECT_FALSE(coordinator->pending_intent().has_value());
  EXPECT_EQ(coordinator->map().tablets.size(), 1u);  // Abandoned, not run.
  coordinator.reset();

  // After the partition heals, a fresh coordinator sees no stuck intent and
  // can run the split to completion.
  coordinator = RecoverCoordinator(log_path);
  ASSERT_NE(coordinator, nullptr);
  ASSERT_TRUE(coordinator->CompleteRecovery().ok());
  EXPECT_FALSE(coordinator->pending_intent().has_value());
  ASSERT_TRUE(coordinator->ExecuteSplit("m").ok());
  EXPECT_EQ(coordinator->map().tablets.size(), 2u);
  ExpectConverged(*coordinator, keys);
}

TEST_F(DurableCoordinatorTest, MigrationCrashMatrixRecoversEverywhere) {
  int index = 0;
  for (const std::string& point : TabletCoordinator::MigrationCrashPoints()) {
    SCOPED_TRACE(point);
    FreshNodes();
    const std::string log_path =
        dir_ + "/migration" + std::to_string(index++) + ".log";
    std::unique_ptr<TabletCoordinator> coordinator =
        RecoverCoordinator(log_path);
    ASSERT_NE(coordinator, nullptr);
    ASSERT_TRUE(coordinator->CompleteRecovery().ok());

    std::vector<std::string> keys;
    for (int i = 0; i < 12; ++i) {
      keys.push_back("key" + std::to_string(i));
    }
    for (const std::string& key : keys) {
      PutKey(*alpha_, key);
    }

    const bool rollback_point = point.rfind("tablets.rollback.", 0) == 0;
    if (rollback_point) {
      // The rollback arms only run when a migration cannot go forward.
      // Manufacture that: crash at the fence, then recover WITHOUT the
      // target registered — recovery must roll back, and the armed
      // rollback point kills the coordinator a second time mid-rollback.
      injector_.ArmCrashPoint("tablets.migration.after_fence");
      ASSERT_EQ(coordinator->ExecuteMigration("", "beta").code(),
                StatusCode::kCancelled);
      coordinator.reset();
      injector_.ArmCrashPoint(point);
      coordinator = RecoverCoordinator(log_path, /*register_beta=*/false);
      ASSERT_NE(coordinator, nullptr);
      ASSERT_EQ(coordinator->CompleteRecovery().code(),
                StatusCode::kCancelled);
      coordinator.reset();
    } else {
      injector_.ArmCrashPoint(point);
      const Status crashed = coordinator->ExecuteMigration("", "beta");
      ASSERT_EQ(crashed.code(), StatusCode::kCancelled) << crashed.message();
      coordinator.reset();
    }

    coordinator = RecoverCoordinator(log_path);
    ASSERT_NE(coordinator, nullptr);
    ASSERT_TRUE(coordinator->CompleteRecovery().ok());
    EXPECT_FALSE(coordinator->pending_intent().has_value());
    ExpectConverged(*coordinator, keys);

    if (rollback_point) {
      // The re-run rollback must land on the intent's PRE-ASSIGNED
      // version/epoch (next+1) — replaying it never burns extra epochs.
      ASSERT_EQ(coordinator->map().tablets.size(), 1u);
      EXPECT_EQ(coordinator->map().tablets[0].config.primary, "alpha");
      EXPECT_EQ(coordinator->map().tablets[0].config.epoch, 3u);
      EXPECT_EQ(coordinator->map().version, 3u);
    }
  }
}

TEST_F(DurableCoordinatorTest, ReplayedCompletedRollbackIsANoOp) {
  FreshNodes();
  const std::string log_path = dir_ + "/idempotent.log";

  // State on disk: the committed map already shows the rollback (primary
  // back on alpha, version/epoch at the rollback's pre-assigned next+1)
  // but the rollback intent is still live in the log.
  TabletMap rolled = SeedMap();
  rolled.version = 3;
  rolled.tablets[0].config.epoch = 3;
  TabletIntent intent;
  intent.intent_id = 1;
  intent.phase = IntentPhase::kMigrationRollback;
  intent.table = kTable;
  intent.range = KeyRange::All();
  intent.from = "alpha";
  intent.to = "beta";
  intent.next_version = 2;
  intent.next_epoch = 2;
  {
    Result<IntentLog> log = IntentLog::Open(log_path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->CommitMap(rolled).ok());
    ASSERT_TRUE(log->WriteIntent(intent).ok());
  }

  std::unique_ptr<TabletCoordinator> coordinator =
      RecoverCoordinator(log_path);
  ASSERT_NE(coordinator, nullptr);
  ASSERT_TRUE(coordinator->CompleteRecovery().ok());
  // The regression: a replayed no-op rollback must not burn another map
  // version or tablet epoch (and counts no new failure).
  EXPECT_EQ(coordinator->map().version, 3u);
  EXPECT_EQ(coordinator->map().tablets[0].config.epoch, 3u);
  EXPECT_EQ(coordinator->map().tablets[0].config.primary, "alpha");
  EXPECT_EQ(coordinator->migration_failures(), 0u);
}

TEST_F(DurableCoordinatorTest, StandbyWaitsOutTheLeaseThenFencesTheDeposed) {
  FreshNodes();
  const std::string log_path = dir_ + "/lease.log";

  TabletCoordinator::Options options_a = DurableOptions(log_path);
  options_a.coordinator_name = "coord-a";
  options_a.lease_duration_us = SecondsToMicroseconds(10);
  Result<std::unique_ptr<TabletCoordinator>> recovered_a =
      TabletCoordinator::Recover(SeedMap(), &clock_, options_a);
  ASSERT_TRUE(recovered_a.ok());
  std::unique_ptr<TabletCoordinator> a = std::move(*recovered_a);
  a->RegisterNode(alpha_.get());
  a->RegisterNode(beta_.get());
  ASSERT_TRUE(a->CompleteRecovery().ok());
  EXPECT_TRUE(a->IsLeader());
  PutKey(*alpha_, "kept");

  // While coord-a's lease is live, a standby under another name must wait.
  TabletCoordinator::Options options_b = DurableOptions(log_path);
  options_b.coordinator_name = "coord-b";
  options_b.lease_duration_us = SecondsToMicroseconds(10);
  EXPECT_EQ(
      TabletCoordinator::Recover(SeedMap(), &clock_, options_b).status().code(),
      StatusCode::kUnavailable);

  // After expiry the standby takes over under the next coordinator epoch.
  clock_.AdvanceMicros(SecondsToMicroseconds(11));
  Result<std::unique_ptr<TabletCoordinator>> recovered_b =
      TabletCoordinator::Recover(SeedMap(), &clock_, options_b);
  ASSERT_TRUE(recovered_b.ok());
  std::unique_ptr<TabletCoordinator> b = std::move(*recovered_b);
  b->RegisterNode(alpha_.get());
  b->RegisterNode(beta_.get());
  ASSERT_TRUE(b->CompleteRecovery().ok());
  EXPECT_EQ(b->coordinator_epoch(), a->coordinator_epoch() + 1);
  EXPECT_TRUE(b->IsLeader());

  // The deposed coordinator refuses mutations locally...
  EXPECT_FALSE(a->IsLeader());
  EXPECT_EQ(a->ExecuteSplit("m").code(), StatusCode::kNotPrimary);
  EXPECT_EQ(a->ExecuteMigration("", "beta").code(), StatusCode::kNotPrimary);
  EXPECT_TRUE(a->RunRebalanceRound(Rebalancer(Rebalancer::Options{})).empty());
  // ...and even if it tried to republish, the nodes fence its stale epoch.
  EXPECT_FALSE(a->PublishMap().ok());
  // The takeover lost nothing and the new leader can still mutate.
  EXPECT_EQ(GetValue(*alpha_, "kept"), "v:kept");
  EXPECT_TRUE(b->ExecuteSplit("m").ok());
}

TEST_F(DurableCoordinatorTest, SameNameRetakesItsOwnLeaseImmediately) {
  FreshNodes();
  const std::string log_path = dir_ + "/restart.log";
  TabletCoordinator::Options options = DurableOptions(log_path);
  options.lease_duration_us = SecondsToMicroseconds(10);

  Result<std::unique_ptr<TabletCoordinator>> first =
      TabletCoordinator::Recover(SeedMap(), &clock_, options);
  ASSERT_TRUE(first.ok());
  const uint64_t first_epoch = (*first)->coordinator_epoch();
  first->reset();  // kill -9; no clock advance — the lease is still live.

  Result<std::unique_ptr<TabletCoordinator>> second =
      TabletCoordinator::Recover(SeedMap(), &clock_, options);
  ASSERT_TRUE(second.ok()) << "a restart must not wait out its own lease";
  EXPECT_EQ((*second)->coordinator_epoch(), first_epoch + 1);
}

TEST_F(DurableCoordinatorTest, ExpiredLeaseBlocksMutationsUntilRenewed) {
  FreshNodes();
  const std::string log_path = dir_ + "/renew.log";
  TabletCoordinator::Options options = DurableOptions(log_path);
  options.lease_duration_us = SecondsToMicroseconds(5);
  Result<std::unique_ptr<TabletCoordinator>> recovered =
      TabletCoordinator::Recover(SeedMap(), &clock_, options);
  ASSERT_TRUE(recovered.ok());
  std::unique_ptr<TabletCoordinator> coordinator = std::move(*recovered);
  coordinator->RegisterNode(alpha_.get());
  coordinator->RegisterNode(beta_.get());
  ASSERT_TRUE(coordinator->CompleteRecovery().ok());

  clock_.AdvanceMicros(SecondsToMicroseconds(6));
  EXPECT_FALSE(coordinator->IsLeader());
  EXPECT_EQ(coordinator->ExecuteSplit("m").code(), StatusCode::kNotPrimary);
  EXPECT_EQ(coordinator->map().version, 1u) << "no mutation happened";

  ASSERT_TRUE(coordinator->RenewLease().ok());
  EXPECT_TRUE(coordinator->IsLeader());
  EXPECT_TRUE(coordinator->ExecuteSplit("m").ok());
}

}  // namespace
}  // namespace pileus::tablets
