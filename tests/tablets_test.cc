// Tests for the dynamic-tablet subsystem (DESIGN.md Section 14): the
// versioned TabletMap and its codec, per-node load sampling, the rebalance
// planner, map installation and kWrongTablet fencing on storage nodes, and
// the coordinator's split and live-migration protocols including rollback.

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/proto/messages.h"
#include "src/storage/storage_node.h"
#include "src/tablets/coordinator.h"
#include "src/tablets/manager.h"
#include "src/tablets/rebalancer.h"
#include "src/tablets/tablet_map.h"
#include "src/util/codec.h"

namespace pileus::tablets {
namespace {

constexpr const char* kTable = "accounts";

TabletInfo MakeInfo(std::string begin, std::string end, uint64_t epoch,
                    std::string primary,
                    std::vector<std::string> members = {}) {
  TabletInfo info;
  info.range.begin = std::move(begin);
  info.range.end = std::move(end);
  info.config.epoch = epoch;
  if (members.empty()) {
    members = {primary};
  }
  info.config.primary = std::move(primary);
  info.config.members = std::move(members);
  return info;
}

TabletMap TwoTabletMap() {
  TabletMap map;
  map.table = kTable;
  map.version = 3;
  map.tablets.push_back(MakeInfo("", "m", 1, "alpha"));
  map.tablets.push_back(MakeInfo("m", "", 2, "beta", {"beta", "gamma"}));
  return map;
}

// --- TabletMap: validation, ownership, codec ---

TEST(TabletMapTest, ValidMapValidates) {
  EXPECT_TRUE(TwoTabletMap().Validate().ok());
}

TEST(TabletMapTest, EmptyMapIsInvalid) {
  TabletMap map;
  map.table = kTable;
  map.version = 1;
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, GapBetweenRangesIsInvalid) {
  TabletMap map = TwoTabletMap();
  map.tablets[1].range.begin = "n";  // [ "", "m") then ["n", "") — gap at "m".
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, OverlapIsInvalid) {
  TabletMap map = TwoTabletMap();
  map.tablets[1].range.begin = "l";  // Overlaps ["", "m").
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, MustStartAtLowestKeyAndEndUnbounded) {
  TabletMap starts_late = TwoTabletMap();
  starts_late.tablets[0].range.begin = "a";
  EXPECT_FALSE(starts_late.Validate().ok());

  TabletMap ends_early = TwoTabletMap();
  ends_early.tablets[1].range.end = "z";
  EXPECT_FALSE(ends_early.Validate().ok());
}

TEST(TabletMapTest, PrimaryMustBeMember) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "stranger";
  EXPECT_FALSE(map.Validate().ok());
}

TEST(TabletMapTest, OwnerOfRespectsHalfOpenBounds) {
  const TabletMap map = TwoTabletMap();
  ASSERT_NE(map.OwnerOf(""), nullptr);
  EXPECT_EQ(map.OwnerOf("")->config.primary, "alpha");
  EXPECT_EQ(map.OwnerOf("lzz")->config.primary, "alpha");
  // The split key itself belongs to the upper sibling (begin inclusive).
  EXPECT_EQ(map.OwnerOf("m")->config.primary, "beta");
  EXPECT_EQ(map.OwnerOf("zzz")->config.primary, "beta");
}

TEST(TabletMapTest, OwnerOfEmptyMapIsNull) {
  TabletMap map;
  map.table = kTable;
  EXPECT_EQ(map.OwnerOf("k"), nullptr);
}

TEST(TabletMapTest, CodecRoundTripPreservesEverything) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].size_bytes = 123456;
  map.tablets[0].ops_per_sec = 789;
  map.tablets[1].config.sync_members = {"gamma"};

  Encoder enc;
  EncodeTabletMap(enc, map);
  Decoder dec(enc.buffer());
  TabletMap decoded;
  ASSERT_TRUE(DecodeTabletMap(dec, &decoded).ok());
  EXPECT_EQ(decoded, map);
}

// --- TabletManager: sampling and split proposals ---

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : clock_(1'000'000), node_("alpha", "dc1", &clock_) {
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(node_.AddTablet(kTable, options).ok());
  }

  void PutKeys(int count, int offset = 0) {
    for (int i = 0; i < count; ++i) {
      proto::PutRequest put;
      put.table = kTable;
      put.key = "key" + std::to_string(offset + i);
      put.value = "value";
      ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
      clock_.AdvanceMicros(10);
    }
  }

  ManualClock clock_;
  storage::StorageNode node_;
};

TEST_F(ManagerTest, FirstSampleHasNoRateBaseline) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  PutKeys(100);
  const std::vector<TabletManager::TabletStat> stats = manager.Sample(kTable);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].ops_per_sec, 0u) << "no previous sample to diff against";
  EXPECT_EQ(stats[0].ops_total, 100u);
  EXPECT_TRUE(stats[0].is_primary);
}

TEST_F(ManagerTest, SecondSampleDerivesRateFromCounterDelta) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  (void)manager.Sample(kTable);  // Establish the baseline.
  PutKeys(100);
  clock_.AdvanceMicros(1'000'000 - 100 * 10);  // Exactly 1s since baseline.
  const std::vector<TabletManager::TabletStat> stats = manager.Sample(kTable);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].ops_per_sec, 100u);
}

TEST_F(ManagerTest, BackToBackSampleReusesPreviousRate) {
  TabletManager manager(&node_, TabletManager::Options{}, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(50);
  clock_.AdvanceMicros(1'000'000 - 50 * 10);
  const uint64_t rate = manager.Sample(kTable)[0].ops_per_sec;
  EXPECT_EQ(rate, 50u);
  // A re-sample < 1ms later must not divide the tiny delta by ~0.
  const std::vector<TabletManager::TabletStat> again = manager.Sample(kTable);
  EXPECT_EQ(again[0].ops_per_sec, rate);
}

TEST_F(ManagerTest, SplitCandidatesRequireThresholdAndPivot) {
  TabletManager::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 10;
  TabletManager manager(&node_, options, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(100);
  clock_.AdvanceMicros(1'000'000 - 100 * 10);
  (void)manager.Sample(kTable);

  const std::vector<TabletManager::SplitProposal> proposals =
      manager.SplitCandidates(kTable);
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_FALSE(proposals[0].split_key.empty());
  EXPECT_TRUE(proposals[0].range.IsSplittable(proposals[0].split_key));
}

TEST_F(ManagerTest, ColdTabletProposesNoSplit) {
  TabletManager::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 1'000'000;
  TabletManager manager(&node_, options, &clock_);
  (void)manager.Sample(kTable);
  PutKeys(20);
  clock_.AdvanceMicros(1'000'000);
  (void)manager.Sample(kTable);
  EXPECT_TRUE(manager.SplitCandidates(kTable).empty());
}

// --- Rebalancer: pure planning policy ---

TabletLoad MakeLoad(std::string begin, std::string end, std::string primary,
                    uint64_t ops, std::string split_key = "") {
  TabletLoad load;
  load.range.begin = std::move(begin);
  load.range.end = std::move(end);
  load.primary = std::move(primary);
  load.ops_per_sec = ops;
  load.split_key = std::move(split_key);
  return load;
}

TEST(RebalancerTest, SplitsPlannedBeforeMoves) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 100;
  options.imbalance_ratio = 1.2;
  options.max_actions_per_round = 2;
  const Rebalancer rebalancer(options);

  // n1 is both over the split threshold and the hottest node.
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 500, "g"),
      MakeLoad("m", "", "n2", 10),
  };
  const std::vector<RebalanceAction> actions =
      rebalancer.Plan(loads, {"n1", "n2"});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, RebalanceAction::Kind::kSplit);
  EXPECT_EQ(actions[0].split_key, "g");
  // The tablet being split must not also be planned as a move this round.
  for (const RebalanceAction& action : actions) {
    if (action.kind == RebalanceAction::Kind::kMove) {
      EXPECT_NE(action.range.begin, "");
    }
  }
}

TEST(RebalancerTest, HotTabletWithoutPivotCannotSplit) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 100;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {MakeLoad("", "", "n1", 500)};
  for (const RebalanceAction& action : rebalancer.Plan(loads, {"n1", "n2"})) {
    EXPECT_NE(action.kind, RebalanceAction::Kind::kSplit);
  }
}

TEST(RebalancerTest, BalancedLoadPlansNothing) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;  // Splitting disabled.
  options.imbalance_ratio = 1.5;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 100),
      MakeLoad("m", "", "n2", 110),
  };
  EXPECT_TRUE(rebalancer.Plan(loads, {"n1", "n2"}).empty())
      << "spread below imbalance_ratio must not trigger migration";
}

TEST(RebalancerTest, ImbalanceMovesHottestMovableTabletToCoolestNode) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;
  options.imbalance_ratio = 1.5;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "f", "n1", 300),
      MakeLoad("f", "m", "n1", 200),
      MakeLoad("m", "", "n2", 10),
  };
  // n3 holds nothing and is the coolest — this is how an empty node fills.
  const std::vector<RebalanceAction> actions =
      rebalancer.Plan(loads, {"n1", "n2", "n3"});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, RebalanceAction::Kind::kMove);
  EXPECT_EQ(actions[0].from, "n1");
  EXPECT_EQ(actions[0].to, "n3");
  EXPECT_EQ(actions[0].range.begin, "");  // The 300 ops/s tablet.
}

TEST(RebalancerTest, MoveThatWouldSwapTheHotspotIsRejected) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 0;
  options.imbalance_ratio = 1.2;
  const Rebalancer rebalancer(options);
  // One giant tablet: moving it would just relocate the problem.
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "m", "n1", 1000),
      MakeLoad("m", "", "n2", 10),
  };
  EXPECT_TRUE(rebalancer.Plan(loads, {"n1", "n2"}).empty());
}

TEST(RebalancerTest, ActionBudgetCapsTheRound) {
  Rebalancer::Options options;
  options.split_threshold_bytes = 0;
  options.split_threshold_ops_per_sec = 10;
  options.max_actions_per_round = 1;
  const Rebalancer rebalancer(options);
  const std::vector<TabletLoad> loads = {
      MakeLoad("", "f", "n1", 500, "c"),
      MakeLoad("f", "m", "n1", 400, "h"),
      MakeLoad("m", "", "n2", 300, "r"),
  };
  EXPECT_EQ(rebalancer.Plan(loads, {"n1", "n2"}).size(), 1u);
}

// --- StorageNode: map installation and kWrongTablet fencing ---

class NodeMapTest : public ::testing::Test {
 protected:
  NodeMapTest() : clock_(1'000'000), node_("alpha", "dc1", &clock_) {
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(node_.AddTablet(kTable, options).ok());
  }

  ManualClock clock_;
  storage::StorageNode node_;
};

TEST_F(NodeMapTest, InstallIsVersionMonotonic) {
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "alpha";
  map.tablets[0].config.members = {"alpha"};
  EXPECT_TRUE(node_.InstallTabletMap(map));

  TabletMap stale = map;
  stale.version = map.version - 1;
  EXPECT_FALSE(node_.InstallTabletMap(stale));
  EXPECT_EQ(node_.InstalledTabletMap(kTable)->version, map.version);

  // Same-version re-install is idempotent (the cutover relies on it).
  EXPECT_TRUE(node_.InstallTabletMap(map));

  TabletMap newer = map;
  newer.version = map.version + 5;
  EXPECT_TRUE(node_.InstallTabletMap(newer));
  EXPECT_EQ(node_.InstalledTabletMap(kTable)->version, newer.version);
}

TEST_F(NodeMapTest, VersionZeroAndInvalidMapsAreRejected) {
  TabletMap zero = TwoTabletMap();
  zero.version = 0;
  EXPECT_FALSE(node_.InstallTabletMap(zero));

  TabletMap invalid = TwoTabletMap();
  invalid.tablets.pop_back();  // No longer tiles the keyspace.
  EXPECT_FALSE(node_.InstallTabletMap(invalid));
  EXPECT_FALSE(node_.InstalledTabletMap(kTable).has_value());
}

TEST_F(NodeMapTest, MisroutedRequestFencedWithOwnerHint) {
  // The map assigns ["m", "") to beta; alpha must fence requests for it.
  TabletMap map = TwoTabletMap();
  map.tablets[0].config.primary = "alpha";
  map.tablets[0].config.members = {"alpha"};
  ASSERT_TRUE(node_.InstallTabletMap(map));

  proto::PutRequest put;
  put.table = kTable;
  put.key = "zebra";
  put.value = "v";
  const proto::Message reply = node_.Handle(put);
  const auto* error = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kWrongTablet);
  EXPECT_EQ(error->primary_hint, "beta");
  EXPECT_EQ(error->map_version, map.version);

  // Keys the map assigns here still serve normally.
  put.key = "apple";
  EXPECT_TRUE(std::holds_alternative<proto::PutReply>(node_.Handle(put)));
}

// --- TabletCoordinator: split, migration, rollback ---

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : clock_(1'000'000) {
    TabletMap initial;
    initial.table = kTable;
    initial.version = 1;
    TabletInfo info = MakeInfo("", "", 1, "alpha");
    initial.tablets.push_back(info);

    alpha_ = std::make_unique<storage::StorageNode>("alpha", "dc1", &clock_);
    beta_ = std::make_unique<storage::StorageNode>("beta", "dc1", &clock_);
    storage::Tablet::Options options;
    options.range = KeyRange::All();
    options.is_primary = true;
    EXPECT_TRUE(alpha_->AddTablet(kTable, options).ok());

    TabletCoordinator::Options coordinator_options;
    coordinator_options.reachable = [this](const std::string& node) {
      return unreachable_.count(node) == 0;
    };
    coordinator_ = std::make_unique<TabletCoordinator>(
        std::move(initial), &clock_, std::move(coordinator_options));
    coordinator_->RegisterNode(alpha_.get());
    coordinator_->RegisterNode(beta_.get());
    EXPECT_TRUE(coordinator_->PublishMap().ok());
  }

  void PutKey(storage::StorageNode& node, const std::string& key) {
    proto::PutRequest put;
    put.table = kTable;
    put.key = key;
    put.value = "v:" + key;
    ASSERT_TRUE(std::holds_alternative<proto::PutReply>(node.Handle(put)))
        << key;
    clock_.AdvanceMicros(10);
  }

  std::optional<std::string> GetValue(storage::StorageNode& node,
                                      const std::string& key) {
    proto::GetRequest get;
    get.table = kTable;
    get.key = key;
    const proto::Message reply = node.Handle(get);
    const auto* got = std::get_if<proto::GetReply>(&reply);
    if (got == nullptr || !got->found) {
      return std::nullopt;
    }
    return got->value;
  }

  ManualClock clock_;
  std::set<std::string> unreachable_;
  std::unique_ptr<storage::StorageNode> alpha_;
  std::unique_ptr<storage::StorageNode> beta_;
  std::unique_ptr<TabletCoordinator> coordinator_;
};

TEST_F(CoordinatorTest, ExecuteSplitRetilesAndPublishes) {
  PutKey(*alpha_, "apple");
  PutKey(*alpha_, "zebra");
  ASSERT_TRUE(coordinator_->ExecuteSplit("m").ok());

  const TabletMap& map = coordinator_->map();
  EXPECT_EQ(map.version, 2u);
  ASSERT_EQ(map.tablets.size(), 2u);
  EXPECT_EQ(map.tablets[0].range.end, "m");
  EXPECT_EQ(map.tablets[1].range.begin, "m");
  EXPECT_TRUE(map.Validate().ok());
  EXPECT_EQ(coordinator_->splits(), 1u);

  // The node adopted the published map and still serves both halves.
  EXPECT_EQ(alpha_->InstalledTabletMap(kTable)->version, 2u);
  EXPECT_EQ(alpha_->LocalTabletStats(kTable).size(), 2u);
  EXPECT_EQ(GetValue(*alpha_, "apple"), "v:apple");
  EXPECT_EQ(GetValue(*alpha_, "zebra"), "v:zebra");
}

TEST_F(CoordinatorTest, SplitAtRangeBoundaryRejected) {
  const Status status = coordinator_->ExecuteSplit("");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(coordinator_->map().version, 1u);
}

TEST_F(CoordinatorTest, MigrationMovesDataAndFencesTheSource) {
  for (int i = 0; i < 20; ++i) {
    PutKey(*alpha_, "key" + std::to_string(i));
  }
  ASSERT_TRUE(coordinator_->ExecuteMigration("", "beta").ok());
  EXPECT_EQ(coordinator_->migrations(), 1u);

  const TabletMap& map = coordinator_->map();
  ASSERT_EQ(map.tablets.size(), 1u);
  EXPECT_EQ(map.tablets[0].config.primary, "beta");
  EXPECT_EQ(map.tablets[0].config.epoch, 2u);

  // Every acked write survived the move and the new primary serves it.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(GetValue(*beta_, key), "v:" + key) << key;
  }
  // New writes land on beta; alpha (which dropped the tablet) fences.
  PutKey(*beta_, "after-move");
  proto::PutRequest put;
  put.table = kTable;
  put.key = "rejected";
  put.value = "v";
  const proto::Message reply = alpha_->Handle(put);
  const auto* error = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kWrongTablet);
  EXPECT_EQ(error->primary_hint, "beta");
}

TEST_F(CoordinatorTest, MigrationToUnreachableTargetFailsCleanly) {
  PutKey(*alpha_, "kept");
  unreachable_.insert("beta");
  const Status status = coordinator_->ExecuteMigration("", "beta");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(coordinator_->migration_failures(), 0u)
      << "rejected before any phase ran";
  EXPECT_EQ(coordinator_->migrations(), 0u);
  // Nothing changed: alpha still primary, still serving.
  EXPECT_EQ(coordinator_->map().tablets[0].config.primary, "alpha");
  EXPECT_EQ(GetValue(*alpha_, "kept"), "v:kept");
}

TEST_F(CoordinatorTest, MigrationToSelfRejected) {
  EXPECT_EQ(coordinator_->ExecuteMigration("", "alpha").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CoordinatorTest, MigrationOfUnknownRangeRejected) {
  EXPECT_EQ(coordinator_->ExecuteMigration("nope", "beta").code(),
            StatusCode::kNotFound);
}

TEST_F(CoordinatorTest, RebalanceRoundSplitsThenMovesUnderHotspot) {
  // Prime the rate baselines, then drive traffic so alpha's single tablet
  // is far over a tiny threshold.
  (void)coordinator_->SampleLoads();
  for (int i = 0; i < 60; ++i) {
    PutKey(*alpha_, "key" + std::to_string(i));
  }
  clock_.AdvanceMicros(1'000'000);

  Rebalancer::Options policy;
  policy.split_threshold_bytes = 0;
  policy.split_threshold_ops_per_sec = 5;
  policy.imbalance_ratio = 1.2;
  const Rebalancer rebalancer(policy);

  // Round 1 must split the only (hot) tablet; later rounds can move pieces.
  const std::vector<RebalanceAction> first =
      coordinator_->RunRebalanceRound(rebalancer);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first[0].kind, RebalanceAction::Kind::kSplit);
  EXPECT_GE(coordinator_->splits(), 1u);
  EXPECT_EQ(coordinator_->map().tablets.size(), 2u);
  EXPECT_TRUE(coordinator_->map().Validate().ok());

  // All data is still served by the current map's owners.
  for (int i = 0; i < 60; ++i) {
    const std::string key = "key" + std::to_string(i);
    const TabletInfo* owner = coordinator_->map().OwnerOf(key);
    ASSERT_NE(owner, nullptr);
    storage::StorageNode& node =
        owner->config.primary == "alpha" ? *alpha_ : *beta_;
    EXPECT_EQ(GetValue(node, key), "v:" + key) << key;
  }
}

}  // namespace
}  // namespace pileus::tablets
