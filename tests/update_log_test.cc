// Tests for the replication update log.

#include <gtest/gtest.h>

#include "src/storage/update_log.h"

namespace pileus::storage {
namespace {

proto::ObjectVersion V(const std::string& key, int64_t ts,
                       uint32_t seq = 0) {
  proto::ObjectVersion version;
  version.key = key;
  version.value = "v@" + std::to_string(ts);
  version.timestamp = Timestamp{ts, seq};
  return version;
}

TEST(UpdateLogTest, EmptyLog) {
  UpdateLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.LastTimestamp(), Timestamp::Zero());
  auto scan = log.Scan(Timestamp::Zero(), 0);
  EXPECT_TRUE(scan.versions.empty());
  EXPECT_FALSE(scan.has_more);
  EXPECT_TRUE(scan.contiguous);
}

TEST(UpdateLogTest, ScanReturnsStrictlyAfter) {
  UpdateLog log;
  log.Append(V("a", 10));
  log.Append(V("b", 20));
  log.Append(V("c", 30));

  auto scan = log.Scan(Timestamp{10, 0}, 0);
  ASSERT_EQ(scan.versions.size(), 2u);
  EXPECT_EQ(scan.versions[0].key, "b");
  EXPECT_EQ(scan.versions[1].key, "c");
  EXPECT_FALSE(scan.has_more);
}

TEST(UpdateLogTest, ScanFromZeroReturnsEverything) {
  UpdateLog log;
  for (int i = 1; i <= 100; ++i) {
    log.Append(V("k" + std::to_string(i), i * 10));
  }
  auto scan = log.Scan(Timestamp::Zero(), 0);
  EXPECT_EQ(scan.versions.size(), 100u);
}

TEST(UpdateLogTest, MaxVersionsSetsHasMore) {
  UpdateLog log;
  for (int i = 1; i <= 10; ++i) {
    log.Append(V("k", i * 10));
  }
  auto scan = log.Scan(Timestamp::Zero(), 4);
  EXPECT_EQ(scan.versions.size(), 4u);
  EXPECT_TRUE(scan.has_more);

  // Resuming from the last returned timestamp yields the rest.
  auto rest = log.Scan(scan.versions.back().timestamp, 0);
  EXPECT_EQ(rest.versions.size(), 6u);
  EXPECT_FALSE(rest.has_more);
}

TEST(UpdateLogTest, SameTimestampBatchNeverSplit) {
  UpdateLog log;
  log.Append(V("a", 10));
  // A transactional commit: three writes at one timestamp.
  log.Append(V("x", 20));
  log.Append(V("y", 20));
  log.Append(V("z", 20));
  log.Append(V("b", 30));

  // max_versions = 2 would cut inside the batch; the scan must extend it.
  auto scan = log.Scan(Timestamp::Zero(), 2);
  ASSERT_EQ(scan.versions.size(), 4u);  // a + whole batch.
  EXPECT_EQ(scan.versions.back().timestamp, (Timestamp{20, 0}));
  EXPECT_TRUE(scan.has_more);

  auto rest = log.Scan(scan.versions.back().timestamp, 2);
  ASSERT_EQ(rest.versions.size(), 1u);
  EXPECT_EQ(rest.versions[0].key, "b");
}

TEST(UpdateLogTest, TruncationDropsEntries) {
  UpdateLog log;
  log.Append(V("a", 10));
  log.Append(V("b", 20));
  log.Append(V("c", 30));
  log.TruncateThrough(Timestamp{20, 0});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.truncation_point(), (Timestamp{20, 0}));
}

TEST(UpdateLogTest, ScanBelowTruncationReportsNonContiguous) {
  UpdateLog log;
  log.Append(V("a", 10));
  log.Append(V("b", 20));
  log.Append(V("c", 30));
  log.TruncateThrough(Timestamp{20, 0});

  // A reader at 10 can no longer get a contiguous stream.
  auto scan = log.Scan(Timestamp{10, 0}, 0);
  EXPECT_FALSE(scan.contiguous);
  EXPECT_TRUE(scan.versions.empty());

  // A reader exactly at the truncation point is fine.
  auto ok_scan = log.Scan(Timestamp{20, 0}, 0);
  EXPECT_TRUE(ok_scan.contiguous);
  ASSERT_EQ(ok_scan.versions.size(), 1u);
  EXPECT_EQ(ok_scan.versions[0].key, "c");
}

TEST(UpdateLogTest, LastTimestampTracksAppends) {
  UpdateLog log;
  log.Append(V("a", 10));
  log.Append(V("b", 20, 5));
  EXPECT_EQ(log.LastTimestamp(), (Timestamp{20, 5}));
}

TEST(UpdateLogTest, SequenceNumbersOrderWithinMicrosecond) {
  UpdateLog log;
  log.Append(V("a", 10, 0));
  log.Append(V("b", 10, 1));
  log.Append(V("c", 10, 2));
  auto scan = log.Scan(Timestamp{10, 1}, 0);
  ASSERT_EQ(scan.versions.size(), 1u);
  EXPECT_EQ(scan.versions[0].key, "c");
}

}  // namespace
}  // namespace pileus::storage
