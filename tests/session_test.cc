// Tests for session state and minimum acceptable read timestamps (paper
// Section 4.4, Figure 7).

#include <gtest/gtest.h>

#include "src/core/session.h"

namespace pileus::core {
namespace {

constexpr MicrosecondCount kNow = SecondsToMicroseconds(1000);

class SessionTest : public ::testing::Test {
 protected:
  Session session_{ShoppingCartSla()};
};

TEST_F(SessionTest, DefaultSlaIsStored) {
  EXPECT_EQ(session_.default_sla().size(), 2u);
}

TEST_F(SessionTest, StrongAlwaysRequiresMax) {
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Strong(), "k", kNow),
            Timestamp::Max());
  session_.RecordPut("k", Timestamp{500, 0});
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Strong(), "k", kNow),
            Timestamp::Max());
}

TEST_F(SessionTest, EventualIsAlwaysZero) {
  session_.RecordPut("k", Timestamp{500, 0});
  session_.RecordGet("k", Timestamp{600, 0});
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Eventual(), "k", kNow),
            Timestamp::Zero());
}

TEST_F(SessionTest, ReadMyWritesTracksPutsPerKey) {
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::ReadMyWrites(), "k", kNow),
            Timestamp::Zero());
  session_.RecordPut("k", Timestamp{500, 0});
  session_.RecordPut("other", Timestamp{900, 0});
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::ReadMyWrites(), "k", kNow),
            (Timestamp{500, 0}));
  // Unwritten keys still require nothing.
  EXPECT_EQ(
      session_.MinReadTimestamp(Guarantee::ReadMyWrites(), "unput", kNow),
      Timestamp::Zero());
}

TEST_F(SessionTest, ReadMyWritesKeepsMaxPut) {
  session_.RecordPut("k", Timestamp{500, 0});
  session_.RecordPut("k", Timestamp{700, 0});
  session_.RecordPut("k", Timestamp{600, 0});  // Stale echo; ignored.
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::ReadMyWrites(), "k", kNow),
            (Timestamp{700, 0}));
}

TEST_F(SessionTest, MonotonicTracksGetsPerKey) {
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Monotonic(), "k", kNow),
            Timestamp::Zero());
  session_.RecordGet("k", Timestamp{400, 0});
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Monotonic(), "k", kNow),
            (Timestamp{400, 0}));
  session_.RecordGet("k", Timestamp{450, 0});
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Monotonic(), "k", kNow),
            (Timestamp{450, 0}));
  // Other keys are independent.
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Monotonic(), "j", kNow),
            Timestamp::Zero());
}

TEST_F(SessionTest, CausalIsMaxOfAllReadsAndWrites) {
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Causal(), "k", kNow),
            Timestamp::Zero());
  session_.RecordGet("a", Timestamp{300, 0});
  session_.RecordPut("b", Timestamp{500, 0});
  session_.RecordGet("c", Timestamp{400, 0});
  // Causal min covers every key, even ones never touched.
  EXPECT_EQ(session_.MinReadTimestamp(Guarantee::Causal(), "zzz", kNow),
            (Timestamp{500, 0}));
}

TEST_F(SessionTest, BoundedSubtractsFromNow) {
  const Guarantee bounded = Guarantee::BoundedSeconds(30);
  EXPECT_EQ(session_.MinReadTimestamp(bounded, "k", kNow),
            (Timestamp{kNow - SecondsToMicroseconds(30), 0}));
}

TEST_F(SessionTest, BoundedClampsAtZero) {
  const Guarantee bounded = Guarantee::BoundedSeconds(30);
  EXPECT_EQ(session_.MinReadTimestamp(bounded, "k", 5),
            (Timestamp{0, 0}));
}

TEST_F(SessionTest, SessionScopeBoundaries) {
  // A fresh session has no memory of a previous one: the paper's YCSB
  // adaptation starts a new session every 400 operations.
  session_.RecordPut("k", Timestamp{500, 0});
  Session fresh(ShoppingCartSla());
  EXPECT_EQ(fresh.MinReadTimestamp(Guarantee::ReadMyWrites(), "k", kNow),
            Timestamp::Zero());
  EXPECT_EQ(fresh.MinReadTimestamp(Guarantee::Causal(), "k", kNow),
            Timestamp::Zero());
}

TEST_F(SessionTest, IntrospectionAccessors) {
  session_.RecordPut("a", Timestamp{100, 0});
  session_.RecordGet("b", Timestamp{200, 0});
  EXPECT_EQ(session_.LastPutTimestamp("a"), (Timestamp{100, 0}));
  EXPECT_EQ(session_.LastGetTimestamp("b"), (Timestamp{200, 0}));
  EXPECT_EQ(session_.max_write_timestamp(), (Timestamp{100, 0}));
  EXPECT_EQ(session_.max_read_timestamp(), (Timestamp{200, 0}));
  EXPECT_EQ(session_.tracked_put_keys(), 1u);
  EXPECT_EQ(session_.tracked_get_keys(), 1u);
}

TEST_F(SessionTest, SerializeRoundTripPreservesGuaranteeState) {
  session_.RecordPut("cart", Timestamp{500, 3});
  session_.RecordPut("profile", Timestamp{600, 0});
  session_.RecordGet("cart", Timestamp{450, 0});
  session_.RecordGet("news", Timestamp{700, 1});

  const std::string bytes = session_.Serialize();
  Result<Session> restored = Session::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();

  // The guarantee-relevant state is identical: min read timestamps match
  // for every guarantee and key.
  for (const Guarantee& guarantee :
       {Guarantee::Strong(), Guarantee::Causal(), Guarantee::BoundedSeconds(30),
        Guarantee::ReadMyWrites(), Guarantee::Monotonic(),
        Guarantee::Eventual()}) {
    for (const char* key : {"cart", "profile", "news", "untouched"}) {
      EXPECT_EQ(restored->MinReadTimestamp(guarantee, key, kNow),
                session_.MinReadTimestamp(guarantee, key, kNow))
          << guarantee.ToString() << " / " << key;
    }
  }
  // The default SLA travelled with the session.
  EXPECT_EQ(restored->default_sla().size(), session_.default_sla().size());
  EXPECT_EQ(restored->default_sla()[0].consistency,
            session_.default_sla()[0].consistency);
}

TEST_F(SessionTest, SerializeEmptySession) {
  Result<Session> restored = Session::Deserialize(session_.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->tracked_put_keys(), 0u);
  EXPECT_EQ(restored->tracked_get_keys(), 0u);
}

TEST_F(SessionTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Session::Deserialize("").ok());
  EXPECT_FALSE(Session::Deserialize("not a session").ok());
  std::string bytes = session_.Serialize();
  bytes[0] = '\x7f';  // Bad version.
  EXPECT_FALSE(Session::Deserialize(bytes).ok());
  // Truncations never crash and are rejected.
  const std::string full = session_.Serialize();
  for (size_t cut = 1; cut + 1 < full.size(); cut += 2) {
    EXPECT_FALSE(Session::Deserialize(full.substr(0, cut)).ok()) << cut;
  }
  // Trailing junk is rejected.
  EXPECT_FALSE(Session::Deserialize(full + "x").ok());
}

TEST_F(SessionTest, CacheFloorStartsAtZeroAndOnlyRises) {
  EXPECT_EQ(session_.cache_floor(), Timestamp::Zero());
  session_.RaiseCacheFloor(Timestamp{500, 0});
  EXPECT_EQ(session_.cache_floor(), (Timestamp{500, 0}));
  // Raising to something lower is a no-op: the floor is monotonic.
  session_.RaiseCacheFloor(Timestamp{100, 0});
  EXPECT_EQ(session_.cache_floor(), (Timestamp{500, 0}));
}

TEST_F(SessionTest, DeserializeRaisesCacheFloorToHandoffPoint) {
  // A serialized hand-off moves the session to a frontend whose cache never
  // saw this session's history: Deserialize must conservatively distrust
  // any cached entry whose validity predates what the session has already
  // read or written (DESIGN.md "Client cache").
  session_.RecordPut("cart", Timestamp{500, 3});
  session_.RecordGet("news", Timestamp{700, 1});
  Result<Session> restored = Session::Deserialize(session_.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->cache_floor(), (Timestamp{700, 1}));

  // The floor itself survives a second hop even if it exceeds the
  // guarantee state (e.g. it was raised explicitly on the first frontend).
  restored->RaiseCacheFloor(Timestamp{900, 0});
  Result<Session> second_hop = Session::Deserialize(restored->Serialize());
  ASSERT_TRUE(second_hop.ok());
  EXPECT_EQ(second_hop->cache_floor(), (Timestamp{900, 0}));
}

TEST_F(SessionTest, BoundedSlaSurvivesSerialization) {
  Session session(WebApplicationSla());
  Result<Session> restored = Session::Deserialize(session.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->default_sla().size(), 4u);
  EXPECT_EQ(restored->default_sla()[0].consistency.bound_us,
            SecondsToMicroseconds(300));
  EXPECT_DOUBLE_EQ(restored->default_sla()[1].utility, 0.000008);
}

// Ordering property across all guarantees: strong >= causal >= {rmw,
// monotonic} >= eventual for any session state (Figure 7's nesting).
TEST_F(SessionTest, GuaranteeStrengthOrdering) {
  session_.RecordPut("k", Timestamp{500, 0});
  session_.RecordGet("k", Timestamp{450, 0});
  session_.RecordGet("j", Timestamp{480, 0});

  const Timestamp strong =
      session_.MinReadTimestamp(Guarantee::Strong(), "k", kNow);
  const Timestamp causal =
      session_.MinReadTimestamp(Guarantee::Causal(), "k", kNow);
  const Timestamp rmw =
      session_.MinReadTimestamp(Guarantee::ReadMyWrites(), "k", kNow);
  const Timestamp monotonic =
      session_.MinReadTimestamp(Guarantee::Monotonic(), "k", kNow);
  const Timestamp eventual =
      session_.MinReadTimestamp(Guarantee::Eventual(), "k", kNow);

  EXPECT_GE(strong, causal);
  EXPECT_GE(causal, rmw);
  EXPECT_GE(causal, monotonic);
  EXPECT_GE(rmw, eventual);
  EXPECT_GE(monotonic, eventual);
}

}  // namespace
}  // namespace pileus::core
