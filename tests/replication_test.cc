// Tests for the replication agents: the pull state machine, blocking and
// threaded pullers, ordering, heartbeats, and failure handling.

#include <gtest/gtest.h>

#include <atomic>

#include "src/common/clock.h"
#include "src/replication/replication_agent.h"
#include "src/storage/tablet.h"

namespace pileus::replication {
namespace {

using storage::Tablet;

struct Fixture {
  ManualClock clock{1000};
  Tablet primary;
  Tablet secondary;

  Fixture()
      : primary(
            [] {
              Tablet::Options options;
              options.is_primary = true;
              return options;
            }(),
            &clock),
        secondary(Tablet::Options{}, &clock) {}

  void PutMany(int n) {
    for (int i = 0; i < n; ++i) {
      clock.AdvanceMicros(3);
      (void)primary.HandlePut("k" + std::to_string(i),
                              "v" + std::to_string(i));
    }
  }
};

TEST(ReplicationAgentTest, NextRequestAsksAboveHighTimestamp) {
  Fixture fx;
  ReplicationAgent::Options options;
  options.table = "t";
  options.max_versions_per_pull = 7;
  ReplicationAgent agent(&fx.secondary, options);

  proto::SyncRequest request = agent.NextRequest();
  EXPECT_EQ(request.table, "t");
  EXPECT_EQ(request.after, Timestamp::Zero());
  EXPECT_EQ(request.max_versions, 7u);
}

TEST(ReplicationAgentTest, OnReplyAppliesAndCounts) {
  Fixture fx;
  fx.PutMany(5);
  ReplicationAgent agent(&fx.secondary, {.table = "t"});

  const proto::SyncReply reply =
      fx.primary.HandleSync(agent.NextRequest().after, 0);
  EXPECT_FALSE(agent.OnReply(reply));
  EXPECT_EQ(agent.versions_applied(), 5u);
  EXPECT_EQ(agent.pulls_completed(), 1u);
  EXPECT_TRUE(fx.secondary.HandleGet("k4").found);
}

TEST(ReplicationAgentTest, OnReplySignalsMoreRounds) {
  Fixture fx;
  fx.PutMany(10);
  ReplicationAgent agent(&fx.secondary, {.table = "t"});

  const proto::SyncReply reply =
      fx.primary.HandleSync(agent.NextRequest().after, 3);
  EXPECT_TRUE(reply.has_more);
  EXPECT_TRUE(agent.OnReply(reply));
  EXPECT_EQ(agent.pulls_completed(), 0u);  // Cycle not finished yet.
}

TEST(BlockingPullerTest, LoopsUntilCaughtUp) {
  Fixture fx;
  fx.PutMany(20);
  ReplicationAgent agent(&fx.secondary,
                         {.table = "t", .max_versions_per_pull = 6});
  int round_trips = 0;
  BlockingPuller puller(&agent, [&](const proto::SyncRequest& request) {
    ++round_trips;
    return fx.primary.HandleSync(request.after, request.max_versions);
  });

  Result<int> pulled = puller.PullOnce();
  ASSERT_TRUE(pulled.ok());
  EXPECT_EQ(pulled.value(), 20);
  EXPECT_EQ(round_trips, 4);  // ceil(20/6).
  EXPECT_TRUE(fx.secondary.HandleGet("k19").found);
  EXPECT_EQ(agent.pulls_completed(), 1u);
}

TEST(BlockingPullerTest, SecondPullIsIncremental) {
  Fixture fx;
  fx.PutMany(5);
  ReplicationAgent agent(&fx.secondary, {.table = "t"});
  BlockingPuller puller(&agent, [&](const proto::SyncRequest& request) {
    return fx.primary.HandleSync(request.after, request.max_versions);
  });
  ASSERT_EQ(puller.PullOnce().value(), 5);
  fx.PutMany(3);  // Keys k0..k2 overwritten with new timestamps.
  ASSERT_EQ(puller.PullOnce().value(), 3);
  EXPECT_EQ(agent.versions_applied(), 8u);
}

TEST(BlockingPullerTest, PropagatesSourceErrors) {
  Fixture fx;
  ReplicationAgent agent(&fx.secondary, {.table = "t"});
  BlockingPuller puller(&agent, [&](const proto::SyncRequest&) {
    return Result<proto::SyncReply>(StatusCode::kUnavailable, "down");
  });
  EXPECT_EQ(puller.PullOnce().status().code(), StatusCode::kUnavailable);
}

TEST(BlockingPullerTest, DeliversInTimestampOrderPrefix) {
  // After any pull, the secondary must hold a *prefix* of the primary's
  // update sequence (prefix consistency, Section 4.2): if it has version X
  // it has every earlier version too.
  Fixture fx;
  fx.PutMany(50);
  ReplicationAgent agent(&fx.secondary,
                         {.table = "t", .max_versions_per_pull = 7});
  BlockingPuller puller(&agent, [&](const proto::SyncRequest& request) {
    return fx.primary.HandleSync(request.after, request.max_versions);
  });
  ASSERT_TRUE(puller.PullOnce().ok());
  const Timestamp high = fx.secondary.high_timestamp();
  for (int i = 0; i < 50; ++i) {
    const auto reply = fx.secondary.HandleGet("k" + std::to_string(i));
    ASSERT_TRUE(reply.found) << i;
    EXPECT_LE(reply.value_timestamp, high);
  }
}

TEST(ThreadedPullerTest, PullNowSyncsPromptly) {
  Fixture fx;
  fx.PutMany(5);
  ReplicationAgent agent(&fx.secondary, {.table = "t"});
  std::atomic<int> pulls{0};
  ThreadedPuller puller(
      &agent,
      [&](const proto::SyncRequest& request) {
        ++pulls;
        return fx.primary.HandleSync(request.after, request.max_versions);
      },
      SecondsToMicroseconds(3600));  // Period long enough to never fire.
  puller.PullNow();
  for (int i = 0; i < 200 && pulls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  puller.Stop();
  EXPECT_GE(pulls.load(), 1);
  EXPECT_TRUE(fx.secondary.HandleGet("k4").found);
}

TEST(ThreadedPullerTest, PeriodicPullsHappen) {
  Fixture fx;
  fx.PutMany(2);
  ReplicationAgent agent(&fx.secondary, {.table = "t"});
  std::atomic<int> pulls{0};
  {
    ThreadedPuller puller(
        &agent,
        [&](const proto::SyncRequest& request) {
          ++pulls;
          return fx.primary.HandleSync(request.after, request.max_versions);
        },
        MillisecondsToMicroseconds(5));
    for (int i = 0; i < 200 && pulls.load() < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }  // Destructor stops the thread.
  EXPECT_GE(pulls.load(), 3);
}

TEST(ThreadedPullerTest, StopIsIdempotent) {
  Fixture fx;
  ReplicationAgent agent(&fx.secondary, {.table = "t"});
  ThreadedPuller puller(
      &agent,
      [&](const proto::SyncRequest& request) {
        return fx.primary.HandleSync(request.after, request.max_versions);
      },
      SecondsToMicroseconds(1));
  puller.Stop();
  puller.Stop();
}

}  // namespace
}  // namespace pileus::replication
