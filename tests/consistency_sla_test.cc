// Tests for consistency guarantees and SLA structures.

#include <gtest/gtest.h>

#include "src/core/consistency.h"
#include "src/core/sla.h"

namespace pileus::core {
namespace {

TEST(GuaranteeTest, FactoryMethodsSetConsistency) {
  EXPECT_EQ(Guarantee::Strong().consistency, Consistency::kStrong);
  EXPECT_EQ(Guarantee::Causal().consistency, Consistency::kCausal);
  EXPECT_EQ(Guarantee::ReadMyWrites().consistency,
            Consistency::kReadMyWrites);
  EXPECT_EQ(Guarantee::Monotonic().consistency, Consistency::kMonotonic);
  EXPECT_EQ(Guarantee::Eventual().consistency, Consistency::kEventual);
  EXPECT_EQ(Guarantee::BoundedSeconds(30).bound_us,
            SecondsToMicroseconds(30));
}

TEST(GuaranteeTest, OnlyStrongRequiresAuthoritative) {
  EXPECT_TRUE(Guarantee::Strong().RequiresAuthoritative());
  EXPECT_FALSE(Guarantee::Causal().RequiresAuthoritative());
  EXPECT_FALSE(Guarantee::BoundedSeconds(1).RequiresAuthoritative());
  EXPECT_FALSE(Guarantee::ReadMyWrites().RequiresAuthoritative());
  EXPECT_FALSE(Guarantee::Monotonic().RequiresAuthoritative());
  EXPECT_FALSE(Guarantee::Eventual().RequiresAuthoritative());
}

TEST(GuaranteeTest, ToStringFormats) {
  EXPECT_EQ(Guarantee::Strong().ToString(), "strong");
  EXPECT_EQ(Guarantee::BoundedSeconds(30).ToString(), "bounded(30s)");
  EXPECT_EQ(Guarantee::ReadMyWrites().ToString(), "read-my-writes");
}

TEST(GuaranteeTest, AllConsistenciesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Consistency::kEventual); ++c) {
    EXPECT_NE(ConsistencyName(static_cast<Consistency>(c)), "unknown");
  }
}

TEST(SlaTest, FluentConstruction) {
  const Sla sla = Sla()
                      .Add(Guarantee::Strong(), 1000, 1.0)
                      .Add(Guarantee::Eventual(), 2000, 0.5);
  EXPECT_EQ(sla.size(), 2u);
  EXPECT_EQ(sla[0].consistency, Guarantee::Strong());
  EXPECT_EQ(sla[1].utility, 0.5);
}

TEST(SlaTest, MaxLatencyIsLargestTarget) {
  const Sla sla = Sla()
                      .Add(Guarantee::Strong(), 150, 1.0)
                      .Add(Guarantee::Eventual(), 100, 0.5)
                      .Add(Guarantee::Strong(), 1000, 0.25);
  EXPECT_EQ(sla.MaxLatency(), 1000);
}

// Parameterized validation cases.
struct ValidationCase {
  const char* name;
  Sla sla;
  bool valid;
};

class SlaValidation : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(SlaValidation, Validates) {
  EXPECT_EQ(GetParam().sla.Validate().ok(), GetParam().valid)
      << GetParam().sla.ToString() << " -> "
      << GetParam().sla.Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SlaValidation,
    ::testing::Values(
        ValidationCase{"empty", Sla(), false},
        ValidationCase{"single",
                       Sla().Add(Guarantee::Eventual(), 1000, 1.0), true},
        ValidationCase{"zero_latency",
                       Sla().Add(Guarantee::Eventual(), 0, 1.0), false},
        ValidationCase{"negative_utility",
                       Sla().Add(Guarantee::Eventual(), 1000, -0.5), false},
        ValidationCase{"zero_utility_ok",
                       Sla().Add(Guarantee::Eventual(), 1000, 0.0), true},
        ValidationCase{"increasing_utility_rejected",
                       Sla()
                           .Add(Guarantee::Strong(), 1000, 0.5)
                           .Add(Guarantee::Eventual(), 1000, 1.0),
                       false},
        ValidationCase{"equal_utilities_ok",
                       Sla()
                           .Add(Guarantee::Strong(), 1000, 1.0)
                           .Add(Guarantee::Eventual(), 1000, 1.0),
                       true},
        ValidationCase{"bounded_without_bound",
                       Sla().Add(Guarantee::Bounded(0), 1000, 1.0), false},
        ValidationCase{"bounded_with_bound",
                       Sla().Add(Guarantee::BoundedSeconds(10), 1000, 1.0),
                       true}),
    [](const ::testing::TestParamInfo<ValidationCase>& param_info) {
      return param_info.param.name;
    });

TEST(SlaTest, BuiltInSlasAreValid) {
  EXPECT_TRUE(ShoppingCartSla().Validate().ok());
  EXPECT_TRUE(WebApplicationSla().Validate().ok());
  EXPECT_TRUE(PasswordCheckingSla().Validate().ok());
}

TEST(SlaTest, ShoppingCartMatchesPaperFigure4) {
  const Sla sla = ShoppingCartSla();
  ASSERT_EQ(sla.size(), 2u);
  EXPECT_EQ(sla[0].consistency, Guarantee::ReadMyWrites());
  EXPECT_EQ(sla[0].latency_us, MillisecondsToMicroseconds(300));
  EXPECT_DOUBLE_EQ(sla[0].utility, 1.0);
  EXPECT_EQ(sla[1].consistency, Guarantee::Eventual());
  EXPECT_DOUBLE_EQ(sla[1].utility, 0.5);
}

TEST(SlaTest, PasswordCheckingMatchesPaperFigure6) {
  const Sla sla = PasswordCheckingSla();
  ASSERT_EQ(sla.size(), 3u);
  EXPECT_EQ(sla[0].consistency, Guarantee::Strong());
  EXPECT_EQ(sla[1].consistency, Guarantee::Eventual());
  EXPECT_EQ(sla[2].consistency, Guarantee::Strong());
  EXPECT_EQ(sla[2].latency_us, SecondsToMicroseconds(1));
  EXPECT_DOUBLE_EQ(sla[2].utility, 0.25);
}

TEST(SlaTest, WebApplicationMatchesPaperFigure5) {
  const Sla sla = WebApplicationSla();
  ASSERT_EQ(sla.size(), 4u);
  for (const SubSla& sub : sla.subslas()) {
    EXPECT_EQ(sub.consistency.consistency, Consistency::kBounded);
    EXPECT_EQ(sub.consistency.bound_us, SecondsToMicroseconds(300));
  }
  EXPECT_DOUBLE_EQ(sla[3].utility, 0.0);
}

TEST(SlaTest, MaxAvailabilityTailValidatesAsFinalSubSla) {
  Sla sla = ShoppingCartSla();
  const SubSla tail = MaxAvailabilitySubSla();
  sla.Add(tail.consistency, tail.latency_us, tail.utility);
  EXPECT_TRUE(sla.Validate().ok());
  EXPECT_EQ(sla.MaxLatency(), SecondsToMicroseconds(3600));
}

TEST(SlaTest, ToStringListsSubSlas) {
  const std::string text = PasswordCheckingSla().ToString();
  EXPECT_NE(text.find("strong"), std::string::npos);
  EXPECT_NE(text.find("eventual"), std::string::npos);
  EXPECT_NE(text.find("u=0.25"), std::string::npos);
}

}  // namespace
}  // namespace pileus::core
