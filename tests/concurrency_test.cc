// Concurrency tests: storage nodes under multi-threaded load, the monitor
// shared between an application thread and a prober, and parallel fan-out.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/client.h"
#include "src/core/monitor.h"
#include "src/core/prober.h"
#include "src/net/inproc.h"
#include "src/storage/storage_node.h"

namespace pileus {
namespace {

constexpr MicrosecondCount kMs = kMicrosecondsPerMillisecond;

TEST(ConcurrencyTest, StorageNodeHandlesParallelClients) {
  storage::StorageNode node("n", "s", RealClock::Instance());
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());

  constexpr int kThreads = 8;
  constexpr int kOpsEach = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsEach; ++i) {
        proto::PutRequest put;
        put.table = "t";
        put.key = "key" + std::to_string(i % 50);
        put.value = std::to_string(t) + ":" + std::to_string(i);
        if (!std::holds_alternative<proto::PutReply>(node.Handle(put))) {
          ++failures;
        }
        proto::GetRequest get;
        get.table = "t";
        get.key = put.key;
        proto::Message reply = node.Handle(get);
        const auto* get_reply = std::get_if<proto::GetReply>(&reply);
        if (get_reply == nullptr || !get_reply->found) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(node.requests_served(),
            static_cast<uint64_t>(kThreads * kOpsEach * 2));

  // Every key's final version is a value some thread actually wrote, and the
  // update log is in non-decreasing timestamp order.
  auto* tablet = node.FindTablet("t", "");
  const auto scan = tablet->update_log().Scan(Timestamp::Zero(), 0);
  for (size_t i = 1; i < scan.versions.size(); ++i) {
    ASSERT_GE(scan.versions[i].timestamp, scan.versions[i - 1].timestamp);
  }
  EXPECT_EQ(scan.versions.size(),
            static_cast<size_t>(kThreads * kOpsEach));
}

TEST(ConcurrencyTest, MonitorSharedBetweenThreads) {
  ManualClock clock(SecondsToMicroseconds(1000));
  core::Monitor monitor(&clock);
  std::atomic<bool> stop{false};

  // Writer threads feed evidence; reader threads query estimates.
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Random rng(w);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string node = "node-" + std::to_string(rng.NextUint64(4));
        monitor.RecordLatency(node, 1000 + rng.NextUint64(1000));
        monitor.RecordHighTimestamp(
            node, Timestamp{static_cast<int64_t>(rng.NextUint64(1 << 20)), 0});
        if (rng.NextBool(0.1)) {
          monitor.RecordFailure(node);
        } else {
          monitor.RecordSuccess(node);
        }
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Random rng(100 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const std::string node = "node-" + std::to_string(rng.NextUint64(4));
        const double lat = monitor.PNodeLat(node, 1500);
        const double up = monitor.PNodeUp(node);
        if (lat < 0.0 || lat > 1.0 || up < 0.0 || up > 1.0) {
          ADD_FAILURE() << "estimate out of range";
        }
        (void)monitor.KnownHighTimestamp(node);
        (void)monitor.MeanLatency(node);
        (void)monitor.NeedsProbe(node);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GT(monitor.samples_recorded(), 100u);
}

TEST(ConcurrencyTest, ClientWithBackgroundProberUnderLoad) {
  storage::StorageNode primary("primary", "dc", RealClock::Instance());
  storage::StorageNode secondary("secondary", "dc", RealClock::Instance());
  storage::Tablet::Options primary_options;
  primary_options.is_primary = true;
  ASSERT_TRUE(primary.AddTablet("t", primary_options).ok());
  ASSERT_TRUE(secondary.AddTablet("t", storage::Tablet::Options{}).ok());

  net::InProcNetwork network;
  network.RegisterEndpoint(
      "primary", [&](const proto::Message& m) { return primary.Handle(m); });
  network.RegisterEndpoint("secondary", [&](const proto::Message& m) {
    return secondary.Handle(m);
  });

  core::TableView view;
  view.table_name = "t";
  view.replicas = {
      core::Replica{"primary", true,
                    std::make_shared<core::ChannelConnection>(
                        network.Connect("primary", 200),
                        RealClock::Instance())},
      core::Replica{"secondary", false,
                    std::make_shared<core::ChannelConnection>(
                        network.Connect("secondary", 100),
                        RealClock::Instance())}};
  view.primary_index = 0;
  core::PileusClient::Options options;
  options.monitor.probe_interval_us = 1 * kMs;
  core::PileusClient client(std::move(view), RealClock::Instance(), options);

  // Prober hammering the monitor from another thread while the application
  // thread runs a few hundred operations.
  core::ThreadedProber prober(&client, 1 * kMs);
  core::Session session =
      client.BeginSession(core::ShoppingCartSla()).value();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(client.Put(session, "k" + std::to_string(i % 20), "v").ok());
    Result<core::GetResult> result =
        client.Get(session, "k" + std::to_string(i % 20));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->found);
  }
  EXPECT_GT(client.monitor().samples_recorded(), 300u);
}

TEST(ConcurrencyTest, ThreadFanoutCollectsAllReplies) {
  storage::StorageNode node("n", "s", RealClock::Instance());
  storage::Tablet::Options options;
  options.is_primary = true;
  ASSERT_TRUE(node.AddTablet("t", options).ok());
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  (void)node.Handle(put);

  net::InProcNetwork network;
  network.RegisterEndpoint(
      "n", [&](const proto::Message& m) { return node.Handle(m); });

  std::vector<std::unique_ptr<core::NodeConnection>> owned;
  std::vector<core::NodeConnection*> connections;
  for (int i = 0; i < 6; ++i) {
    owned.push_back(std::make_unique<core::ChannelConnection>(
        network.Connect("n", 1000 * (i + 1)), RealClock::Instance()));
    connections.push_back(owned.back().get());
  }
  core::ThreadFanoutCaller fanout;
  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  const std::vector<core::TimedReply> replies =
      fanout.CallAll(connections, get, SecondsToMicroseconds(5));
  ASSERT_EQ(replies.size(), 6u);
  for (const core::TimedReply& reply : replies) {
    ASSERT_TRUE(reply.reply.ok());
    EXPECT_TRUE(std::get<proto::GetReply>(reply.reply.value()).found);
  }
}

}  // namespace
}  // namespace pileus
