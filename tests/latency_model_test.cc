// Tests for the geo-latency model.

#include <gtest/gtest.h>

#include "src/sim/latency_model.h"

namespace pileus::sim {
namespace {

LatencyModel::Options NoJitter() {
  LatencyModel::Options options;
  options.jitter_sigma = 0.0;
  options.spike_probability = 0.0;
  return options;
}

TEST(LatencyModelTest, SitesRegisterWithLocalRtt) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A");
  EXPECT_EQ(model.site_count(), 1);
  EXPECT_EQ(model.SiteName(a), "A");
  EXPECT_EQ(model.BaseRtt(a, a), MillisecondsToMicroseconds(1));
}

TEST(LatencyModelTest, CustomLocalRtt) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A", 500);
  EXPECT_EQ(model.BaseRtt(a, a), 500);
}

TEST(LatencyModelTest, RttIsSymmetric) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 10000);
  EXPECT_EQ(model.BaseRtt(a, b), 10000);
  EXPECT_EQ(model.BaseRtt(b, a), 10000);
}

TEST(LatencyModelTest, MatrixSurvivesLaterSiteAdditions) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 7777);
  const SiteId c = model.AddSite("C");
  model.SetRtt(a, c, 8888);
  EXPECT_EQ(model.BaseRtt(a, b), 7777);
  EXPECT_EQ(model.BaseRtt(a, c), 8888);
  EXPECT_EQ(model.BaseRtt(b, c), 0);
}

TEST(LatencyModelTest, DeltasAddAndClear) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 10000);
  model.SetRttDelta(a, b, 5000);
  EXPECT_EQ(model.BaseRtt(a, b), 15000);
  EXPECT_EQ(model.BaseRtt(b, a), 15000);
  model.SetRttDelta(a, b, 0);
  EXPECT_EQ(model.BaseRtt(a, b), 10000);
}

TEST(LatencyModelTest, SampleOneWayIsHalfRttWithoutJitter) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 10000);
  Random rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.SampleOneWay(a, b, rng), 5000);
  }
}

TEST(LatencyModelTest, JitterStaysTight) {
  LatencyModel::Options options;
  options.jitter_sigma = 0.01;
  options.spike_probability = 0.0;
  LatencyModel model(options);
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 100000);
  Random rng(2);
  for (int i = 0; i < 10000; ++i) {
    const MicrosecondCount sample = model.SampleOneWay(a, b, rng);
    EXPECT_GT(sample, 45000);  // Within ~10% of the 50 ms one-way.
    EXPECT_LT(sample, 55000);
  }
}

TEST(LatencyModelTest, SpikesMultiplyLatency) {
  LatencyModel::Options options;
  options.jitter_sigma = 0.0;
  options.spike_probability = 1.0;  // Every sample spikes.
  options.spike_multiplier = 4.0;
  LatencyModel model(options);
  const SiteId a = model.AddSite("A");
  const SiteId b = model.AddSite("B");
  model.SetRtt(a, b, 10000);
  Random rng(3);
  EXPECT_EQ(model.SampleOneWay(a, b, rng), 20000);
}

TEST(LatencyModelTest, SampleNeverBelowOneMicrosecond) {
  LatencyModel model(NoJitter());
  const SiteId a = model.AddSite("A", 0);
  Random rng(4);
  EXPECT_GE(model.SampleOneWay(a, a, rng), 1);
}

TEST(LatencyModelTest, FindSiteByName) {
  LatencyModel model(NoJitter());
  model.AddSite("US");
  const SiteId england = model.AddSite("England");
  EXPECT_EQ(model.FindSite("England"), england);
  EXPECT_EQ(model.FindSite("Mars"), -1);
}

}  // namespace
}  // namespace pileus::sim
