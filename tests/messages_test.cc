// Tests for the storage protocol messages: round trips for every message
// type and rejection of malformed input.

#include <gtest/gtest.h>

#include "src/proto/messages.h"

namespace pileus::proto {
namespace {

template <typename T>
T RoundTrip(const T& in) {
  const std::string bytes = EncodeMessage(Message(in));
  Result<Message> decoded = DecodeMessage(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  const T* out = std::get_if<T>(&decoded.value());
  EXPECT_NE(out, nullptr) << "decoded to wrong alternative";
  return out != nullptr ? *out : T{};
}

TEST(MessagesTest, GetRequestRoundTrip) {
  GetRequest in;
  in.table = "orders";
  in.key = "user42";
  const GetRequest out = RoundTrip(in);
  EXPECT_EQ(out.table, "orders");
  EXPECT_EQ(out.key, "user42");
}

TEST(MessagesTest, GetReplyRoundTrip) {
  GetReply in;
  in.found = true;
  in.value = std::string("\x00\x01\xffx", 4);
  in.value_timestamp = Timestamp{123, 4};
  in.high_timestamp = Timestamp{456, 7};
  in.served_by_primary = true;
  const GetReply out = RoundTrip(in);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.value, in.value);
  EXPECT_EQ(out.value_timestamp, in.value_timestamp);
  EXPECT_EQ(out.high_timestamp, in.high_timestamp);
  EXPECT_TRUE(out.served_by_primary);
}

TEST(MessagesTest, AdmissionContextRoundTrip) {
  // Wire v4: requests carry the tenant, remaining deadline, target-rank
  // utility, and strong-read flag; replies carry the server-measured
  // admission queue delay; rejections carry a retry_after hint.
  GetRequest get;
  get.table = "t";
  get.key = "k";
  get.tenant = "tenant-a";
  get.deadline_us = 250'000;
  get.utility_micros = 400'000;
  get.strong_read = true;
  const GetRequest get_out = RoundTrip(get);
  EXPECT_EQ(get_out.tenant, "tenant-a");
  EXPECT_EQ(get_out.deadline_us, 250'000);
  EXPECT_EQ(get_out.utility_micros, 400'000u);
  EXPECT_TRUE(get_out.strong_read);

  PutRequest put;
  put.table = "t";
  put.key = "k";
  put.tenant = "tenant-b";
  put.deadline_us = 1'000'000;
  const PutRequest put_out = RoundTrip(put);
  EXPECT_EQ(put_out.tenant, "tenant-b");
  EXPECT_EQ(put_out.deadline_us, 1'000'000);

  RangeRequest range;
  range.table = "t";
  range.tenant = "tenant-c";
  range.deadline_us = 42;
  range.utility_micros = 100'000;
  range.strong_read = false;
  const RangeRequest range_out = RoundTrip(range);
  EXPECT_EQ(range_out.tenant, "tenant-c");
  EXPECT_EQ(range_out.deadline_us, 42);
  EXPECT_EQ(range_out.utility_micros, 100'000u);
  EXPECT_FALSE(range_out.strong_read);

  GetReply get_reply;
  get_reply.found = true;
  get_reply.value = "v";
  get_reply.queue_delay_us = 7'500;
  EXPECT_EQ(RoundTrip(get_reply).queue_delay_us, 7'500);

  PutReply put_reply;
  put_reply.queue_delay_us = 123;
  EXPECT_EQ(RoundTrip(put_reply).queue_delay_us, 123);

  ErrorReply error;
  error.code = StatusCode::kOverloaded;
  error.message = "shed";
  error.retry_after_ms = 45;
  const ErrorReply error_out = RoundTrip(error);
  EXPECT_EQ(error_out.code, StatusCode::kOverloaded);
  EXPECT_EQ(error_out.retry_after_ms, 45u);
}

TEST(MessagesTest, DataPathClassification) {
  // Data-path requests pass through admission; control traffic (probes,
  // sync pulls, config installs, stats) must bypass it.
  EXPECT_TRUE(IsDataPathRequest(Message(GetRequest{})));
  EXPECT_TRUE(IsDataPathRequest(Message(PutRequest{})));
  EXPECT_TRUE(IsDataPathRequest(Message(RangeRequest{})));
  EXPECT_TRUE(IsDataPathRequest(Message(DeleteRequest{})));
  EXPECT_FALSE(IsDataPathRequest(Message(ProbeRequest{})));
  EXPECT_FALSE(IsDataPathRequest(Message(SyncRequest{})));
  EXPECT_FALSE(IsDataPathRequest(Message(StatsRequest{})));
}

TEST(MessagesTest, MakeOverloadedReplyCarriesHint) {
  const Message reply = MakeOverloadedReply(80);
  const ErrorReply* error = std::get_if<ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, StatusCode::kOverloaded);
  EXPECT_EQ(error->retry_after_ms, 80u);
}

TEST(MessagesTest, GetReplyNotFoundRoundTrip) {
  GetReply in;
  in.found = false;
  in.high_timestamp = Timestamp{99, 0};
  const GetReply out = RoundTrip(in);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.value.empty());
}

TEST(MessagesTest, PutRequestReplyRoundTrip) {
  PutRequest req;
  req.table = "t";
  req.key = "k";
  req.value = std::string(1000, 'v');
  EXPECT_EQ(RoundTrip(req).value, req.value);

  PutReply reply;
  reply.timestamp = Timestamp{5, 1};
  reply.high_timestamp = Timestamp{6, 0};
  const PutReply out = RoundTrip(reply);
  EXPECT_EQ(out.timestamp, reply.timestamp);
  EXPECT_EQ(out.high_timestamp, reply.high_timestamp);
}

TEST(MessagesTest, ProbeRoundTrip) {
  ProbeRequest req;
  req.table = "t";
  EXPECT_EQ(RoundTrip(req).table, "t");

  ProbeReply reply;
  reply.high_timestamp = Timestamp{1234, 0};
  reply.is_primary = true;
  const ProbeReply out = RoundTrip(reply);
  EXPECT_EQ(out.high_timestamp, reply.high_timestamp);
  EXPECT_TRUE(out.is_primary);
}

TEST(MessagesTest, SyncRequestRoundTrip) {
  SyncRequest req;
  req.table = "t";
  req.after = Timestamp{777, 3};
  req.max_versions = 1000;
  const SyncRequest out = RoundTrip(req);
  EXPECT_EQ(out.after, req.after);
  EXPECT_EQ(out.max_versions, 1000u);
}

TEST(MessagesTest, SyncReplyRoundTrip) {
  SyncReply reply;
  for (int i = 0; i < 50; ++i) {
    ObjectVersion version;
    version.key = "key" + std::to_string(i);
    version.value = std::string(i, 'x');
    version.timestamp = Timestamp{1000 + i, static_cast<uint32_t>(i)};
    reply.versions.push_back(version);
  }
  reply.heartbeat = Timestamp{2000, 0};
  reply.has_more = true;
  const SyncReply out = RoundTrip(reply);
  ASSERT_EQ(out.versions.size(), 50u);
  EXPECT_EQ(out.versions[49], reply.versions[49]);
  EXPECT_EQ(out.heartbeat, reply.heartbeat);
  EXPECT_TRUE(out.has_more);
}

TEST(MessagesTest, EmptySyncReplyRoundTrip) {
  SyncReply reply;
  reply.heartbeat = Timestamp{1, 0};
  const SyncReply out = RoundTrip(reply);
  EXPECT_TRUE(out.versions.empty());
  EXPECT_FALSE(out.has_more);
}

TEST(MessagesTest, GetAtRoundTrip) {
  GetAtRequest req;
  req.table = "t";
  req.key = "k";
  req.snapshot = Timestamp{42, 0};
  EXPECT_EQ(RoundTrip(req).snapshot, req.snapshot);

  GetAtReply reply;
  reply.found = true;
  reply.value = "v";
  reply.value_timestamp = Timestamp{41, 0};
  reply.snapshot_available = false;
  const GetAtReply out = RoundTrip(reply);
  EXPECT_TRUE(out.found);
  EXPECT_FALSE(out.snapshot_available);
}

TEST(MessagesTest, CommitRoundTrip) {
  CommitRequest req;
  req.table = "t";
  req.snapshot = Timestamp{10, 0};
  req.read_keys = {"a", "b"};
  ObjectVersion w;
  w.key = "c";
  w.value = "v";
  req.writes.push_back(w);
  req.validate_reads = true;
  const CommitRequest out = RoundTrip(req);
  EXPECT_EQ(out.read_keys, req.read_keys);
  ASSERT_EQ(out.writes.size(), 1u);
  EXPECT_EQ(out.writes[0].key, "c");
  EXPECT_TRUE(out.validate_reads);

  CommitReply reply;
  reply.committed = false;
  reply.conflict_key = "c";
  const CommitReply out_reply = RoundTrip(reply);
  EXPECT_FALSE(out_reply.committed);
  EXPECT_EQ(out_reply.conflict_key, "c");
}

TEST(MessagesTest, RangeRoundTrip) {
  RangeRequest req;
  req.table = "t";
  req.begin = "a";
  req.end = "m";
  req.limit = 100;
  const RangeRequest out_req = RoundTrip(req);
  EXPECT_EQ(out_req.begin, "a");
  EXPECT_EQ(out_req.end, "m");
  EXPECT_EQ(out_req.limit, 100u);

  RangeReply reply;
  for (int i = 0; i < 3; ++i) {
    ObjectVersion v;
    v.key = "k" + std::to_string(i);
    v.value = "v";
    v.timestamp = Timestamp{100 + i, 0};
    reply.items.push_back(v);
  }
  reply.truncated = true;
  reply.high_timestamp = Timestamp{200, 0};
  reply.served_by_primary = true;
  const RangeReply out = RoundTrip(reply);
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.high_timestamp, reply.high_timestamp);
  EXPECT_TRUE(out.served_by_primary);
}

TEST(MessagesTest, ErrorReplyRoundTrip) {
  ErrorReply err;
  err.code = StatusCode::kNotPrimary;
  err.message = "try the primary";
  err.config_epoch = 7;
  err.primary_hint = "US";
  const ErrorReply out = RoundTrip(err);
  EXPECT_EQ(out.code, StatusCode::kNotPrimary);
  EXPECT_EQ(out.message, "try the primary");
  EXPECT_EQ(out.config_epoch, 7u);
  EXPECT_EQ(out.primary_hint, "US");
}

TEST(MessagesTest, ConfigPiggybackRoundTrips) {
  // Every reply that can carry the Section 6.2 piggyback preserves it.
  GetReply get;
  get.config_epoch = 3;
  get.primary_hint = "India";
  EXPECT_EQ(RoundTrip(get).config_epoch, 3u);
  EXPECT_EQ(RoundTrip(get).primary_hint, "India");

  PutReply put;
  put.config_epoch = 4;
  put.primary_hint = "US";
  EXPECT_EQ(RoundTrip(put).config_epoch, 4u);
  EXPECT_EQ(RoundTrip(put).primary_hint, "US");

  ProbeReply probe;
  probe.config_epoch = 5;
  probe.primary_hint = "England";
  EXPECT_EQ(RoundTrip(probe).config_epoch, 5u);
  EXPECT_EQ(RoundTrip(probe).primary_hint, "England");

  SyncReply sync;
  sync.config_epoch = 6;
  sync.primary_hint = "US";
  EXPECT_EQ(RoundTrip(sync).config_epoch, 6u);
  EXPECT_EQ(RoundTrip(sync).primary_hint, "US");

  RangeReply range;
  range.config_epoch = 7;
  range.primary_hint = "India";
  EXPECT_EQ(RoundTrip(range).config_epoch, 7u);
  EXPECT_EQ(RoundTrip(range).primary_hint, "India");
}

TEST(MessagesTest, ConfigRequestReplyRoundTrip) {
  ConfigRequest req;
  req.table = "ycsb";
  req.install = true;
  req.config.epoch = 9;
  req.config.primary = "US";
  req.config.members = {"England", "US", "India"};
  req.config.sync_members = {"India"};
  req.lease_duration_us = 1500000;
  const ConfigRequest out_req = RoundTrip(req);
  EXPECT_EQ(out_req.table, "ycsb");
  EXPECT_TRUE(out_req.install);
  EXPECT_EQ(out_req.config, req.config);
  EXPECT_EQ(out_req.lease_duration_us, 1500000);

  ConfigReply reply;
  reply.accepted = true;
  reply.config = req.config;
  reply.durable_timestamp = Timestamp{880, 2};
  reply.high_timestamp = Timestamp{900, 0};
  const ConfigReply out = RoundTrip(reply);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.config, reply.config);
  EXPECT_EQ(out.durable_timestamp, reply.durable_timestamp);
  EXPECT_EQ(out.high_timestamp, reply.high_timestamp);
  EXPECT_EQ(TypeOf(Message(req)), MessageType::kConfigRequest);
  EXPECT_EQ(MessageTypeName(MessageType::kConfigReply), "ConfigReply");
}

TEST(MessagesTest, TypeOfMatchesAlternative) {
  EXPECT_EQ(TypeOf(Message(GetRequest{})), MessageType::kGetRequest);
  EXPECT_EQ(TypeOf(Message(SyncReply{})), MessageType::kSyncReply);
  EXPECT_EQ(TypeOf(Message(ErrorReply{})), MessageType::kErrorReply);
}

TEST(MessagesTest, MessageTypeNamesAreDistinct) {
  EXPECT_EQ(MessageTypeName(MessageType::kGetRequest), "GetRequest");
  EXPECT_EQ(MessageTypeName(MessageType::kCommitReply), "CommitReply");
}

// --- Malformed input ---

TEST(MessagesTest, EmptyBufferRejected) {
  EXPECT_FALSE(DecodeMessage("").ok());
}

TEST(MessagesTest, StatsRoundTrip) {
  StatsRequest request;
  request.format = "prometheus";
  EXPECT_EQ(RoundTrip(request).format, "prometheus");

  StatsReply reply;
  reply.text = "# TYPE x counter\nx 1\n";
  EXPECT_EQ(RoundTrip(reply).text, reply.text);
  EXPECT_EQ(TypeOf(Message(request)), MessageType::kStatsRequest);
  EXPECT_EQ(MessageTypeName(MessageType::kStatsReply), "StatsReply");
}

TEST(MessagesTest, UnknownTypeRejected) {
  std::string bytes = EncodeMessage(Message(GetRequest{}));
  bytes[0] = '\x7f';
  EXPECT_EQ(DecodeMessage(bytes).status().code(), StatusCode::kCorruption);
}

TEST(MessagesTest, WrongWireVersionRejected) {
  std::string bytes = EncodeMessage(Message(GetRequest{}));
  bytes[1] = '\x09';
  EXPECT_EQ(DecodeMessage(bytes).status().code(), StatusCode::kCorruption);
}

TEST(MessagesTest, TruncatedBodyRejected) {
  GetReply reply;
  reply.found = true;
  reply.value = "some value bytes";
  const std::string bytes = EncodeMessage(Message(reply));
  for (size_t cut = 2; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(DecodeMessage(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(MessagesTest, TrailingBytesRejected) {
  std::string bytes = EncodeMessage(Message(ProbeRequest{}));
  bytes += "junk";
  EXPECT_EQ(DecodeMessage(bytes).status().code(), StatusCode::kCorruption);
}

TEST(MessagesTest, MonitorReportRoundTrip) {
  // Wire v5: the shared-monitoring control plane (DESIGN.md Section 12).
  MonitorReport in;
  in.reporter = "frontend-us";
  in.seq = 42;
  in.table = "orders";
  monitoring::NodeCondition cond;
  cond.node = "England";
  cond.sample_count = 17;
  cond.mean_latency_us = 1500;
  cond.p50_latency_us = 1200;
  cond.p95_latency_us = 4000;
  cond.p99_latency_us = 9000;
  cond.high_timestamp = Timestamp{123456, 7};
  cond.high_age_us = 2500;
  cond.p_up = 0.875;
  cond.queue_delay_us = 300;
  cond.overloaded = true;
  in.conditions.push_back(cond);
  monitoring::NodeCondition never_seen;
  never_seen.node = "China";
  never_seen.high_age_us = -1;  // Signed sentinel must survive the wire.
  in.conditions.push_back(never_seen);
  const MonitorReport out = RoundTrip(in);
  EXPECT_EQ(out.reporter, "frontend-us");
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.table, "orders");
  ASSERT_EQ(out.conditions.size(), 2u);
  EXPECT_EQ(out.conditions[0], cond);
  EXPECT_EQ(out.conditions[1].high_age_us, -1);
}

TEST(MessagesTest, DigestSubscribeRoundTrip) {
  DigestSubscribe in;
  in.table = "t";
  in.have_version = 9;
  const DigestSubscribe out = RoundTrip(in);
  EXPECT_EQ(out.table, "t");
  EXPECT_EQ(out.have_version, 9u);
}

TEST(MessagesTest, DigestPushRoundTrip) {
  DigestPush in;
  in.has_digest = true;
  in.digest.version = 12;
  in.digest.reports_merged = 3;
  monitoring::NodeCondition cond;
  cond.node = "n1";
  cond.sample_count = 5;
  cond.p50_latency_us = 700;
  cond.p95_latency_us = 1400;
  cond.p99_latency_us = 2100;
  cond.p_up = 0.5;
  in.digest.nodes.push_back(cond);
  const DigestPush out = RoundTrip(in);
  EXPECT_TRUE(out.has_digest);
  EXPECT_EQ(out.digest, in.digest);
}

TEST(MessagesTest, EmptyDigestPushRoundTrip) {
  DigestPush in;  // has_digest = false: "you are already current".
  const DigestPush out = RoundTrip(in);
  EXPECT_FALSE(out.has_digest);
  EXPECT_EQ(out.digest.version, 0u);
}

TEST(MessagesTest, MonitoringMessagesAreControlTraffic) {
  // Reports and digests must keep flowing while a node sheds load, exactly
  // like probes and sync pulls.
  EXPECT_FALSE(IsDataPathRequest(Message(MonitorReport{})));
  EXPECT_FALSE(IsDataPathRequest(Message(DigestSubscribe{})));
  EXPECT_FALSE(IsDataPathRequest(Message(DigestPush{})));
}

TEST(MessagesTest, TabletMapRequestRoundTrip) {
  // Wire v6: the dynamic-tablet map exchange (DESIGN.md Section 14).
  TabletMapRequest in;
  in.table = "orders";
  in.have_version = 7;
  in.install = true;
  in.map.table = "orders";
  in.map.version = 8;
  tablets::TabletInfo left;
  left.range = KeyRange{"", "m"};
  left.config.epoch = 3;
  left.config.primary = "alpha";
  left.config.members = {"alpha", "beta"};
  left.config.sync_members = {"beta"};
  left.size_bytes = 4096;
  left.ops_per_sec = 120;
  tablets::TabletInfo right;
  right.range = KeyRange{"m", ""};
  right.config.epoch = 5;
  right.config.primary = "beta";
  right.config.members = {"beta"};
  in.map.tablets = {left, right};
  in.split_key = "q";
  const TabletMapRequest out = RoundTrip(in);
  EXPECT_EQ(out.table, "orders");
  EXPECT_EQ(out.have_version, 7u);
  EXPECT_TRUE(out.install);
  EXPECT_EQ(out.map, in.map);
  EXPECT_EQ(out.split_key, "q");
}

TEST(MessagesTest, TabletMapReplyRoundTrip) {
  TabletMapReply in;
  in.accepted = true;
  in.has_map = true;
  in.map.table = "t";
  in.map.version = 12;
  tablets::TabletInfo whole;
  whole.range = KeyRange::All();
  whole.config.epoch = 1;
  whole.config.primary = "n1";
  whole.config.members = {"n1"};
  in.map.tablets = {whole};
  const TabletMapReply out = RoundTrip(in);
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.has_map);
  EXPECT_EQ(out.map, in.map);
}

TEST(MessagesTest, ErrorReplyCarriesTabletHints) {
  // A kWrongTablet fence redirects the client: the owning primary and the
  // fencing node's map version ride on the error.
  ErrorReply in;
  in.code = StatusCode::kWrongTablet;
  in.message = "tablet moved";
  in.primary_hint = "gamma";
  in.map_version = 9;
  const ErrorReply out = RoundTrip(in);
  EXPECT_EQ(out.code, StatusCode::kWrongTablet);
  EXPECT_EQ(out.primary_hint, "gamma");
  EXPECT_EQ(out.map_version, 9u);
}

TEST(MessagesTest, RangedSyncRoundTrip) {
  // Wire v6: migration catch-up pulls ask for one tablet's range only.
  SyncRequest in;
  in.table = "t";
  in.after = Timestamp{100, 1};
  in.max_versions = 64;
  in.has_range = true;
  in.range_begin = "k100";
  in.range_end = "k200";
  const SyncRequest out = RoundTrip(in);
  EXPECT_TRUE(out.has_range);
  EXPECT_EQ(out.range_begin, "k100");
  EXPECT_EQ(out.range_end, "k200");
  EXPECT_EQ(out.max_versions, 64u);
}

TEST(MessagesTest, AbsurdConditionCountRejected) {
  // Hand-craft a MonitorReport claiming 2^40 conditions.
  std::string bytes;
  bytes.push_back(static_cast<char>(MessageType::kMonitorReport));
  bytes.push_back('\x06');  // Wire version (must be current: a stale
                            // version byte would trip the version check
                            // before the count guard this test is about).
  bytes.push_back('\x01');  // reporter = "r"
  bytes.push_back('r');
  bytes.push_back('\x01');  // seq = 1
  bytes.push_back('\x01');  // table = "t"
  bytes.push_back('t');
  for (int i = 0; i < 5; ++i) {
    bytes.push_back('\x80');
  }
  bytes.push_back('\x10');
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

TEST(MessagesTest, AbsurdSyncCountRejected) {
  // Hand-craft a SyncReply header claiming 2^40 versions.
  std::string bytes;
  bytes.push_back(static_cast<char>(MessageType::kSyncReply));
  bytes.push_back('\x06');  // Wire version (current, so the count guard —
                            // not the version check — does the rejecting).
  // Varint for 2^40.
  for (int i = 0; i < 5; ++i) {
    bytes.push_back('\x80');
  }
  bytes.push_back('\x10');
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

}  // namespace
}  // namespace pileus::proto
