// Tests for the monitor's sliding latency window.

#include <gtest/gtest.h>

#include "src/util/sliding_window.h"

namespace pileus {
namespace {

constexpr MicrosecondCount kSec = kMicrosecondsPerSecond;

TEST(SlidingWindowTest, EmptyWindowUsesEmptyEstimate) {
  SlidingWindow window;
  EXPECT_DOUBLE_EQ(window.FractionBelow(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(window.FractionBelow(0, 100, 0.25), 0.25);
  EXPECT_EQ(window.Mean(0), 0);
  EXPECT_EQ(window.Quantile(0, 0.5), 0);
  EXPECT_TRUE(window.Empty(0));
}

TEST(SlidingWindowTest, FractionBelowCountsStrictly) {
  SlidingWindow window;
  window.Record(0, 10);
  window.Record(0, 20);
  window.Record(0, 30);
  window.Record(0, 40);
  EXPECT_DOUBLE_EQ(window.FractionBelow(0, 25), 0.5);
  EXPECT_DOUBLE_EQ(window.FractionBelow(0, 10), 0.0);  // Strictly below.
  EXPECT_DOUBLE_EQ(window.FractionBelow(0, 41), 1.0);
}

TEST(SlidingWindowTest, OldSamplesExpire) {
  SlidingWindow::Options options;
  options.window_us = 10 * kSec;
  SlidingWindow window(options);
  window.Record(0, 1000);            // Will expire.
  window.Record(9 * kSec, 5000);     // Still alive at t=15s.
  EXPECT_EQ(window.SampleCount(15 * kSec), 1u);
  EXPECT_EQ(window.Mean(15 * kSec), 5000);
}

TEST(SlidingWindowTest, AllSamplesExpireBackToEmptyEstimate) {
  SlidingWindow::Options options;
  options.window_us = kSec;
  SlidingWindow window(options);
  window.Record(0, 1000);
  EXPECT_DOUBLE_EQ(window.FractionBelow(10 * kSec, 100, 0.7), 0.7);
}

TEST(SlidingWindowTest, MaxSamplesCapEvictsOldest) {
  SlidingWindow::Options options;
  options.max_samples = 3;
  SlidingWindow window(options);
  for (int i = 0; i < 10; ++i) {
    window.Record(i, 100 + i);
  }
  EXPECT_EQ(window.SampleCount(10), 3u);
  // Only the last three (107, 108, 109) remain.
  EXPECT_EQ(window.Mean(10), 108);
}

TEST(SlidingWindowTest, MeanIsArithmetic) {
  SlidingWindow window;
  window.Record(0, 100);
  window.Record(0, 200);
  window.Record(0, 600);
  EXPECT_EQ(window.Mean(0), 300);
}

TEST(SlidingWindowTest, QuantileNearestRank) {
  SlidingWindow window;
  for (int i = 1; i <= 100; ++i) {
    window.Record(0, i * 10);
  }
  EXPECT_EQ(window.Quantile(0, 0.0), 10);
  EXPECT_NEAR(window.Quantile(0, 0.5), 500, 10);
  EXPECT_NEAR(window.Quantile(0, 0.99), 990, 10);
  EXPECT_EQ(window.Quantile(0, 1.0), 1000);
}

TEST(SlidingWindowTest, RecencyWeightingFavorsNewSamples) {
  SlidingWindow::Options options;
  options.window_us = 100 * kSec;
  options.recency_tau_us = 5 * kSec;
  SlidingWindow window(options);
  // Old samples all fast, recent samples all slow.
  for (int i = 0; i < 50; ++i) {
    window.Record(i * 1000, 10);
  }
  for (int i = 0; i < 50; ++i) {
    window.Record(60 * kSec + i * 1000, 10000);
  }
  const MicrosecondCount now = 60 * kSec + 50 * 1000;
  // Unweighted fraction below 100 would be 0.5; with recency weighting the
  // slow recent samples dominate.
  EXPECT_LT(window.FractionBelow(now, 100), 0.1);
}

TEST(SlidingWindowTest, LastSampleTime) {
  SlidingWindow window;
  EXPECT_EQ(window.LastSampleTime(), -1);
  window.Record(1234, 1);
  EXPECT_EQ(window.LastSampleTime(), 1234);
  window.Record(5678, 1);
  EXPECT_EQ(window.LastSampleTime(), 5678);
}

TEST(SlidingWindowTest, ClearEmptiesWindow) {
  SlidingWindow window;
  window.Record(0, 1);
  window.Clear();
  EXPECT_TRUE(window.Empty(0));
}

}  // namespace
}  // namespace pileus
