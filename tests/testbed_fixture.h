// Shared test harnesses: the fast simulated GeoTestbed configuration used by
// the integration tests, and the two-node real-transport InProcCluster from
// the end-to-end tests. Header-only so each test binary only pulls in (and
// links against) what it actually uses.

#ifndef PILEUS_TESTS_TESTBED_FIXTURE_H_
#define PILEUS_TESTS_TESTBED_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/core/client.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/net/inproc.h"
#include "src/replication/replication_agent.h"
#include "src/storage/storage_node.h"

namespace pileus::testbed {

// The Figure-10 testbed, sped up for tests: deterministic seed and 10 s
// replication pulls instead of the paper's one minute.
inline experiments::GeoTestbedOptions FastGeoOptions(
    uint64_t seed = 7,
    MicrosecondCount replication_period_us = SecondsToMicroseconds(10)) {
  experiments::GeoTestbedOptions options;
  options.seed = seed;
  options.replication_period_us = replication_period_us;
  return options;
}

// The usual run-up: populate the store and start the replication pulls.
inline void PreloadAndReplicate(experiments::GeoTestbed& testbed,
                                int key_count) {
  experiments::PreloadKeys(testbed, key_count);
  testbed.StartReplication();
}

// A two-node deployment over the real in-process transport (threads and
// wall-clock time): "England" primary (20 ms away) and a "Local" secondary
// (1 ms away), replicating every 50 ms.
class InProcCluster {
 public:
  InProcCluster()
      : primary_("England", "England", RealClock::Instance()),
        local_("Local", "Local", RealClock::Instance()) {
    storage::Tablet::Options primary_options;
    primary_options.is_primary = true;
    EXPECT_TRUE(primary_.AddTablet("t", primary_options).ok());
    EXPECT_TRUE(local_.AddTablet("t", storage::Tablet::Options{}).ok());

    network_.RegisterEndpoint("England", [this](const proto::Message& m) {
      return primary_.Handle(m);
    });
    network_.RegisterEndpoint("Local", [this](const proto::Message& m) {
      return local_.Handle(m);
    });

    agent_ = std::make_unique<replication::ReplicationAgent>(
        local_.FindTablet("t", ""),
        replication::ReplicationAgent::Options{.table = "t"});
    // The replication agent pulls over its own channel to the primary.
    auto sync_channel = std::shared_ptr<net::Channel>(
        network_.Connect("England", 10 * kMicrosecondsPerMillisecond));
    puller_ = std::make_unique<replication::ThreadedPuller>(
        agent_.get(),
        [sync_channel](const proto::SyncRequest& request)
            -> Result<proto::SyncReply> {
          // Serialize through the node's lock via Handle().
          Result<proto::Message> reply =
              sync_channel->Call(request, SecondsToMicroseconds(5));
          if (!reply.ok()) {
            return reply.status();
          }
          if (auto* sync = std::get_if<proto::SyncReply>(&reply.value())) {
            return std::move(*sync);
          }
          return Status(StatusCode::kInternal, "unexpected sync reply");
        },
        50 * kMicrosecondsPerMillisecond);
  }

  std::unique_ptr<core::PileusClient> MakeClient(
      core::PileusClient::Options options) {
    core::TableView view;
    view.table_name = "t";
    view.replicas = {
        core::Replica{"England", true,
                      std::make_shared<core::ChannelConnection>(
                          network_.Connect("England",
                                           10 * kMicrosecondsPerMillisecond),
                          RealClock::Instance())},
        core::Replica{"Local", false,
                      std::make_shared<core::ChannelConnection>(
                          network_.Connect("Local", 500),
                          RealClock::Instance())}};
    view.primary_index = 0;
    return std::make_unique<core::PileusClient>(std::move(view),
                                                RealClock::Instance(), options,
                                                nullptr);
  }

  void PullNow() { puller_->PullNow(); }
  storage::StorageNode& local() { return local_; }
  storage::StorageNode& primary() { return primary_; }
  net::InProcNetwork& network() { return network_; }

  // Turns on per-tenant admission control on both nodes (DESIGN.md
  // Section 11) so overload tests shed through the real controller.
  void EnableAdmission(const storage::AdmissionOptions& options) {
    primary_.EnableAdmission(options);
    local_.EnableAdmission(options);
  }

 private:
  storage::StorageNode primary_;
  storage::StorageNode local_;
  net::InProcNetwork network_;
  std::unique_ptr<replication::ReplicationAgent> agent_;
  std::unique_ptr<replication::ThreadedPuller> puller_;
};

}  // namespace pileus::testbed

#endif  // PILEUS_TESTS_TESTBED_FIXTURE_H_
