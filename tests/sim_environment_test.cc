// Tests for the virtual-time environment: clock advancement, event
// execution, periodic tasks, and determinism.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/sim_environment.h"

namespace pileus::sim {
namespace {

TEST(SimEnvironmentTest, ClockStartsAtZero) {
  SimEnvironment env;
  EXPECT_EQ(env.NowMicros(), 0);
}

TEST(SimEnvironmentTest, RunForAdvancesClock) {
  SimEnvironment env;
  env.RunFor(1000);
  EXPECT_EQ(env.NowMicros(), 1000);
  env.RunFor(500);
  EXPECT_EQ(env.NowMicros(), 1500);
}

TEST(SimEnvironmentTest, EventsRunAtTheirScheduledTime) {
  SimEnvironment env;
  MicrosecondCount observed = -1;
  env.ScheduleAt(700, [&] { observed = env.NowMicros(); });
  env.RunFor(1000);
  EXPECT_EQ(observed, 700);
  EXPECT_EQ(env.NowMicros(), 1000);
}

TEST(SimEnvironmentTest, EventsBeyondHorizonDoNotRun) {
  SimEnvironment env;
  bool ran = false;
  env.ScheduleAfter(2000, [&] { ran = true; });
  env.RunFor(1000);
  EXPECT_FALSE(ran);
  env.RunFor(1000);
  EXPECT_TRUE(ran);
}

TEST(SimEnvironmentTest, NestedSchedulingInsideEvents) {
  SimEnvironment env;
  std::vector<MicrosecondCount> times;
  env.ScheduleAt(100, [&] {
    times.push_back(env.NowMicros());
    env.ScheduleAfter(50, [&] { times.push_back(env.NowMicros()); });
  });
  env.RunFor(1000);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 100);
  EXPECT_EQ(times[1], 150);
}

TEST(SimEnvironmentTest, CancelledEventNeverRuns) {
  SimEnvironment env;
  bool ran = false;
  const uint64_t id = env.ScheduleAfter(100, [&] { ran = true; });
  env.CancelEvent(id);
  env.RunFor(1000);
  EXPECT_FALSE(ran);
}

TEST(SimEnvironmentTest, PeriodicTaskFiresAtPeriod) {
  SimEnvironment env;
  std::vector<MicrosecondCount> fires;
  PeriodicHandle handle = env.SchedulePeriodic(
      100, 250, [&] { fires.push_back(env.NowMicros()); });
  env.RunFor(1000);
  EXPECT_EQ(fires, (std::vector<MicrosecondCount>{100, 350, 600, 850}));
  handle.Cancel();
}

TEST(SimEnvironmentTest, CancelledPeriodicStopsFiring) {
  SimEnvironment env;
  int fires = 0;
  PeriodicHandle handle = env.SchedulePeriodic(100, 100, [&] { ++fires; });
  env.RunFor(350);
  EXPECT_EQ(fires, 3);
  handle.Cancel();
  EXPECT_FALSE(handle.active());
  env.RunFor(1000);
  EXPECT_EQ(fires, 3);
}

TEST(SimEnvironmentTest, PeriodicCancelFromInsideCallback) {
  SimEnvironment env;
  int fires = 0;
  PeriodicHandle handle;
  handle = env.SchedulePeriodic(100, 100, [&] {
    if (++fires == 2) {
      handle.Cancel();
    }
  });
  env.RunFor(1000);
  EXPECT_EQ(fires, 2);
}

TEST(SimEnvironmentTest, TransitMessageAdvancesBySampledLatency) {
  SimEnvironment env(1);
  auto& latency = env.latency_model();
  const SiteId a = latency.AddSite("A");
  const SiteId b = latency.AddSite("B");
  latency.SetRtt(a, b, 10000);
  const MicrosecondCount before = env.NowMicros();
  env.TransitMessage(a, b);
  const MicrosecondCount elapsed = env.NowMicros() - before;
  // One way = 5 ms +- small jitter.
  EXPECT_GT(elapsed, 4000);
  EXPECT_LT(elapsed, 6000);
}

TEST(SimEnvironmentTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    SimEnvironment env(seed);
    auto& latency = env.latency_model();
    const SiteId a = latency.AddSite("A");
    const SiteId b = latency.AddSite("B");
    latency.SetRtt(a, b, 100000);
    std::vector<MicrosecondCount> times;
    for (int i = 0; i < 20; ++i) {
      env.TransitMessage(a, b);
      times.push_back(env.NowMicros());
    }
    return times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimEnvironmentTest, PendingEventCount) {
  SimEnvironment env;
  EXPECT_EQ(env.pending_events(), 0u);
  env.ScheduleAfter(100, [] {});
  env.ScheduleAfter(200, [] {});
  EXPECT_EQ(env.pending_events(), 2u);
  env.RunFor(150);
  EXPECT_EQ(env.pending_events(), 1u);
}

}  // namespace
}  // namespace pileus::sim
