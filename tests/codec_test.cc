// Tests for the wire codec: round trips, edge values, and corruption
// handling. Decoding must never trust its input, so every truncation and
// overflow path is exercised.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "src/util/codec.h"

namespace pileus {
namespace {

TEST(CodecTest, Fixed32RoundTrip) {
  Encoder enc;
  enc.PutFixed32(0);
  enc.PutFixed32(1);
  enc.PutFixed32(0xdeadbeef);
  enc.PutFixed32(UINT32_MAX);

  Decoder dec(enc.buffer());
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, Fixed64RoundTrip) {
  Encoder enc;
  enc.PutFixed64(0x0123456789abcdefULL);
  Decoder dec(enc.buffer());
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v).ok());
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

// Parameterized sweep over varint edge values (bucket boundaries of the
// LEB128 encoding).
class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  Encoder enc;
  enc.PutVarint64(GetParam());
  Decoder dec(enc.buffer());
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 21) - 1, 1ULL << 21, (1ULL << 28) - 1,
                      1ULL << 35, 1ULL << 42, 1ULL << 49, 1ULL << 56,
                      1ULL << 63, UINT64_MAX));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, EncodesAndDecodes) {
  Encoder enc;
  enc.PutVarintSigned64(GetParam());
  Decoder dec(enc.buffer());
  int64_t v;
  ASSERT_TRUE(dec.GetVarintSigned64(&v).ok());
  EXPECT_EQ(v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, SignedVarintRoundTrip,
    ::testing::Values(0LL, 1LL, -1LL, 63LL, 64LL, -64LL, -65LL, 123456789LL,
                      -123456789LL, std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(CodecTest, SmallValuesEncodeCompactly) {
  Encoder enc;
  enc.PutVarint64(5);
  EXPECT_EQ(enc.size(), 1u);
  Encoder enc2;
  enc2.PutVarint64(300);
  EXPECT_EQ(enc2.size(), 2u);
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  Encoder enc;
  enc.PutLengthPrefixed("hello");
  enc.PutLengthPrefixed("");
  enc.PutLengthPrefixed(std::string("\0binary\xff", 8));

  Decoder dec(enc.buffer());
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, std::string("\0binary\xff", 8));
}

TEST(CodecTest, LengthPrefixedViewAliasesBuffer) {
  Encoder enc;
  enc.PutLengthPrefixed("world");
  const std::string buffer = enc.buffer();
  Decoder dec(buffer);
  std::string_view view;
  ASSERT_TRUE(dec.GetLengthPrefixed(&view).ok());
  EXPECT_EQ(view, "world");
  EXPECT_GE(view.data(), buffer.data());
  EXPECT_LT(view.data(), buffer.data() + buffer.size());
}

TEST(CodecTest, TimestampRoundTrip) {
  Encoder enc;
  enc.PutTimestamp(Timestamp{1234567890123LL, 42});
  enc.PutTimestamp(Timestamp::Zero());
  enc.PutTimestamp(Timestamp{-5, 1});  // Negative physical (pre-epoch).

  Decoder dec(enc.buffer());
  Timestamp ts;
  ASSERT_TRUE(dec.GetTimestamp(&ts).ok());
  EXPECT_EQ(ts, (Timestamp{1234567890123LL, 42}));
  ASSERT_TRUE(dec.GetTimestamp(&ts).ok());
  EXPECT_EQ(ts, Timestamp::Zero());
  ASSERT_TRUE(dec.GetTimestamp(&ts).ok());
  EXPECT_EQ(ts, (Timestamp{-5, 1}));
}

TEST(CodecTest, BoolAndDoubleRoundTrip) {
  Encoder enc;
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutDouble(3.14159);
  enc.PutDouble(-0.0);

  Decoder dec(enc.buffer());
  bool b;
  double d;
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, 3.14159);
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, -0.0);
}

// --- Corruption and truncation ---

TEST(CodecTest, TruncatedFixed32Fails) {
  Decoder dec(std::string_view("\x01\x02", 2));
  uint32_t v;
  EXPECT_EQ(dec.GetFixed32(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncatedVarintFails) {
  // Continuation bit set on the last byte with nothing following.
  Decoder dec(std::string_view("\xff\xff", 2));
  uint64_t v;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, OverlongVarintFails) {
  // 11 bytes of continuation: more than a uint64 can hold.
  const std::string bytes(11, '\xff');
  Decoder dec(bytes);
  uint64_t v;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, LengthPrefixLongerThanBufferFails) {
  Encoder enc;
  enc.PutVarint64(100);  // Claims 100 bytes follow.
  enc.PutUint8('x');     // Only one does.
  Decoder dec(enc.buffer());
  std::string s;
  EXPECT_EQ(dec.GetLengthPrefixedString(&s).code(), StatusCode::kCorruption);
}

TEST(CodecTest, EmptyBufferFailsEverything) {
  Decoder dec{std::string_view()};
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  Timestamp ts;
  bool b;
  double d;
  EXPECT_FALSE(dec.GetUint8(&u8).ok());
  EXPECT_FALSE(dec.GetFixed32(&u32).ok());
  EXPECT_FALSE(dec.GetVarint64(&u64).ok());
  EXPECT_FALSE(dec.GetTimestamp(&ts).ok());
  EXPECT_FALSE(dec.GetBool(&b).ok());
  EXPECT_FALSE(dec.GetDouble(&d).ok());
}

TEST(CodecTest, TimestampSequenceOverflowFails) {
  Encoder enc;
  enc.PutVarintSigned64(100);
  enc.PutVarint64(static_cast<uint64_t>(UINT32_MAX) + 1);
  Decoder dec(enc.buffer());
  Timestamp ts;
  EXPECT_EQ(dec.GetTimestamp(&ts).code(), StatusCode::kCorruption);
}

TEST(CodecTest, RemainingTracksConsumption) {
  Encoder enc;
  enc.PutFixed32(1);
  enc.PutFixed32(2);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.remaining(), 8u);
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(dec.remaining(), 4u);
}

TEST(CodecTest, ReleaseMovesBuffer) {
  Encoder enc;
  enc.PutLengthPrefixed("data");
  const std::string released = enc.Release();
  EXPECT_FALSE(released.empty());
}

}  // namespace
}  // namespace pileus
