// Property tests: every consistency guarantee's defining invariant (paper
// Section 3.2) is checked against the values actually returned by the full
// system - client library, storage nodes, and replication running on the
// simulated geo test bed. The single-client setup means we know the complete
// write history, so the invariants are exactly checkable.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/workload/ycsb.h"

namespace pileus::experiments {
namespace {

using core::Consistency;
using core::Guarantee;

struct WriteRecord {
  Timestamp timestamp;
  std::string value;
};

class GuaranteeProperty
    : public ::testing::TestWithParam<Consistency> {};

TEST_P(GuaranteeProperty, HoldsOverRandomWorkload) {
  const Consistency consistency = GetParam();
  const Guarantee guarantee =
      consistency == Consistency::kBounded
          ? Guarantee::BoundedSeconds(30)
          : Guarantee{consistency, 0};

  GeoTestbedOptions testbed_options;
  testbed_options.seed = 100 + static_cast<int>(consistency);
  testbed_options.replication_period_us = SecondsToMicroseconds(20);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 200);
  testbed.StartReplication();

  auto client = testbed.MakeClient(kIndia, core::PileusClient::Options{});
  client->StartProbing();

  // Complete write history per key (this client is the only writer; the
  // preloaded values count as timestamp-zero-ish history we also track).
  std::map<std::string, std::vector<WriteRecord>> history;
  for (int i = 0; i < 200; ++i) {
    auto* tablet = testbed.node(kEngland)->FindTablet(kTableName, "");
    const auto preloaded =
        tablet->HandleGet(workload::YcsbWorkload::KeyForIndex(i));
    history[workload::YcsbWorkload::KeyForIndex(i)].push_back(
        WriteRecord{preloaded.value_timestamp, preloaded.value});
  }

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 200;
  workload_options.ops_per_session = 100;
  workload_options.seed = 17 + static_cast<int>(consistency);
  workload::YcsbWorkload workload(workload_options);

  const core::Sla sla = SingleConsistencySla(guarantee);
  std::optional<core::Session> session;

  // Per-session state for invariant checking.
  std::map<std::string, Timestamp> session_last_put;
  std::map<std::string, Timestamp> session_last_read;
  Timestamp session_max_seen = Timestamp::Zero();

  int checked_gets = 0;
  for (int op_index = 0; op_index < 2000; ++op_index) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(
          std::move(client->client().BeginSession(sla)).value());
      session_last_put.clear();
      session_last_read.clear();
      session_max_seen = Timestamp::Zero();
    }
    if (!op.is_get) {
      Result<core::PutResult> put =
          client->client().Put(*session, op.key, op.value);
      ASSERT_TRUE(put.ok()) << put.status();
      history[op.key].push_back(WriteRecord{put->timestamp, op.value});
      session_last_put[op.key] =
          MaxTimestamp(session_last_put[op.key], put->timestamp);
      session_max_seen = MaxTimestamp(session_max_seen, put->timestamp);
      continue;
    }

    const MicrosecondCount get_start = testbed.env().NowMicros();
    Result<core::GetResult> result = client->client().Get(*session, op.key);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->found) << "preloaded key must exist";
    ++checked_gets;

    const std::vector<WriteRecord>& writes = history[op.key];

    // Universal: the returned (value, timestamp) is a real version we wrote.
    bool known_version = false;
    for (const WriteRecord& record : writes) {
      if (record.timestamp == result->timestamp) {
        EXPECT_EQ(record.value, result->value);
        known_version = true;
        break;
      }
    }
    EXPECT_TRUE(known_version) << "phantom version for " << op.key;

    switch (consistency) {
      case Consistency::kStrong:
        // The latest version, full stop.
        EXPECT_EQ(result->timestamp, writes.back().timestamp)
            << "strong read returned a stale version";
        break;
      case Consistency::kCausal: {
        // Must reflect this session's own writes of the key (they causally
        // precede the read)...
        auto it = session_last_put.find(op.key);
        if (it != session_last_put.end()) {
          EXPECT_GE(result->timestamp, it->second);
        }
        // ...and never regress below a version of the key read earlier in
        // the session (reading it established causal precedence).
        auto read_it = session_last_read.find(op.key);
        if (read_it != session_last_read.end()) {
          EXPECT_GE(result->timestamp, read_it->second);
        }
        break;
      }
      case Consistency::kBounded: {
        // No version older than (get start - bound) may be returned if a
        // newer one existed by then.
        const MicrosecondCount boundary =
            get_start - guarantee.bound_us;
        Timestamp newest_before_boundary = Timestamp::Zero();
        for (const WriteRecord& record : writes) {
          if (record.timestamp.physical_us <= boundary) {
            newest_before_boundary =
                MaxTimestamp(newest_before_boundary, record.timestamp);
          }
        }
        EXPECT_GE(result->timestamp, newest_before_boundary)
            << "bounded(30s) returned data staler than the bound";
        break;
      }
      case Consistency::kReadMyWrites: {
        auto it = session_last_put.find(op.key);
        if (it != session_last_put.end()) {
          EXPECT_GE(result->timestamp, it->second)
              << "read-my-writes missed this session's own Put";
        }
        break;
      }
      case Consistency::kMonotonic: {
        auto it = session_last_read.find(op.key);
        if (it != session_last_read.end()) {
          EXPECT_GE(result->timestamp, it->second)
              << "monotonic reads went backwards";
        }
        break;
      }
      case Consistency::kEventual:
        break;  // Only the universal check applies.
    }

    session_last_read[op.key] =
        MaxTimestamp(session_last_read[op.key], result->timestamp);
    session_max_seen = MaxTimestamp(session_max_seen, result->timestamp);
    testbed.env().RunFor(MillisecondsToMicroseconds(5));
  }
  EXPECT_GT(checked_gets, 500);
}

INSTANTIATE_TEST_SUITE_P(
    AllGuarantees, GuaranteeProperty,
    ::testing::Values(Consistency::kStrong, Consistency::kCausal,
                      Consistency::kBounded, Consistency::kReadMyWrites,
                      Consistency::kMonotonic, Consistency::kEventual),
    [](const ::testing::TestParamInfo<Consistency>& param_info) {
      return std::string(core::ConsistencyName(param_info.param)) ==
                     "read-my-writes"
                 ? "read_my_writes"
                 : std::string(core::ConsistencyName(param_info.param));
    });

// The prefix-consistency property (Section 4.2): any node's store is always
// a prefix of the primary's update sequence. Checked by sampling secondaries
// mid-replication.
TEST(PrefixConsistencyProperty, SecondariesAlwaysHoldAPrefix) {
  GeoTestbedOptions options;
  options.seed = 33;
  options.replication_period_us = SecondsToMicroseconds(5);
  GeoTestbed testbed(options);
  testbed.StartReplication();

  auto* primary = testbed.node(kEngland)->FindTablet(kTableName, "");
  std::vector<std::pair<std::string, Timestamp>> put_order;
  Random rng(1);

  for (int round = 0; round < 50; ++round) {
    // A burst of writes...
    for (int i = 0; i < 20; ++i) {
      const std::string key = "k" + std::to_string(rng.NextUint64(30));
      auto reply = primary->HandlePut(key, "v" + std::to_string(round));
      ASSERT_TRUE(reply.ok());
      put_order.emplace_back(key, reply->timestamp);
    }
    // ...then time passes (replication fires at some rounds).
    testbed.env().RunFor(SecondsToMicroseconds(2));

    for (const char* site : {kUs, kIndia}) {
      auto* secondary = testbed.node(site)->FindTablet(kTableName, "");
      const Timestamp high = secondary->high_timestamp();
      // Prefix property: every key whose latest-put-at-or-below-high exists
      // must be present with exactly that version or newer-but-<=high.
      std::map<std::string, Timestamp> expected;
      for (const auto& [key, ts] : put_order) {
        if (ts <= high) {
          expected[key] = MaxTimestamp(expected[key], ts);
        }
      }
      for (const auto& [key, ts] : expected) {
        const auto reply = secondary->HandleGet(key);
        ASSERT_TRUE(reply.found) << site << " missing " << key;
        EXPECT_GE(reply.value_timestamp, ts)
            << site << " violates prefix consistency for " << key;
        EXPECT_LE(reply.value_timestamp, high);
      }
    }
  }
}

}  // namespace
}  // namespace pileus::experiments
