// Property tests: every consistency guarantee's defining invariant (paper
// Section 3.2) is checked against the values actually returned by the full
// system - client library, storage nodes, and replication running on the
// simulated geo test bed. The generated op streams are recorded and routed
// through the offline ConsistencyChecker (src/audit), which recomputes each
// session's floors independently of the client and verifies every claim
// against the primary's complete commit order.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/audit/checker.h"
#include "src/audit/history.h"
#include "src/common/random.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/workload/ycsb.h"
#include "tests/testbed_fixture.h"

namespace pileus::experiments {
namespace {

using core::Consistency;
using core::Guarantee;

class GuaranteeProperty
    : public ::testing::TestWithParam<Consistency> {};

TEST_P(GuaranteeProperty, HoldsOverRandomWorkload) {
  const Consistency consistency = GetParam();
  const Guarantee guarantee =
      consistency == Consistency::kBounded
          ? Guarantee::BoundedSeconds(30)
          : Guarantee{consistency, 0};

  GeoTestbed testbed(pileus::testbed::FastGeoOptions(
      100 + static_cast<int>(consistency), SecondsToMicroseconds(20)));
  pileus::testbed::PreloadAndReplicate(testbed, 200);

  audit::HistoryRecorder recorder;
  core::PileusClient::Options client_options;
  client_options.op_observer = &recorder;
  auto client = testbed.MakeClient(kIndia, client_options);
  client->StartProbing();

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 200;
  workload_options.ops_per_session = 100;
  workload_options.seed = 17 + static_cast<int>(consistency);
  workload::YcsbWorkload workload(workload_options);

  const core::Sla sla = SingleConsistencySla(guarantee);
  std::optional<core::Session> session;
  // Mixes Deletes and small Range scans into the stream so the checker's
  // tombstone and one-timestamp-bounds-the-scan rules get exercised too.
  Random mix(911 + static_cast<uint64_t>(consistency));

  int gets = 0;
  for (int op_index = 0; op_index < 3000; ++op_index) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(
          std::move(client->client().BeginSession(sla)).value());
    }
    if (op.is_get) {
      if (mix.NextBool(0.03)) {
        Result<core::RangeResult> range =
            client->client().GetRange(*session, op.key, "", 5);
        ASSERT_TRUE(range.ok()) << range.status();
      } else {
        Result<core::GetResult> result =
            client->client().Get(*session, op.key);
        ASSERT_TRUE(result.ok()) << result.status();
        ++gets;
      }
    } else if (mix.NextBool(0.05)) {
      Result<core::PutResult> del =
          client->client().Delete(*session, op.key);
      ASSERT_TRUE(del.ok()) << del.status();
    } else {
      Result<core::PutResult> put =
          client->client().Put(*session, op.key, op.value);
      ASSERT_TRUE(put.ok()) << put.status();
    }
    testbed.env().RunFor(MillisecondsToMicroseconds(5));
  }
  EXPECT_GT(gets, 500);

  // The primary's update log is the ground truth: this single-client setup
  // has no writer the export could miss.
  bool contiguous = true;
  recorder.SetGroundTruth(
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous),
      contiguous);
  ASSERT_TRUE(contiguous);

  const audit::AuditReport report =
      audit::ConsistencyChecker().Check(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.reads_checked, 500u);
  EXPECT_GT(report.writes_checked, 500u);
  // Every read under a single-subSLA session claims that one guarantee
  // whenever it is met; the checker must have re-verified a healthy share.
  EXPECT_GT(report.claims_checked, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    AllGuarantees, GuaranteeProperty,
    ::testing::Values(Consistency::kStrong, Consistency::kCausal,
                      Consistency::kBounded, Consistency::kReadMyWrites,
                      Consistency::kMonotonic, Consistency::kEventual),
    [](const ::testing::TestParamInfo<Consistency>& param_info) {
      return std::string(core::ConsistencyName(param_info.param)) ==
                     "read-my-writes"
                 ? "read_my_writes"
                 : std::string(core::ConsistencyName(param_info.param));
    });

// Session guarantees across configuration epochs (Section 6.2): the primary
// crashes mid-workload, the lease-based coordinator promotes the sync
// member, and every claim the client made - before, during, and after the
// epoch change - must still verify against the recomputed floors and the
// *new* primary's commit order. Writes are allowed to fail inside the
// unavailability window; everything that was acked must survive.
TEST(FailoverProperty, SessionGuaranteesHoldAcrossEpochs) {
  GeoTestbedOptions options =
      pileus::testbed::FastGeoOptions(321, SecondsToMicroseconds(20));
  options.sync_replica_count = 2;  // England primary + US sync member.
  options.enable_failover = true;
  GeoTestbed testbed(options);
  testbed.StartReconfiguration();

  audit::HistoryRecorder recorder;
  core::PileusClient::Options client_options;
  client_options.op_observer = &recorder;
  // Tight write deadlines with retries: failed attempts burn virtual time,
  // which is exactly when the coordinator's heartbeats detect the crash.
  client_options.put_timeout_us = SecondsToMicroseconds(1);
  client_options.put_max_attempts = 5;
  client_options.monitor.probe_interval_us = SecondsToMicroseconds(1);
  auto client = testbed.MakeClient(kUs, client_options);

  // Preload through the client, not PreloadKeys: the sync fan-out is what
  // lands the baseline on the sync member, and the promoted primary's log
  // must contain these versions for the post-failover ground truth.
  {
    core::Session preload =
        client->client().BeginSession(core::ShoppingCartSla()).value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(client->client()
                      .Put(preload, workload::YcsbWorkload::KeyForIndex(i),
                           "preload")
                      .ok());
    }
  }
  testbed.StartReplication();
  client->StartProbing();

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 200;
  workload_options.ops_per_session = 80;
  workload_options.seed = 29;
  workload::YcsbWorkload workload(workload_options);

  const core::Sla sla = core::ShoppingCartSla();  // Read-my-writes first.
  std::optional<core::Session> session;
  int failed_writes = 0;
  for (int op_index = 0; op_index < 2000; ++op_index) {
    if (op_index == 700) {
      testbed.CrashNode(testbed.primary_site());
    }
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      ASSERT_TRUE(result.ok()) << op_index << ": " << result.status();
    } else if (!client->client().Put(*session, op.key, op.value).ok()) {
      ++failed_writes;  // Tolerated only inside the unavailability window.
    }
    testbed.env().RunFor(MillisecondsToMicroseconds(5));
  }

  // The coordinator must have promoted the sync member.
  EXPECT_GE(testbed.failovers(), 1u);
  EXPECT_GE(testbed.current_config().epoch, 2u);
  EXPECT_NE(testbed.primary_site(), kEngland);
  // The window is bounded: a handful of Puts at most, not the whole tail.
  EXPECT_LT(failed_writes, 20);

  // Ground truth comes from the *promoted* primary: its log must contain
  // every acked write of both epochs, in a continuous commit order.
  bool contiguous = true;
  recorder.SetGroundTruth(
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous),
      contiguous);
  ASSERT_TRUE(contiguous);

  const audit::AuditReport report =
      audit::ConsistencyChecker().Check(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.reads_checked, 500u);
  EXPECT_GT(report.writes_checked, 500u);
  EXPECT_GT(report.claims_checked, 500u);
}

// The prefix-consistency property (Section 4.2): any node's store is always
// a prefix of the primary's update sequence. Checked by sampling secondaries
// mid-replication.
TEST(PrefixConsistencyProperty, SecondariesAlwaysHoldAPrefix) {
  GeoTestbedOptions options;
  options.seed = 33;
  options.replication_period_us = SecondsToMicroseconds(5);
  GeoTestbed testbed(options);
  testbed.StartReplication();

  auto* primary = testbed.node(kEngland)->FindTablet(kTableName, "");
  std::vector<std::pair<std::string, Timestamp>> put_order;
  Random rng(1);

  for (int round = 0; round < 50; ++round) {
    // A burst of writes...
    for (int i = 0; i < 20; ++i) {
      const std::string key = "k" + std::to_string(rng.NextUint64(30));
      auto reply = primary->HandlePut(key, "v" + std::to_string(round));
      ASSERT_TRUE(reply.ok());
      put_order.emplace_back(key, reply->timestamp);
    }
    // ...then time passes (replication fires at some rounds).
    testbed.env().RunFor(SecondsToMicroseconds(2));

    for (const char* site : {kUs, kIndia}) {
      auto* secondary = testbed.node(site)->FindTablet(kTableName, "");
      const Timestamp high = secondary->high_timestamp();
      // Prefix property: every key whose latest-put-at-or-below-high exists
      // must be present with exactly that version or newer-but-<=high.
      std::map<std::string, Timestamp> expected;
      for (const auto& [key, ts] : put_order) {
        if (ts <= high) {
          expected[key] = MaxTimestamp(expected[key], ts);
        }
      }
      for (const auto& [key, ts] : expected) {
        const auto reply = secondary->HandleGet(key);
        ASSERT_TRUE(reply.found) << site << " missing " << key;
        EXPECT_GE(reply.value_timestamp, ts)
            << site << " violates prefix consistency for " << key;
        EXPECT_LE(reply.value_timestamp, high);
      }
    }
  }
}

}  // namespace
}  // namespace pileus::experiments
