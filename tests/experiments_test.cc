// Unit tests for the experiments module: table rendering, run statistics,
// preloading, the workload runner's accounting, and the tablet-churn
// scenario's coordinator-kill mode.

#include <gtest/gtest.h>
#include <stdlib.h>

#include "src/experiments/comparison.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/experiments/tablet_churn.h"
#include "tests/testbed_fixture.h"

namespace pileus::experiments {
namespace {

using pileus::testbed::FastGeoOptions;

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Name", "Value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "23456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Name        | Value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| a           | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer-name | 23456 |"), std::string::npos) << out;
  // Separator rule under the header.
  EXPECT_NE(out.find("|-------------|-------|"), std::string::npos) << out;
}

TEST(AsciiTableTest, ShortRowsPadWithEmptyCells) {
  AsciiTable table({"A", "B", "C"});
  table.AddRow({"x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| x | "), std::string::npos);
}

TEST(FormattersTest, FormatMs) {
  EXPECT_EQ(FormatMs(1500), "1.5");
  EXPECT_EQ(FormatMs(147000), "147.0");
}

TEST(FormattersTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.951), "95.1%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
  EXPECT_EQ(FormatPercent(1.0), "100.0%");
}

TEST(FormattersTest, FormatUtility) {
  EXPECT_EQ(FormatUtility(0.98), "0.98");
  EXPECT_EQ(FormatUtility(0.0), "0.00");
  EXPECT_EQ(FormatUtility(0.00001), "1.00e-05");  // Tiny: scientific.
}

TEST(RunStatsTest, AvgUtilityAndMetFraction) {
  RunStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgUtility(), 0.0);
  stats.gets = 4;
  stats.utility_sum = 3.0;
  stats.met_counts[0] = 3;
  stats.met_counts[-1] = 1;
  EXPECT_DOUBLE_EQ(stats.AvgUtility(), 0.75);
  EXPECT_DOUBLE_EQ(stats.MetFraction(0), 0.75);
  EXPECT_DOUBLE_EQ(stats.MetFraction(-1), 0.25);
  EXPECT_DOUBLE_EQ(stats.MetFraction(1), 0.0);
}

TEST(RunnerTest, SingleConsistencySlaShape) {
  const core::Sla sla = SingleConsistencySla(core::Guarantee::Monotonic());
  ASSERT_EQ(sla.size(), 1u);
  EXPECT_EQ(sla[0].consistency, core::Guarantee::Monotonic());
  EXPECT_DOUBLE_EQ(sla[0].utility, 1.0);
  EXPECT_TRUE(sla.Validate().ok());
}

TEST(RunnerTest, PreloadPopulatesEveryNode) {
  GeoTestbed testbed(FastGeoOptions(3));
  PreloadKeys(testbed, 100);
  for (const char* site : {kUs, kEngland, kIndia}) {
    auto* tablet = testbed.node(site)->FindTablet(kTableName, "");
    EXPECT_TRUE(
        tablet->HandleGet(workload::YcsbWorkload::KeyForIndex(0)).found)
        << site;
    EXPECT_TRUE(
        tablet->HandleGet(workload::YcsbWorkload::KeyForIndex(99)).found)
        << site;
    EXPECT_GT(tablet->high_timestamp(), Timestamp::Zero()) << site;
  }
}

TEST(RunnerTest, RunYcsbAccountsEveryCountedOp) {
  GeoTestbed testbed(FastGeoOptions(4));
  pileus::testbed::PreloadAndReplicate(testbed, 1000);
  auto client = testbed.MakeClient(kEngland, core::PileusClient::Options{});

  RunOptions run;
  run.sla = core::ShoppingCartSla();
  run.total_ops = 400;
  run.warmup_ops = 100;
  run.workload.seed = 4;
  run.workload.key_count = 1000;
  int callbacks = 0;
  const RunStats stats =
      RunYcsb(testbed, *client, run,
              [&](MicrosecondCount, const core::GetOutcome&) { ++callbacks; });

  EXPECT_EQ(stats.gets + stats.puts, 400u);
  EXPECT_EQ(static_cast<uint64_t>(callbacks), stats.gets);
  EXPECT_GT(stats.gets, 150u);  // ~50/50 split.
  EXPECT_GT(stats.puts, 150u);
  // Utility accounting is bounded by the SLA's top utility.
  EXPECT_LE(stats.AvgUtility(), 1.0);
  EXPECT_GT(stats.AvgUtility(), 0.9);  // England client: everything local.
  // Message accounting: at least one message per op.
  EXPECT_GE(stats.messages_sent, 400u);
  // Every counted Get has a met entry.
  uint64_t met_total = 0;
  for (const auto& [rank, count] : stats.met_counts) {
    met_total += count;
  }
  EXPECT_EQ(met_total, stats.gets);
}

TEST(ComparisonTest, AllStrategiesListsFour) {
  ASSERT_EQ(AllStrategies().size(), 4u);
  EXPECT_EQ(AllStrategies().front(), core::ReadStrategy::kPrimary);
  EXPECT_EQ(AllStrategies().back(), core::ReadStrategy::kPileus);
}

TEST(ComparisonTest, BreakdownTableMentionsEveryRank) {
  RunStats stats;
  stats.gets = 10;
  stats.utility_sum = 9.0;
  stats.target_node_counts[{0, 1}] = 9;
  stats.target_node_counts[{1, 1}] = 1;
  stats.met_counts[0] = 9;
  stats.met_counts[1] = 1;
  const std::string out =
      PileusBreakdownTable({"US"}, {stats}, core::ShoppingCartSla());
  EXPECT_NE(out.find("1."), std::string::npos);
  EXPECT_NE(out.find("2."), std::string::npos);
  EXPECT_NE(out.find("90.0%"), std::string::npos);
  EXPECT_NE(out.find("0.90"), std::string::npos);
}

// The tablet-churn scenario with the coordinator repeatedly killed at
// protocol crash points and recovered by a standby from the intent log
// (DESIGN.md Section 15). The audit bar is the usual one — zero violations,
// zero lost acked writes — and every kill must be followed by a recovery.
TEST(TabletChurnTest, CoordinatorKillRecoversWithZeroLoss) {
  char tmpl[] = "/tmp/pileus_churn_kill.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  TabletChurnOptions options;
  options.seed = 3;
  options.total_ops = 400;
  options.coordinator_kill = true;
  options.durable_root = tmpl;
  const TabletChurnResult result = RunTabletChurnScenario(options);
  ASSERT_TRUE(result.setup.ok()) << result.setup;
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_GT(result.coordinator_kills, 0u);
  EXPECT_EQ(result.coordinator_recoveries, result.coordinator_kills);
  EXPECT_EQ(result.lost_acked_writes, 0u);
  EXPECT_GT(result.acked_writes, 0u);
}

TEST(TabletChurnTest, CoordinatorKillRequiresDurableRoot) {
  TabletChurnOptions options;
  options.coordinator_kill = true;
  options.durable_root = "";
  const TabletChurnResult result = RunTabletChurnScenario(options);
  EXPECT_FALSE(result.setup.ok());
}

}  // namespace
}  // namespace pileus::experiments
