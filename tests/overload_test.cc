// Overload control (DESIGN.md Section 11): per-tenant admission with
// utility-weighted shedding, the client's retry budget, overload evidence in
// the monitor, the fault injector's overload mode, and end-to-end
// multi-tenant isolation over the real in-process transport.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/client.h"
#include "src/core/monitor.h"
#include "src/core/retry_budget.h"
#include "src/core/sla.h"
#include "src/sim/fault_injector.h"
#include "src/storage/admission.h"
#include "tests/testbed_fixture.h"

namespace pileus {
namespace {

using storage::AdmissionController;
using storage::AdmissionOptions;
using storage::AdmitClass;
using storage::AdmitDecision;

AdmissionOptions SmallBucket() {
  AdmissionOptions options;
  options.tenant_ops_per_sec = 10;
  options.tenant_burst_ops = 4;
  options.tenant_max_queue_ops = 20;
  return options;
}

// Drains the burst and drives the bucket to `backlog` ops of debt using
// writes (which shed only at a full queue).
void DriveBacklog(AdmissionController& controller, const std::string& tenant,
                  double backlog, MicrosecondCount now_us) {
  const int ops = static_cast<int>(
      controller.options().tenant_burst_ops + backlog);
  for (int i = 0; i < ops; ++i) {
    const AdmitDecision decision =
        controller.Admit(tenant, AdmitClass::kWrite, 1.0, 0, now_us);
    ASSERT_TRUE(decision.admitted) << "write " << i << " shed early";
  }
}

TEST(AdmissionControllerTest, BurstAdmitsAtZeroDelayThenQueues) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  for (int i = 0; i < 4; ++i) {
    const AdmitDecision decision =
        controller.Admit("t", AdmitClass::kRead, 1.0, 0, now);
    EXPECT_TRUE(decision.admitted);
    EXPECT_EQ(decision.queue_delay_us, 0) << "burst op " << i;
  }
  // The burst is gone: further admissions run a backlog, and the reported
  // queue delay is backlog / rate.
  const AdmitDecision queued =
      controller.Admit("t", AdmitClass::kRead, 1.0, 0, now);
  EXPECT_TRUE(queued.admitted);
  EXPECT_EQ(queued.queue_delay_us, 100'000);  // 1 op / (10 ops/s) = 100 ms.
}

TEST(AdmissionControllerTest, TokensRefillWithTime) {
  AdmissionController controller(SmallBucket());
  MicrosecondCount now = 1'000'000;
  DriveBacklog(controller, "t", 5, now);
  EXPECT_GT(controller.CurrentQueueDelay("t", now), 0);
  // 5 ops of debt at 10 ops/s drain in 500 ms.
  now += 600'000;
  EXPECT_EQ(controller.CurrentQueueDelay("t", now), 0);
}

TEST(AdmissionControllerTest, UtilityWeightedSheddingOrder) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  // Pressure 0.6: past the u=0.1 read threshold (0.54), below the u=1.0
  // one (0.9).
  DriveBacklog(controller, "t", 12, now);

  const AdmitDecision low =
      controller.Admit("t", AdmitClass::kRead, 0.1, 0, now);
  EXPECT_FALSE(low.admitted);
  EXPECT_GT(low.retry_after_ms, 0u);
  EXPECT_FALSE(low.deadline_exceeded);

  const AdmitDecision high =
      controller.Admit("t", AdmitClass::kRead, 1.0, 0, now);
  EXPECT_TRUE(high.admitted);

  const AdmitDecision strong =
      controller.Admit("t", AdmitClass::kStrongRead, 1.0, 0, now);
  EXPECT_TRUE(strong.admitted);

  const AdmitDecision write =
      controller.Admit("t", AdmitClass::kWrite, 1.0, 0, now);
  EXPECT_TRUE(write.admitted);

  const AdmissionController::Counters counters = controller.counters();
  EXPECT_EQ(counters.shed_reads, 1u);
  EXPECT_EQ(counters.shed_strong_reads, 0u);
  EXPECT_EQ(counters.shed_writes, 0u);
}

TEST(AdmissionControllerTest, StrongReadsShedOnlyNearFull) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  // Pressure ~0.95: above shed_strong_reads_at (0.9).
  DriveBacklog(controller, "t", 19, now);
  const AdmitDecision strong =
      controller.Admit("t", AdmitClass::kStrongRead, 1.0, 0, now);
  EXPECT_FALSE(strong.admitted);
  EXPECT_GT(strong.retry_after_ms, 0u);
  EXPECT_EQ(controller.counters().shed_strong_reads, 1u);
}

TEST(AdmissionControllerTest, WritesShedOnlyAtFullQueue) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  DriveBacklog(controller, "t", 20, now);  // Queue full.
  const AdmitDecision write =
      controller.Admit("t", AdmitClass::kWrite, 1.0, 0, now);
  EXPECT_FALSE(write.admitted);
  EXPECT_GT(write.retry_after_ms, 0u);
  EXPECT_EQ(controller.counters().shed_writes, 1u);
}

TEST(AdmissionControllerTest, DeadlineTighterThanQueueDelayRejected) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  DriveBacklog(controller, "t", 10, now);  // Queue delay: 1 s.
  // A 100 ms deadline cannot survive a 1 s queue: serving it would waste
  // capacity on a reply the client must discard.
  const AdmitDecision decision =
      controller.Admit("t", AdmitClass::kWrite, 1.0, 100'000, now);
  EXPECT_FALSE(decision.admitted);
  EXPECT_TRUE(decision.deadline_exceeded);
  EXPECT_EQ(controller.counters().deadline_rejected, 1u);
  // A roomy deadline sails through.
  const AdmitDecision roomy =
      controller.Admit("t", AdmitClass::kWrite, 1.0, 5'000'000, now);
  EXPECT_TRUE(roomy.admitted);
}

TEST(AdmissionControllerTest, TenantsAreIsolated) {
  AdmissionController controller(SmallBucket());
  const MicrosecondCount now = 1'000'000;
  DriveBacklog(controller, "hot", 20, now);
  EXPECT_FALSE(
      controller.Admit("hot", AdmitClass::kRead, 0.1, 0, now).admitted);
  // The quiet tenant's bucket is untouched: full burst, zero delay.
  const AdmitDecision quiet =
      controller.Admit("quiet", AdmitClass::kRead, 0.1, 0, now);
  EXPECT_TRUE(quiet.admitted);
  EXPECT_EQ(quiet.queue_delay_us, 0);
  EXPECT_EQ(controller.Tenants(), (std::vector<std::string>{"hot", "quiet"}));
}

TEST(AdmissionControllerTest, DisabledAdmitsEverything) {
  AdmissionOptions options;  // tenant_ops_per_sec = 0: disabled.
  AdmissionController controller(options);
  for (int i = 0; i < 1000; ++i) {
    const AdmitDecision decision =
        controller.Admit("t", AdmitClass::kRead, 0.0, 1, 0);
    EXPECT_TRUE(decision.admitted);
    EXPECT_EQ(decision.queue_delay_us, 0);
  }
}

TEST(RetryBudgetTest, BoundsRetriesAndRefillsOnSuccess) {
  core::RetryBudget::Options options;
  options.capacity = 3;
  options.refill_per_success = 0.5;
  core::RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  // Empty: the retry storm is capped.
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.denied(), 1u);
  // Two successes earn one retry token back.
  budget.RecordSuccess();
  EXPECT_FALSE(budget.TryAcquire());
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_EQ(budget.denied(), 2u);
}

TEST(RetryBudgetTest, RefillCapsAtCapacity) {
  core::RetryBudget::Options options;
  options.capacity = 2;
  options.refill_per_success = 1.0;
  core::RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) {
    budget.RecordSuccess();
  }
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

TEST(MonitorOverloadTest, OverloadWindowAndPenalty) {
  ManualClock clock;
  clock.AdvanceMicros(1'000'000);
  core::Monitor::Options options;
  options.overload_penalty = 0.2;
  core::Monitor monitor(&clock, options);

  EXPECT_FALSE(monitor.IsOverloaded("n"));
  EXPECT_DOUBLE_EQ(monitor.POverload("n", 0.1), 1.0);

  monitor.RecordOverload("n", 200'000);
  EXPECT_TRUE(monitor.IsOverloaded("n"));
  // Low-utility ranks are discounted hardest; utility 1.0 keeps full score.
  EXPECT_NEAR(monitor.POverload("n", 0.0), 0.2, 1e-9);
  EXPECT_NEAR(monitor.POverload("n", 0.5), 0.2 + 0.8 * 0.5, 1e-9);
  EXPECT_NEAR(monitor.POverload("n", 1.0), 1.0, 1e-9);
  EXPECT_EQ(monitor.overload_rejections(), 1u);

  // The window expires: the node is forgiven.
  clock.AdvanceMicros(250'000);
  EXPECT_FALSE(monitor.IsOverloaded("n"));
  EXPECT_DOUBLE_EQ(monitor.POverload("n", 0.1), 1.0);
}

TEST(MonitorOverloadTest, QueueDelayEwma) {
  ManualClock clock;
  core::Monitor::Options options;
  options.queue_delay_alpha = 0.5;
  core::Monitor monitor(&clock, options);
  EXPECT_EQ(monitor.QueueDelayUs("n"), 0);
  monitor.RecordQueueDelay("n", 100'000);
  const MicrosecondCount first = monitor.QueueDelayUs("n");
  EXPECT_GT(first, 0);
  monitor.RecordQueueDelay("n", 0);
  EXPECT_LT(monitor.QueueDelayUs("n"), first);
}

TEST(FaultInjectorOverloadTest, OverloadModeShedsWithHint) {
  sim::FaultInjector faults;
  faults.SetOverloadNode("n", 1.0, 75);
  Random rng(1);
  const sim::FaultDecision decision = faults.OnMessage("client", "n", rng);
  EXPECT_TRUE(decision.overload);
  EXPECT_EQ(decision.retry_after_ms, 75u);
  EXPECT_FALSE(decision.drop);
  EXPECT_GE(faults.messages_overloaded(), 1u);

  faults.RecoverNode("n");
  const sim::FaultDecision healthy = faults.OnMessage("client", "n", rng);
  EXPECT_FALSE(healthy.overload);
}

TEST(FaultInjectorOverloadTest, DropWinsOverOverload) {
  sim::FaultInjector faults;
  faults.SetOverloadNode("n", 1.0, 75);
  faults.SetSilentDrop("client", 1.0);
  Random rng(1);
  const sim::FaultDecision decision = faults.OnMessage("client", "n", rng);
  EXPECT_TRUE(decision.drop);
  // A dropped message never reaches the admission controller, so it cannot
  // also be a fast rejection.
  EXPECT_FALSE(decision.overload);
}

// --- End-to-end over the real in-process transport ---

core::Sla TwoRankSla() {
  return core::Sla()
      .Add(core::Guarantee::ReadMyWrites(), MillisecondsToMicroseconds(500),
           1.0)
      .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(2), 0.1);
}

TEST(OverloadEndToEndTest, ShedRepliesReachTheClientAndMonitor) {
  testbed::InProcCluster cluster;
  AdmissionOptions admission;
  admission.tenant_ops_per_sec = 5;
  admission.tenant_burst_ops = 2;
  admission.tenant_max_queue_ops = 4;
  cluster.EnableAdmission(admission);

  core::PileusClient::Options options;
  options.tenant = "solo";
  auto client = cluster.MakeClient(options);
  Result<core::Session> session = client->BeginSession(TwoRankSla());
  ASSERT_TRUE(session.ok());
  // Seed one key so Gets have something to read.
  ASSERT_TRUE(client->Put(*session, "k", "v").ok());
  cluster.PullNow();

  // Hammer far past the 5 ops/s bucket: the nodes must start shedding, and
  // the client must absorb the kOverloaded evidence instead of erroring out
  // of its session.
  for (int i = 0; i < 60; ++i) {
    (void)client->Get(*session, "k");
  }
  const uint64_t shed =
      cluster.primary().admission()->counters().shed_total() +
      cluster.local().admission()->counters().shed_total();
  EXPECT_GT(shed, 0u);
  EXPECT_GT(client->overload_rejections(), 0u);
  EXPECT_GT(client->monitor().overload_rejections(), 0u);
  // Queue-delay piggybacks made it into the monitor's per-node view.
  const uint64_t delay_local = client->monitor().QueueDelayUs("Local");
  const uint64_t delay_primary = client->monitor().QueueDelayUs("England");
  EXPECT_GT(delay_local + delay_primary, 0u);
}

TEST(OverloadEndToEndTest, WritesSurviveSheddingWithRetryBudget) {
  testbed::InProcCluster cluster;
  AdmissionOptions admission;
  admission.tenant_ops_per_sec = 20;
  admission.tenant_burst_ops = 4;
  admission.tenant_max_queue_ops = 8;
  cluster.EnableAdmission(admission);

  core::PileusClient::Options options;
  options.tenant = "writer";
  // Real sleeps so retry_after-hinted backoff actually spaces the retries.
  options.sleep_fn = [](MicrosecondCount us) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  };
  auto client = cluster.MakeClient(options);
  Result<core::Session> session = client->BeginSession(TwoRankSla());
  ASSERT_TRUE(session.ok());

  int acked = 0;
  for (int i = 0; i < 40; ++i) {
    if (client->Put(*session, "k" + std::to_string(i), "v").ok()) {
      ++acked;
    }
  }
  // Writes are protected until the queue is full and retried with backoff,
  // so the large majority must land even while the bucket is squeezed.
  EXPECT_GE(acked, 30);
  // Every acked write is in the primary's committed history.
  bool contiguous = true;
  const std::vector<proto::ObjectVersion> log =
      cluster.primary().ExportTableLog("t", &contiguous);
  EXPECT_GE(static_cast<int>(log.size()), acked);
}

// Satellite: two tenants on one cluster, one of them hot. The quiet
// tenant's bucket is its own, so its latency and subSLA hit-rate must stay
// healthy while the hot tenant is being shed.
TEST(OverloadEndToEndTest, QuietTenantUnaffectedByHotTenant) {
  testbed::InProcCluster cluster;
  AdmissionOptions admission;
  admission.tenant_ops_per_sec = 25;
  admission.tenant_burst_ops = 5;
  admission.tenant_max_queue_ops = 10;
  cluster.EnableAdmission(admission);

  core::PileusClient::Options quiet_options;
  quiet_options.tenant = "quiet";
  auto quiet = cluster.MakeClient(quiet_options);
  core::PileusClient::Options hot_options;
  hot_options.tenant = "hot";
  auto hot = cluster.MakeClient(hot_options);

  Result<core::Session> quiet_session = quiet->BeginSession(TwoRankSla());
  Result<core::Session> hot_session = hot->BeginSession(TwoRankSla());
  ASSERT_TRUE(quiet_session.ok());
  ASSERT_TRUE(hot_session.ok());
  ASSERT_TRUE(quiet->Put(*quiet_session, "shared", "v").ok());
  cluster.PullNow();

  // Interleave: ten hot ops for every quiet op, far past the hot bucket.
  std::vector<MicrosecondCount> quiet_latencies;
  int quiet_ops = 0;
  int quiet_met = 0;
  for (int round = 0; round < 30; ++round) {
    for (int burst = 0; burst < 10; ++burst) {
      (void)hot->Get(*hot_session, "shared");
    }
    const MicrosecondCount start = RealClock::Instance()->NowMicros();
    Result<core::GetResult> get = quiet->Get(*quiet_session, "shared");
    quiet_latencies.push_back(RealClock::Instance()->NowMicros() - start);
    ++quiet_ops;
    if (get.ok() && get->outcome.met_rank >= 0) {
      ++quiet_met;
    }
  }

  // The hot tenant got squeezed...
  const uint64_t shed =
      cluster.primary().admission()->counters().shed_total() +
      cluster.local().admission()->counters().shed_total();
  EXPECT_GT(shed, 0u);
  EXPECT_GT(hot->overload_rejections(), 0u);
  // ...while the quiet tenant never saw a rejection, met its SLA, and kept
  // a sane tail latency (Local is ~1 ms away; 250 ms allows for scheduler
  // noise and an occasional England round trip, not for queueing behind
  // the hot tenant's backlog).
  EXPECT_EQ(quiet->overload_rejections(), 0u);
  EXPECT_EQ(quiet_met, quiet_ops);
  std::sort(quiet_latencies.begin(), quiet_latencies.end());
  const MicrosecondCount p99 =
      quiet_latencies[quiet_latencies.size() - 1 -
                      quiet_latencies.size() / 100];
  EXPECT_LT(p99, MillisecondsToMicroseconds(250));
}

}  // namespace
}  // namespace pileus
