// Tests for DurableStorageService: protocol dispatch onto journaled storage,
// including a full restart cycle through the service interface.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <string>

#include "src/common/clock.h"
#include "src/persist/durable_service.h"

namespace pileus::persist {
namespace {

class DurableServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/pileus_service_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)::system(cmd.c_str());
  }

  std::unique_ptr<DurableTablet> OpenTablet() {
    DurableTablet::Options options;
    options.directory = dir_;
    options.tablet.is_primary = true;
    auto opened = DurableTablet::Open(options, &clock_);
    EXPECT_TRUE(opened.ok()) << opened.status();
    return std::move(opened).value();
  }

  ManualClock clock_{SecondsToMicroseconds(1000)};
  std::string dir_;
};

TEST_F(DurableServiceTest, PutGetProbeSyncDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message put_reply = service.Handle(put);
  ASSERT_TRUE(std::holds_alternative<proto::PutReply>(put_reply));

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  proto::Message get_reply = service.Handle(get);
  const auto* gr = std::get_if<proto::GetReply>(&get_reply);
  ASSERT_NE(gr, nullptr);
  EXPECT_TRUE(gr->found);
  EXPECT_EQ(gr->value, "v");
  EXPECT_TRUE(gr->served_by_primary);

  proto::ProbeRequest probe;
  probe.table = "t";
  proto::Message probe_reply = service.Handle(probe);
  const auto* pr = std::get_if<proto::ProbeReply>(&probe_reply);
  ASSERT_NE(pr, nullptr);
  EXPECT_TRUE(pr->is_primary);
  EXPECT_GT(pr->high_timestamp, Timestamp::Zero());

  proto::SyncRequest sync;
  sync.table = "t";
  proto::Message sync_reply = service.Handle(sync);
  const auto* sr = std::get_if<proto::SyncReply>(&sync_reply);
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->versions.size(), 1u);
  EXPECT_EQ(service.requests_served(), 4u);
}

TEST_F(DurableServiceTest, WrongTableRejected) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::GetRequest get;
  get.table = "other";
  get.key = "k";
  proto::Message reply = service.Handle(get);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kWrongNode);
}

TEST_F(DurableServiceTest, CommitDispatchAndRecovery) {
  {
    auto tablet = OpenTablet();
    DurableStorageService service("t", tablet.get());
    proto::CommitRequest commit;
    commit.table = "t";
    for (const char* key : {"x", "y"}) {
      proto::ObjectVersion w;
      w.key = key;
      w.value = "tx";
      commit.writes.push_back(w);
    }
    proto::Message reply = service.Handle(commit);
    const auto* cr = std::get_if<proto::CommitReply>(&reply);
    ASSERT_NE(cr, nullptr);
    EXPECT_TRUE(cr->committed);
  }
  // Restart: transactional writes survived.
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::GetRequest get;
  get.table = "t";
  get.key = "x";
  proto::Message reply = service.Handle(get);
  EXPECT_TRUE(std::get<proto::GetReply>(reply).found);
}

TEST_F(DurableServiceTest, GetAtDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v1";
  (void)service.Handle(put);
  const Timestamp first = tablet->tablet().high_timestamp();
  clock_.AdvanceMicros(10);
  put.value = "v2";
  (void)service.Handle(put);

  proto::GetAtRequest get_at;
  get_at.table = "t";
  get_at.key = "k";
  get_at.snapshot = first;
  proto::Message reply = service.Handle(get_at);
  const auto* ar = std::get_if<proto::GetAtReply>(&reply);
  ASSERT_NE(ar, nullptr);
  EXPECT_TRUE(ar->found);
  EXPECT_EQ(ar->value, "v1");
}

TEST_F(DurableServiceTest, RangeDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  for (const char* key : {"a", "b", "c"}) {
    proto::PutRequest put;
    put.table = "t";
    put.key = key;
    put.value = "v";
    clock_.AdvanceMicros(1);
    (void)service.Handle(put);
  }
  proto::RangeRequest range;
  range.table = "t";
  range.begin = "a";
  range.end = "c";
  proto::Message reply = service.Handle(range);
  const auto* rr = std::get_if<proto::RangeReply>(&reply);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->items.size(), 2u);
  EXPECT_TRUE(rr->served_by_primary);
}

TEST_F(DurableServiceTest, NonRequestRejected) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::Message reply = service.Handle(proto::Message(proto::GetReply{}));
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(reply));
}

}  // namespace
}  // namespace pileus::persist
