// Tests for DurableStorageService: protocol dispatch onto journaled storage,
// including a full restart cycle through the service interface.

#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/persist/durable_service.h"
#include "src/persist/wal.h"

namespace pileus::persist {
namespace {

// The committer publishes its acked()/syncs() counters after invoking the
// acks that unblock Handle/SyncNow, so a reader racing the committer thread
// can briefly see a stale count. Poll up to a deadline before comparing.
uint64_t AwaitCounter(const std::function<uint64_t()>& value,
                      uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (value() < at_least && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return value();
}

class DurableServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/pileus_service_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    (void)::system(cmd.c_str());
  }

  std::unique_ptr<DurableTablet> OpenTablet() {
    DurableTablet::Options options;
    options.directory = dir_;
    options.tablet.is_primary = true;
    auto opened = DurableTablet::Open(options, &clock_);
    EXPECT_TRUE(opened.ok()) << opened.status();
    return std::move(opened).value();
  }

  ManualClock clock_{SecondsToMicroseconds(1000)};
  std::string dir_;
};

TEST_F(DurableServiceTest, PutGetProbeSyncDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());

  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v";
  proto::Message put_reply = service.Handle(put);
  ASSERT_TRUE(std::holds_alternative<proto::PutReply>(put_reply));

  proto::GetRequest get;
  get.table = "t";
  get.key = "k";
  proto::Message get_reply = service.Handle(get);
  const auto* gr = std::get_if<proto::GetReply>(&get_reply);
  ASSERT_NE(gr, nullptr);
  EXPECT_TRUE(gr->found);
  EXPECT_EQ(gr->value, "v");
  EXPECT_TRUE(gr->served_by_primary);

  proto::ProbeRequest probe;
  probe.table = "t";
  proto::Message probe_reply = service.Handle(probe);
  const auto* pr = std::get_if<proto::ProbeReply>(&probe_reply);
  ASSERT_NE(pr, nullptr);
  EXPECT_TRUE(pr->is_primary);
  EXPECT_GT(pr->high_timestamp, Timestamp::Zero());

  proto::SyncRequest sync;
  sync.table = "t";
  proto::Message sync_reply = service.Handle(sync);
  const auto* sr = std::get_if<proto::SyncReply>(&sync_reply);
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->versions.size(), 1u);
  EXPECT_EQ(service.requests_served(), 4u);
}

TEST_F(DurableServiceTest, WrongTableRejected) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::GetRequest get;
  get.table = "other";
  get.key = "k";
  proto::Message reply = service.Handle(get);
  const auto* err = std::get_if<proto::ErrorReply>(&reply);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, StatusCode::kWrongNode);
}

TEST_F(DurableServiceTest, CommitDispatchAndRecovery) {
  {
    auto tablet = OpenTablet();
    DurableStorageService service("t", tablet.get());
    proto::CommitRequest commit;
    commit.table = "t";
    for (const char* key : {"x", "y"}) {
      proto::ObjectVersion w;
      w.key = key;
      w.value = "tx";
      commit.writes.push_back(w);
    }
    proto::Message reply = service.Handle(commit);
    const auto* cr = std::get_if<proto::CommitReply>(&reply);
    ASSERT_NE(cr, nullptr);
    EXPECT_TRUE(cr->committed);
  }
  // Restart: transactional writes survived.
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::GetRequest get;
  get.table = "t";
  get.key = "x";
  proto::Message reply = service.Handle(get);
  EXPECT_TRUE(std::get<proto::GetReply>(reply).found);
}

TEST_F(DurableServiceTest, GetAtDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::PutRequest put;
  put.table = "t";
  put.key = "k";
  put.value = "v1";
  (void)service.Handle(put);
  const Timestamp first = tablet->tablet().high_timestamp();
  clock_.AdvanceMicros(10);
  put.value = "v2";
  (void)service.Handle(put);

  proto::GetAtRequest get_at;
  get_at.table = "t";
  get_at.key = "k";
  get_at.snapshot = first;
  proto::Message reply = service.Handle(get_at);
  const auto* ar = std::get_if<proto::GetAtReply>(&reply);
  ASSERT_NE(ar, nullptr);
  EXPECT_TRUE(ar->found);
  EXPECT_EQ(ar->value, "v1");
}

TEST_F(DurableServiceTest, RangeDispatch) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  for (const char* key : {"a", "b", "c"}) {
    proto::PutRequest put;
    put.table = "t";
    put.key = key;
    put.value = "v";
    clock_.AdvanceMicros(1);
    (void)service.Handle(put);
  }
  proto::RangeRequest range;
  range.table = "t";
  range.begin = "a";
  range.end = "c";
  proto::Message reply = service.Handle(range);
  const auto* rr = std::get_if<proto::RangeReply>(&reply);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->items.size(), 2u);
  EXPECT_TRUE(rr->served_by_primary);
}

TEST_F(DurableServiceTest, NonRequestRejected) {
  auto tablet = OpenTablet();
  DurableStorageService service("t", tablet.get());
  proto::Message reply = service.Handle(proto::Message(proto::GetReply{}));
  EXPECT_TRUE(std::holds_alternative<proto::ErrorReply>(reply));
}

// --- Group-commit durability ---
//
// The contract under test (durable_service.h / group_commit.h): with group
// commit on, a mutation is acked only after a batch fsync covers its WAL
// append. So a crash can lose writes that were appended but never acked —
// and must never lose a write whose client saw a reply.

TEST_F(DurableServiceTest, GroupCommitCrashLosesOnlyUnackedWrites) {
  const std::string wal_path = dir_ + "/wal.log";
  constexpr int kAcked = 24;
  constexpr int kUnacked = 8;
  uint64_t acked_bytes = 0;
  uint64_t final_bytes = 0;
  {
    auto tablet = OpenTablet();
    GroupCommitConfig config;
    config.enabled = true;
    // Huge batch + huge delay: the committer syncs only when we say so,
    // which pins exactly where the durability frontier sits.
    config.max_batch = 1000;
    config.max_delay_us = SecondsToMicroseconds(10);
    DurableStorageService service("t", tablet.get(), config);

    // Phase 1: writes the clients were told are durable.
    std::atomic<int> acked{0};
    for (int i = 0; i < kAcked; ++i) {
      clock_.AdvanceMicros(1);
      proto::PutRequest put;
      put.table = "t";
      put.key = "a" + std::to_string(i);
      put.value = "av" + std::to_string(i);
      service.HandleAsync(put, [&acked](proto::Message reply) {
        EXPECT_TRUE(std::holds_alternative<proto::PutReply>(reply));
        ++acked;
      });
    }
    ASSERT_TRUE(service.SyncNow().ok());
    // SyncNow's own barrier ack is queued after the puts, so by the time it
    // returns every earlier ack has already run.
    ASSERT_EQ(acked.load(), kAcked);
    acked_bytes = tablet->wal().bytes_written();

    // Phase 2: appended to the WAL (reached the kernel) but never covered
    // by a sync — the clients never hear back before the "crash".
    std::atomic<int> late_acks{0};
    for (int i = 0; i < kUnacked; ++i) {
      clock_.AdvanceMicros(1);
      proto::PutRequest put;
      put.table = "t";
      put.key = "u" + std::to_string(i);
      put.value = "uv" + std::to_string(i);
      service.HandleAsync(put, [&late_acks](proto::Message) { ++late_acks; });
    }
    final_bytes = tablet->wal().bytes_written();
    ASSERT_GT(final_bytes, acked_bytes);
    EXPECT_EQ(late_acks.load(), 0);
    // 24 put acks + SyncNow's barrier ack; nothing from phase 2.
    GroupCommitter* committer = service.group_committer();
    EXPECT_EQ(AwaitCounter([committer] { return committer->acked(); },
                           kAcked + 1),
              static_cast<uint64_t>(kAcked) + 1);
    // Reads see pending writes immediately: the in-memory tablet is ahead
    // of the durability frontier by design.
    proto::GetRequest get;
    get.table = "t";
    get.key = "u0";
    proto::Message reply = service.Handle(get);
    EXPECT_TRUE(std::get<proto::GetReply>(reply).found);
  }

  // Simulate crashes at every interesting point at or after the last
  // covering sync: the full tail survives, the tail is partially lost, the
  // tail is torn mid-record, the tail is gone entirely. Acked writes must
  // recover at every cut; unacked writes may or may not, but a recovered
  // one must be intact and recovery must be a prefix of the issue order.
  const uint64_t tail = final_bytes - acked_bytes;
  std::vector<uint64_t> cuts = {final_bytes, acked_bytes + 2 * tail / 3,
                                acked_bytes + tail / 3, acked_bytes + 1,
                                acked_bytes};
  uint64_t previous_cut = final_bytes + 1;
  for (const uint64_t cut : cuts) {
    if (cut >= previous_cut) {
      continue;  // Truncation points must strictly shrink.
    }
    previous_cut = cut;
    ASSERT_EQ(::truncate(wal_path.c_str(), static_cast<off_t>(cut)), 0);

    // Journal cross-check before replay: the surviving records are exactly
    // a prefix of the issue order — all acked writes, then zero or more
    // unacked ones, never a gap and never garbage.
    auto journal = WriteAheadLog::ReadVersions(wal_path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_GE(journal.value().size(), static_cast<size_t>(kAcked));
    ASSERT_LE(journal.value().size(), static_cast<size_t>(kAcked + kUnacked));
    for (size_t i = 0; i < journal.value().size(); ++i) {
      const int n = static_cast<int>(i);
      const std::string expected_key =
          n < kAcked ? "a" + std::to_string(n)
                     : "u" + std::to_string(n - kAcked);
      EXPECT_EQ(journal.value()[i].key, expected_key) << "cut=" << cut;
    }

    auto reopened = OpenTablet();
    for (int i = 0; i < kAcked; ++i) {
      const proto::GetReply got = reopened->HandleGet("a" + std::to_string(i));
      EXPECT_TRUE(got.found) << "acked write a" << i << " lost at cut=" << cut;
      EXPECT_EQ(got.value, "av" + std::to_string(i));
    }
    for (int i = 0; i < kUnacked; ++i) {
      const proto::GetReply got = reopened->HandleGet("u" + std::to_string(i));
      if (got.found) {
        EXPECT_EQ(got.value, "uv" + std::to_string(i)) << "cut=" << cut;
      }
    }
    EXPECT_EQ(reopened->recovery_info().wal_versions, journal.value().size());
  }
  // The last cut removed the whole unacked tail: exactly the acked writes.
  EXPECT_EQ(previous_cut, acked_bytes);
}

TEST_F(DurableServiceTest, GroupCommitAmortizesSyncsAcrossAckedWrites) {
  auto tablet = OpenTablet();
  GroupCommitConfig config;
  config.enabled = true;
  config.max_batch = 16;
  config.max_delay_us = SecondsToMicroseconds(10);  // Batch-size-driven only.
  DurableStorageService service("t", tablet.get(), config);

  constexpr int kWrites = 48;
  std::atomic<int> acked{0};
  for (int i = 0; i < kWrites; ++i) {
    clock_.AdvanceMicros(1);
    proto::PutRequest put;
    put.table = "t";
    put.key = "k" + std::to_string(i);
    put.value = "v" + std::to_string(i);
    service.HandleAsync(put, [&acked](proto::Message reply) {
      EXPECT_TRUE(std::holds_alternative<proto::PutReply>(reply));
      ++acked;
    });
  }
  ASSERT_TRUE(service.SyncNow().ok());
  ASSERT_EQ(acked.load(), kWrites);

  GroupCommitter* committer = service.group_committer();
  ASSERT_NE(committer, nullptr);
  // 48 put acks + SyncNow's barrier ack.
  EXPECT_EQ(AwaitCounter([committer] { return committer->acked(); },
                         kWrites + 1),
            static_cast<uint64_t>(kWrites) + 1);
  // With max_batch=16 the committer needs at most ceil(48/16) batch syncs
  // plus the forced barrier; it may batch even wider if it wakes late. The
  // point of the feature: syncs are a small fraction of acked writes.
  EXPECT_GE(committer->syncs(), 1u);
  EXPECT_LE(committer->syncs(), 5u);

  // WAL replay cross-check: every acked write journaled, in issue order.
  auto journal = WriteAheadLog::ReadVersions(dir_ + "/wal.log");
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_EQ(journal.value().size(), static_cast<size_t>(kWrites));
  for (int i = 0; i < kWrites; ++i) {
    EXPECT_EQ(journal.value()[i].key, "k" + std::to_string(i));
    EXPECT_EQ(journal.value()[i].value, "v" + std::to_string(i));
  }
}

TEST_F(DurableServiceTest, SyncHandleBlocksUntilDurableUnderGroupCommit) {
  // The synchronous Handle path wraps HandleAsync: when it returns a
  // successful mutation reply, the covering sync has already happened, so a
  // crash immediately after can no longer lose the write.
  const std::string wal_path = dir_ + "/wal.log";
  {
    auto tablet = OpenTablet();
    GroupCommitConfig config;
    config.enabled = true;
    config.max_batch = 4;
    config.max_delay_us = 500;
    DurableStorageService service("t", tablet.get(), config);
    for (int i = 0; i < 6; ++i) {
      clock_.AdvanceMicros(1);
      proto::PutRequest put;
      put.table = "t";
      put.key = "k" + std::to_string(i);
      put.value = "v";
      proto::Message reply = service.Handle(put);
      ASSERT_TRUE(std::holds_alternative<proto::PutReply>(reply));
    }
    GroupCommitter* committer = service.group_committer();
    EXPECT_GE(AwaitCounter([committer] { return committer->acked(); }, 6), 6u);
  }
  // No truncation needed: everything acked was synced, so the journal on
  // disk holds all six writes even though the WAL fd is long closed.
  auto reopened = OpenTablet();
  EXPECT_EQ(reopened->recovery_info().wal_versions, 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(reopened->HandleGet("k" + std::to_string(i)).found);
  }
}

}  // namespace
}  // namespace pileus::persist
