// pileus_cli: command-line client for a pileus_server node.
//
//   pileus_cli --port 7000 put mykey myvalue
//   pileus_cli --port 7000 get mykey
//   pileus_cli --port 7000 probe
//   pileus_cli --port 7000 sync            # dump versions above --after
//   pileus_cli --port 7000 tablets         # live tablet map (table or JSON)
//   pileus_cli --port 7000 tablets split m # split the tablet holding "m"
//   pileus_cli --port 7000 tablets handoff 7001 backup
//                                          # live-migrate primaryship
//   pileus_cli --intent_log DIR/coordinator.intents tablets
//                                          # durable coordinator state after
//                                          # a kill -9: committed map, lease
//                                          # holder, and any in-flight
//                                          # split/migration intent (phase,
//                                          # epoch, elapsed); no TCP needed
//   pileus_cli --port 7000 bench 1000      # tiny put/get latency check
//   pileus_cli --port 7000 --cache_bytes 1048576 bench 1000
//                                          # ... with a client-side cache
//
// Talks the raw storage protocol over TCP and pretty-prints replies,
// including the node's high timestamp so operators can eyeball staleness.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "src/cache/client_cache.h"
#include "src/common/clock.h"
#include "src/core/monitor.h"
#include "src/net/tcp.h"
#include "src/proto/messages.h"
#include "src/tablets/intent_log.h"
#include "src/tablets/tablet_map.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/util/histogram.h"
#include "tools/flags.h"

using namespace pileus;  // NOLINT

namespace {

Result<proto::Message> Call(net::TcpChannel& channel,
                            const proto::Message& request) {
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(10));
  if (!reply.ok()) {
    return reply;
  }
  if (const auto* err = std::get_if<proto::ErrorReply>(&reply.value())) {
    return Status(err->code, err->message);
  }
  return reply;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JoinMembers(const std::vector<std::string>& members) {
  std::string out;
  for (const std::string& m : members) {
    if (!out.empty()) {
      out += ",";
    }
    out += m;
  }
  return out;
}

// Fetches the node's current tablet map. Nodes that never installed one
// synthesize a version-0 view from their hosted tablets, so this works
// against a plain `pileus_server` too.
Result<tablets::TabletMap> FetchTabletMap(net::TcpChannel& channel,
                                          const std::string& table,
                                          const std::string& split_key = "") {
  proto::TabletMapRequest request;
  request.table = table;
  request.have_version = 0;
  request.split_key = split_key;
  Result<proto::Message> reply = Call(channel, request);
  if (!reply.ok()) {
    return reply.status();
  }
  const auto* map_reply = std::get_if<proto::TabletMapReply>(&reply.value());
  if (map_reply == nullptr) {
    return Status(StatusCode::kInternal,
                  "unexpected reply type for tablet map");
  }
  if (!map_reply->has_map) {
    return Status(StatusCode::kNotFound,
                  "node hosts no tablets for table '" + table + "'");
  }
  return map_reply->map;
}

// Prints the map as a JSON object (no trailing newline) so it can stand
// alone or nest inside a larger document (the --intent_log view).
void PrintTabletMapJson(const tablets::TabletMap& map) {
  std::printf("{\"table\": \"%s\", \"version\": %llu, ",
              JsonEscape(map.table).c_str(),
              static_cast<unsigned long long>(map.version));
  std::printf("\"coordinator_epoch\": %llu, \"tablets\": [",
              static_cast<unsigned long long>(map.coordinator_epoch));
  for (size_t i = 0; i < map.tablets.size(); ++i) {
    const tablets::TabletInfo& t = map.tablets[i];
    std::printf(
        "%s{\"begin\": \"%s\", \"end\": \"%s\", \"epoch\": %llu, "
        "\"primary\": \"%s\", \"members\": [",
        i == 0 ? "" : ", ", JsonEscape(t.range.begin).c_str(),
        JsonEscape(t.range.end).c_str(),
        static_cast<unsigned long long>(t.config.epoch),
        JsonEscape(t.config.primary).c_str());
    for (size_t j = 0; j < t.config.members.size(); ++j) {
      std::printf("%s\"%s\"", j == 0 ? "" : ", ",
                  JsonEscape(t.config.members[j]).c_str());
    }
    std::printf("], \"size_bytes\": %llu, \"ops_per_sec\": %llu}",
                static_cast<unsigned long long>(t.size_bytes),
                static_cast<unsigned long long>(t.ops_per_sec));
  }
  std::printf("]}");
}

void PrintTabletMap(const tablets::TabletMap& map, bool json) {
  if (json) {
    PrintTabletMapJson(map);
    std::printf("\n");
    return;
  }
  std::printf("table '%s': map v%llu, %zu tablet%s\n", map.table.c_str(),
              static_cast<unsigned long long>(map.version),
              map.tablets.size(), map.tablets.size() == 1 ? "" : "s");
  std::printf("%-28s %6s %-12s %-24s %10s %8s\n", "RANGE", "EPOCH", "PRIMARY",
              "MEMBERS", "BYTES", "OPS/S");
  for (const tablets::TabletInfo& t : map.tablets) {
    std::string range = "['" + t.range.begin + "', ";
    range += t.range.end.empty() ? "\xE2\x88\x9E)" : "'" + t.range.end + "')";
    std::printf("%-28s %6llu %-12s %-24s %10llu %8llu\n", range.c_str(),
                static_cast<unsigned long long>(t.config.epoch),
                t.config.primary.empty() ? "-" : t.config.primary.c_str(),
                JoinMembers(t.config.members).c_str(),
                static_cast<unsigned long long>(t.size_bytes),
                static_cast<unsigned long long>(t.ops_per_sec));
  }
}

// `tablets` with --intent_log: replays the durable coordinator state from
// disk — no TCP, no running server, exactly what an operator has after a
// kill -9 — and shows the committed map, the lease, and any in-flight
// split/migration intent with its phase, epochs, and elapsed time.
int ShowIntentLog(const std::string& path, bool json) {
  Result<tablets::IntentLog::RecoveredState> recovered =
      tablets::IntentLog::Recover(path);
  if (!recovered.ok()) {
    return Fail(recovered.status());
  }
  const tablets::IntentLog::RecoveredState& state = recovered.value();
  const MicrosecondCount now = RealClock::Instance()->NowMicros();
  const bool lease_expired =
      state.lease.expiry_us != 0 && now >= state.lease.expiry_us;
  if (json) {
    std::printf(
        "{\"lease\": {\"epoch\": %llu, \"holder\": \"%s\", "
        "\"expiry_us\": %lld, \"expired\": %s}, \"in_flight\": ",
        static_cast<unsigned long long>(state.lease.epoch),
        JsonEscape(state.lease.holder).c_str(),
        static_cast<long long>(state.lease.expiry_us),
        lease_expired ? "true" : "false");
    if (state.intent.has_value()) {
      const tablets::TabletIntent& in = *state.intent;
      std::printf(
          "{\"intent_id\": %llu, \"phase\": \"%s\", \"table\": \"%s\", "
          "\"begin\": \"%s\", \"end\": \"%s\", \"split_key\": \"%s\", "
          "\"from\": \"%s\", \"to\": \"%s\", \"next_version\": %llu, "
          "\"next_epoch\": %llu, \"coordinator_epoch\": %llu, "
          "\"started_us\": %lld, \"elapsed_us\": %lld}",
          static_cast<unsigned long long>(in.intent_id),
          std::string(tablets::IntentPhaseName(in.phase)).c_str(),
          JsonEscape(in.table).c_str(), JsonEscape(in.range.begin).c_str(),
          JsonEscape(in.range.end).c_str(), JsonEscape(in.split_key).c_str(),
          JsonEscape(in.from).c_str(), JsonEscape(in.to).c_str(),
          static_cast<unsigned long long>(in.next_version),
          static_cast<unsigned long long>(in.next_epoch),
          static_cast<unsigned long long>(in.coordinator_epoch),
          static_cast<long long>(in.started_us),
          static_cast<long long>(now - in.started_us));
    } else {
      std::printf("null");
    }
    std::printf(", \"tail_torn\": %s, \"map\": ",
                state.tail_torn ? "true" : "false");
    if (state.map.version > 0) {
      PrintTabletMapJson(state.map);
    } else {
      std::printf("null");
    }
    std::printf("}\n");
    return 0;
  }
  std::printf("coordinator lease: epoch %llu held by '%s'%s\n",
              static_cast<unsigned long long>(state.lease.epoch),
              state.lease.holder.c_str(),
              state.lease.expiry_us == 0
                  ? " (no expiry)"
                  : (lease_expired ? " (EXPIRED — standby may take over)"
                                   : " (live)"));
  if (state.intent.has_value()) {
    const tablets::TabletIntent& in = *state.intent;
    std::string op = std::string(tablets::IntentPhaseName(in.phase));
    if (!in.split_key.empty()) {
      op += " at '" + in.split_key + "'";
    }
    if (!in.to.empty()) {
      op += " '" + in.from + "' -> '" + in.to + "'";
    }
    std::string range = "['" + in.range.begin + "', ";
    range += in.range.end.empty() ? "+inf)" : "'" + in.range.end + "')";
    std::printf(
        "IN FLIGHT: intent #%llu %s on %s — installs map "
        "v%llu / epoch %llu under coordinator epoch %llu, running %.1f ms\n",
        static_cast<unsigned long long>(in.intent_id), op.c_str(),
        range.c_str(), static_cast<unsigned long long>(in.next_version),
        static_cast<unsigned long long>(in.next_epoch),
        static_cast<unsigned long long>(in.coordinator_epoch),
        MicrosecondsToMilliseconds(now - in.started_us));
  } else {
    std::printf("no in-flight operation (last intent committed)\n");
  }
  if (state.tail_torn) {
    std::printf("note: torn tail record discarded (crash mid-append)\n");
  }
  if (state.map.version > 0) {
    PrintTabletMap(state.map, /*json=*/false);
  } else {
    std::printf("no committed map (coordinator never booted durably)\n");
  }
  return 0;
}

// "put us:  p50=... p95=... p99=..." — quantiles from the log-bucketed
// histogram, not just the mean, so tail latency is visible from the CLI.
void PrintLatencyLine(const char* label, const Histogram& histogram) {
  std::printf(
      "%s n=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld (us)\n", label,
      static_cast<unsigned long long>(histogram.count()), histogram.Mean(),
      static_cast<long long>(histogram.Quantile(0.50)),
      static_cast<long long>(histogram.Quantile(0.95)),
      static_cast<long long>(histogram.Quantile(0.99)),
      static_cast<long long>(histogram.max()));
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags;
  flags.DefineInt("port", 7000, "server port on 127.0.0.1");
  flags.DefineString("table", "default", "table name");
  flags.DefineString("after", "0",
                     "sync: dump versions after this physical timestamp (us)");
  flags.DefineString("format", "summary",
                     "stats: server export format (summary | prometheus | json)");
  flags.DefineInt("probes", 5, "stats: probes used for the local node view");
  flags.DefineInt("pipeline", 0,
                  "bench: ops kept in flight on the channel (0 = serial "
                  "synchronous loop; pipelined mode ignores --cache_bytes)");
  flags.DefineInt("cache_bytes", 0,
                  "bench: client-side cache capacity in bytes (0 = no cache); "
                  "cache telemetry is printed in --format afterwards");
  flags.DefineString("intent_log", "",
                     "tablets: read the durable coordinator state (committed "
                     "map, lease, in-flight intent) from this intent log "
                     "instead of a server — works after a coordinator crash");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  const auto& args = flags.positional();
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: pileus_cli [flags] put KEY VALUE | get KEY | del KEY | "
                 "range BEGIN [END] | probe | sync | stats | digest | "
                 "tablets [split KEY | handoff PORT NAME] | bench N\n");
    return 2;
  }
  net::TcpChannel channel(static_cast<uint16_t>(flags.GetInt("port")));
  const std::string table = flags.GetString("table");
  const std::string& command = args[0];

  if (command == "put" && args.size() == 3) {
    proto::PutRequest request;
    request.table = table;
    request.key = args[1];
    request.value = args[2];
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& put = std::get<proto::PutReply>(reply.value());
    std::printf("ok: timestamp=%s\n", put.timestamp.ToString().c_str());
    return 0;
  }

  if (command == "get" && args.size() == 2) {
    proto::GetRequest request;
    request.table = table;
    request.key = args[1];
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& get = std::get<proto::GetReply>(reply.value());
    if (!get.found) {
      std::printf("(not found)  node high=%s%s\n",
                  get.high_timestamp.ToString().c_str(),
                  get.served_by_primary ? " [primary]" : "");
      return 1;
    }
    std::printf("%s\n  version=%s  node high=%s%s\n", get.value.c_str(),
                get.value_timestamp.ToString().c_str(),
                get.high_timestamp.ToString().c_str(),
                get.served_by_primary ? " [primary]" : "");
    return 0;
  }

  if (command == "probe" && args.size() == 1) {
    proto::ProbeRequest request;
    request.table = table;
    const MicrosecondCount start = RealClock::Instance()->NowMicros();
    Result<proto::Message> reply = Call(channel, request);
    const MicrosecondCount rtt = RealClock::Instance()->NowMicros() - start;
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& probe = std::get<proto::ProbeReply>(reply.value());
    std::printf("high=%s  primary=%s  rtt=%.2f ms\n",
                probe.high_timestamp.ToString().c_str(),
                probe.is_primary ? "yes" : "no",
                MicrosecondsToMilliseconds(rtt));
    return 0;
  }

  if (command == "sync" && args.size() == 1) {
    proto::SyncRequest request;
    request.table = table;
    request.after =
        Timestamp{std::strtoll(flags.GetString("after").c_str(), nullptr, 10),
                  0};
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& sync = std::get<proto::SyncReply>(reply.value());
    for (const proto::ObjectVersion& v : sync.versions) {
      std::printf("%s  %s  (%zu bytes)\n", v.timestamp.ToString().c_str(),
                  v.key.c_str(), v.value.size());
    }
    std::printf("-- %zu versions, heartbeat=%s%s\n", sync.versions.size(),
                sync.heartbeat.ToString().c_str(),
                sync.has_more ? ", more pending" : "");
    return 0;
  }

  if (command == "del" && args.size() == 2) {
    proto::DeleteRequest request;
    request.table = table;
    request.key = args[1];
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& put = std::get<proto::PutReply>(reply.value());
    std::printf("deleted: tombstone timestamp=%s\n",
                put.timestamp.ToString().c_str());
    return 0;
  }

  if (command == "range" && (args.size() == 2 || args.size() == 3)) {
    proto::RangeRequest request;
    request.table = table;
    request.begin = args[1];
    request.end = args.size() == 3 ? args[2] : "";
    request.limit = 100;
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& range = std::get<proto::RangeReply>(reply.value());
    for (const proto::ObjectVersion& v : range.items) {
      std::printf("%-24s %s  (ts %s)\n", v.key.c_str(), v.value.c_str(),
                  v.timestamp.ToString().c_str());
    }
    std::printf("-- %zu items%s, node high=%s%s\n", range.items.size(),
                range.truncated ? " (truncated at 100)" : "",
                range.high_timestamp.ToString().c_str(),
                range.served_by_primary ? " [primary]" : "");
    return 0;
  }

  if (command == "stats" && args.size() == 1) {
    // Local view first: probe the node a few times and summarize what a
    // client-side monitor would conclude about it (latency quantiles,
    // staleness, breaker state).
    const std::string node_name =
        "127.0.0.1:" + std::to_string(flags.GetInt("port"));
    core::Monitor monitor(RealClock::Instance());
    const long long probes = flags.GetInt("probes");
    for (long long i = 0; i < probes; ++i) {
      proto::ProbeRequest request;
      request.table = table;
      const MicrosecondCount start = RealClock::Instance()->NowMicros();
      Result<proto::Message> reply = Call(channel, request);
      const MicrosecondCount rtt = RealClock::Instance()->NowMicros() - start;
      if (reply.ok()) {
        const auto& probe = std::get<proto::ProbeReply>(reply.value());
        monitor.RecordLatency(node_name, rtt);
        monitor.RecordHighTimestamp(node_name, probe.high_timestamp);
        monitor.RecordSuccess(node_name);
      } else {
        monitor.RecordFailure(node_name);
      }
    }
    const MicrosecondCount now = RealClock::Instance()->NowMicros();
    std::printf("node view (%lld probes):\n", probes);
    for (const core::Monitor::NodeSnapshot& s : monitor.Snapshot()) {
      std::printf(
          "  %-22s rtt p50=%lld us p95=%lld us p99=%lld us (n=%zu)\n"
          "  %-22s high=%s (staleness %.1f ms)  p_up=%.2f  breaker=%s\n",
          s.node.c_str(), static_cast<long long>(s.p50_latency_us),
          static_cast<long long>(s.p95_latency_us),
          static_cast<long long>(s.p99_latency_us), s.latency_samples, "",
          s.high_timestamp.ToString().c_str(),
          MicrosecondsToMilliseconds(now - s.high_timestamp.physical_us),
          s.p_up, std::string(core::BreakerStateName(s.breaker)).c_str());
    }
    // Then the server's own registry in the requested format.
    proto::StatsRequest request;
    request.format = flags.GetString("format");
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto& stats = std::get<proto::StatsReply>(reply.value());
    std::printf("server telemetry (%s):\n%s", request.format.c_str(),
                stats.text.c_str());
    return 0;
  }

  if (command == "digest" && args.size() == 1) {
    // Fetch the shared-monitoring fleet digest from an aggregator endpoint
    // (pileus_server --aggregator, or pileus_aggregator) and pretty-print
    // the per-node conditions. --format json emits machine-readable output.
    proto::DigestSubscribe request;
    request.table = table;
    request.have_version = 0;  // Always want the current digest.
    Result<proto::Message> reply = Call(channel, request);
    if (!reply.ok()) {
      return Fail(reply.status());
    }
    const auto* push = std::get_if<proto::DigestPush>(&reply.value());
    if (push == nullptr) {
      return Fail(Status(StatusCode::kInternal,
                         "unexpected reply type for digest"));
    }
    if (!push->has_digest) {
      std::printf("(no digest yet: aggregator has ingested no reports)\n");
      return 0;
    }
    const monitoring::ConditionDigest& digest = push->digest;
    if (flags.GetString("format") == "json") {
      std::printf("{\"version\": %llu, \"reports_merged\": %llu, \"nodes\": [",
                  static_cast<unsigned long long>(digest.version),
                  static_cast<unsigned long long>(digest.reports_merged));
      for (size_t i = 0; i < digest.nodes.size(); ++i) {
        const monitoring::NodeCondition& c = digest.nodes[i];
        std::printf(
            "%s{\"node\": \"%s\", \"samples\": %llu, \"p50_us\": %lld, "
            "\"p95_us\": %lld, \"p99_us\": %lld, \"high_age_us\": %lld, "
            "\"p_up\": %.3f, \"queue_delay_us\": %lld, \"overloaded\": %s}",
            i == 0 ? "" : ", ", c.node.c_str(),
            static_cast<unsigned long long>(c.sample_count),
            static_cast<long long>(c.p50_latency_us),
            static_cast<long long>(c.p95_latency_us),
            static_cast<long long>(c.p99_latency_us),
            static_cast<long long>(c.high_age_us), c.p_up,
            static_cast<long long>(c.queue_delay_us),
            c.overloaded ? "true" : "false");
      }
      std::printf("]}\n");
      return 0;
    }
    std::printf("fleet digest v%llu (%llu reports merged, %zu nodes):\n",
                static_cast<unsigned long long>(digest.version),
                static_cast<unsigned long long>(digest.reports_merged),
                digest.nodes.size());
    for (const monitoring::NodeCondition& c : digest.nodes) {
      std::printf(
          "  %-22s rtt p50=%lld us p95=%lld us p99=%lld us (n=%llu)\n"
          "  %-22s high=%s (age %.1f ms)  p_up=%.2f  queue=%lld us%s\n",
          c.node.c_str(), static_cast<long long>(c.p50_latency_us),
          static_cast<long long>(c.p95_latency_us),
          static_cast<long long>(c.p99_latency_us),
          static_cast<unsigned long long>(c.sample_count), "",
          c.high_timestamp.ToString().c_str(),
          c.high_age_us >= 0 ? MicrosecondsToMilliseconds(c.high_age_us) : -1.0,
          c.p_up, static_cast<long long>(c.queue_delay_us),
          c.overloaded ? "  [overloaded]" : "");
    }
    return 0;
  }

  if (command == "tablets" && args.size() == 1 &&
      !flags.GetString("intent_log").empty()) {
    return ShowIntentLog(flags.GetString("intent_log"),
                         flags.GetString("format") == "json");
  }

  if (command == "tablets" && args.size() == 1) {
    Result<tablets::TabletMap> map = FetchTabletMap(channel, table);
    if (!map.ok()) {
      return Fail(map.status());
    }
    PrintTabletMap(map.value(), flags.GetString("format") == "json");
    return 0;
  }

  if (command == "tablets" && args.size() == 3 && args[1] == "split") {
    // Admin split: the server splits the hosted tablet containing KEY at KEY
    // (durable servers journal a WAL split record first) and answers with
    // the resulting map view.
    Result<tablets::TabletMap> map = FetchTabletMap(channel, table, args[2]);
    if (!map.ok()) {
      return Fail(map.status());
    }
    std::printf("split at '%s' ok\n", args[2].c_str());
    PrintTabletMap(map.value(), flags.GetString("format") == "json");
    return 0;
  }

  if (command == "tablets" && args.size() == 4 && args[1] == "handoff") {
    // CLI-coordinated live migration of the whole table's tablets from this
    // node (the --port source) to a second pileus_server that already
    // replicates from it (--role secondary --primary_port SOURCE):
    //
    //   1. Build the next map: version+1, every epoch+1, primary=TARGET.
    //   2. Install on the SOURCE first — it fences (kWrongTablet /
    //      kNotPrimary) immediately: the write-unavailability window opens.
    //   3. Poll the target until its replication pulls drain the remaining
    //      tail (high timestamp catches up to the source's fenced high).
    //   4. Install on the TARGET — it promotes: the window closes.
    const uint16_t target_port =
        static_cast<uint16_t>(std::strtol(args[2].c_str(), nullptr, 10));
    const std::string& target_name = args[3];
    net::TcpChannel target(target_port);

    Result<tablets::TabletMap> base = FetchTabletMap(channel, table);
    if (!base.ok()) {
      return Fail(base.status());
    }
    tablets::TabletMap next = base.value();
    next.version = next.version + 1;  // v0 view -> v1: first real map.
    for (tablets::TabletInfo& t : next.tablets) {
      t.config.epoch += 1;
      t.config.primary = target_name;
      if (!t.config.IsMember(target_name)) {
        t.config.members.push_back(target_name);
      }
    }
    if (Status valid = next.Validate(); !valid.ok()) {
      return Fail(valid);
    }

    proto::TabletMapRequest install;
    install.table = table;
    install.install = true;
    install.map = next;
    const MicrosecondCount fence_us = RealClock::Instance()->NowMicros();
    Result<proto::Message> fenced = Call(channel, install);
    if (!fenced.ok()) {
      return Fail(fenced.status());
    }
    if (!std::get<proto::TabletMapReply>(fenced.value()).accepted) {
      return Fail(Status(StatusCode::kInternal,
                         "source rejected the handoff map as stale"));
    }

    // Drain target: the source's high water mark measured AFTER the fence.
    // A live primary advertises a clock-fresh high that keeps advancing; the
    // fenced (demoted) source reports its frozen high — exactly the last
    // commit the target must replicate before it may take over.
    proto::ProbeRequest probe;
    probe.table = table;
    Result<proto::Message> source_probe = Call(channel, probe);
    if (!source_probe.ok()) {
      return Fail(source_probe.status());
    }
    const Timestamp drain_to =
        std::get<proto::ProbeReply>(source_probe.value()).high_timestamp;
    std::printf("source fenced at map v%llu (drain target %s)\n",
                static_cast<unsigned long long>(next.version),
                drain_to.ToString().c_str());

    // Drain: the target's periodic pulls (--pull_period_ms) bring it up to
    // the fenced high. 30 s is generous for any sane pull period.
    const MicrosecondCount deadline =
        RealClock::Instance()->NowMicros() + SecondsToMicroseconds(30);
    bool drained = false;
    while (RealClock::Instance()->NowMicros() < deadline) {
      Result<proto::Message> target_probe = Call(target, probe);
      if (target_probe.ok() &&
          std::get<proto::ProbeReply>(target_probe.value()).high_timestamp >=
              drain_to) {
        drained = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!drained) {
      return Fail(Status(
          StatusCode::kTimeout,
          "target never caught up to " + drain_to.ToString() +
              "; is it replicating from this node (--role secondary "
              "--primary_port)? The source stays fenced — reinstall the old "
              "map to roll back."));
    }

    Result<proto::Message> promoted = Call(target, install);
    if (!promoted.ok()) {
      return Fail(promoted.status());
    }
    if (!std::get<proto::TabletMapReply>(promoted.value()).accepted) {
      return Fail(Status(StatusCode::kInternal,
                         "target rejected the handoff map as stale"));
    }
    const MicrosecondCount window_us =
        RealClock::Instance()->NowMicros() - fence_us;
    std::printf(
        "handoff complete: '%s' now primary for %zu tablet%s at map v%llu "
        "(write-unavailability window %.1f ms)\n",
        target_name.c_str(), next.tablets.size(),
        next.tablets.size() == 1 ? "" : "s",
        static_cast<unsigned long long>(next.version),
        MicrosecondsToMilliseconds(window_us));
    return 0;
  }

  if (command == "bench" && args.size() == 2) {
    const long n = std::strtol(args[1].c_str(), nullptr, 10);
    if (const long depth = flags.GetInt("pipeline"); depth > 0) {
      // Pipelined closed loop: keep `depth` requests in flight; every
      // completion issues the next op from the event-loop thread. Ops
      // alternate Put/Get over the same rotating key set as the serial loop.
      struct BenchState {
        std::mutex mu;
        std::condition_variable cv;
        long next_op = 0;
        long completed = 0;
        bool failed = false;
        Status failure;
        Histogram put_latency, get_latency;
      };
      auto state = std::make_shared<BenchState>();
      const long total_ops = 2 * n;
      auto issue = std::make_shared<std::function<void()>>();
      *issue = [&channel, state, issue, total_ops, table]() {
        long op;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->failed || state->next_op >= total_ops) {
            return;
          }
          op = state->next_op++;
        }
        proto::Message request;
        const std::string key = "bench:" + std::to_string((op / 2) % 1000);
        if (op % 2 == 0) {
          proto::PutRequest put;
          put.table = table;
          put.key = key;
          put.value = "v" + std::to_string(op / 2);
          request = put;
        } else {
          proto::GetRequest get;
          get.table = table;
          get.key = key;
          request = get;
        }
        const MicrosecondCount start = RealClock::Instance()->NowMicros();
        channel.CallAsync(
            request, SecondsToMicroseconds(30),
            [state, issue, op, start](Result<proto::Message> reply) {
              {
                std::lock_guard<std::mutex> lock(state->mu);
                ++state->completed;
                if (reply.ok()) {
                  (op % 2 == 0 ? state->put_latency : state->get_latency)
                      .Record(RealClock::Instance()->NowMicros() - start);
                } else if (!state->failed) {
                  state->failed = true;
                  state->failure = reply.status();
                }
              }
              (*issue)();
              state->cv.notify_all();
            });
      };
      const MicrosecondCount bench_start = RealClock::Instance()->NowMicros();
      for (long i = 0; i < depth && i < total_ops; ++i) {
        (*issue)();
      }
      {
        std::unique_lock<std::mutex> lock(state->mu);
        // Done when every issued op completed AND no more will be issued
        // (all ops dispatched, or the first failure stopped the loop).
        state->cv.wait(lock, [&state, total_ops] {
          return state->completed == state->next_op &&
                 (state->failed || state->next_op >= total_ops);
        });
      }
      *issue = nullptr;  // Break the self-reference cycle.
      if (state->failed) {
        return Fail(state->failure);
      }
      const double elapsed_s =
          static_cast<double>(RealClock::Instance()->NowMicros() -
                              bench_start) /
          1e6;
      std::printf("pipelined depth %ld: %ld ops in %.3f s (%.0f ops/s)\n",
                  depth, total_ops, elapsed_s,
                  elapsed_s > 0 ? total_ops / elapsed_s : 0.0);
      PrintLatencyLine("put us:", state->put_latency);
      PrintLatencyLine("get us:", state->get_latency);
      return 0;
    }
    // Optional client-side cache: writes fill it through (the Put ack's
    // assigned timestamp bounds both the version and its validity), reads
    // check it first and skip the round trip on a hit. Its counters live in
    // a local registry rendered by the standard exporters below.
    telemetry::MetricsRegistry registry;
    std::unique_ptr<cache::ClientCache> client_cache;
    if (flags.GetInt("cache_bytes") > 0) {
      cache::ClientCache::Options cache_options;
      cache_options.capacity_bytes =
          static_cast<size_t>(flags.GetInt("cache_bytes"));
      cache_options.metrics = &registry;
      client_cache = std::make_unique<cache::ClientCache>(cache_options);
    }
    Histogram put_latency, get_latency;
    for (long i = 0; i < n; ++i) {
      proto::PutRequest put;
      put.table = table;
      put.key = "bench:" + std::to_string(i % 1000);
      put.value = "v" + std::to_string(i);
      MicrosecondCount start = RealClock::Instance()->NowMicros();
      Result<proto::Message> put_reply = Call(channel, put);
      if (!put_reply.ok()) {
        return Fail(put_reply.status());
      }
      put_latency.Record(RealClock::Instance()->NowMicros() - start);
      if (client_cache != nullptr) {
        const auto& acked = std::get<proto::PutReply>(put_reply.value());
        client_cache->Admit(table, put.key, put.value, acked.timestamp,
                            /*is_tombstone=*/false, acked.timestamp);
      }

      start = RealClock::Instance()->NowMicros();
      if (client_cache != nullptr &&
          client_cache->Lookup(table, put.key).has_value()) {
        get_latency.Record(RealClock::Instance()->NowMicros() - start);
        continue;
      }
      proto::GetRequest get;
      get.table = table;
      get.key = put.key;
      Result<proto::Message> get_reply = Call(channel, get);
      if (!get_reply.ok()) {
        return Fail(get_reply.status());
      }
      get_latency.Record(RealClock::Instance()->NowMicros() - start);
      if (client_cache != nullptr) {
        const auto& got = std::get<proto::GetReply>(get_reply.value());
        client_cache->Admit(table, get.key, got.found ? got.value : "",
                            got.value_timestamp, /*is_tombstone=*/!got.found,
                            got.high_timestamp);
      }
    }
    PrintLatencyLine("put us:", put_latency);
    PrintLatencyLine("get us:", get_latency);
    if (client_cache != nullptr) {
      std::printf("client cache telemetry (%s):\n%s",
                  flags.GetString("format").c_str(),
                  telemetry::ExportAs(registry, flags.GetString("format"))
                      .c_str());
    }
    return 0;
  }

  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
