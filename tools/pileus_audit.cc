// Consistency-audit sweep runner (DESIGN.md "Consistency auditing").
//
// Runs seeded random workloads against the simulated geo testbed under
// scripted fault scenarios, records every client-visible operation, and
// audits the history offline against the primary's commit order. Every run
// is reproducible from its printed seed:
//
//   pileus_audit                        # default sweep: 8 seeds x 3 scenarios
//   pileus_audit --seed 42              # one seed across the scenario list
//   pileus_audit --seed 42 --scenarios crash-restart   # one exact run
//   pileus_audit --transport tcp        # same audit over real sockets: the
//                                       # epoll transport, a durable primary
//                                       # with WAL group commit, replication
//                                       # pulls over TCP (wall-clock time, so
//                                       # runs are seeded but not bit-exact)
//
// Exits non-zero when any run reports a violation.

#include <stdlib.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/experiments/scenario.h"
#include "src/experiments/tablet_churn.h"
#include "src/experiments/tcp_scenario.h"
#include "tools/flags.h"

namespace pileus {
namespace {

using experiments::FaultScenario;
using experiments::RunAuditScenario;
using experiments::RunTabletChurnScenario;
using experiments::RunTcpAuditScenario;
using experiments::ScenarioOptions;
using experiments::ScenarioResult;
using experiments::TabletChurnOptions;
using experiments::TabletChurnResult;

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t comma = list.find(',', begin);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) {
      out.push_back(list.substr(begin, end - begin));
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

int Run(int argc, char** argv) {
  tools::FlagSet flags;
  flags.DefineInt("seed", 0, "run only this seed (0 = sweep 1..num_seeds)");
  flags.DefineInt("num_seeds", 8, "seeds per scenario when sweeping");
  flags.DefineString("scenarios", "",
                     "comma-separated: none, partition, drops, gray, "
                     "crash-restart, handoff, failover, overload, "
                     "tablet-churn (concurrent splits + live migrations, "
                     "swept under none/partition/crash-restart sub-faults), "
                     "tablet-churn-kill (same churn with a durable "
                     "coordinator killed at rotating protocol crash points "
                     "and recovered from its intent log) "
                     "(default: none,partition,crash-restart on sim; "
                     "none,crash-restart,handoff on tcp)");
  flags.DefineString("transport", "sim",
                     "sim = deterministic simulator testbed; tcp = real "
                     "sockets on loopback (epoll transport, durable primary "
                     "with WAL group commit, replication pulls over TCP)");
  flags.DefineInt("ops", 600, "client operations per run");
  flags.DefineInt("keys", 100, "distinct keys in the workload");
  flags.DefineString("durable_root", "",
                     "directory for per-run WALs (default: a fresh temp dir)");
  flags.DefineBool("cache", false,
                   "give each frontend a consistency-aware client cache so "
                   "the checker audits cache-served reads");
  flags.DefineInt("cache_bytes", 4 << 20,
                  "per-frontend cache capacity in bytes (with --cache)");
  flags.DefineBool("aggregator", false,
                   "run a shared-monitoring aggregator alongside the "
                   "workload and kill it mid-run; priors and the fallback "
                   "to self-probing are both audited");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  const std::string transport = flags.GetString("transport");
  if (transport != "sim" && transport != "tcp") {
    std::fprintf(stderr, "--transport must be 'sim' or 'tcp'\n");
    return 2;
  }
  const bool tcp = transport == "tcp";

  std::string scenario_list = flags.GetString("scenarios");
  if (scenario_list.empty()) {
    scenario_list =
        tcp ? "none,crash-restart,handoff" : "none,partition,crash-restart";
  }
  std::vector<FaultScenario> scenarios;
  bool churn = false;
  bool churn_kill = false;
  for (const std::string& name : SplitCommas(scenario_list)) {
    if (name == "tablet-churn" || name == "tablet-churn-kill") {
      if (tcp) {
        std::fprintf(stderr,
                     "%s runs on its own in-process world and is "
                     "not expressible over the tcp transport\n",
                     name.c_str());
        return 2;
      }
      (name == "tablet-churn" ? churn : churn_kill) = true;
      continue;
    }
    const auto scenario = experiments::ParseFaultScenario(name);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
      return 2;
    }
    if (tcp && !experiments::TcpScenarioSupports(*scenario)) {
      std::fprintf(stderr,
                   "scenario '%s' is not expressible over the tcp transport "
                   "(supported: none, crash-restart, handoff)\n",
                   name.c_str());
      return 2;
    }
    scenarios.push_back(*scenario);
  }
  if (scenarios.empty() && !churn && !churn_kill) {
    std::fprintf(stderr, "no scenarios selected\n");
    return 2;
  }

  std::vector<uint64_t> seeds;
  if (flags.GetInt("seed") != 0) {
    seeds.push_back(static_cast<uint64_t>(flags.GetInt("seed")));
  } else {
    for (int64_t s = 1; s <= flags.GetInt("num_seeds"); ++s) {
      seeds.push_back(static_cast<uint64_t>(s));
    }
  }

  std::string durable_root = flags.GetString("durable_root");
  if (durable_root.empty()) {
    char tmpl[] = "/tmp/pileus_audit.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 2;
    }
    durable_root = tmpl;
  }

  int failures = 0;
  uint64_t runs = 0;
  for (const FaultScenario scenario : scenarios) {
    for (const uint64_t seed : seeds) {
      ScenarioOptions options;
      options.seed = seed;
      options.scenario = scenario;
      options.total_ops = static_cast<uint64_t>(flags.GetInt("ops"));
      options.key_count = static_cast<int>(flags.GetInt("keys"));
      options.client_cache = flags.GetBool("cache");
      options.cache_capacity_bytes =
          static_cast<uint64_t>(flags.GetInt("cache_bytes"));
      options.enable_aggregator = flags.GetBool("aggregator");
      // One subdirectory per run: WALs append, so runs must not share files.
      options.durable_root =
          durable_root + "/" +
          std::string(experiments::FaultScenarioName(scenario)) + "_" +
          std::to_string(seed);
      const ScenarioResult result =
          tcp ? RunTcpAuditScenario(options) : RunAuditScenario(options);
      ++runs;
      std::printf("%s\n", result.Summary().c_str());
      if (!result.ok()) {
        ++failures;
        std::printf("%s\n", result.report.ToString().c_str());
        for (const auto& violation : result.report.violations) {
          if (violation.op_index < result.history.ops.size()) {
            std::printf(
                "    op #%zu: %s\n", violation.op_index,
                audit::DescribeOp(result.history.ops[violation.op_index])
                    .c_str());
          }
          if (violation.related_op_index < result.history.ops.size()) {
            std::printf(
                "    op #%zu: %s\n", violation.related_op_index,
                audit::DescribeOp(result.history.ops[violation.related_op_index])
                    .c_str());
          }
        }
      }
    }
  }
  if (churn || churn_kill) {
    // Dynamic-tablet churn: splits, live migrations, and rebalancer rounds
    // run concurrently with the workload, swept under each sub-fault. The
    // kill variant additionally runs the coordinator durably and kills it
    // at rotating protocol crash points mid-operation; a standby recovers
    // from the intent log (DESIGN.md Section 15).
    const FaultScenario sub_faults[] = {FaultScenario::kNone,
                                        FaultScenario::kPartition,
                                        FaultScenario::kCrashRestart};
    for (const bool kill : {false, true}) {
      if (kill ? !churn_kill : !churn) {
        continue;
      }
      const char* variant = kill ? "tablet-churn-kill" : "tablet-churn";
      for (const FaultScenario fault : sub_faults) {
        for (const uint64_t seed : seeds) {
          TabletChurnOptions options;
          options.seed = seed;
          options.scenario = fault;
          options.coordinator_kill = kill;
          options.total_ops = static_cast<uint64_t>(flags.GetInt("ops"));
          options.key_count = static_cast<int>(flags.GetInt("keys"));
          options.client_cache = flags.GetBool("cache");
          options.cache_capacity_bytes =
              static_cast<uint64_t>(flags.GetInt("cache_bytes"));
          options.durable_root =
              durable_root + "/" + variant + "_" +
              std::string(experiments::FaultScenarioName(fault)) + "_" +
              std::to_string(seed);
          const TabletChurnResult result = RunTabletChurnScenario(options);
          ++runs;
          std::printf("%s\n", result.Summary().c_str());
          if (!result.ok()) {
            ++failures;
            std::printf("%s\n", result.report.ToString().c_str());
            for (const auto& detail : result.lost_write_details) {
              std::printf("    %s\n", detail.c_str());
            }
            for (const auto& violation : result.report.violations) {
              if (violation.op_index < result.history.ops.size()) {
                std::printf(
                    "    op #%zu: %s\n", violation.op_index,
                    audit::DescribeOp(result.history.ops[violation.op_index])
                        .c_str());
              }
            }
          }
        }
      }
    }
  }
  std::printf("%llu runs, %d with violations\n",
              static_cast<unsigned long long>(runs), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pileus

int main(int argc, char** argv) { return pileus::Run(argc, argv); }
