// pileus_aggregator: a standalone shared-monitoring aggregator daemon
// (DESIGN.md Section 12).
//
// Listens for MonitorReport / DigestSubscribe messages and answers each with
// a DigestPush carrying the merged fleet view. Optionally probes a set of
// storage nodes itself so the digest has content before any client reports:
//
//   pileus_aggregator --port 7100 --probe_ports 7000,7001 --probe_table t
//
// Stops cleanly on SIGINT/SIGTERM.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/core/monitor.h"
#include "src/monitoring/aggregator.h"
#include "src/monitoring/service.h"
#include "src/net/tcp.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "tools/flags.h"

using namespace pileus;  // NOLINT

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*signum*/) { g_stop.store(true); }

std::vector<uint16_t> ParsePorts(const std::string& list) {
  std::vector<uint16_t> ports;
  size_t start = 0;
  while (start < list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    const std::string token = list.substr(start, comma - start);
    if (!token.empty()) {
      ports.push_back(static_cast<uint16_t>(std::stoul(token)));
    }
    start = comma + 1;
  }
  return ports;
}

// One probe round trip against a storage node, recorded into the
// aggregator's own monitor like a client prober would.
void ProbeOnce(net::Channel& channel, std::string_view node,
               const std::string& table, core::Monitor& monitor) {
  proto::ProbeRequest request;
  request.table = table;
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(5));
  const MicrosecondCount rtt = RealClock::Instance()->NowMicros() - start;
  if (!reply.ok()) {
    monitor.RecordFailure(node);
    return;
  }
  const auto* probe = std::get_if<proto::ProbeReply>(&reply.value());
  if (probe == nullptr) {
    monitor.RecordFailure(node);
    return;
  }
  monitor.RecordSuccess(node);
  monitor.RecordLatency(node, rtt);
  monitor.RecordHighTimestamp(node, probe->high_timestamp);
  if (probe->queue_delay_us > 0) {
    monitor.RecordQueueDelay(node, probe->queue_delay_us);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags;
  flags.DefineInt("port", 0, "TCP port to listen on (0 = ephemeral)");
  flags.DefineString("probe_ports", "",
                     "comma-separated storage-node ports this aggregator "
                     "probes itself (empty = rely on client reports)");
  flags.DefineString("probe_table", "default", "table to probe");
  flags.DefineInt("probe_period_ms", 2000, "probe round period");
  flags.DefineInt("stats_period_s", 0,
                  "print a telemetry summary every N seconds (0 = off)");
  flags.DefineBool("verbose", false, "log at INFO level");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (flags.GetBool("verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  monitoring::MonitorAggregator aggregator(RealClock::Instance());
  monitoring::AggregatorService service(&aggregator,
                                        &telemetry::MetricsRegistry::Default());

  net::TcpServer server;
  // A pure monitoring endpoint: non-monitoring messages get an ErrorReply.
  if (Status st = server.Start(static_cast<uint16_t>(flags.GetInt("port")),
                               service.Wrap(nullptr));
      !st.ok()) {
    std::fprintf(stderr, "failed to listen: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("aggregator on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  // Optional self-probing: the aggregator measures the fleet itself, so the
  // digest is warm before the first client report arrives.
  const std::vector<uint16_t> probe_ports =
      ParsePorts(flags.GetString("probe_ports"));
  std::vector<std::unique_ptr<net::TcpChannel>> channels;
  std::vector<std::string> node_names;
  channels.reserve(probe_ports.size());
  for (uint16_t port : probe_ports) {
    channels.push_back(std::make_unique<net::TcpChannel>(port));
    node_names.push_back("127.0.0.1:" + std::to_string(port));
  }
  core::Monitor probe_monitor(RealClock::Instance());
  const std::string probe_table = flags.GetString("probe_table");
  const MicrosecondCount probe_period_us =
      MillisecondsToMicroseconds(flags.GetInt("probe_period_ms"));
  MicrosecondCount next_probe_us = 0;

  const long long stats_period_s = flags.GetInt("stats_period_s");
  MicrosecondCount next_stats_us =
      stats_period_s > 0
          ? RealClock::Instance()->NowMicros() +
                SecondsToMicroseconds(stats_period_s)
          : 0;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!channels.empty() &&
        RealClock::Instance()->NowMicros() >= next_probe_us) {
      next_probe_us = RealClock::Instance()->NowMicros() + probe_period_us;
      for (size_t i = 0; i < channels.size(); ++i) {
        ProbeOnce(*channels[i], node_names[i], probe_table, probe_monitor);
      }
      aggregator.Ingest("aggregator-probe", probe_monitor.state_version(),
                        probe_monitor.BuildReportConditions());
    }
    if (stats_period_s > 0 &&
        RealClock::Instance()->NowMicros() >= next_stats_us) {
      next_stats_us += SecondsToMicroseconds(stats_period_s);
      std::printf(
          "--- telemetry ---\n%s",
          telemetry::ExportSummary(telemetry::MetricsRegistry::Default())
              .c_str());
      std::fflush(stdout);
    }
  }
  std::printf("shutting down (digest v%llu, %llu reports)\n",
              static_cast<unsigned long long>(aggregator.digest_version()),
              static_cast<unsigned long long>(aggregator.reports_ingested()));
  server.Stop();
  return 0;
}
