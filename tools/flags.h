// Minimal command-line flag parsing for the Pileus tools.
//
// Supports --name=value, --name value, and bare --name for booleans, plus
// positional arguments. Header-only; no global state.

#ifndef PILEUS_TOOLS_FLAGS_H_
#define PILEUS_TOOLS_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pileus::tools {

class FlagSet {
 public:
  // Registration: defaults define the flag's type for help text.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help) {
    flags_[name] = Flag{default_value, help, false};
  }
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help) {
    flags_[name] = Flag{std::to_string(default_value), help, false};
  }
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help) {
    flags_[name] = Flag{default_value ? "true" : "false", help, true};
  }

  // Parses argv; returns false (after printing an error/usage) on problems
  // or --help.
  bool Parse(int argc, char** argv) {
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        PrintUsage();
        return false;
      }
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      if (const size_t eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
        PrintUsage();
        return false;
      }
      if (!has_value) {
        if (it->second.is_bool) {
          value = "true";
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
          return false;
        }
      }
      it->second.value = std::move(value);
    }
    return true;
  }

  std::string GetString(const std::string& name) const {
    return flags_.at(name).value;
  }
  int64_t GetInt(const std::string& name) const {
    return std::strtoll(flags_.at(name).value.c_str(), nullptr, 10);
  }
  bool GetBool(const std::string& name) const {
    const std::string& v = flags_.at(name).value;
    return v == "true" || v == "1" || v == "yes";
  }
  const std::vector<std::string>& positional() const { return positional_; }

  void PrintUsage() const {
    std::fprintf(stderr, "usage: %s [flags] [args]\n", program_.c_str());
    for (const auto& [name, flag] : flags_) {
      std::fprintf(stderr, "  --%-20s %s (default: %s)\n", name.c_str(),
                   flag.help.c_str(), flag.value.c_str());
    }
  }

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool is_bool = false;
  };

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pileus::tools

#endif  // PILEUS_TOOLS_FLAGS_H_
