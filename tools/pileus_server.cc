// pileus_server: a storage-node daemon.
//
// Hosts one table over TCP (loopback), optionally durable (WAL +
// checkpoints), as either the primary or a secondary that pulls from a
// primary on the same host.
//
//   # primary with durability
//   pileus_server --port 7000 --role primary --data_dir /var/lib/pileus/p0
//
//   # secondary replicating from it every 10 s
//   pileus_server --port 7001 --role secondary --primary_port 7000
//                 --pull_period_ms 10000 --data_dir /var/lib/pileus/s0
//
// Stops cleanly on SIGINT/SIGTERM.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/monitoring/aggregator.h"
#include "src/monitoring/service.h"
#include "src/net/tcp.h"
#include "src/persist/durable_service.h"
#include "src/persist/durable_tablet.h"
#include "src/replication/replication_agent.h"
#include "src/storage/storage_node.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "tools/flags.h"

using namespace pileus;  // NOLINT

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*signum*/) { g_stop.store(true); }

Result<proto::SyncReply> SyncOverChannel(net::Channel& channel,
                                         const proto::SyncRequest& request) {
  Result<proto::Message> reply =
      channel.Call(request, SecondsToMicroseconds(30));
  if (!reply.ok()) {
    return reply.status();
  }
  if (const auto* err = std::get_if<proto::ErrorReply>(&reply.value())) {
    return Status(err->code, err->message);
  }
  if (auto* sync = std::get_if<proto::SyncReply>(&reply.value())) {
    return std::move(*sync);
  }
  return Status(StatusCode::kInternal, "unexpected reply type for sync");
}

}  // namespace

int main(int argc, char** argv) {
  tools::FlagSet flags;
  flags.DefineInt("port", 0, "TCP port to listen on (0 = ephemeral)");
  flags.DefineString("table", "default", "table this node hosts");
  flags.DefineString("role", "primary", "primary | secondary");
  flags.DefineString("name", "node", "node name (for logs)");
  flags.DefineInt("primary_port", 0,
                  "port of the primary to replicate from (secondaries)");
  flags.DefineInt("pull_period_ms", 60000, "replication pull period");
  flags.DefineString("data_dir", "",
                     "directory for WAL + checkpoints (empty = in-memory)");
  flags.DefineBool("fsync_every_write", false,
                   "fdatasync the WAL after every write");
  flags.DefineBool("group_commit", false,
                   "batch WAL fsyncs: mutation acks wait for a shared "
                   "fdatasync (durable nodes; implies crash safety for every "
                   "acked write at a fraction of the fsync count)");
  flags.DefineInt("group_commit_batch", 64,
                  "max acks per group-commit fsync (with --group_commit)");
  flags.DefineInt("group_commit_delay_us", 2000,
                  "max time a mutation ack waits for its batch fsync");
  flags.DefineInt("loop_threads", 2, "transport event-loop threads");
  flags.DefineInt("pull_batch", 0,
                  "max versions per replication pull reply (0 = unlimited); "
                  "large syncs stream in batches of this size");
  flags.DefineBool("verbose", false, "log at INFO level");
  flags.DefineInt("stats_period_s", 0,
                  "print a telemetry summary every N seconds (0 = off)");
  flags.DefineInt("admit_ops_per_sec", 0,
                  "per-tenant admission rate in ops/s (0 = admission off; "
                  "in-memory nodes only)");
  flags.DefineInt("admit_burst", 16,
                  "admission bucket burst in ops (with --admit_ops_per_sec)");
  flags.DefineInt("admit_queue", 32,
                  "admission max backlog in ops (with --admit_ops_per_sec)");
  flags.DefineBool("aggregator", false,
                   "embed a shared-monitoring aggregator: MonitorReport / "
                   "DigestSubscribe on this port (DESIGN.md Section 12)");
  flags.DefineInt("self_report_period_ms", 5000,
                  "aggregator self-report period (with --aggregator; "
                  "in-memory nodes only)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (flags.GetBool("verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }
  const std::string role = flags.GetString("role");
  if (role != "primary" && role != "secondary") {
    std::fprintf(stderr, "--role must be 'primary' or 'secondary'\n");
    return 2;
  }
  const bool is_primary = role == "primary";
  const std::string table = flags.GetString("table");

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  // --- Storage: durable or in-memory ---
  net::Handler handler;
  std::unique_ptr<persist::DurableTablet> durable;
  std::unique_ptr<persist::DurableStorageService> durable_service;
  std::unique_ptr<storage::StorageNode> node;
  storage::Tablet* tablet = nullptr;

  if (const std::string data_dir = flags.GetString("data_dir");
      !data_dir.empty()) {
    persist::DurableTablet::Options options;
    options.directory = data_dir;
    options.tablet.is_primary = is_primary;
    options.sync_every_append = flags.GetBool("fsync_every_write");
    Result<std::unique_ptr<persist::DurableTablet>> opened =
        persist::DurableTablet::Open(options, RealClock::Instance());
    if (!opened.ok()) {
      std::fprintf(stderr, "failed to open data dir: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(opened).value();
    const auto& recovery = durable->recovery_info();
    std::printf("recovered: %llu checkpoint + %llu WAL versions%s\n",
                static_cast<unsigned long long>(recovery.checkpoint_versions),
                static_cast<unsigned long long>(recovery.wal_versions),
                recovery.wal_tail_torn ? " (torn WAL tail discarded)" : "");
    tablet = &durable->tablet();
    persist::GroupCommitConfig group_commit;
    group_commit.enabled = flags.GetBool("group_commit");
    group_commit.max_batch =
        static_cast<size_t>(flags.GetInt("group_commit_batch"));
    group_commit.max_delay_us = flags.GetInt("group_commit_delay_us");
    durable_service = std::make_unique<persist::DurableStorageService>(
        table, durable.get(), group_commit);
    // Dynamic tablets (DESIGN.md Section 14): serve the tablet-map view and
    // CLI splits, re-opening any children recorded by earlier splits.
    if (Status dynamic = durable_service->EnableDynamicTablets(
            options, RealClock::Instance());
        !dynamic.ok()) {
      std::fprintf(stderr, "dynamic tablets: %s\n",
                   dynamic.ToString().c_str());
      return 1;
    }
    if (const size_t hosted = durable_service->tablet_count(); hosted > 1) {
      std::printf("hosting %zu tablets (recovered split children)\n", hosted);
    }
    if (group_commit.enabled) {
      std::printf("group commit: batch %lld, delay %lld us\n",
                  static_cast<long long>(flags.GetInt("group_commit_batch")),
                  static_cast<long long>(
                      flags.GetInt("group_commit_delay_us")));
    }
    handler = [service = durable_service.get()](const proto::Message& m) {
      return service->Handle(m);
    };
  } else {
    node = std::make_unique<storage::StorageNode>(
        flags.GetString("name"), "local", RealClock::Instance());
    node->EnableTelemetry(&telemetry::MetricsRegistry::Default());
    storage::Tablet::Options options;
    options.is_primary = is_primary;
    if (Status st = node->AddTablet(table, options); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    tablet = node->FindTablet(table, "");
    if (flags.GetInt("admit_ops_per_sec") > 0) {
      // Overload control (DESIGN.md Section 11): per-tenant token buckets
      // with utility-weighted shedding. The shed/queue-delay counters show
      // up in `pileus_cli stats` via the telemetry registry.
      storage::AdmissionOptions admission;
      admission.tenant_ops_per_sec =
          static_cast<double>(flags.GetInt("admit_ops_per_sec"));
      admission.tenant_burst_ops =
          static_cast<double>(flags.GetInt("admit_burst"));
      admission.tenant_max_queue_ops =
          static_cast<double>(flags.GetInt("admit_queue"));
      node->EnableAdmission(admission);
      std::printf("admission: %lld ops/s per tenant (burst %lld, queue %lld)\n",
                  static_cast<long long>(flags.GetInt("admit_ops_per_sec")),
                  static_cast<long long>(flags.GetInt("admit_burst")),
                  static_cast<long long>(flags.GetInt("admit_queue")));
    }
    handler = [raw = node.get()](const proto::Message& m) {
      return raw->Handle(m);
    };
  }
  if (durable && flags.GetInt("admit_ops_per_sec") > 0) {
    std::fprintf(stderr,
                 "warning: --admit_ops_per_sec is ignored with --data_dir "
                 "(admission runs on in-memory nodes only)\n");
  }

  // Scrape endpoint: a StatsRequest on the regular port answers with this
  // process's metrics registry rendered in the requested format, so
  // `pileus_cli stats` (or any codec-speaking scraper) works against both the
  // durable and in-memory paths without a second listener.
  handler = [inner = std::move(handler)](const proto::Message& m) {
    if (const auto* stats = std::get_if<proto::StatsRequest>(&m)) {
      proto::StatsReply reply;
      reply.text =
          telemetry::ExportAs(telemetry::MetricsRegistry::Default(),
                              stats->format);
      return proto::Message(std::move(reply));
    }
    return inner(m);
  };

  // Embedded shared-monitoring aggregator (DESIGN.md Section 12): monitoring
  // messages on the regular port are routed to the aggregator; everything
  // else falls through to the storage handler.
  std::unique_ptr<monitoring::MonitorAggregator> aggregator;
  std::unique_ptr<monitoring::AggregatorService> aggregator_service;
  if (flags.GetBool("aggregator")) {
    aggregator = std::make_unique<monitoring::MonitorAggregator>(
        RealClock::Instance());
    aggregator_service = std::make_unique<monitoring::AggregatorService>(
        aggregator.get(), &telemetry::MetricsRegistry::Default());
    handler = aggregator_service->Wrap(std::move(handler));
    std::printf("aggregator: enabled (MonitorReport / DigestSubscribe)\n");
  }

  // --- Transport ---
  net::TcpServer server;
  net::TcpServer::Options server_options;
  server_options.loop_threads =
      static_cast<int>(flags.GetInt("loop_threads"));
  Status listen_status;
  if (durable_service != nullptr) {
    // Durable storage goes through the async path so a group-commit ack can
    // be deferred until its batch fsync without parking a loop thread;
    // stats/monitoring messages stay on the synchronous wrapper chain.
    auto* service = durable_service.get();
    net::AsyncHandler async_handler =
        [service, sync = handler](const proto::Message& m,
                                  std::function<void(proto::Message)> done) {
          if (std::holds_alternative<proto::StatsRequest>(m) ||
              std::holds_alternative<proto::MonitorReport>(m) ||
              std::holds_alternative<proto::DigestSubscribe>(m)) {
            done(sync(m));
            return;
          }
          service->HandleAsync(m, std::move(done));
        };
    listen_status =
        server.StartAsync(static_cast<uint16_t>(flags.GetInt("port")),
                          std::move(async_handler), server_options);
  } else {
    listen_status = server.Start(
        static_cast<uint16_t>(flags.GetInt("port")), handler, server_options);
  }
  if (!listen_status.ok()) {
    std::fprintf(stderr, "failed to listen: %s\n",
                 listen_status.ToString().c_str());
    return 1;
  }
  std::printf("%s '%s' serving table '%s' on 127.0.0.1:%u (%s)\n",
              role.c_str(), flags.GetString("name").c_str(), table.c_str(),
              server.port(), durable ? "durable" : "in-memory");
  std::fflush(stdout);

  // --- Replication (secondaries) ---
  std::unique_ptr<replication::ReplicationAgent> agent;
  std::unique_ptr<replication::ThreadedPuller> puller;
  std::unique_ptr<net::TcpChannel> sync_channel;
  if (!is_primary && flags.GetInt("primary_port") > 0) {
    replication::ReplicationAgent::Options agent_options{.table = table};
    agent_options.max_versions_per_pull =
        static_cast<uint32_t>(flags.GetInt("pull_batch"));
    agent = std::make_unique<replication::ReplicationAgent>(tablet,
                                                            agent_options);
    agent->EnableTelemetry(&telemetry::MetricsRegistry::Default(),
                           flags.GetString("name"));
    sync_channel = std::make_unique<net::TcpChannel>(
        static_cast<uint16_t>(flags.GetInt("primary_port")));
    auto* channel = sync_channel.get();
    auto* durable_ptr = durable.get();
    auto* service_ptr = durable_service.get();
    auto* tablet_ptr = tablet;
    puller = std::make_unique<replication::ThreadedPuller>(
        agent.get(),
        [channel, durable_ptr, service_ptr,
         tablet_ptr](const proto::SyncRequest& request)
            -> Result<proto::SyncReply> {
          Result<proto::SyncReply> reply = SyncOverChannel(*channel, request);
          // The agent applies the reply to the in-memory tablet; journal it
          // too when durable. To keep a single apply path, journal here and
          // return an empty reply to the agent when durable.
          if (reply.ok() && durable_ptr != nullptr) {
            Status st = durable_ptr->ApplySync(reply.value());
            if (!st.ok()) {
              return st;
            }
            // One durability barrier covers the whole applied batch (a
            // shared group-commit fsync when enabled, inline otherwise).
            if (!reply->versions.empty() && service_ptr != nullptr) {
              st = service_ptr->SyncNow();
              if (!st.ok()) {
                return st;
              }
            }
            proto::SyncReply applied;
            applied.heartbeat = tablet_ptr->high_timestamp();
            applied.has_more = reply->has_more;
            return applied;
          }
          return reply;
        },
        MillisecondsToMicroseconds(flags.GetInt("pull_period_ms")));
    std::printf("replicating from 127.0.0.1:%lld every %lld ms\n",
                static_cast<long long>(flags.GetInt("primary_port")),
                static_cast<long long>(flags.GetInt("pull_period_ms")));
    std::fflush(stdout);
  }

  const long long stats_period_s = flags.GetInt("stats_period_s");
  MicrosecondCount next_stats_us =
      stats_period_s > 0
          ? RealClock::Instance()->NowMicros() +
                SecondsToMicroseconds(stats_period_s)
          : 0;
  // Periodic self-report into the embedded aggregator: the node's own high
  // timestamp and queue delay join the fleet digest even before any client
  // reports. The in-memory path asks the StorageNode (which also knows its
  // admission queue delay); the durable path reads the tablet directly.
  const MicrosecondCount self_report_period_us = MillisecondsToMicroseconds(
      flags.GetInt("self_report_period_ms"));
  MicrosecondCount next_self_report_us = 0;
  uint64_t self_report_seq = 0;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (aggregator && tablet && self_report_period_us > 0 &&
        RealClock::Instance()->NowMicros() >= next_self_report_us) {
      next_self_report_us =
          RealClock::Instance()->NowMicros() + self_report_period_us;
      monitoring::NodeCondition cond;
      if (node) {
        cond = node->SelfCondition(table);
      } else {
        cond.node = flags.GetString("name");
        cond.high_timestamp = tablet->high_timestamp();
        cond.high_age_us = 0;  // Measured this instant.
      }
      aggregator->Ingest("self:" + flags.GetString("name"), ++self_report_seq,
                         {std::move(cond)});
    }
    if (stats_period_s > 0 &&
        RealClock::Instance()->NowMicros() >= next_stats_us) {
      next_stats_us += SecondsToMicroseconds(stats_period_s);
      std::printf(
          "--- telemetry ---\n%s",
          telemetry::ExportSummary(telemetry::MetricsRegistry::Default())
              .c_str());
      std::fflush(stdout);
    }
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(
                  durable_service ? durable_service->requests_served()
                                  : node->requests_served()));
  if (puller) {
    puller->Stop();
  }
  server.Stop();
  if (durable) {
    (void)durable->Checkpoint();
  }
  return 0;
}
