// Ablation: tie-break policy when several nodes offer the same expected
// utility.
//
// Paper Section 4.6.1: "If multiple nodes offer the same expected utility,
// the client chooses the one that is closest. Alternatively, the client
// could choose one at random to balance the load or pick the one that is
// most up-to-date." We measure all three policies on an eventual-heavy SLA
// where ties are common (England client: the local primary, and both
// secondaries once they are probed, all satisfy <eventual, 1 s>):
//   - delivered utility and latency (closest should win latency),
//   - load spread across nodes (random should win balance),
//   - data freshness (freshest should win staleness).

#include <cstdio>
#include <map>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

struct Cell {
  double utility = 0.0;
  double mean_latency_ms = 0.0;
  // Fraction of Gets served by the most-loaded node (1.0 = no balancing).
  double max_node_share = 0.0;
};

Cell RunCell(core::TieBreak policy) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 73;
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.selection.tie_break = policy;
  client_options.seed = 12;
  auto client = testbed.MakeClient(kEngland, client_options);
  client->StartProbing();

  RunOptions run;
  // Eventual-only SLA with a latency target every node satisfies from
  // England's perspective at least sometimes: lots of ties.
  run.sla = core::Sla().Add(core::Guarantee::Eventual(),
                            SecondsToMicroseconds(1), 1.0);
  run.total_ops = 6000;
  run.warmup_ops = 1000;
  run.workload.seed = 73;
  const RunStats stats = RunYcsb(testbed, *client, run);

  Cell cell;
  cell.utility = stats.AvgUtility();
  cell.mean_latency_ms = stats.get_latency_us.Mean() / 1000.0;
  uint64_t max_count = 0;
  for (const auto& [key, count] : stats.target_node_counts) {
    max_count = std::max(max_count, count);
  }
  cell.max_node_share =
      stats.gets == 0 ? 0.0
                      : static_cast<double>(max_count) /
                            static_cast<double>(stats.gets);
  return cell;
}

const char* PolicyName(core::TieBreak policy) {
  switch (policy) {
    case core::TieBreak::kClosest:
      return "closest (paper default)";
    case core::TieBreak::kRandom:
      return "random (load balancing)";
    case core::TieBreak::kFreshest:
      return "freshest (most up-to-date)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("=== Ablation (Section 4.6.1): tie-break policy, "
              "<eventual, 1 s> SLA, England client ===\n\n");
  AsciiTable table({"Policy", "Avg utility", "Avg Get latency (ms)",
                    "Hottest node share"});
  for (const core::TieBreak policy :
       {core::TieBreak::kClosest, core::TieBreak::kRandom,
        core::TieBreak::kFreshest}) {
    const Cell cell = RunCell(policy);
    char lat[32];
    std::snprintf(lat, sizeof(lat), "%.1f", cell.mean_latency_ms);
    table.AddRow({PolicyName(policy), FormatUtility(cell.utility), lat,
                  FormatPercent(cell.max_node_share)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expectation: every policy meets the loose SLA (utility 1.0); "
              "closest minimizes latency by pinning the local node, random "
              "spreads load across all three at a WAN latency cost.\n");
  return 0;
}
