// Overload control: admission, utility-weighted shedding, graceful
// degradation (DESIGN.md Section 11).
//
// Every storage node runs per-tenant admission at a deliberately small
// capacity, and offered load ramps from half the aggregate capacity to 3x
// past it. The measured Pileus client runs closed-loop on top; the excess
// offered load is synthetic same-tenant traffic injected straight into the
// nodes' Handle path (other frontends of the same application hammering the
// same table), so the measured client's bucket genuinely saturates while
// its own arrival rate stays bounded.
//
// What the ramp should show:
//   - goodput (admitted ops/s across all nodes) grows with offered load
//     until capacity, then PLATEAUS instead of collapsing: shed requests
//     are rejected in O(1) with a retry_after hint rather than queued to
//     death, so admitted work keeps flowing at the bucket rate;
//   - the shed rate absorbs the overhang (offered - capacity);
//   - admitted operations keep a bounded p99: the virtual queue is capped,
//     so queue delay tops out at max_queue/rate instead of growing without
//     bound;
//   - the client degrades instead of erroring: lower subSLA ranks, retry
//     budget capping its own retry storm, jittered backoff honoring the
//     server's retry_after hints.
//
// Self-checks (the PR's acceptance criteria, enforced in CI's smoke run;
// the process exits non-zero when any fails):
//   1. goodput at >= 2x capacity stays within 20% of the peak goodput,
//   2. p99 latency of admitted (successful) client ops stays bounded,
//   3. zero acked writes are lost (every acked Put is in the primary's
//      committed history),
//   4. zero consistency violations: the full client history is audited
//      offline, so every degraded read's claimed (downgraded) guarantee is
//      verified like any other claim.
//
// PILEUS_BENCH_SMOKE=1 shrinks the per-step duration so CI can run the
// bench end to end; the self-checks hold in both modes.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/audit/checker.h"
#include "src/audit/history.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/proto/messages.h"
#include "src/storage/admission.h"
#include "src/storage/storage_node.h"
#include "src/workload/ycsb.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

// Per-node admitted-op rate. Small on purpose: overload must be reachable
// within seconds of virtual time.
constexpr double kNodeOpsPerSec = 50.0;
constexpr int kKeyCount = 200;

// The ramp, as multiples of aggregate capacity (3 storage nodes).
constexpr double kLoadMultipliers[] = {0.5, 1.0, 1.5, 2.0, 3.0};

MicrosecondCount StepDuration() {
  return SecondsToMicroseconds(SmokeMode() ? 8 : 30);
}

// Three ranks so utility-weighted shedding has a gradient to work with:
// strong reads are protected longest, the eventual tail sheds first.
core::Sla BenchSla() {
  return core::Sla()
      .Add(core::Guarantee::Strong(), MillisecondsToMicroseconds(250), 1.0)
      .Add(core::Guarantee::ReadMyWrites(), MillisecondsToMicroseconds(300),
           0.5)
      .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(2), 0.05);
}

struct StepStats {
  double offered_per_sec = 0;
  double admitted_per_sec = 0;  // Goodput: admitted ops across all nodes.
  double shed_per_sec = 0;
  uint64_t client_ops = 0;
  uint64_t client_ok = 0;
  uint64_t client_failed = 0;
  MicrosecondCount ok_p99_us = 0;  // p99 latency of successful client ops.
  double avg_utility = 0;          // Delivered utility of successful Gets.
};

uint64_t AdmittedTotal(GeoTestbed& testbed) {
  uint64_t total = 0;
  for (const char* site : {kUs, kEngland, kIndia}) {
    storage::StorageNode* node = testbed.node(site);
    if (node != nullptr && node->admission() != nullptr) {
      total += node->admission()->counters().admitted;
    }
  }
  return total;
}

uint64_t ShedTotal(GeoTestbed& testbed) {
  uint64_t total = 0;
  for (const char* site : {kUs, kEngland, kIndia}) {
    storage::StorageNode* node = testbed.node(site);
    if (node != nullptr && node->admission() != nullptr) {
      const storage::AdmissionController::Counters counters =
          node->admission()->counters();
      total += counters.shed_total() + counters.deadline_rejected;
    }
  }
  return total;
}

MicrosecondCount Percentile99(std::vector<MicrosecondCount>* latencies) {
  if (latencies->empty()) {
    return 0;
  }
  std::sort(latencies->begin(), latencies->end());
  const size_t index =
      std::min(latencies->size() - 1,
               static_cast<size_t>(0.99 * static_cast<double>(
                                              latencies->size())));
  return (*latencies)[index];
}

std::string FormatRate(double per_sec) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f/s", per_sec);
  return buffer;
}

}  // namespace

int main() {
  std::printf("=== Overload control: admission, shedding, degradation "
              "(DESIGN.md Section 11) ===\n\n");

  GeoTestbedOptions testbed_options;
  testbed_options.seed = 81;
  testbed_options.replication_period_us = SecondsToMicroseconds(10);
  storage::AdmissionOptions admission;
  admission.tenant_ops_per_sec = kNodeOpsPerSec;
  admission.tenant_burst_ops = 16;
  admission.tenant_max_queue_ops = 32;
  testbed_options.admission = admission;
  GeoTestbed testbed(testbed_options);
  testbed.StartReplication();

  audit::HistoryRecorder recorder;
  core::PileusClient::Options client_options;
  client_options.seed = 81;
  client_options.op_observer = &recorder;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  // Backoff waits happen in virtual time, so retry_after hints are honored
  // for real instead of being skipped.
  auto* testbed_ptr = &testbed;
  client_options.sleep_fn = [testbed_ptr](MicrosecondCount us) {
    testbed_ptr->env().RunFor(us);
  };
  auto client = testbed.MakeClient(kUs, client_options);
  client->StartProbing();

  const core::Sla sla = BenchSla();
  // Preload through the client so the audited ground truth contains the
  // initial values (admission is live but the preload's closed-loop arrival
  // rate sits well under one bucket's capacity).
  std::vector<std::pair<std::string, Timestamp>> acked_writes;
  {
    Result<core::Session> preload = client->client().BeginSession(sla);
    if (!preload.ok()) {
      std::fprintf(stderr, "FAIL: preload session: %s\n",
                   preload.status().ToString().c_str());
      return 1;
    }
    const std::string value(100, 'o');
    for (int i = 0; i < kKeyCount; ++i) {
      Result<core::PutResult> put = client->client().Put(
          *preload, workload::YcsbWorkload::KeyForIndex(i), value);
      if (put.ok()) {
        acked_writes.emplace_back(workload::YcsbWorkload::KeyForIndex(i),
                                  put->timestamp);
      }
    }
  }
  // Warm-up: replication rounds + probes so monitors hold real estimates.
  testbed.env().RunFor(2 * testbed_options.replication_period_us +
                       SecondsToMicroseconds(1));

  const double aggregate_capacity = 3 * kNodeOpsPerSec;
  const std::array<const char*, 3> storage_sites = {kUs, kEngland, kIndia};
  workload::WorkloadOptions workload_options;
  workload_options.key_count = kKeyCount;
  workload_options.seed = 81;
  workload::YcsbWorkload workload(workload_options);
  // The measured client's closed-loop pacing: ~25 ops/s offered when the
  // system is healthy; the synthetic background supplies the rest.
  const MicrosecondCount think_us = MillisecondsToMicroseconds(40);
  const double client_offered_per_sec =
      1e6 / static_cast<double>(think_us);

  std::optional<core::Session> session;
  std::vector<StepStats> steps;
  uint64_t background_key = 0;

  for (const double multiplier : kLoadMultipliers) {
    const double offered = multiplier * aggregate_capacity;
    const double background_per_node =
        std::max(0.0, (offered - client_offered_per_sec) / 3.0);

    const uint64_t admitted_before = AdmittedTotal(testbed);
    const uint64_t shed_before = ShedTotal(testbed);
    StepStats stats;
    stats.offered_per_sec = offered;
    std::vector<MicrosecondCount> ok_latencies;
    double utility_sum = 0;
    uint64_t utility_count = 0;

    const MicrosecondCount step_start = testbed.env().NowMicros();
    const MicrosecondCount step_end = step_start + StepDuration();
    MicrosecondCount last_background = step_start;
    double background_debt = 0;
    while (testbed.env().NowMicros() < step_end) {
      // Open-loop background arrivals: same tenant bucket (the table's
      // default), low utility, straight into each node's Handle path.
      const MicrosecondCount now = testbed.env().NowMicros();
      background_debt += background_per_node *
                         static_cast<double>(now - last_background) / 1e6;
      last_background = now;
      const int arrivals = static_cast<int>(background_debt);
      background_debt -= arrivals;
      for (int i = 0; i < arrivals; ++i) {
        proto::GetRequest background;
        background.table = kTableName;
        background.key = workload::YcsbWorkload::KeyForIndex(
            static_cast<int>(background_key++ % kKeyCount));
        background.utility_micros = 100'000;  // Utility 0.1: sheds first.
        for (const char* site : storage_sites) {
          (void)testbed.node(site)->Handle(proto::Message(background));
        }
      }

      const workload::Operation op = workload.Next();
      if (op.starts_new_session || !session.has_value()) {
        Result<core::Session> begun = client->client().BeginSession(sla);
        if (!begun.ok()) {
          continue;
        }
        session.emplace(std::move(begun).value());
      }
      ++stats.client_ops;
      const MicrosecondCount op_start = testbed.env().NowMicros();
      bool ok = false;
      if (op.is_get) {
        Result<core::GetResult> result =
            client->client().Get(*session, op.key);
        ok = result.ok();
        if (ok) {
          utility_sum += result->outcome.utility;
          ++utility_count;
        }
      } else {
        Result<core::PutResult> put =
            client->client().Put(*session, op.key, op.value);
        ok = put.ok();
        if (ok) {
          acked_writes.emplace_back(op.key, put->timestamp);
        }
      }
      if (ok) {
        ++stats.client_ok;
        ok_latencies.push_back(testbed.env().NowMicros() - op_start);
      } else {
        ++stats.client_failed;
      }
      testbed.env().RunFor(think_us);
    }

    const double step_seconds =
        static_cast<double>(testbed.env().NowMicros() - step_start) / 1e6;
    stats.admitted_per_sec =
        static_cast<double>(AdmittedTotal(testbed) - admitted_before) /
        step_seconds;
    stats.shed_per_sec =
        static_cast<double>(ShedTotal(testbed) - shed_before) / step_seconds;
    stats.ok_p99_us = Percentile99(&ok_latencies);
    stats.avg_utility =
        utility_count == 0 ? 0 : utility_sum / static_cast<double>(utility_count);
    steps.push_back(stats);
  }
  client->StopProbing();

  AsciiTable table({"Offered", "Goodput (admitted)", "Shed", "Client ops",
                    "Client ok", "Client p99", "Avg utility"});
  for (const StepStats& s : steps) {
    table.AddRow({FormatRate(s.offered_per_sec),
                  FormatRate(s.admitted_per_sec), FormatRate(s.shed_per_sec),
                  std::to_string(s.client_ops), std::to_string(s.client_ok),
                  FormatMs(s.ok_p99_us), FormatUtility(s.avg_utility)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expectation: goodput tracks offered load below capacity (%.0f/s\n"
      "aggregate), then plateaus while the shed column absorbs the\n"
      "overhang. Admitted ops keep a bounded p99 (the virtual queue is\n"
      "capped), and the client trades utility for availability instead of\n"
      "collapsing.\n\n",
      aggregate_capacity);

  bool ok = true;

  // Self-check 1: goodput plateau. Past 2x capacity the admitted rate must
  // stay within 20% of the best the ramp ever achieved - congestion
  // collapse would show as goodput falling off a cliff here.
  double peak_goodput = 0;
  for (const StepStats& s : steps) {
    peak_goodput = std::max(peak_goodput, s.admitted_per_sec);
  }
  for (const StepStats& s : steps) {
    if (s.offered_per_sec >= 2 * aggregate_capacity &&
        s.admitted_per_sec < 0.8 * peak_goodput) {
      std::fprintf(stderr,
                   "FAIL: goodput collapsed under overload: %.0f/s offered "
                   "-> %.0f/s admitted (peak %.0f/s)\n",
                   s.offered_per_sec, s.admitted_per_sec, peak_goodput);
      ok = false;
    }
  }

  // Self-check 2: bounded p99 for admitted ops. The bound covers the worst
  // queue delay (max_queue/rate), the England round trip, and one
  // retry_after-hinted backoff - far below the client's 10 s Put timeout,
  // which is where an unbounded queue would land.
  const MicrosecondCount p99_bound = SecondsToMicroseconds(3);
  for (const StepStats& s : steps) {
    if (s.client_ok > 0 && s.ok_p99_us > p99_bound) {
      std::fprintf(stderr,
                   "FAIL: admitted-op p99 unbounded at %.0f/s offered: %s\n",
                   s.offered_per_sec, FormatMs(s.ok_p99_us).c_str());
      ok = false;
    }
  }

  // Self-check 3: zero acked-write loss. Writes are the last thing the
  // controller sheds, and a shed write is a clean rejection, never a
  // half-applied one.
  bool contiguous = true;
  const std::vector<proto::ObjectVersion> committed_log =
      testbed.primary_node()->ExportTableLog(kTableName, &contiguous);
  std::set<std::tuple<std::string, int64_t, uint32_t>> committed;
  for (const proto::ObjectVersion& v : committed_log) {
    committed.emplace(v.key, v.timestamp.physical_us, v.timestamp.sequence);
  }
  uint64_t acked_lost = 0;
  for (const auto& [key, timestamp] : acked_writes) {
    if (committed.count({key, timestamp.physical_us, timestamp.sequence}) ==
        0) {
      ++acked_lost;
    }
  }
  if (acked_lost != 0) {
    std::fprintf(stderr, "FAIL: %llu acked writes lost under overload\n",
                 static_cast<unsigned long long>(acked_lost));
    ok = false;
  }

  // Self-check 4: zero consistency violations. Every degraded read's
  // claimed rank is audited against the primary's commit order, so "shed
  // gracefully" can never mean "quietly weaker than claimed".
  recorder.SetGroundTruth(committed_log, contiguous);
  const audit::History history = recorder.Snapshot();
  const audit::AuditReport report = audit::ConsistencyChecker().Check(history);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: consistency audit under overload:\n%s\n",
                 report.ToString().c_str());
    ok = false;
  }
  std::printf("Audit: %llu reads, %llu writes, %llu claims checked, "
              "%zu violations; %llu acked writes, %llu lost.\n",
              static_cast<unsigned long long>(report.reads_checked),
              static_cast<unsigned long long>(report.writes_checked),
              static_cast<unsigned long long>(report.claims_checked),
              report.violations.size(),
              static_cast<unsigned long long>(acked_writes.size()),
              static_cast<unsigned long long>(acked_lost));

  std::printf("%s\n", ok ? "All overload self-checks passed."
                         : "Overload self-checks FAILED.");
  return ok ? 0 : 1;
}
