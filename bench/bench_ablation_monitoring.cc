// Ablation for Section 6.1 (enhanced monitoring).
//
// Two questions from the paper's future-work discussion:
//   1. Probe rate: "clients could adapt the rate at which they send periodic
//      probes" - how much utility does a slower prober give up when
//      conditions change, and how much probe traffic does a faster one cost?
//      We measure the Figure 13 flapping scenario across probe intervals.
//   2. High-timestamp prediction: "clients could potentially predict a node's
//      high timestamp based on the time that it last communicated with the
//      node" - we compare the paper's conservative estimator against the
//      predictive one on a bounded-staleness SLA, where conservatism forces
//      remote reads.

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

// Probe-rate scenario: the US client runs an SLA that is only fully
// satisfiable at its *local* node (<eventual, 50 ms, 1.0>; fallback
// <eventual, 1 s, 0.2> at the primary). The local link flaps +300 ms every
// 60 s. While the local node is degraded the client reads remotely and stops
// sampling it, so only background probes can discover the recovery - the
// probe interval directly bounds how much utility is recovered.
struct ProbeCellResult {
  RunStats stats;
  uint64_t probes = 0;
};

ProbeCellResult RunProbeCell(MicrosecondCount probe_interval_us) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 61;
  testbed_options.probe_check_period_us = SecondsToMicroseconds(1);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  auto* testbed_ptr = &testbed;
  auto toggle = std::make_shared<bool>(false);
  testbed.env().SchedulePeriodic(
      SecondsToMicroseconds(60), SecondsToMicroseconds(60),
      [testbed_ptr, toggle] {
        *toggle = !*toggle;
        testbed_ptr->SetRttDelta(kUs, kUs,
                                 *toggle ? MillisecondsToMicroseconds(300)
                                         : 0);
      });

  core::PileusClient::Options client_options;
  client_options.monitor.probe_interval_us = probe_interval_us;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = 6;
  auto client = testbed.MakeClient(kUs, client_options);
  client->StartProbing();

  RunOptions run;
  run.sla = core::Sla()
                .Add(core::Guarantee::Eventual(),
                     MillisecondsToMicroseconds(50), 1.0)
                .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(1),
                     0.2);
  run.total_ops = 8000;
  run.warmup_ops = 1000;
  run.workload.seed = 61;
  ProbeCellResult result;
  result.stats = RunYcsb(testbed, *client, run);
  result.probes = client->probes_sent();
  return result;
}

RunStats RunPredictorCell(bool predict) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 62;
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.monitor.predict_high_timestamp = predict;
  client_options.seed = 7;
  auto client = testbed.MakeClient(kUs, client_options);
  client->StartProbing();

  RunOptions run;
  // Bounded staleness with a tight latency budget: conservatism about the
  // local secondary's high timestamp sends reads to the remote primary.
  run.sla = core::Sla()
                .Add(core::Guarantee::BoundedSeconds(45),
                     MillisecondsToMicroseconds(300), 1.0)
                .Add(core::Guarantee::Eventual(),
                     MillisecondsToMicroseconds(300), 0.25);
  run.total_ops = 6000;
  run.warmup_ops = 1000;
  run.workload.seed = 62;
  return RunYcsb(testbed, *client, run);
}

// Shared-monitor scenario (Section 6.1: "clients could share monitoring
// information with other clients in the same datacenter"): a veteran client
// in China has been running for a while; a fresh client then joins at the
// same site. With a private monitor the newcomer must run its own probe
// stream; with the shared monitor it inherits the veteran's knowledge (and
// keeps it fresh through its own piggybacked traffic) at zero extra probe
// cost.
struct SharedCellResult {
  double fresh_utility = 0.0;
  uint64_t fresh_probes = 0;
};

SharedCellResult RunColdStartCell(bool share_monitor) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 68;
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  core::PileusClient::Options veteran_options;
  veteran_options.seed = 1;
  auto veteran = testbed.MakeClient(kChina, veteran_options);
  veteran->StartProbing();
  {
    RunOptions warm;
    warm.sla = core::ShoppingCartSla();
    warm.total_ops = 2000;
    warm.warmup_ops = 0;
    warm.workload.seed = 68;
    (void)RunYcsb(testbed, *veteran, warm);
  }

  core::PileusClient::Options fresh_options;
  fresh_options.seed = 2;
  if (share_monitor) {
    fresh_options.shared_monitor = &veteran->client().monitor();
  }
  auto fresh = testbed.MakeClient(kChina, fresh_options);
  if (!share_monitor) {
    fresh->StartProbing();  // A private monitor needs its own probe stream.
  }
  RunOptions run;
  run.sla = core::ShoppingCartSla();
  run.total_ops = 2000;
  run.warmup_ops = 0;  // The cold start is part of the measurement.
  run.workload.seed = 69;
  SharedCellResult result;
  result.fresh_utility = RunYcsb(testbed, *fresh, run).AvgUtility();
  result.fresh_probes = fresh->probes_sent();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation (Section 6.1): monitoring ===\n\n");

  std::printf("--- Probe interval under a flapping local link "
              "(local-favoring SLA, US client) ---\n");
  AsciiTable probe_table(
      {"Probe interval", "Avg utility", "Probe messages"});
  for (const int seconds : {1, 5, 10, 30, 120}) {
    const ProbeCellResult cell = RunProbeCell(SecondsToMicroseconds(seconds));
    probe_table.AddRow({std::to_string(seconds) + " s",
                        FormatUtility(cell.stats.AvgUtility()),
                        std::to_string(cell.probes)});
  }
  std::printf("%s\n", probe_table.ToString().c_str());

  std::printf("--- Conservative vs predictive high-timestamp estimation "
              "(bounded(45s) SLA, US client) ---\n");
  AsciiTable predictor_table({"Estimator", "Avg utility",
                              "Avg Get latency (ms)", "SubSLA 1 met"});
  for (const bool predict : {false, true}) {
    const RunStats stats = RunPredictorCell(predict);
    predictor_table.AddRow(
        {predict ? "predictive (Section 6.1)" : "conservative (paper)",
         FormatUtility(stats.AvgUtility()),
         FormatMs(static_cast<MicrosecondCount>(stats.get_latency_us.Mean())),
         FormatPercent(stats.MetFraction(0))});
  }
  std::printf("%s\n", predictor_table.ToString().c_str());

  std::printf("--- Newcomer client: private vs shared monitor "
              "(shopping cart SLA, China) ---\n");
  AsciiTable shared_table(
      {"Monitor", "Newcomer avg utility", "Newcomer probe messages"});
  {
    const SharedCellResult priv = RunColdStartCell(false);
    shared_table.AddRow({"private (own probe stream)",
                         FormatUtility(priv.fresh_utility),
                         std::to_string(priv.fresh_probes)});
    const SharedCellResult shared = RunColdStartCell(true);
    shared_table.AddRow({"shared with co-located client",
                         FormatUtility(shared.fresh_utility),
                         std::to_string(shared.fresh_probes)});
  }
  std::printf("%s\n", shared_table.ToString().c_str());

  std::printf(
      "Findings: faster probes recover more utility after the local link\n"
      "heals (at a linear probe-message cost). The naive rate-1.0 high-\n"
      "timestamp predictor is too aggressive under periodic (step-function)\n"
      "replication: it slashes latency by betting reads on the local node\n"
      "but misses the staleness bound whenever the bet is wrong - this is\n"
      "why the paper's conservative estimator (high timestamps only move\n"
      "when observed) is the right default. Sharing a co-located client's\n"
      "monitor preserves utility while eliminating the newcomer's probe\n"
      "traffic entirely.\n");
  return 0;
}
