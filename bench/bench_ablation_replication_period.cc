// Ablation: replication pull period vs delivered utility.
//
// The paper fixes the pull period at one minute (Section 5.1) and notes that
// "more rapid dissemination increases a client's chance of being able to read
// from a nearby node" (Section 4.2). This bench sweeps the period and shows
// exactly that trade-off: staleness-sensitive SLAs (read-my-writes, bounded)
// lose utility as the period grows, while the replication message rate falls.

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

struct Cell {
  double shopping_utility = 0.0;   // Shopping cart SLA, India client.
  double bounded_utility = 0.0;    // bounded(30s) SLA, US client.
  uint64_t replication_rounds = 0;
};

Cell RunCell(MicrosecondCount period_us) {
  Cell cell;
  {
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 66;
    testbed_options.replication_period_us = period_us;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, 10000);
    testbed.StartReplication();
    core::PileusClient::Options client_options;
    client_options.seed = 8;
    auto client = testbed.MakeClient(kIndia, client_options);
    client->StartProbing();
    RunOptions run;
    run.sla = core::ShoppingCartSla();
    run.total_ops = 6000;
    run.warmup_ops = 1000;
    run.workload.seed = 66;
    cell.shopping_utility = RunYcsb(testbed, *client, run).AvgUtility();
    cell.replication_rounds = testbed.replication_rounds();
  }
  {
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 67;
    testbed_options.replication_period_us = period_us;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, 10000);
    testbed.StartReplication();
    core::PileusClient::Options client_options;
    client_options.seed = 9;
    auto client = testbed.MakeClient(kUs, client_options);
    client->StartProbing();
    RunOptions run;
    // The 100 ms latency target is below the US-England RTT, so the primary
    // cannot rescue subSLA 1: its utility is earned only while the local
    // secondary is within the 30 s staleness bound.
    run.sla = core::Sla()
                  .Add(core::Guarantee::BoundedSeconds(30),
                       MillisecondsToMicroseconds(100), 1.0)
                  .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(1),
                       0.25);
    run.total_ops = 6000;
    run.warmup_ops = 1000;
    run.workload.seed = 67;
    cell.bounded_utility = RunYcsb(testbed, *client, run).AvgUtility();
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("=== Ablation: replication pull period ===\n\n");
  AsciiTable table({"Pull period", "Shopping SLA utility (India)",
                    "Bounded(30s) SLA utility (US)", "Pull rounds"});
  for (const int seconds : {5, 15, 30, 60, 120, 300}) {
    const Cell cell = RunCell(SecondsToMicroseconds(seconds));
    table.AddRow({std::to_string(seconds) + " s",
                  FormatUtility(cell.shopping_utility),
                  FormatUtility(cell.bounded_utility),
                  std::to_string(cell.replication_rounds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expectation: utility decays as the period grows past the "
              "SLA's staleness tolerance (sharply once the period exceeds "
              "the 30 s bound); message cost scales inversely with the "
              "period.\n");
  return 0;
}
