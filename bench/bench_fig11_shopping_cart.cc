// Figure 11 + Table 1: shopping cart SLA (Figure 4) across client locations
// and read strategies.
//
// Paper results:
//   Figure 11 (avg utility): Primary = 1.0/1.0 in US/England but ~0 in
//   India/China; Random suboptimal everywhere; Closest ~0.95-0.98 outside
//   England; Pileus matches or beats the best fixed scheme at every site
//   (1.0 / 1.0 / 0.98 / 0.98).
//
//   Table 1 (Pileus decisions): US targets subSLA 1 100% of the time, reading
//   locally 90.9% / England 9.1%; England reads locally 100%; India reads its
//   local secondary ~96% at subSLA 1 plus ~4% at subSLA 2; China reads the US
//   node ~95% at subSLA 1 and ~4.5% at subSLA 2.

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/tables.h"

using namespace pileus;            // NOLINT
using namespace pileus::experiments;  // NOLINT

int main() {
  std::printf("=== Figure 11: shopping cart SLA, average delivered utility "
              "===\n\n");
  std::printf("SLA: %s\n\n", core::ShoppingCartSla().ToString().c_str());

  const std::vector<std::string> sites = {kUs, kEngland, kIndia, kChina};

  ComparisonOptions options;
  options.sla = core::ShoppingCartSla();
  options.total_ops = 8000;
  options.warmup_ops = 2000;

  std::vector<std::vector<RunStats>> results;
  std::vector<RunStats> pileus_stats;
  for (core::ReadStrategy strategy : AllStrategies()) {
    std::vector<RunStats> row;
    for (const std::string& site : sites) {
      row.push_back(RunStrategyCell(site, strategy, options));
    }
    if (strategy == core::ReadStrategy::kPileus) {
      pileus_stats = row;
    }
    results.push_back(std::move(row));
  }

  std::printf("%s\n", UtilityComparisonTable(sites, results).c_str());
  std::printf("Paper: Primary 1.0/1.0/~0/~0, Closest ~0.95/1.0/0.98/~0.95,\n"
              "       Pileus  1.0/1.0/0.98/0.98 (always >= best fixed "
              "scheme)\n\n");

  std::printf("=== Table 1: breakdown of Pileus client decisions ===\n\n");
  std::printf("%s\n",
              PileusBreakdownTable(sites, pileus_stats, options.sla).c_str());
  std::printf(
      "Paper: US 90.9%% local / 9.1%% England, all at subSLA 1, utility 1.0;\n"
      "       England 100%% local; India 95.9%%+3.9%% local, utility 0.98;\n"
      "       China 95.1%% US + 0.4%% India + 4.5%% US@2, utility 0.98\n");

  // Average Get latency comparison the paper calls out in Section 5.2:
  // Pileus and Primary both meet subSLA 1 from the US, but Pileus needs
  // ~14 ms on average versus ~148 ms at the primary.
  const RunStats& us_pileus = pileus_stats[0];
  const RunStats& us_primary = results[0][0];
  std::printf("\nUS client avg Get latency: Pileus %s ms vs Primary %s ms "
              "(paper: 14.48 vs 148)\n",
              FormatMs(us_pileus.get_latency_us.Mean()).c_str(),
              FormatMs(us_primary.get_latency_us.Mean()).c_str());
  return 0;
}
