// The web application SLA (paper Figure 5, Section 2.2): tiered per-read
// pricing under bounded staleness.
//
//   1. bounded(300 s) within 200 ms  -> $0.00001 per read
//   2. bounded(300 s) within 400 ms  -> $0.000008
//   3. bounded(300 s) within 600 ms  -> $0.000005
//   4. bounded(300 s) within 1 s     -> $0
//
// The paper declares this SLA but does not evaluate it ("it uses a single
// consistency and would not provide additional insights into Pileus"); we
// include it anyway because it exercises the *revenue* interpretation of
// utility (Section 3.3: the utility "ideally would match the price the
// storage provider charges"). We report revenue per 10k reads per client
// site and strategy.

#include <cstdio>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

int main() {
  std::printf("=== Web application SLA (Figure 5): revenue per 10k reads "
              "===\n\n");
  std::printf("SLA: %s\n\n", core::WebApplicationSla().ToString().c_str());

  const std::vector<std::string> sites = {kUs, kEngland, kIndia, kChina};
  ComparisonOptions options;
  options.sla = core::WebApplicationSla();
  options.total_ops = 6000;
  options.warmup_ops = 1500;
  options.seed = 5;

  AsciiTable table({"Strategy", "US", "England", "India", "China"});
  for (core::ReadStrategy strategy : AllStrategies()) {
    std::vector<std::string> row = {
        std::string(core::ReadStrategyName(strategy))};
    for (const std::string& site : sites) {
      const RunStats stats = RunStrategyCell(site, strategy, options);
      char cell[32];
      // Average utility is $/read; scale to $/10k reads for readability.
      std::snprintf(cell, sizeof(cell), "$%.3f",
                    stats.AvgUtility() * 10000.0);
      row.push_back(cell);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expectation: the 300 s staleness bound is nearly always satisfiable\n"
      "(replication every 60 s), so revenue is set by the latency tier each\n"
      "strategy lands in. Pileus earns the top tier wherever any node is\n"
      "within 200 ms and never falls below the best fixed scheme.\n");
  return 0;
}
