// Ablation for Section 6.2 (SLA-driven reconfiguration): "given knowledge of
// the SLAs being used by various clients, the system could make reasonable
// re-configuration decisions. For example, Pileus might automatically move
// the primary to a different datacenter in order to maximize the utility
// delivered to its clients."
//
// We evaluate every candidate primary placement against a fixed client
// population (one password checking SLA client per site, equally weighted)
// and show that the utility-maximizing placement depends on where the
// clients are - exactly the signal an automatic reconfigurator would use.
//
// Section 2 then closes the loop live: the placement policy
// (src/experiments/placement.h) scores the candidates from each client's
// *measured* Monitor evidence and the recommended site takes the primary
// role through the real reconfiguration path (TriggerFailover: epoch bump,
// sync-member catch-up, lease fencing of the demoted primary).

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/placement.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

double RunPlacementCell(const std::string& primary_site,
                        const std::string& client_site) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 62;
  GeoTestbed testbed(testbed_options);
  testbed.MovePrimary(primary_site);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.seed = 11;
  auto client = testbed.MakeClient(client_site, client_options);
  client->StartProbing();

  RunOptions run;
  run.sla = core::PasswordCheckingSla();
  run.total_ops = 3000;
  run.warmup_ops = 800;
  run.workload.seed = 62;
  return RunYcsb(testbed, *client, run).AvgUtility();
}

// Live recommend-and-move: probe the network from every client site, rank
// the placements from the measured Monitors, and move the primary role to
// the winner through the live reconfiguration path.
void RunLiveRecommendAndMove() {
  std::printf("=== Live path: measure, recommend, TriggerFailover ===\n");
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 62;
  GeoTestbed testbed(testbed_options);  // Primary starts in England.
  PreloadKeys(testbed, 1000);
  testbed.StartReplication();
  testbed.StartReconfiguration();

  // One equally weighted client per site; probing fills each Monitor with
  // the measured latency evidence the policy scores from.
  const std::vector<std::string> client_sites = {kUs, kEngland, kIndia,
                                                 kChina};
  std::vector<std::unique_ptr<GeoClient>> geo_clients;
  for (const std::string& site : client_sites) {
    core::PileusClient::Options client_options;
    client_options.seed = 11;
    auto client = testbed.MakeClient(site, client_options);
    client->StartProbing();
    geo_clients.push_back(std::move(client));
  }
  testbed.env().RunFor(SecondsToMicroseconds(120));

  std::vector<PlacementClient> population;
  for (const auto& client : geo_clients) {
    population.push_back(PlacementClient{
        .monitor = &client->client().monitor(),
        .sla = core::PasswordCheckingSla(),
        .weight = 1.0,
    });
  }

  const std::vector<std::string> members = testbed.current_config().members;
  const std::vector<PlacementScore> ranked =
      RankPrimaryPlacements(members, members, population);
  AsciiTable table({"Candidate primary", "Mean expected utility"});
  for (const PlacementScore& score : ranked) {
    table.AddRow({score.site, FormatUtility(score.utility)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const std::string& recommended = ranked.front().site;
  std::printf("Primary before: %s (epoch %lu). Recommendation: %s.\n",
              testbed.primary_site().c_str(),
              static_cast<unsigned long>(testbed.current_config().epoch),
              recommended.c_str());
  if (recommended == testbed.primary_site()) {
    std::printf("Primary already at the recommended site; no move.\n");
    return;
  }
  const Status status = testbed.TriggerFailover(recommended);
  if (!status.ok()) {
    std::printf("TriggerFailover failed: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("Primary after:  %s (epoch %lu, %lu completed move(s)).\n",
              testbed.primary_site().c_str(),
              static_cast<unsigned long>(testbed.current_config().epoch),
              static_cast<unsigned long>(testbed.failovers()));
}

}  // namespace

int main() {
  std::printf("=== Ablation (Section 6.2): SLA-driven primary placement ===\n");
  std::printf("Password checking SLA; rows = where the primary lives, "
              "columns = client site.\n\n");

  const std::vector<std::string> placements = {kUs, kEngland, kIndia};
  const std::vector<std::string> clients = {kUs, kEngland, kIndia, kChina};

  AsciiTable table({"Primary at", "US client", "England client",
                    "India client", "China client", "Mean (all clients)"});
  std::string best_placement;
  double best_mean = -1.0;
  for (const std::string& placement : placements) {
    std::vector<std::string> row = {placement};
    double sum = 0.0;
    for (const std::string& client : clients) {
      const double utility = RunPlacementCell(placement, client);
      sum += utility;
      row.push_back(FormatUtility(utility));
    }
    const double mean = sum / static_cast<double>(clients.size());
    row.push_back(FormatUtility(mean));
    table.AddRow(std::move(row));
    if (mean > best_mean) {
      best_mean = mean;
      best_placement = placement;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Utility-maximizing placement for this client population: "
              "%s (mean utility %.2f).\n",
              best_placement.c_str(), best_mean);
  std::printf("An automatic reconfigurator (Section 6.2) would pick exactly "
              "this placement from the same per-placement utility "
              "estimates.\n\n");

  RunLiveRecommendAndMove();
  return 0;
}
