// Microbenchmarks of the telemetry hot paths: counter increments with the
// registry enabled, disabled, and absent (null instrument pointer — the
// instrumented code's no-telemetry configuration), histogram records, trace
// buffer appends, and a full registry scrape. The enabled/disabled counter
// numbers are the overhead figures quoted in DESIGN.md "Telemetry".

#include <benchmark/benchmark.h>

#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace {

using namespace pileus::telemetry;  // NOLINT

void BM_CounterIncrementEnabled(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrementEnabled);

void BM_CounterIncrementDisabled(benchmark::State& state) {
  MetricsRegistry registry(/*enabled=*/false);
  Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_CounterIncrementNullGuard(benchmark::State& state) {
  // The pattern instrumented code uses when no registry was injected.
  Counter* counter = nullptr;
  uint64_t fallback = 0;
  for (auto _ : state) {
    if (counter != nullptr) {
      counter->Increment();
    } else {
      benchmark::DoNotOptimize(fallback);
    }
  }
}
BENCHMARK(BM_CounterIncrementNullGuard);

void BM_CounterIncrementContended(benchmark::State& state) {
  static MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench_contended_total");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_CounterIncrementContended)->Threads(4);

void BM_HistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  HistogramMetric* histogram = registry.GetHistogram("bench_us");
  int64_t value = 0;
  for (auto _ : state) {
    histogram->Record(value++ & 0xFFFF);
  }
  benchmark::DoNotOptimize(histogram->Merged().count());
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceBufferAppend(benchmark::State& state) {
  TraceBuffer buffer(4096);
  TraceEvent event;
  event.table = "ycsb";
  event.key = "user4711";
  event.node = "US";
  event.met_rank = 0;
  for (auto _ : state) {
    buffer.OnTrace(event);
  }
  benchmark::DoNotOptimize(buffer.total_recorded());
}
BENCHMARK(BM_TraceBufferAppend);

void BM_RegistryCollect(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("counter_" + std::to_string(i) + "_total")
        ->Increment(i);
  }
  for (int i = 0; i < 8; ++i) {
    HistogramMetric* histogram =
        registry.GetHistogram("hist_" + std::to_string(i) + "_us");
    for (int v = 0; v < 100; ++v) {
      histogram->Record(v * 17);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Collect());
  }
}
BENCHMARK(BM_RegistryCollect);

void BM_ExportPrometheus(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry
        .GetCounter(WithLabels("requests_total",
                               {{"shard", std::to_string(i)}}))
        ->Increment(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExportPrometheus(registry));
  }
}
BENCHMARK(BM_ExportPrometheus);

}  // namespace

BENCHMARK_MAIN();
