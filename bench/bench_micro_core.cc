// Microbenchmarks of the client library's hot paths: target selection
// (Figure 8), minimum-acceptable-read-timestamp computation, monitor updates
// and estimates, and the wire codec. These run on every Get, so their cost
// bounds the client-side overhead Pileus adds over a plain key-value client.

#include <benchmark/benchmark.h>

#include "src/common/clock.h"
#include "src/core/monitor.h"
#include "src/core/selection.h"
#include "src/core/session.h"
#include "src/core/sla.h"
#include "src/proto/messages.h"

namespace {

using namespace pileus;        // NOLINT
using namespace pileus::core;  // NOLINT

struct SelectionFixture {
  ManualClock clock;
  Monitor monitor;
  Session session;
  std::vector<ReplicaView> replicas;
  Sla sla;
  Random rng;

  explicit SelectionFixture(int replica_count)
      : clock(SecondsToMicroseconds(1000)),
        monitor(&clock),
        session(PasswordCheckingSla()),
        sla(PasswordCheckingSla()),
        rng(1) {
    for (int i = 0; i < replica_count; ++i) {
      ReplicaView view;
      view.name = "node-" + std::to_string(i);
      view.authoritative = (i == 0);
      replicas.push_back(view);
      // Populate monitor state: mixed latencies and staleness.
      for (int s = 0; s < 50; ++s) {
        monitor.RecordLatency(view.name,
                              MillisecondsToMicroseconds(1 + 37 * i + s % 7));
      }
      monitor.RecordHighTimestamp(
          view.name, Timestamp{SecondsToMicroseconds(900 + i), 0});
    }
    session.RecordPut("key-1", Timestamp{SecondsToMicroseconds(950), 0});
    session.RecordGet("key-2", Timestamp{SecondsToMicroseconds(940), 0});
  }
};

void BM_SelectTarget(benchmark::State& state) {
  SelectionFixture fixture(static_cast<int>(state.range(0)));
  SelectionOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTarget(
        fixture.sla, fixture.replicas, fixture.session, "key-1",
        fixture.clock.NowMicros(), fixture.monitor, options, &fixture.rng));
  }
}
BENCHMARK(BM_SelectTarget)->Arg(3)->Arg(8)->Arg(16);

void BM_MinReadTimestamp(benchmark::State& state) {
  SelectionFixture fixture(3);
  const Guarantee guarantees[] = {
      Guarantee::Strong(),       Guarantee::Causal(),
      Guarantee::BoundedSeconds(30), Guarantee::ReadMyWrites(),
      Guarantee::Monotonic(),    Guarantee::Eventual()};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.session.MinReadTimestamp(
        guarantees[i++ % 6], "key-1", fixture.clock.NowMicros()));
  }
}
BENCHMARK(BM_MinReadTimestamp);

void BM_MonitorRecordLatency(benchmark::State& state) {
  ManualClock clock(SecondsToMicroseconds(1000));
  Monitor monitor(&clock);
  int64_t i = 0;
  for (auto _ : state) {
    clock.AdvanceMicros(100);
    monitor.RecordLatency("node-0", 1000 + (i++ % 500));
  }
}
BENCHMARK(BM_MonitorRecordLatency);

void BM_MonitorPNodeLat(benchmark::State& state) {
  ManualClock clock(SecondsToMicroseconds(1000));
  Monitor monitor(&clock);
  for (int i = 0; i < 2000; ++i) {
    monitor.RecordLatency("node-0", 1000 + i % 500);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monitor.PNodeLat("node-0", MillisecondsToMicroseconds(1)));
  }
}
BENCHMARK(BM_MonitorPNodeLat);

void BM_EncodeDecodeGetReply(benchmark::State& state) {
  proto::GetReply reply;
  reply.found = true;
  reply.value.assign(100, 'v');
  reply.value_timestamp = Timestamp{123456789, 42};
  reply.high_timestamp = Timestamp{123456999, 7};
  const proto::Message message = reply;
  for (auto _ : state) {
    const std::string bytes = proto::EncodeMessage(message);
    benchmark::DoNotOptimize(proto::DecodeMessage(bytes));
  }
}
BENCHMARK(BM_EncodeDecodeGetReply);

void BM_EncodeDecodeSyncReply(benchmark::State& state) {
  proto::SyncReply reply;
  for (int i = 0; i < 100; ++i) {
    proto::ObjectVersion version;
    version.key = "user" + std::to_string(i);
    version.value.assign(100, 'v');
    version.timestamp = Timestamp{1000000 + i, 0};
    reply.versions.push_back(std::move(version));
  }
  reply.heartbeat = Timestamp{2000000, 0};
  const proto::Message message = reply;
  for (auto _ : state) {
    const std::string bytes = proto::EncodeMessage(message);
    benchmark::DoNotOptimize(proto::DecodeMessage(bytes));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EncodeDecodeSyncReply);

}  // namespace

BENCHMARK_MAIN();
