// Figure 12 + Table 2: password checking SLA (Figure 6) across client
// locations and read strategies.
//
// Paper results:
//   Figure 12 (avg utility): Pileus 0.99 / 1.0 / 0.5 / 0.25 for clients in
//   US / England / India / China. In China the Closest strategy scores 0
//   (eventual data from the US meets no subSLA) - *worse than Random's 0.08*
//   - while Pileus targets the third subSLA and reads the primary for 0.25.
//
//   Table 2: US and England clients read the primary 100% of the time at
//   subSLA 1 (US misses the 150 ms bound 0.6% of the time -> 0.99); India
//   targets subSLA 2 at its local secondary 100%; China targets subSLA 3 at
//   the primary 100%.

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

int main() {
  std::printf("=== Figure 12: password checking SLA, average delivered "
              "utility ===\n\n");
  std::printf("SLA: %s\n\n", core::PasswordCheckingSla().ToString().c_str());

  const std::vector<std::string> sites = {kUs, kEngland, kIndia, kChina};

  ComparisonOptions options;
  options.sla = core::PasswordCheckingSla();
  options.total_ops = 8000;
  options.warmup_ops = 2000;

  std::vector<std::vector<RunStats>> results;
  std::vector<RunStats> pileus_stats;
  for (core::ReadStrategy strategy : AllStrategies()) {
    std::vector<RunStats> row;
    for (const std::string& site : sites) {
      row.push_back(RunStrategyCell(site, strategy, options));
    }
    if (strategy == core::ReadStrategy::kPileus) {
      pileus_stats = row;
    }
    results.push_back(std::move(row));
  }

  std::printf("%s\n", UtilityComparisonTable(sites, results).c_str());
  std::printf("Paper: Pileus 0.99/1.0/0.5/0.25; in China Closest = 0 < "
              "Random 0.08 < Pileus 0.25\n\n");

  std::printf("=== Table 2: breakdown of Pileus client decisions ===\n\n");
  std::printf("%s\n",
              PileusBreakdownTable(sites, pileus_stats, options.sla).c_str());
  std::printf(
      "Paper: US    subSLA 1 -> England 100%%, met 99.4%%, utility 0.99;\n"
      "       England subSLA 1 -> England 100%%, utility 1.0;\n"
      "       India subSLA 2 -> India 100%%, utility 0.5;\n"
      "       China subSLA 3 -> England 100%%, utility 0.25\n");
  return 0;
}
