// Client-cache bench: the cache as a zero-RTT pseudo-replica in SLA
// selection (DESIGN.md "Client cache").
//
// A China-site client (no local replica; every node is >= 150 ms away) runs
// the YCSB mix under a bounded(5s)/100ms >> eventual SLA. Without a cache
// the 100 ms subSLA is unreachable, so every Get pays a WAN round trip at
// utility 0.1. With a cache, entries admitted within the staleness bound
// serve the top subSLA locally: the table sweeps key distribution (zipfian
// vs uniform) and cache capacity against the no-cache baseline, reporting
// hit rate, mean Get latency, and mean delivered utility. Zipfian re-reads
// inside the 5 s window are where the cache pays off; uniform traffic and a
// tiny capacity show the effect shrinking.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/cache/client_cache.h"
#include "src/core/consistency.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/telemetry/metrics.h"
#include "src/workload/ycsb.h"

namespace {

using namespace pileus::experiments;  // NOLINT

constexpr uint64_t kOpsPerCell = 4000;
constexpr uint64_t kWarmupOps = 500;

// PILEUS_BENCH_SMOKE=1 shrinks the run so CI can execute the bench end to
// end in seconds; the table is printed either way, just from fewer samples.
bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

pileus::core::Sla CacheSla() {
  return pileus::core::Sla()
      .Add(pileus::core::Guarantee::BoundedSeconds(5),
           pileus::MillisecondsToMicroseconds(100), 1.0)
      .Add(pileus::core::Guarantee::Eventual(),
           pileus::SecondsToMicroseconds(2), 0.1);
}

struct Cell {
  double hit_pct = 0.0;
  double mean_ms = 0.0;
  double utility = 0.0;
};

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const uint64_t ops_per_cell = smoke ? 400 : kOpsPerCell;
  const uint64_t warmup_ops = smoke ? 100 : kWarmupOps;
  const int preload_keys = smoke ? 500 : 2000;
  std::printf(
      "=== Client cache: hit rate / latency / utility vs capacity and key "
      "distribution ===%s\n"
      "China client, SLA bounded(5s)/100ms (u=1.0) >> eventual/2s "
      "(u=0.1)\n\n",
      smoke ? " [smoke]" : "");

  const std::vector<std::pair<const char*, pileus::workload::KeyDistribution>>
      kDistributions = {
          {"zipfian", pileus::workload::KeyDistribution::kZipfian},
          {"uniform", pileus::workload::KeyDistribution::kUniform},
      };
  const std::vector<std::pair<const char*, size_t>> kCapacities = {
      {"none", 0},
      {"64KiB", size_t{64} << 10},
      {"4MiB", size_t{4} << 20},
  };

  std::vector<std::vector<Cell>> cells(
      kDistributions.size(), std::vector<Cell>(kCapacities.size()));
  double zipf_best_hit = 0.0;
  double zipf_best_ms = 0.0;
  double zipf_none_ms = 0.0;

  for (size_t d = 0; d < kDistributions.size(); ++d) {
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 2000 + d;
    // Pull faster than the 5 s staleness bound, so read-through fills (whose
    // valid_through is a secondary's replicated-prefix high timestamp) can
    // clear the bounded(5s) floor, not just this client's own write-throughs.
    testbed_options.replication_period_us =
        pileus::SecondsToMicroseconds(2);
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, preload_keys);
    testbed.StartReplication();

    for (size_t c = 0; c < kCapacities.size(); ++c) {
      pileus::telemetry::MetricsRegistry registry;
      pileus::cache::ClientCache::Options cache_options;
      cache_options.capacity_bytes = kCapacities[c].second;
      cache_options.metrics = &registry;
      pileus::cache::ClientCache cache(cache_options);

      pileus::core::PileusClient::Options client_options;
      client_options.seed = 31 * (c + 1);
      client_options.metrics = &registry;
      if (kCapacities[c].second > 0) {
        client_options.cache = &cache;
      }
      auto client = testbed.MakeClient(kChina, client_options);
      client->StartProbing();

      RunOptions run;
      run.sla = CacheSla();
      run.total_ops = ops_per_cell;
      run.warmup_ops = warmup_ops;
      run.workload.key_count = preload_keys;
      run.workload.distribution = kDistributions[d].second;
      run.workload.seed = 13 + c;
      const RunStats stats = RunYcsb(testbed, *client, run);
      client->StopProbing();

      Cell& cell = cells[d][c];
      // Telemetry-side counters include warm-up; both numerator and
      // denominator do, so the ratio is consistent.
      const uint64_t served =
          registry
              .GetCounter(pileus::telemetry::WithLabels(
                  "pileus_client_cache_served_total", {{"table", kTableName}}))
              ->Value();
      const uint64_t gets =
          registry
              .GetCounter(pileus::telemetry::WithLabels(
                  "pileus_client_gets_total", {{"table", kTableName}}))
              ->Value();
      cell.hit_pct = gets == 0 ? 0.0
                               : 100.0 * static_cast<double>(served) /
                                     static_cast<double>(gets);
      cell.mean_ms = stats.get_latency_us.Mean() / 1000.0;
      cell.utility = stats.AvgUtility();
      if (d == 0 && c == 0) {
        zipf_none_ms = cell.mean_ms;
      }
      if (d == 0 && c + 1 == kCapacities.size()) {
        zipf_best_hit = cell.hit_pct;
        zipf_best_ms = cell.mean_ms;
      }
    }
  }

  AsciiTable table({"Distribution", "Cache", "Hit %", "Mean Get (ms)",
                    "Mean utility"});
  for (size_t d = 0; d < kDistributions.size(); ++d) {
    for (size_t c = 0; c < kCapacities.size(); ++c) {
      char hit[32];
      char ms[32];
      char util[32];
      std::snprintf(hit, sizeof(hit), "%.1f", cells[d][c].hit_pct);
      std::snprintf(ms, sizeof(ms), "%.1f", cells[d][c].mean_ms);
      std::snprintf(util, sizeof(util), "%.3f", cells[d][c].utility);
      table.AddRow({kDistributions[d].first, kCapacities[c].first, hit, ms,
                    util});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "zipfian, 4MiB cache: %.1f%% of Gets served locally, mean Get %.1f ms "
      "vs %.1f ms without a cache\n",
      zipf_best_hit, zipf_best_ms, zipf_none_ms);
  // Acceptance (ISSUE 4): on the zipfian workload with a bounded(5s) top
  // subSLA, at least 30% of Gets come from the cache and the mean latency
  // measurably beats the no-cache baseline.
  if (zipf_best_hit < 30.0 || zipf_best_ms >= zipf_none_ms) {
    std::printf("FAIL: cache benefit below the acceptance threshold\n");
    return 1;
  }
  return 0;
}
