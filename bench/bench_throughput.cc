// bench_throughput: transport throughput and latency over real loopback TCP.
//
// ROADMAP item 2: the event-driven multiplexed transport (epoll reactor,
// request pipelining, writev reply coalescing) must beat the original
// thread-per-connection transport by a wide margin, because a storage node
// that burns a thread per client cannot host the paper's many-tenant SLAs.
//
// Three measurements against the same in-memory storage node (Get on a
// preloaded keyspace — a realistic cheap op, so the transport dominates):
//   1. Closed-loop baseline: N blocking client threads, one LegacyTcpChannel
//      each, against the LegacyTcpServer (thread per connection).
//   2. Closed-loop pipelined: C channels x D in-flight async calls against
//      the epoll TcpServer; completions re-issue from the event loop.
//   3. Open-loop at 50% of measured capacity: fixed-rate issue, latency
//      distribution of completions. Client and server share one loop thread
//      so the tail reflects transport queueing, not OS run-queue delay from
//      oversubscribing a small machine.
//
// Self-checks (exit non-zero on failure; enforced by CI's smoke run):
//   1. pipelined throughput at 64 in-flight >= 3x the 64-thread baseline,
//   2. open-loop p99 <= max(2x p50, p50 + 250us) at 50% load (the absolute
//      slack keeps sub-ms medians from flaking on scheduler jitter).
//
// Writes BENCH_throughput.json (cwd) with every sweep point so the numbers
// are trackable across commits. PILEUS_BENCH_SMOKE=1 shrinks durations; the
// self-checks hold in both modes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/net/legacy_tcp.h"
#include "src/net/tcp.h"
#include "src/proto/messages.h"
#include "src/storage/storage_node.h"
#include "src/util/histogram.h"

using namespace pileus;  // NOLINT

namespace {

constexpr const char* kTable = "bench";
constexpr int kKeyCount = 512;

bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

MicrosecondCount MeasureDuration() {
  return SmokeMode() ? MillisecondsToMicroseconds(600)
                     : SecondsToMicroseconds(3);
}

proto::GetRequest MakeGet(int i) {
  proto::GetRequest get;
  get.table = kTable;
  get.key = "k" + std::to_string(i % kKeyCount);
  return get;
}

struct LoadResult {
  double ops_per_sec = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
};

// --- 1. Closed loop over the legacy thread-per-connection transport ---

LoadResult RunLegacyClosedLoop(uint16_t port, int threads,
                               MicrosecondCount duration_us) {
  std::mutex mu;
  Histogram latency;
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> errors{0};
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  const MicrosecondCount deadline = start + duration_us;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t, deadline, &mu, &latency, &ops, &errors] {
      net::LegacyTcpChannel channel(port);
      int i = t;
      while (RealClock::Instance()->NowMicros() < deadline) {
        const MicrosecondCount op_start = RealClock::Instance()->NowMicros();
        Result<proto::Message> reply =
            channel.Call(MakeGet(i++), SecondsToMicroseconds(10));
        if (reply.ok()) {
          ops.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          latency.Record(RealClock::Instance()->NowMicros() - op_start);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const double elapsed_s =
      static_cast<double>(RealClock::Instance()->NowMicros() - start) / 1e6;
  LoadResult result;
  result.ops = ops.load();
  result.errors = errors.load();
  result.ops_per_sec = elapsed_s > 0 ? result.ops / elapsed_s : 0;
  result.p50_us = latency.Quantile(0.50);
  result.p99_us = latency.Quantile(0.99);
  return result;
}

// --- 2. Closed loop, pipelined, over the epoll transport ---

LoadResult RunPipelinedClosedLoop(uint16_t port, int channels, int depth,
                                  MicrosecondCount duration_us,
                                  net::EventLoop* pinned_loop = nullptr) {
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    Histogram latency;
    uint64_t ops = 0;
    uint64_t errors = 0;
    int outstanding = 0;
    MicrosecondCount deadline = 0;
  };
  auto shared = std::make_shared<Shared>();
  std::vector<std::unique_ptr<net::TcpChannel>> chans;
  chans.reserve(channels);
  for (int c = 0; c < channels; ++c) {
    chans.push_back(std::make_unique<net::TcpChannel>(port, 0, pinned_loop));
  }
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  shared->deadline = start + duration_us;

  // Each completion re-issues on its own channel until the deadline, so the
  // in-flight population stays at channels*depth without any client threads.
  struct Issuer {
    static void Issue(net::TcpChannel* channel, std::shared_ptr<Shared> shared,
                      int seq) {
      const MicrosecondCount op_start = RealClock::Instance()->NowMicros();
      channel->CallAsync(
          MakeGet(seq), 0 /* no per-op deadline: skip the timeout-timer heap churn */,
          [channel, shared, seq, op_start](Result<proto::Message> reply) {
            bool reissue = false;
            {
              std::lock_guard<std::mutex> lock(shared->mu);
              if (reply.ok()) {
                ++shared->ops;
                shared->latency.Record(RealClock::Instance()->NowMicros() -
                                       op_start);
              } else {
                ++shared->errors;
              }
              if (RealClock::Instance()->NowMicros() < shared->deadline) {
                reissue = true;
              } else {
                --shared->outstanding;
              }
            }
            if (reissue) {
              Issue(channel, shared, seq + 1);
            } else {
              shared->cv.notify_all();
            }
          });
    }
  };

  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->outstanding = channels * depth;
  }
  for (int c = 0; c < channels; ++c) {
    for (int d = 0; d < depth; ++d) {
      Issuer::Issue(chans[c].get(), shared, c * depth + d);
    }
  }
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait(lock, [&shared] { return shared->outstanding == 0; });
  }
  const double elapsed_s =
      static_cast<double>(RealClock::Instance()->NowMicros() - start) / 1e6;
  LoadResult result;
  std::lock_guard<std::mutex> lock(shared->mu);
  result.ops = shared->ops;
  result.errors = shared->errors;
  result.ops_per_sec = elapsed_s > 0 ? result.ops / elapsed_s : 0;
  result.p50_us = shared->latency.Quantile(0.50);
  result.p99_us = shared->latency.Quantile(0.99);
  return result;
}

// --- 3. Open loop at a fixed rate over the epoll transport ---
//
// The load generator is K virtual clients living ON the event loop: each
// issues a pipelined batch of kOpenLoopBatch requests on its period via a
// self-rearming RunAfter chain, with phases staggered so batches are evenly
// spaced in time. Batched arrivals are the workload this transport exists
// for (a pipelining client sends its window together), and they exercise the
// reply-coalescing path: the server drains the batch in one read and returns
// the replies in one writev. No dedicated pacer thread exists to fight the
// loop for the CPU, and with epoll_pwait2 + tight timer slack the timers
// have tens-of-microseconds accuracy. A client that falls behind its
// schedule (a long loop stall) drops the missed slots instead of bursting.

constexpr int kOpenLoopBatch = 32;

LoadResult RunOpenLoop(uint16_t port, double target_ops_per_sec,
                       MicrosecondCount duration_us,
                       net::EventLoop* pinned_loop) {
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    Histogram latency;
    uint64_t ops = 0;
    uint64_t errors = 0;
    int outstanding = 0;
    int clients_running = 0;
    MicrosecondCount deadline = 0;
  };
  // One batching client: multiple staggered clients sound more realistic but
  // their batches collide whenever timer jitter exceeds the stagger, and the
  // collided batch inherits the other's drain time — a tail the transport
  // didn't cause. One client on an absolute schedule keeps batches disjoint.
  auto shared = std::make_shared<Shared>();
  constexpr int kVirtualClients = 1;
  constexpr int kOpenLoopChannels = 1;
  std::vector<std::unique_ptr<net::TcpChannel>> chans;
  chans.reserve(kOpenLoopChannels);
  for (int c = 0; c < kOpenLoopChannels; ++c) {
    chans.push_back(std::make_unique<net::TcpChannel>(port, 0, pinned_loop));
  }
  const MicrosecondCount start = RealClock::Instance()->NowMicros();
  const double period_us =
      kOpenLoopBatch * kVirtualClients * 1e6 / target_ops_per_sec;
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->deadline = start + duration_us;
    shared->clients_running = kVirtualClients;
  }

  struct Client {
    static void Fire(net::EventLoop* loop, net::TcpChannel* channel,
                     std::shared_ptr<Shared> shared, double period,
                     double due) {
      const MicrosecondCount now = RealClock::Instance()->NowMicros();
      bool stop;
      {
        std::lock_guard<std::mutex> lock(shared->mu);
        stop = now >= shared->deadline;
        if (stop) {
          --shared->clients_running;
        } else {
          shared->outstanding += kOpenLoopBatch;
        }
      }
      if (stop) {
        shared->cv.notify_all();
        return;
      }
      // Every op in the batch is measured from the batch's arrival time
      // (`now`), not from its own CallAsync call: the batch arrived together,
      // and measuring from send time would hide the time an op spent queued
      // behind its batch-mates (coordinated omission).
      const MicrosecondCount op_start = now;
      for (int i = 0; i < kOpenLoopBatch; ++i) {
        channel->CallAsync(
            MakeGet(static_cast<int>(op_start + i) & 0x3ff),
            0,
            [shared, op_start](Result<proto::Message> reply) {
              bool all_done;
              {
                std::lock_guard<std::mutex> lock(shared->mu);
                if (reply.ok()) {
                  ++shared->ops;
                  shared->latency.Record(RealClock::Instance()->NowMicros() -
                                         op_start);
                } else {
                  ++shared->errors;
                }
                --shared->outstanding;
                // Waking the blocked main thread is a context switch; only
                // pay it when the run is actually over.
                all_done =
                    shared->outstanding == 0 && shared->clients_running == 0;
              }
              if (all_done) {
                shared->cv.notify_all();
              }
            });
      }
      double next_due = due + period;
      if (static_cast<double>(now) > next_due + period) {
        next_due = static_cast<double>(now) + period;  // Drop missed slots.
      }
      const MicrosecondCount delay = static_cast<MicrosecondCount>(
          std::max(0.0, next_due - static_cast<double>(
                                       RealClock::Instance()->NowMicros())));
      loop->RunAfter(delay, [loop, channel, shared, period, next_due] {
        Fire(loop, channel, shared, period, next_due);
      });
    }
  };

  for (int c = 0; c < kVirtualClients; ++c) {
    // Stagger client phases across one period for even aggregate spacing.
    const double phase = period_us * c / kVirtualClients;
    const double due = static_cast<double>(start) + phase;
    net::TcpChannel* channel = chans[c % kOpenLoopChannels].get();
    pinned_loop->RunAfter(
        static_cast<MicrosecondCount>(phase),
        [pinned_loop, channel, shared, period_us, due] {
          Client::Fire(pinned_loop, channel, shared, period_us, due);
        });
  }
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->cv.wait(lock, [&shared] {
      return shared->clients_running == 0 && shared->outstanding == 0;
    });
  }
  const double elapsed_s =
      static_cast<double>(RealClock::Instance()->NowMicros() - start) / 1e6;
  LoadResult result;
  std::lock_guard<std::mutex> lock(shared->mu);
  result.ops = shared->ops;
  result.errors = shared->errors;
  result.ops_per_sec = elapsed_s > 0 ? result.ops / elapsed_s : 0;
  result.p50_us = shared->latency.Quantile(0.50);
  result.p99_us = shared->latency.Quantile(0.99);
  return result;
}

void PrintResult(const char* label, const LoadResult& r) {
  std::printf("%-32s %9.0f ops/s  p50=%6lld us  p99=%6lld us  (%llu ops, "
              "%llu errors)\n",
              label, r.ops_per_sec, static_cast<long long>(r.p50_us),
              static_cast<long long>(r.p99_us),
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.errors));
  std::fflush(stdout);
}

}  // namespace

int main() {
  // One in-memory storage node serves both transports, so the handler cost
  // is identical and the delta is purely transport execution model.
  storage::StorageNode node("bench-node", "local", RealClock::Instance());
  if (Status st = node.AddTablet(kTable, {.is_primary = true}); !st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < kKeyCount; ++i) {
    proto::PutRequest put;
    put.table = kTable;
    put.key = "k" + std::to_string(i);
    put.value = "value-" + std::to_string(i);
    node.Handle(put);
  }
  net::Handler handler = [&node](const proto::Message& m) {
    return node.Handle(m);
  };

  const MicrosecondCount duration_us = MeasureDuration();
  std::printf("bench_throughput (%s mode, %.1f s per point)\n",
              SmokeMode() ? "smoke" : "full",
              static_cast<double>(duration_us) / 1e6);

  // --- Legacy transport sweep (thread per connection) ---
  const int legacy_threads[] = {1, 16, 64};
  std::vector<std::pair<int, LoadResult>> legacy_results;
  for (const int threads : legacy_threads) {
    net::LegacyTcpServer server;
    if (Status st = server.Start(0, handler); !st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    LoadResult r = RunLegacyClosedLoop(server.port(), threads, duration_us);
    server.Stop();
    char label[64];
    std::snprintf(label, sizeof(label), "legacy closed %d threads", threads);
    PrintResult(label, r);
    legacy_results.emplace_back(threads, r);
  }

  // --- Epoll transport sweep (channels x pipeline depth) ---
  const std::pair<int, int> pipelined_configs[] = {
      {1, 1}, {1, 8}, {4, 16}, {8, 8}};
  std::vector<std::pair<std::pair<int, int>, LoadResult>> pipelined_results;
  {
    net::TcpServer server;
    if (Status st = server.Start(0, handler, {.loop_threads = 2});
        !st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const auto& [channels, depth] : pipelined_configs) {
      LoadResult r =
          RunPipelinedClosedLoop(server.port(), channels, depth, duration_us);
      char label[64];
      std::snprintf(label, sizeof(label), "epoll closed %dch x %d deep",
                    channels, depth);
      PrintResult(label, r);
      pipelined_results.emplace_back(std::make_pair(channels, depth), r);
    }
    server.Stop();
  }

  // --- Open loop at 50% of measured capacity ---
  //
  // Latency distribution under paced (non-saturating) load. Client and
  // server share ONE loop thread: on a small machine the multi-thread
  // topologies above keep more runnable threads than cores, and the OS
  // run-queue delay that puts in the tail is scheduler noise, not transport
  // queueing. Capacity is re-measured closed-loop in this same topology so
  // "50% load" means 50% of what this deployment can actually do.
  LoadResult single_loop_capacity;
  LoadResult open_loop;
  double target = 0;
  {
    net::TcpServer server;
    if (Status st = server.Start(0, handler, {.loop_threads = 1});
        !st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    net::EventLoop* loop = server.loop_pool()->loop(0);
    single_loop_capacity =
        RunPipelinedClosedLoop(server.port(), 1, 16, duration_us, loop);
    PrintResult("epoll closed 1-loop 1ch x 16", single_loop_capacity);
    target = single_loop_capacity.ops_per_sec * 0.5;
    open_loop = RunOpenLoop(server.port(), target, duration_us, loop);
    server.Stop();
    char label[64];
    std::snprintf(label, sizeof(label), "epoll open @%.0f/s", target);
    PrintResult(label, open_loop);
  }

  // --- Self-checks ---
  const LoadResult& legacy64 = legacy_results.back().second;   // 64 threads.
  const LoadResult& epoll64 = pipelined_results.back().second;  // 8x8 = 64.
  const double speedup =
      legacy64.ops_per_sec > 0 ? epoll64.ops_per_sec / legacy64.ops_per_sec
                               : 0;
  const bool check_speedup = speedup >= 3.0;
  // 250 us of absolute slack on top of the 2x multiplier: at a p50 of
  // ~150 us the multiplier alone sits inside scheduler-jitter noise, and a
  // shared CI runner must not flake the check while the tail stays sub-ms.
  const int64_t tail_bound = std::max<int64_t>(
      2 * std::max<int64_t>(open_loop.p50_us, 1), open_loop.p50_us + 250);
  const bool check_tail = open_loop.p99_us <= tail_bound;
  const bool check_errors = epoll64.errors == 0 && open_loop.errors == 0;
  std::printf("speedup at 64 in-flight: %.2fx (floor 3x)  %s\n", speedup,
              check_speedup ? "OK" : "FAIL");
  std::printf("open-loop tail: p99=%lld us vs bound %lld us "
              "(max(2x p50, p50+250))  %s\n",
              static_cast<long long>(open_loop.p99_us),
              static_cast<long long>(tail_bound),
              check_tail ? "OK" : "FAIL");
  if (!check_errors) {
    std::printf("FAIL: transport errors during measurement\n");
  }

  // --- BENCH_throughput.json ---
  FILE* json = std::fopen("BENCH_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"mode\": \"%s\",\n  \"duration_s\": %.2f,\n",
                 SmokeMode() ? "smoke" : "full",
                 static_cast<double>(duration_us) / 1e6);
    std::fprintf(json, "  \"legacy_closed_loop\": [");
    for (size_t i = 0; i < legacy_results.size(); ++i) {
      const auto& [threads, r] = legacy_results[i];
      std::fprintf(json,
                   "%s\n    {\"threads\": %d, \"ops_per_sec\": %.0f, "
                   "\"p50_us\": %lld, \"p99_us\": %lld, \"errors\": %llu}",
                   i == 0 ? "" : ",", threads, r.ops_per_sec,
                   static_cast<long long>(r.p50_us),
                   static_cast<long long>(r.p99_us),
                   static_cast<unsigned long long>(r.errors));
    }
    std::fprintf(json, "\n  ],\n  \"epoll_closed_loop\": [");
    for (size_t i = 0; i < pipelined_results.size(); ++i) {
      const auto& [config, r] = pipelined_results[i];
      std::fprintf(json,
                   "%s\n    {\"channels\": %d, \"depth\": %d, "
                   "\"in_flight\": %d, \"ops_per_sec\": %.0f, "
                   "\"p50_us\": %lld, \"p99_us\": %lld, \"errors\": %llu}",
                   i == 0 ? "" : ",", config.first, config.second,
                   config.first * config.second, r.ops_per_sec,
                   static_cast<long long>(r.p50_us),
                   static_cast<long long>(r.p99_us),
                   static_cast<unsigned long long>(r.errors));
    }
    std::fprintf(json,
                 "\n  ],\n  \"single_loop_capacity_ops_per_sec\": %.0f,\n"
                 "  \"open_loop\": {\"target_ops_per_sec\": %.0f, "
                 "\"achieved_ops_per_sec\": %.0f, \"p50_us\": %lld, "
                 "\"p99_us\": %lld, \"errors\": %llu},\n",
                 single_loop_capacity.ops_per_sec, target, open_loop.ops_per_sec,
                 static_cast<long long>(open_loop.p50_us),
                 static_cast<long long>(open_loop.p99_us),
                 static_cast<unsigned long long>(open_loop.errors));
    std::fprintf(json,
                 "  \"speedup_at_64_in_flight\": %.2f,\n  \"checks\": "
                 "{\"speedup_floor_3x\": %s, \"open_loop_p99_within_2x_p50\": "
                 "%s, \"no_errors\": %s}\n}\n",
                 speedup, check_speedup ? "true" : "false",
                 check_tail ? "true" : "false",
                 check_errors ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_throughput.json\n");
  }

  return (check_speedup && check_tail && check_errors) ? 0 : 1;
}
