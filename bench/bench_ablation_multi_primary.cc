// Ablation for Section 6.4 (multi-site Puts): synchronously replicate Puts to
// more than one site, making those sites authoritative for strong reads.
//
// "If the system synchronously sends Puts to a larger collection of primary
// nodes ... the expected latency of strong Gets is reduced (and the
// availability of such operations increases)" - at the cost of slower Puts,
// since the primary acks only after the slowest synchronous replica.

#include <cstdio>
#include <vector>

#include "src/core/consistency.h"
#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

struct Cell {
  double strong_get_ms = 0.0;
  double put_ms = 0.0;
  double password_utility = 0.0;
};

Cell RunCell(const char* site, int sync_replicas) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 64 + sync_replicas;
  testbed_options.sync_replica_count = sync_replicas;
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  Cell cell;
  {
    core::PileusClient::Options client_options;
    client_options.seed = 3;
    auto client = testbed.MakeClient(site, client_options);
    client->StartProbing();
    RunOptions run;
    run.sla = SingleConsistencySla(core::Guarantee::Strong());
    run.total_ops = 3000;
    run.warmup_ops = 500;
    run.workload.seed = 64;
    const RunStats stats = RunYcsb(testbed, *client, run);
    cell.strong_get_ms = stats.get_latency_us.Mean() / 1000.0;
    cell.put_ms = stats.put_latency_us.Mean() / 1000.0;
  }
  {
    core::PileusClient::Options client_options;
    client_options.seed = 4;
    auto client = testbed.MakeClient(site, client_options);
    client->StartProbing();
    RunOptions run;
    run.sla = core::PasswordCheckingSla();
    run.total_ops = 3000;
    run.warmup_ops = 500;
    run.workload.seed = 65;
    cell.password_utility = RunYcsb(testbed, *client, run).AvgUtility();
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("=== Ablation (Section 6.4): multi-site synchronous Puts ===\n");
  std::printf("Sync replica sets: 1 = {England}, 2 = +{US}, 3 = +{India}\n\n");

  for (const char* site : {kUs, kEngland, kIndia, kChina}) {
    std::printf("--- Client in %s ---\n", site);
    AsciiTable table({"Sync replicas", "Strong Get (ms)", "Put (ms)",
                      "Password SLA utility"});
    for (int n = 1; n <= 3; ++n) {
      const Cell cell = RunCell(site, n);
      char g[32], p[32];
      std::snprintf(g, sizeof(g), "%.1f", cell.strong_get_ms);
      std::snprintf(p, sizeof(p), "%.1f", cell.put_ms);
      table.AddRow({std::to_string(n), g, p,
                    FormatUtility(cell.password_utility)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Expectation: strong Gets become local (US with 2 replicas, "
              "India with 3) while Puts slow to the farthest sync replica's "
              "round trip; the password SLA's utility jumps where strong "
              "reads turn local.\n");
  return 0;
}
