// Dynamic tablets under a synthetic hotspot (DESIGN.md Section 14).
//
// A four-node fleet starts perfectly balanced: one tablet per node, uniform
// traffic. Then the workload concentrates 90% of its ops on one quarter of
// the keyspace — a single tablet, a single node — and throughput collapses
// to roughly what that one node can serve. The rebalancer's job is to win
// it back: split the hot tablet at its observed median until the pieces are
// cool enough to spread, then live-migrate them across the fleet.
//
// Throughput is modeled, not wall-clocked: every op costs its primary a
// fixed service time, so a workload's throughput is total ops divided by
// the busiest node's busy time (the makespan of a perfectly pipelined
// fleet). That keeps the bench deterministic while still rewarding exactly
// what rebalancing buys — spreading the busy time.
//
// Self-checks (exit 1 on failure):
//   1. After rebalancing converges, hotspot throughput recovers to >= 80%
//      of the balanced-workload baseline.
//   2. Every live migration's write-unavailability window (fence on the
//      source to promote on the target, as recorded by the coordinator's
//      pileus_tablet_migration_window_us histogram) stays under a bound
//      and is recorded exactly once per migration — the fenced drain is
//      finite, so windows must not stretch with the ops pushed through.
//   3. Coordinator kill (DESIGN.md Section 15): a durable coordinator dies
//      at the worst crash point — mid-cutover, range fenced on the source —
//      and a standby waits out the lease, replays the intent log, and
//      resumes the migration. Write unavailability for the migrating range
//      stays under lease + drain budget, and every other range serves
//      writes uninterrupted throughout.
//
// Writes BENCH_tablets.json (cwd) so the numbers are trackable across
// commits. PILEUS_BENCH_SMOKE=1 shrinks the op counts; the self-checks
// hold in both modes.

#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/proto/messages.h"
#include "src/sim/fault_injector.h"
#include "src/storage/storage_node.h"
#include "src/tablets/coordinator.h"
#include "src/tablets/rebalancer.h"
#include "src/tablets/tablet_map.h"
#include "src/telemetry/metrics.h"
#include "src/util/histogram.h"

using namespace pileus;  // NOLINT

namespace {

bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

// Virtual time that flows as work happens: every read advances the clock by
// a small tick. The coordinator measures the migration window with
// NowMicros() reads around the fence→drain→promote span, so in this world
// the recorded window counts the clock observations the protocol makes
// while the range is fenced. The bound below therefore checks a structural
// property: cutover closes in O(1) coordinator steps, independent of how
// many ops the workload pushed — a drain that scaled with workload size
// would stretch the window past the bound.
class TickingClock : public Clock {
 public:
  explicit TickingClock(MicrosecondCount tick_us) : tick_us_(tick_us) {}
  MicrosecondCount NowMicros() const override {
    return now_us_.fetch_add(tick_us_, std::memory_order_relaxed) + tick_us_;
  }

 private:
  const MicrosecondCount tick_us_;
  mutable std::atomic<MicrosecondCount> now_us_{1'000'000};
};

constexpr int kNodes = 4;
constexpr int kKeys = 400;            // k0000..k0399; one quarter per tablet.
constexpr int kHotBegin = 100;        // The hot band is [k0100, k0200) —
constexpr int kHotEnd = 200;          // exactly node 2's initial tablet.
constexpr double kHotFraction = 0.9;  // Ops landing in the hot band.
constexpr MicrosecondCount kServiceUs = 100;  // Per-op cost at the primary.
constexpr const char* kTable = "bench";

std::string KeyName(int index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%04d", index);
  return buf;
}

struct World {
  std::unique_ptr<TickingClock> clock;
  std::unique_ptr<sim::FaultInjector> injector;
  tablets::TabletMap initial;  // Seed map, kept for standby Recover().
  std::vector<std::unique_ptr<storage::StorageNode>> nodes;
  std::unique_ptr<tablets::TabletCoordinator> coordinator;
  std::unique_ptr<telemetry::MetricsRegistry> registry;

  storage::StorageNode* NodeNamed(const std::string& name) {
    for (auto& node : nodes) {
      if (node->name() == name) {
        return node.get();
      }
    }
    return nullptr;
  }
};

// With `intent_log_path` empty the coordinator is the plain in-memory one;
// otherwise it boots durably via Recover() under `lease_us` leases, wired
// to the world's fault injector so crash points can kill it mid-protocol.
World BuildWorld(const std::string& intent_log_path = "",
                 MicrosecondCount lease_us = 0) {
  World world;
  world.clock = std::make_unique<TickingClock>(/*tick_us=*/2);
  world.injector = std::make_unique<sim::FaultInjector>();
  tablets::TabletMap initial;
  initial.table = kTable;
  initial.version = 1;
  for (int i = 0; i < kNodes; ++i) {
    const std::string name = "n" + std::to_string(i + 1);
    auto node = std::make_unique<storage::StorageNode>(name, "dc1",
                                                       world.clock.get());
    tablets::TabletInfo info;
    info.range.begin = i == 0 ? "" : KeyName(i * kKeys / kNodes);
    info.range.end = i == kNodes - 1 ? "" : KeyName((i + 1) * kKeys / kNodes);
    info.config.epoch = 1;
    info.config.primary = name;
    info.config.members = {name};
    storage::Tablet::Options tablet_options;
    tablet_options.range = info.range;
    tablet_options.is_primary = true;
    if (Status added = node->AddTablet(kTable, tablet_options); !added.ok()) {
      std::fprintf(stderr, "AddTablet: %s\n", added.ToString().c_str());
      std::exit(1);
    }
    initial.tablets.push_back(std::move(info));
    world.nodes.push_back(std::move(node));
  }
  world.initial = initial;
  if (intent_log_path.empty()) {
    world.coordinator = std::make_unique<tablets::TabletCoordinator>(
        std::move(initial), world.clock.get());
  } else {
    tablets::TabletCoordinator::Options options;
    options.intent_log_path = intent_log_path;
    options.coordinator_name = "coord-a";
    options.lease_duration_us = lease_us;
    options.fault_injector = world.injector.get();
    auto recovered = tablets::TabletCoordinator::Recover(
        std::move(initial), world.clock.get(), options);
    if (!recovered.ok()) {
      std::fprintf(stderr, "Recover: %s\n",
                   recovered.status().ToString().c_str());
      std::exit(1);
    }
    world.coordinator = std::move(*recovered);
  }
  world.registry = std::make_unique<telemetry::MetricsRegistry>();
  world.coordinator->EnableTelemetry(world.registry.get());
  for (auto& node : world.nodes) {
    world.coordinator->RegisterNode(node.get());
  }
  if (Status published = world.coordinator->PublishMap(); !published.ok()) {
    std::fprintf(stderr, "PublishMap: %s\n", published.ToString().c_str());
    std::exit(1);
  }
  return world;
}

struct WorkloadResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  // Busy time model: ops served per primary; the makespan is the busiest
  // node's count times kServiceUs.
  std::map<std::string, uint64_t> ops_by_node;

  double Throughput() const {
    uint64_t busiest = 0;
    for (const auto& [node, count] : ops_by_node) {
      busiest = std::max(busiest, count);
    }
    if (busiest == 0) {
      return 0.0;
    }
    return static_cast<double>(ops) /
           (static_cast<double>(busiest) * kServiceUs / 1e6);
  }
};

// Drives `ops` requests routed by the coordinator's current map (re-read
// every op, so mid-run splits and migrations redirect traffic immediately).
// `hot` concentrates kHotFraction of ops uniformly inside the hot band.
WorkloadResult RunWorkload(World& world, uint64_t ops, bool hot,
                           uint64_t seed) {
  Random random(seed);
  WorkloadResult result;
  for (uint64_t i = 0; i < ops; ++i) {
    int index;
    if (hot && random.NextDouble() < kHotFraction) {
      index = kHotBegin +
              static_cast<int>(random.NextUint64(kHotEnd - kHotBegin));
    } else {
      index = static_cast<int>(random.NextUint64(kKeys));
    }
    const std::string key = KeyName(index);
    const tablets::TabletInfo* owner =
        world.coordinator->map().OwnerOf(key);
    storage::StorageNode* node =
        owner == nullptr ? nullptr : world.NodeNamed(owner->config.primary);
    if (node == nullptr) {
      ++result.errors;
      continue;
    }
    proto::Message request;
    if (random.NextDouble() < 0.3) {
      proto::PutRequest put;
      put.table = kTable;
      put.key = key;
      put.value = "v" + std::to_string(i);
      request = put;
    } else {
      proto::GetRequest get;
      get.table = kTable;
      get.key = key;
      request = get;
    }
    const proto::Message reply = node->Handle(request);
    if (std::holds_alternative<proto::ErrorReply>(reply)) {
      ++result.errors;
    } else {
      ++result.ops;
      ++result.ops_by_node[node->name()];
    }
  }
  return result;
}

// --- Coordinator kill (DESIGN.md Section 15) ---

constexpr MicrosecondCount kLeaseUs = 100'000;       // Virtual lease term.
constexpr MicrosecondCount kDrainBudgetUs = 50'000;  // Same bound as phase 4.

struct KillPhaseResult {
  bool ok = false;
  int64_t unavailability_us = 0;       // Crash to first accepted hot write.
  uint64_t standby_wait_attempts = 0;  // Recover() calls fenced by the lease.
  uint64_t hot_probe_attempts = 0;     // Migrating-range writes in the window.
  uint64_t hot_probe_failures = 0;     // All must fail: the range is fenced.
  uint64_t cold_probe_writes = 0;      // Other-range writes in the window.
  uint64_t cold_probe_failures = 0;    // Must be zero: uninterrupted service.
};

bool ProbePut(storage::StorageNode* node, const std::string& key,
              const std::string& value) {
  proto::PutRequest put;
  put.table = kTable;
  put.key = key;
  put.value = value;
  proto::Message request = put;
  return !std::holds_alternative<proto::ErrorReply>(node->Handle(request));
}

// A durable coordinator dies at the worst crash point of a live migration —
// the source just fenced the range, the target is not yet promoted — and a
// standby must wait out the lease before it may replay the intent log and
// resume the cutover. The whole down window is probed: writes to the
// migrating range must fail (no split brain), writes to every other range
// must keep landing.
KillPhaseResult RunCoordinatorKillPhase(bool smoke) {
  KillPhaseResult result;
  char tmpl[] = "/tmp/pileus_bench_tablets.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "coordinator kill: mkdtemp failed\n");
    return result;
  }
  const std::string log_path = std::string(tmpl) + "/coordinator.intents";
  World world = BuildWorld(log_path, kLeaseUs);

  // Seed data so the cutover drain has records to pull.
  (void)RunWorkload(world, smoke ? 500 : 2'000, /*hot=*/false, /*seed=*/7);

  const std::string hot_begin = KeyName(kHotBegin);
  if (Status renewed = world.coordinator->RenewLease(); !renewed.ok()) {
    std::fprintf(stderr, "coordinator kill: RenewLease: %s\n",
                 renewed.ToString().c_str());
    return result;
  }
  world.injector->ArmCrashPoint("tablets.migration.after_fence");
  const Status migrate = world.coordinator->ExecuteMigration(hot_begin, "n4");
  if (migrate.code() != StatusCode::kCancelled) {
    std::fprintf(stderr,
                 "coordinator kill: expected the crash point to fire, got %s\n",
                 migrate.ToString().c_str());
    return result;
  }
  const tablets::TabletMap fenced = world.coordinator->map();
  const MicrosecondCount crash_us = world.clock->NowMicros();
  world.coordinator.reset();  // kill -9: only the intent log survives.

  tablets::TabletCoordinator::Options standby;
  standby.intent_log_path = log_path;
  standby.coordinator_name = "coord-b";
  standby.lease_duration_us = kLeaseUs;
  std::unique_ptr<tablets::TabletCoordinator> successor;
  for (uint64_t i = 0; i < 500'000 && successor == nullptr; ++i) {
    auto attempt = tablets::TabletCoordinator::Recover(
        world.initial, world.clock.get(), standby);
    if (attempt.ok()) {
      successor = std::move(*attempt);
      break;
    }
    ++result.standby_wait_attempts;
    // Probe the data plane while the control plane is down.
    for (const tablets::TabletInfo& info : fenced.tablets) {
      const std::string key =
          info.range.begin.empty() ? KeyName(0) : info.range.begin;
      storage::StorageNode* node = world.NodeNamed(info.config.primary);
      const bool served =
          node != nullptr && ProbePut(node, key, "probe");
      if (info.range.begin == hot_begin) {
        ++result.hot_probe_attempts;
        if (!served) {
          ++result.hot_probe_failures;
        }
      } else {
        ++result.cold_probe_writes;
        if (!served) {
          ++result.cold_probe_failures;
        }
      }
    }
  }
  if (successor == nullptr) {
    std::fprintf(stderr, "coordinator kill: standby never took over\n");
    return result;
  }
  world.coordinator = std::move(successor);
  for (auto& node : world.nodes) {
    world.coordinator->RegisterNode(node.get());
  }
  if (Status done = world.coordinator->CompleteRecovery(); !done.ok()) {
    std::fprintf(stderr, "coordinator kill: CompleteRecovery: %s\n",
                 done.ToString().c_str());
    return result;
  }

  // The resumed cutover must have promoted the target; the first accepted
  // write to the migrating range closes the unavailability window.
  const tablets::TabletInfo* owner =
      world.coordinator->map().OwnerOf(hot_begin);
  storage::StorageNode* new_primary =
      owner == nullptr ? nullptr : world.NodeNamed(owner->config.primary);
  if (owner == nullptr || owner->config.primary != "n4" ||
      new_primary == nullptr ||
      !ProbePut(new_primary, hot_begin, "post-recovery")) {
    std::fprintf(stderr,
                 "coordinator kill: migration did not resume to the target\n");
    return result;
  }
  result.unavailability_us = world.clock->NowMicros() - crash_us;

  result.ok = true;
  if (world.coordinator->migrations() != 1 ||
      world.coordinator->pending_intent().has_value()) {
    std::fprintf(stderr,
                 "FAIL: standby finished %llu migrations (want 1), pending "
                 "intent %s\n",
                 static_cast<unsigned long long>(
                     world.coordinator->migrations()),
                 world.coordinator->pending_intent().has_value() ? "set"
                                                                 : "clear");
    result.ok = false;
  }
  if (result.standby_wait_attempts == 0) {
    std::fprintf(stderr,
                 "FAIL: the standby never waited — the lease did not fence "
                 "the takeover\n");
    result.ok = false;
  }
  if (result.hot_probe_attempts == 0 ||
      result.hot_probe_failures != result.hot_probe_attempts) {
    std::fprintf(stderr,
                 "FAIL: the fenced range accepted writes during the down "
                 "window (%llu of %llu rejected) — split brain\n",
                 static_cast<unsigned long long>(result.hot_probe_failures),
                 static_cast<unsigned long long>(result.hot_probe_attempts));
    result.ok = false;
  }
  if (result.cold_probe_writes == 0 || result.cold_probe_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: other ranges did not serve uninterrupted (%llu of "
                 "%llu probes failed)\n",
                 static_cast<unsigned long long>(result.cold_probe_failures),
                 static_cast<unsigned long long>(result.cold_probe_writes));
    result.ok = false;
  }
  if (result.unavailability_us <= 0 ||
      result.unavailability_us > kLeaseUs + kDrainBudgetUs) {
    std::fprintf(stderr,
                 "FAIL: write unavailability %lld us exceeds the lease + "
                 "drain budget %lld us\n",
                 static_cast<long long>(result.unavailability_us),
                 static_cast<long long>(kLeaseUs + kDrainBudgetUs));
    result.ok = false;
  }
  return result;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const uint64_t phase_ops = smoke ? 6'000 : 30'000;
  const uint64_t round_ops = phase_ops / 4;
  const int max_rounds = 16;

  World world = BuildWorld();

  std::printf("dynamic tablets: %d nodes, %d keys, hot band [%s, %s) %.0f%%\n",
              kNodes, kKeys, KeyName(kHotBegin).c_str(),
              KeyName(kHotEnd).c_str(), kHotFraction * 100);

  // Phase 1: balanced baseline — uniform keys, one tablet per node.
  const WorkloadResult balanced =
      RunWorkload(world, phase_ops, /*hot=*/false, /*seed=*/1);
  std::printf("balanced:            %8.0f ops/s (modeled)\n",
              balanced.Throughput());

  // Phase 2: the hotspot hits, nothing rebalances yet. The sample before it
  // primes the per-tablet op-counter baselines: a first sample has no
  // baseline and reports 0 ops/s, which would make every threshold trip.
  (void)world.coordinator->SampleLoads();
  const WorkloadResult hotspot =
      RunWorkload(world, phase_ops, /*hot=*/true, /*seed=*/2);
  std::printf("hotspot, static map: %8.0f ops/s (modeled)\n",
              hotspot.Throughput());

  // Phase 3: rebalance. Split hot tablets (anything above ~1/8 of the total
  // observed rate — half a fair node share), then move the pieces to cool
  // nodes, one observation round at a time until a round plans nothing.
  uint64_t total_rate = 0;
  for (const tablets::TabletLoad& load : world.coordinator->SampleLoads()) {
    total_rate += load.ops_per_sec;
  }
  tablets::Rebalancer::Options policy;
  policy.split_threshold_bytes = 0;  // Rate-driven: splits chase heat.
  policy.split_threshold_ops_per_sec = std::max<uint64_t>(total_rate / 8, 1);
  policy.imbalance_ratio = 1.3;
  const tablets::Rebalancer rebalancer(policy);

  int rounds = 0;
  uint64_t actions_total = 0;
  int quiet_rounds = 0;
  for (; rounds < max_rounds; ++rounds) {
    (void)RunWorkload(world, round_ops, /*hot=*/true,
                      /*seed=*/100 + static_cast<uint64_t>(rounds));
    const std::vector<tablets::RebalanceAction> actions =
        world.coordinator->RunRebalanceRound(rebalancer);
    for (const tablets::RebalanceAction& action : actions) {
      std::printf("  round %2d: %s\n", rounds + 1,
                  action.ToString().c_str());
    }
    actions_total += actions.size();
    // Freshly split or migrated tablets have no rate baseline for one
    // sampling round, so a single quiet round can be observation lag, not
    // convergence; stop after two in a row.
    quiet_rounds = actions.empty() ? quiet_rounds + 1 : 0;
    if (quiet_rounds >= 2 && actions_total > 0) {
      break;
    }
  }
  std::printf("rebalancer: %llu splits, %llu migrations (%llu failed) over "
              "%d rounds, map v%llu with %zu tablets\n",
              static_cast<unsigned long long>(world.coordinator->splits()),
              static_cast<unsigned long long>(world.coordinator->migrations()),
              static_cast<unsigned long long>(
                  world.coordinator->migration_failures()),
              rounds + 1,
              static_cast<unsigned long long>(world.coordinator->map().version),
              world.coordinator->map().tablets.size());

  // Phase 4: the same hotspot against the rebalanced map.
  const WorkloadResult rebalanced =
      RunWorkload(world, phase_ops, /*hot=*/true, /*seed=*/3);
  std::printf("hotspot, rebalanced: %8.0f ops/s (modeled, %.0f%% of "
              "balanced)\n",
              rebalanced.Throughput(),
              100.0 * rebalanced.Throughput() / balanced.Throughput());

  // Migration write-unavailability windows, as the coordinator recorded
  // them (virtual time; the ticking clock advances with drain work).
  const Histogram windows =
      world.registry
          ->GetHistogram(telemetry::WithLabels(
              "pileus_tablet_migration_window_us", {{"table", kTable}}))
          ->Merged();
  std::printf("migration windows:   n=%llu p50=%lld us max=%lld us\n",
              static_cast<unsigned long long>(windows.count()),
              static_cast<long long>(windows.Quantile(0.5)),
              static_cast<long long>(windows.max()));

  bool ok = true;
  if (balanced.Throughput() <= 0 ||
      rebalanced.Throughput() < 0.8 * balanced.Throughput()) {
    std::fprintf(stderr,
                 "FAIL: rebalanced hotspot throughput %.0f is below 80%% of "
                 "the balanced baseline %.0f\n",
                 rebalanced.Throughput(), balanced.Throughput());
    ok = false;
  }
  if (world.coordinator->migrations() == 0 ||
      world.coordinator->splits() == 0) {
    std::fprintf(stderr,
                 "FAIL: rebalancer never split (%llu) or never migrated "
                 "(%llu) — the hotspot was not acted on\n",
                 static_cast<unsigned long long>(world.coordinator->splits()),
                 static_cast<unsigned long long>(
                     world.coordinator->migrations()));
    ok = false;
  }
  constexpr int64_t kWindowBoundUs = 50'000;  // 50 ms of virtual time.
  if (windows.count() != world.coordinator->migrations() ||
      windows.max() <= 0 || windows.max() > kWindowBoundUs) {
    std::fprintf(stderr,
                 "FAIL: migration windows out of bounds (n=%llu vs %llu "
                 "migrations, max=%lld us, bound=%lld us)\n",
                 static_cast<unsigned long long>(windows.count()),
                 static_cast<unsigned long long>(
                     world.coordinator->migrations()),
                 static_cast<long long>(windows.max()),
                 static_cast<long long>(kWindowBoundUs));
    ok = false;
  }
  if (hotspot.Throughput() >= 0.95 * balanced.Throughput()) {
    std::fprintf(stderr,
                 "FAIL: the hotspot did not degrade throughput (%.0f vs "
                 "%.0f) — the bench is not measuring anything\n",
                 hotspot.Throughput(), balanced.Throughput());
    ok = false;
  }

  // Phase 5: kill the coordinator mid-cutover; a standby resumes from the
  // intent log after the lease runs out.
  const KillPhaseResult kill = RunCoordinatorKillPhase(smoke);
  std::printf("coordinator kill:    unavailability %lld us (bound %lld us), "
              "%llu lease-fenced takeover attempts, hot probes %llu/%llu "
              "rejected, cold probes %llu/%llu served\n",
              static_cast<long long>(kill.unavailability_us),
              static_cast<long long>(kLeaseUs + kDrainBudgetUs),
              static_cast<unsigned long long>(kill.standby_wait_attempts),
              static_cast<unsigned long long>(kill.hot_probe_failures),
              static_cast<unsigned long long>(kill.hot_probe_attempts),
              static_cast<unsigned long long>(kill.cold_probe_writes -
                                              kill.cold_probe_failures),
              static_cast<unsigned long long>(kill.cold_probe_writes));
  ok = ok && kill.ok;

  // --- BENCH_tablets.json ---
  FILE* json = std::fopen("BENCH_tablets.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(json,
                 "  \"balanced_ops_per_sec\": %.0f,\n"
                 "  \"hotspot_static_ops_per_sec\": %.0f,\n"
                 "  \"hotspot_rebalanced_ops_per_sec\": %.0f,\n"
                 "  \"recovery_fraction\": %.3f,\n",
                 balanced.Throughput(), hotspot.Throughput(),
                 rebalanced.Throughput(),
                 rebalanced.Throughput() / balanced.Throughput());
    std::fprintf(json,
                 "  \"splits\": %llu,\n  \"migrations\": %llu,\n"
                 "  \"migration_failures\": %llu,\n  \"map_version\": %llu,\n"
                 "  \"tablets\": %zu,\n",
                 static_cast<unsigned long long>(world.coordinator->splits()),
                 static_cast<unsigned long long>(
                     world.coordinator->migrations()),
                 static_cast<unsigned long long>(
                     world.coordinator->migration_failures()),
                 static_cast<unsigned long long>(
                     world.coordinator->map().version),
                 world.coordinator->map().tablets.size());
    std::fprintf(json,
                 "  \"migration_window_us\": {\"n\": %llu, \"p50\": %lld, "
                 "\"max\": %lld, \"bound\": %lld},\n",
                 static_cast<unsigned long long>(windows.count()),
                 static_cast<long long>(windows.Quantile(0.5)),
                 static_cast<long long>(windows.max()),
                 static_cast<long long>(kWindowBoundUs));
    std::fprintf(json,
                 "  \"coordinator_kill\": {\"lease_us\": %lld, "
                 "\"drain_budget_us\": %lld, \"unavailability_us\": %lld, "
                 "\"bound_us\": %lld, \"standby_wait_attempts\": %llu, "
                 "\"hot_probes_rejected\": %llu, \"hot_probes\": %llu, "
                 "\"cold_probes_served\": %llu, \"cold_probes\": %llu, "
                 "\"ok\": %s},\n",
                 static_cast<long long>(kLeaseUs),
                 static_cast<long long>(kDrainBudgetUs),
                 static_cast<long long>(kill.unavailability_us),
                 static_cast<long long>(kLeaseUs + kDrainBudgetUs),
                 static_cast<unsigned long long>(kill.standby_wait_attempts),
                 static_cast<unsigned long long>(kill.hot_probe_failures),
                 static_cast<unsigned long long>(kill.hot_probe_attempts),
                 static_cast<unsigned long long>(kill.cold_probe_writes -
                                                 kill.cold_probe_failures),
                 static_cast<unsigned long long>(kill.cold_probe_writes),
                 kill.ok ? "true" : "false");
    std::fprintf(json, "  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_tablets.json\n");
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
