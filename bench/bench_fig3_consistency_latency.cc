// Figure 3: average Get latency per consistency choice and client location.
//
// Paper result (ms):
//   consistency      US   England  India  China
//   strong          147        1     435    307
//   causal          146        1     431    306
//   bounded(30)      75        1     234    241
//   read-my-writes   13        1      18    166
//   monotonic         1        1       1    160
//   eventual          1        1       1    160
//
// This bench reruns the YCSB workload on the simulated Figure 10 test bed
// with a single-consistency SLA per row and prints the same table. Absolute
// values track the RTT matrix; the shape (orders-of-magnitude spread, the
// bounded(30) midpoints, read-my-writes' small premium over eventual) is the
// reproduction target.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/consistency.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/monitoring/aggregator.h"
#include "src/telemetry/metrics.h"
#include "src/workload/ycsb.h"

namespace {

using pileus::core::Guarantee;
using namespace pileus::experiments;  // NOLINT

constexpr uint64_t kOpsPerCell = 4000;
constexpr uint64_t kWarmupOps = 1000;

// PILEUS_BENCH_SMOKE=1 shrinks the run so CI can execute the bench end to end
// in seconds; the table is printed either way, just from fewer samples.
bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

// --- Cold-start column (DESIGN.md Section 12) ---
//
// A brand-new client has an empty monitor: its optimistic "unknown nodes are
// fast" estimate targets the strong subSLA at the far-away primary, misses
// both latency bounds, and the first operation delivers zero utility. With a
// fleet digest installed as a prior — and zero probes sent — the same client
// ranks the SLA like a warmed-up one and takes the local eventual read.
//
// Per seeded trial: warm a probing client at the trial's site, feed its
// monitor into an aggregator, then issue one Get each from two fresh clients
// (digest installed vs nothing) and compare target ranks and first-op
// utility. Self-checked: rank agreement with the warm client >= 90%, and the
// prior-informed mean first-op utility must beat the no-prior baseline.

struct ColdStartSiteStats {
  uint64_t trials = 0;
  double utility_prior_sum = 0.0;
  double utility_noprior_sum = 0.0;
};

struct ColdStartResult {
  uint64_t trials = 0;
  uint64_t rank_agreements = 0;
  double utility_prior_sum = 0.0;
  double utility_noprior_sum = 0.0;
  std::vector<ColdStartSiteStats> per_site;  // Parallel to the site list.
};

// The SLA the cold client ranks: strong within 100 ms (utility 1.0) vs
// eventual within 200 ms (utility 0.5). Chosen so the primary's real RTT
// from every non-England site breaks the strong bound: targeting it on
// optimism costs the first op (from China the 307 ms round trip even breaks
// the eventual bound), while the prior steers to the nearest replica.
pileus::core::Sla ColdStartSla() {
  return pileus::core::Sla()
      .Add(Guarantee::Strong(), 100 * 1000, 1.0)
      .Add(Guarantee::Eventual(), 200 * 1000, 0.5);
}

ColdStartResult RunColdStart(bool smoke, const std::vector<const char*>& sites,
                             int preload_keys) {
  ColdStartResult result;
  result.per_site.resize(sites.size());
  const uint64_t trials = smoke ? 8 : 40;
  const pileus::core::Sla sla = ColdStartSla();
  const std::string key = pileus::workload::YcsbWorkload::KeyForIndex(0);
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const size_t site_index = trial % sites.size();
    const char* site = sites[site_index];
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 5000 + trial;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, preload_keys);
    testbed.StartReplication();

    // Warm reference: a probing client that has measured the fleet.
    auto warm = testbed.MakeClient(site, {});
    warm->StartProbing();
    testbed.env().RunFor(pileus::SecondsToMicroseconds(12));
    warm->StopProbing();

    // The fleet digest, built from the warm client's report alone (one
    // reporter is the degenerate fleet; the merge path is identical).
    pileus::monitoring::MonitorAggregator aggregator(testbed.env().clock());
    pileus::core::Monitor& warm_monitor = warm->client().monitor();
    aggregator.Ingest(site, warm_monitor.state_version(),
                      warm_monitor.BuildReportConditions());
    const pileus::monitoring::ConditionDigest digest = aggregator.Digest();

    auto with_prior = testbed.MakeClient(site, {});
    auto no_prior = testbed.MakeClient(site, {});
    with_prior->client().monitor().InstallDigest(digest);

    // One first-op Get per client; none of the three sends a probe here.
    auto first_get = [&](GeoClient& frontend) -> pileus::core::GetOutcome {
      auto session = frontend.client().BeginSession(sla);
      if (!session.ok()) {
        return {};
      }
      auto got = frontend.client().Get(*session, key);
      return got.ok() ? got->outcome : pileus::core::GetOutcome{};
    };
    const pileus::core::GetOutcome warm_outcome = first_get(*warm);
    const pileus::core::GetOutcome prior_outcome = first_get(*with_prior);
    const pileus::core::GetOutcome noprior_outcome = first_get(*no_prior);

    if (with_prior->probes_sent() != 0 || no_prior->probes_sent() != 0) {
      std::printf("FAIL: cold-start client sent probes\n");
      std::exit(1);
    }
    ++result.trials;
    if (prior_outcome.target_rank == warm_outcome.target_rank) {
      ++result.rank_agreements;
    }
    result.utility_prior_sum += prior_outcome.utility;
    result.utility_noprior_sum += noprior_outcome.utility;
    ColdStartSiteStats& site_stats = result.per_site[site_index];
    ++site_stats.trials;
    site_stats.utility_prior_sum += prior_outcome.utility;
    site_stats.utility_noprior_sum += noprior_outcome.utility;
  }
  return result;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const uint64_t ops_per_cell = smoke ? 300 : kOpsPerCell;
  const uint64_t warmup_ops = smoke ? 100 : kWarmupOps;
  const int preload_keys = smoke ? 1000 : 10000;
  std::printf("=== Figure 3: average Get latency (ms) per consistency and "
              "client location ===%s\n\n", smoke ? " [smoke]" : "");

  const std::vector<std::pair<const char*, Guarantee>> kConsistencies = {
      {"strong", Guarantee::Strong()},
      {"causal", Guarantee::Causal()},
      {"bounded(30)", Guarantee::BoundedSeconds(30)},
      {"read-my-writes", Guarantee::ReadMyWrites()},
      {"monotonic", Guarantee::Monotonic()},
      {"eventual", Guarantee::Eventual()},
  };
  const std::vector<const char*> kClientSites = {kUs, kEngland, kIndia,
                                                 kChina};

  // One row per consistency; columns per client site. The hit table is built
  // from each run's telemetry registry rather than RunStats, exercising the
  // same per-subSLA counters operators scrape in deployments.
  std::vector<std::vector<double>> latencies(
      kConsistencies.size(), std::vector<double>(kClientSites.size(), 0.0));
  std::vector<std::vector<double>> hit_rates(
      kConsistencies.size(), std::vector<double>(kClientSites.size(), 0.0));

  for (size_t site_index = 0; site_index < kClientSites.size();
       ++site_index) {
    const char* site = kClientSites[site_index];
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 1000 + site_index;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, preload_keys);
    testbed.StartReplication();

    for (size_t row = 0; row < kConsistencies.size(); ++row) {
      pileus::telemetry::MetricsRegistry registry;
      pileus::core::PileusClient::Options client_options;
      client_options.seed = 17 * (row + 1);
      client_options.metrics = &registry;
      auto client = testbed.MakeClient(site, client_options);
      client->StartProbing();

      RunOptions run;
      run.sla = SingleConsistencySla(kConsistencies[row].second);
      run.total_ops = ops_per_cell;
      run.warmup_ops = warmup_ops;
      run.workload.seed = 7 + row;
      const RunStats stats = RunYcsb(testbed, *client, run);
      latencies[row][site_index] = stats.get_latency_us.Mean() / 1000.0;

      // Telemetry-side per-subSLA breakdown. Counters include warm-up ops
      // (the registry sees every Get the client executed).
      const uint64_t met = registry
                               .GetCounter(pileus::telemetry::WithLabels(
                                   "pileus_client_sla_met_total",
                                   {{"table", kTableName}, {"rank", "0"}}))
                               ->Value();
      const uint64_t gets = registry
                                .GetCounter(pileus::telemetry::WithLabels(
                                    "pileus_client_gets_total",
                                    {{"table", kTableName}}))
                                ->Value();
      hit_rates[row][site_index] =
          gets == 0 ? 0.0
                    : 100.0 * static_cast<double>(met) /
                          static_cast<double>(gets);
      client->StopProbing();
    }
  }

  AsciiTable table({"Consistency", "U.S.", "England (Primary)", "India",
                    "China"});
  for (size_t row = 0; row < kConsistencies.size(); ++row) {
    std::vector<std::string> cells = {kConsistencies[row].first};
    for (double ms : latencies[row]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", ms);
      cells.push_back(buf);
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.ToString().c_str());

  AsciiTable hits({"SubSLA hit % (telemetry)", "U.S.", "England (Primary)",
                   "India", "China"});
  for (size_t row = 0; row < kConsistencies.size(); ++row) {
    std::vector<std::string> cells = {kConsistencies[row].first};
    for (double pct : hit_rates[row]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", pct);
      cells.push_back(buf);
    }
    hits.AddRow(std::move(cells));
  }
  std::printf("%s\n", hits.ToString().c_str());

  std::printf("Paper (ms):        strong 147/1/435/307, causal 146/1/431/306,\n"
              "                   bounded(30) 75/1/234/241, rmw 13/1/18/166,\n"
              "                   monotonic 1/1/1/160, eventual 1/1/1/160\n\n");

  // --- Cold start: first-op utility with vs without a fleet digest ---
  const ColdStartResult cold =
      RunColdStart(smoke, kClientSites, smoke ? 200 : 1000);
  const double agreement = cold.trials == 0
                               ? 0.0
                               : static_cast<double>(cold.rank_agreements) /
                                     static_cast<double>(cold.trials);
  const double mean_prior =
      cold.trials == 0 ? 0.0
                       : cold.utility_prior_sum /
                             static_cast<double>(cold.trials);
  const double mean_noprior =
      cold.trials == 0 ? 0.0
                       : cold.utility_noprior_sum /
                             static_cast<double>(cold.trials);
  std::printf("=== Cold start: zero-probe first op, fleet digest as prior "
              "===%s\n", smoke ? " [smoke]" : "");
  std::printf("  trials:                    %llu (sites round-robin)\n",
              static_cast<unsigned long long>(cold.trials));
  std::printf("  rank agreement vs warmed:  %.1f%%\n", 100.0 * agreement);
  std::printf("  mean first-op utility:     %.3f with prior, %.3f without\n",
              mean_prior, mean_noprior);
  for (size_t i = 0; i < kClientSites.size(); ++i) {
    const ColdStartSiteStats& s = cold.per_site[i];
    if (s.trials == 0) {
      continue;
    }
    std::printf("    %-10s %.3f with prior, %.3f without (%llu trials)\n",
                kClientSites[i],
                s.utility_prior_sum / static_cast<double>(s.trials),
                s.utility_noprior_sum / static_cast<double>(s.trials),
                static_cast<unsigned long long>(s.trials));
  }

  FILE* json = std::fopen("BENCH_coldstart.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"trials\": %llu, \"rank_agreement\": %.4f, "
                 "\"mean_first_op_utility_prior\": %.4f, "
                 "\"mean_first_op_utility_noprior\": %.4f, "
                 "\"smoke\": %s}\n",
                 static_cast<unsigned long long>(cold.trials), agreement,
                 mean_prior, mean_noprior, smoke ? "true" : "false");
    std::fclose(json);
  }

  // Self-checks: the digest must make a cold client rank like a warmed one
  // and lift first-op utility over the optimistic no-prior baseline.
  if (agreement < 0.9) {
    std::printf("FAIL: cold-start rank agreement %.1f%% below 90%%\n",
                100.0 * agreement);
    return 1;
  }
  if (mean_prior <= mean_noprior) {
    std::printf("FAIL: prior did not improve first-op utility "
                "(%.3f vs %.3f)\n", mean_prior, mean_noprior);
    return 1;
  }
  return 0;
}
