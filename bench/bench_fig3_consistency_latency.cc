// Figure 3: average Get latency per consistency choice and client location.
//
// Paper result (ms):
//   consistency      US   England  India  China
//   strong          147        1     435    307
//   causal          146        1     431    306
//   bounded(30)      75        1     234    241
//   read-my-writes   13        1      18    166
//   monotonic         1        1       1    160
//   eventual          1        1       1    160
//
// This bench reruns the YCSB workload on the simulated Figure 10 test bed
// with a single-consistency SLA per row and prints the same table. Absolute
// values track the RTT matrix; the shape (orders-of-magnitude spread, the
// bounded(30) midpoints, read-my-writes' small premium over eventual) is the
// reproduction target.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/consistency.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/telemetry/metrics.h"

namespace {

using pileus::core::Guarantee;
using namespace pileus::experiments;  // NOLINT

constexpr uint64_t kOpsPerCell = 4000;
constexpr uint64_t kWarmupOps = 1000;

// PILEUS_BENCH_SMOKE=1 shrinks the run so CI can execute the bench end to end
// in seconds; the table is printed either way, just from fewer samples.
bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const uint64_t ops_per_cell = smoke ? 300 : kOpsPerCell;
  const uint64_t warmup_ops = smoke ? 100 : kWarmupOps;
  const int preload_keys = smoke ? 1000 : 10000;
  std::printf("=== Figure 3: average Get latency (ms) per consistency and "
              "client location ===%s\n\n", smoke ? " [smoke]" : "");

  const std::vector<std::pair<const char*, Guarantee>> kConsistencies = {
      {"strong", Guarantee::Strong()},
      {"causal", Guarantee::Causal()},
      {"bounded(30)", Guarantee::BoundedSeconds(30)},
      {"read-my-writes", Guarantee::ReadMyWrites()},
      {"monotonic", Guarantee::Monotonic()},
      {"eventual", Guarantee::Eventual()},
  };
  const std::vector<const char*> kClientSites = {kUs, kEngland, kIndia,
                                                 kChina};

  // One row per consistency; columns per client site. The hit table is built
  // from each run's telemetry registry rather than RunStats, exercising the
  // same per-subSLA counters operators scrape in deployments.
  std::vector<std::vector<double>> latencies(
      kConsistencies.size(), std::vector<double>(kClientSites.size(), 0.0));
  std::vector<std::vector<double>> hit_rates(
      kConsistencies.size(), std::vector<double>(kClientSites.size(), 0.0));

  for (size_t site_index = 0; site_index < kClientSites.size();
       ++site_index) {
    const char* site = kClientSites[site_index];
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 1000 + site_index;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, preload_keys);
    testbed.StartReplication();

    for (size_t row = 0; row < kConsistencies.size(); ++row) {
      pileus::telemetry::MetricsRegistry registry;
      pileus::core::PileusClient::Options client_options;
      client_options.seed = 17 * (row + 1);
      client_options.metrics = &registry;
      auto client = testbed.MakeClient(site, client_options);
      client->StartProbing();

      RunOptions run;
      run.sla = SingleConsistencySla(kConsistencies[row].second);
      run.total_ops = ops_per_cell;
      run.warmup_ops = warmup_ops;
      run.workload.seed = 7 + row;
      const RunStats stats = RunYcsb(testbed, *client, run);
      latencies[row][site_index] = stats.get_latency_us.Mean() / 1000.0;

      // Telemetry-side per-subSLA breakdown. Counters include warm-up ops
      // (the registry sees every Get the client executed).
      const uint64_t met = registry
                               .GetCounter(pileus::telemetry::WithLabels(
                                   "pileus_client_sla_met_total",
                                   {{"table", kTableName}, {"rank", "0"}}))
                               ->Value();
      const uint64_t gets = registry
                                .GetCounter(pileus::telemetry::WithLabels(
                                    "pileus_client_gets_total",
                                    {{"table", kTableName}}))
                                ->Value();
      hit_rates[row][site_index] =
          gets == 0 ? 0.0
                    : 100.0 * static_cast<double>(met) /
                          static_cast<double>(gets);
      client->StopProbing();
    }
  }

  AsciiTable table({"Consistency", "U.S.", "England (Primary)", "India",
                    "China"});
  for (size_t row = 0; row < kConsistencies.size(); ++row) {
    std::vector<std::string> cells = {kConsistencies[row].first};
    for (double ms : latencies[row]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", ms);
      cells.push_back(buf);
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.ToString().c_str());

  AsciiTable hits({"SubSLA hit % (telemetry)", "U.S.", "England (Primary)",
                   "India", "China"});
  for (size_t row = 0; row < kConsistencies.size(); ++row) {
    std::vector<std::string> cells = {kConsistencies[row].first};
    for (double pct : hit_rates[row]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", pct);
      cells.push_back(buf);
    }
    hits.AddRow(std::move(cells));
  }
  std::printf("%s\n", hits.ToString().c_str());

  std::printf("Paper (ms):        strong 147/1/435/307, causal 146/1/431/306,\n"
              "                   bounded(30) 75/1/234/241, rmw 13/1/18/166,\n"
              "                   monotonic 1/1/1/160, eventual 1/1/1/160\n");
  return 0;
}
