// Figure 3: average Get latency per consistency choice and client location.
//
// Paper result (ms):
//   consistency      US   England  India  China
//   strong          147        1     435    307
//   causal          146        1     431    306
//   bounded(30)      75        1     234    241
//   read-my-writes   13        1      18    166
//   monotonic         1        1       1    160
//   eventual          1        1       1    160
//
// This bench reruns the YCSB workload on the simulated Figure 10 test bed
// with a single-consistency SLA per row and prints the same table. Absolute
// values track the RTT matrix; the shape (orders-of-magnitude spread, the
// bounded(30) midpoints, read-my-writes' small premium over eventual) is the
// reproduction target.

#include <cstdio>
#include <vector>

#include "src/core/consistency.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

namespace {

using pileus::core::Guarantee;
using namespace pileus::experiments;  // NOLINT

constexpr uint64_t kOpsPerCell = 4000;
constexpr uint64_t kWarmupOps = 1000;

}  // namespace

int main() {
  std::printf("=== Figure 3: average Get latency (ms) per consistency and "
              "client location ===\n\n");

  const std::vector<std::pair<const char*, Guarantee>> kConsistencies = {
      {"strong", Guarantee::Strong()},
      {"causal", Guarantee::Causal()},
      {"bounded(30)", Guarantee::BoundedSeconds(30)},
      {"read-my-writes", Guarantee::ReadMyWrites()},
      {"monotonic", Guarantee::Monotonic()},
      {"eventual", Guarantee::Eventual()},
  };
  const std::vector<const char*> kClientSites = {kUs, kEngland, kIndia,
                                                 kChina};

  // One row per consistency; columns per client site.
  std::vector<std::vector<double>> latencies(
      kConsistencies.size(), std::vector<double>(kClientSites.size(), 0.0));

  for (size_t site_index = 0; site_index < kClientSites.size();
       ++site_index) {
    const char* site = kClientSites[site_index];
    GeoTestbedOptions testbed_options;
    testbed_options.seed = 1000 + site_index;
    GeoTestbed testbed(testbed_options);
    PreloadKeys(testbed, 10000);
    testbed.StartReplication();

    for (size_t row = 0; row < kConsistencies.size(); ++row) {
      pileus::core::PileusClient::Options client_options;
      client_options.seed = 17 * (row + 1);
      auto client = testbed.MakeClient(site, client_options);
      client->StartProbing();

      RunOptions run;
      run.sla = SingleConsistencySla(kConsistencies[row].second);
      run.total_ops = kOpsPerCell;
      run.warmup_ops = kWarmupOps;
      run.workload.seed = 7 + row;
      const RunStats stats = RunYcsb(testbed, *client, run);
      latencies[row][site_index] = stats.get_latency_us.Mean() / 1000.0;
      client->StopProbing();
    }
  }

  AsciiTable table({"Consistency", "U.S.", "England (Primary)", "India",
                    "China"});
  for (size_t row = 0; row < kConsistencies.size(); ++row) {
    std::vector<std::string> cells = {kConsistencies[row].first};
    for (double ms : latencies[row]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", ms);
      cells.push_back(buf);
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper (ms):        strong 147/1/435/307, causal 146/1/431/306,\n"
              "                   bounded(30) 75/1/234/241, rmw 13/1/18/166,\n"
              "                   monotonic 1/1/1/160, eventual 1/1/1/160\n");
  return 0;
}
