// Availability under node failures (paper Section 3.3).
//
// "Unavailability in Pileus is defined in practical terms as the inability
// to retrieve the desired data with acceptable consistency and latency as
// defined by the SLA. If an application wants maximum availability, it need
// only specify <eventual, unbounded> as the last subSLA. In this case, data
// will be returned as long as some replica can be reached."
//
// Two experiments:
//   1. The US client's *local* node dies for two minutes under the shopping
//      cart SLA: with availability retries the client reroutes to the
//      primary within the same Get; without them, Gets fail until the
//      monitor routes around the dead node.
//   2. The *primary* dies under the password checking SLA (strong reads
//      impossible): the plain SLA goes to zero utility AND zero data, while
//      the same SLA with an <eventual, unbounded> tail keeps returning data
//      from secondaries.

#include <cstdio>
#include <optional>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/workload/ycsb.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

struct OutageStats {
  uint64_t gets = 0;
  uint64_t data_returned = 0;  // Gets that produced a value.
  uint64_t sla_met = 0;        // Gets that satisfied some subSLA - the
                               // paper's definition of "available".
  double utility_sum = 0.0;

  double DataFraction() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(data_returned) /
                           static_cast<double>(gets);
  }
  double SlaAvailability() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(sla_met) /
                           static_cast<double>(gets);
  }
  double AvgUtility() const {
    return gets == 0 ? 0.0 : utility_sum / static_cast<double>(gets);
  }
};

// Runs the workload for `run_seconds`, killing `down_site` for the middle
// third. Returns stats from the outage window only.
OutageStats RunWithOutage(const core::Sla& sla, const char* client_site,
                          const char* down_site, bool retry_on_failure,
                          uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 2000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.retry_other_replicas_on_failure = retry_on_failure;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = seed;
  auto client = testbed.MakeClient(client_site, client_options);
  client->StartProbing();

  constexpr MicrosecondCount kRun = SecondsToMicroseconds(180);
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount outage_start = start + kRun / 3;
  const MicrosecondCount outage_end = start + 2 * kRun / 3;
  auto* testbed_ptr = &testbed;
  std::string down(down_site);
  testbed.env().ScheduleAt(outage_start, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, true);
  });
  testbed.env().ScheduleAt(outage_end, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, false);
  });

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 2000;
  workload_options.seed = seed;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;

  OutageStats outage;
  while (testbed.env().NowMicros() - start < kRun) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    const MicrosecondCount now = testbed.env().NowMicros();
    const bool in_outage = now >= outage_start && now < outage_end;
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      if (in_outage) {
        ++outage.gets;
        if (result.ok() && result->found) {
          ++outage.data_returned;
        }
        if (result.ok() && result->outcome.met_rank >= 0) {
          ++outage.sla_met;
        }
        outage.utility_sum += result.ok() ? result->outcome.utility : 0.0;
      }
    } else {
      // Puts fail while the primary is down; that is expected and the
      // client keeps going.
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }
  return outage;
}

}  // namespace

int main() {
  std::printf("=== Availability under node failures (Section 3.3) ===\n\n");

  std::printf("--- Local (US) node down for 60 s, shopping cart SLA, US "
              "client ---\n");
  AsciiTable local_table({"Availability retries", "Data returned", "SLA met",
                          "Avg utility (outage window)"});
  for (const bool retry : {false, true}) {
    const OutageStats stats =
        RunWithOutage(core::ShoppingCartSla(), kUs, kUs, retry, 71);
    local_table.AddRow({retry ? "on" : "off",
                        FormatPercent(stats.DataFraction()),
                        FormatPercent(stats.SlaAvailability()),
                        FormatUtility(stats.AvgUtility())});
  }
  std::printf("%s\n", local_table.ToString().c_str());

  std::printf("--- Primary (England) down for 60 s, US client ---\n");
  const core::Sla strong_only =
      core::Sla().Add(core::Guarantee::Strong(), SecondsToMicroseconds(1),
                      1.0);
  core::Sla tailed = strong_only;
  const core::SubSla tail = core::MaxAvailabilitySubSla();
  tailed.Add(tail.consistency, tail.latency_us, tail.utility);
  AsciiTable primary_table(
      {"SLA", "Data returned", "SLA met", "Avg utility (outage window)"});
  {
    const OutageStats plain =
        RunWithOutage(strong_only, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> only",
                          FormatPercent(plain.DataFraction()),
                          FormatPercent(plain.SlaAvailability()),
                          FormatUtility(plain.AvgUtility())});
    const OutageStats with_tail =
        RunWithOutage(tailed, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> + <eventual, unbounded> tail",
                          FormatPercent(with_tail.DataFraction()),
                          FormatPercent(with_tail.SlaAvailability()),
                          FormatUtility(with_tail.AvgUtility())});
  }
  std::printf("%s\n", primary_table.ToString().c_str());
  std::printf(
      "Expectation: retries keep data flowing through a local-node outage.\n"
      "With the primary down, best-effort data still arrives either way,\n"
      "but only the SLA with the <eventual, unbounded> tail counts as\n"
      "*available* in the paper's sense - some subSLA is still met.\n");
  return 0;
}
