// Availability under node failures (paper Section 3.3).
//
// "Unavailability in Pileus is defined in practical terms as the inability
// to retrieve the desired data with acceptable consistency and latency as
// defined by the SLA. If an application wants maximum availability, it need
// only specify <eventual, unbounded> as the last subSLA. In this case, data
// will be returned as long as some replica can be reached."
//
// Two experiments:
//   1. The US client's *local* node dies for two minutes under the shopping
//      cart SLA: with availability retries the client reroutes to the
//      primary within the same Get; without them, Gets fail until the
//      monitor routes around the dead node.
//   2. The *primary* dies under the password checking SLA (strong reads
//      impossible): the plain SLA goes to zero utility AND zero data, while
//      the same SLA with an <eventual, unbounded> tail keeps returning data
//      from secondaries.
//   3. A sweep over *fault classes* hitting the China client's best node
//      (the US): fail-fast unavailability, silent drops, gray slowness,
//      an asymmetric partition, payload corruption, and a crash with
//      restart. The SLA carries an availability tail, so in every class the
//      client keeps meeting some subSLA once the monitor has routed around
//      the sick node.

#include <cstdio>
#include <optional>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/workload/ycsb.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

struct OutageStats {
  uint64_t gets = 0;
  uint64_t data_returned = 0;  // Gets that produced a value.
  uint64_t sla_met = 0;        // Gets that satisfied some subSLA - the
                               // paper's definition of "available".
  double utility_sum = 0.0;

  double DataFraction() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(data_returned) /
                           static_cast<double>(gets);
  }
  double SlaAvailability() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(sla_met) /
                           static_cast<double>(gets);
  }
  double AvgUtility() const {
    return gets == 0 ? 0.0 : utility_sum / static_cast<double>(gets);
  }
};

// Runs the workload for `run_seconds`, killing `down_site` for the middle
// third. Returns stats from the outage window only.
OutageStats RunWithOutage(const core::Sla& sla, const char* client_site,
                          const char* down_site, bool retry_on_failure,
                          uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 2000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.retry_other_replicas_on_failure = retry_on_failure;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = seed;
  auto client = testbed.MakeClient(client_site, client_options);
  client->StartProbing();

  constexpr MicrosecondCount kRun = SecondsToMicroseconds(180);
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount outage_start = start + kRun / 3;
  const MicrosecondCount outage_end = start + 2 * kRun / 3;
  auto* testbed_ptr = &testbed;
  std::string down(down_site);
  testbed.env().ScheduleAt(outage_start, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, true);
  });
  testbed.env().ScheduleAt(outage_end, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, false);
  });

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 2000;
  workload_options.seed = seed;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;

  OutageStats outage;
  while (testbed.env().NowMicros() - start < kRun) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    const MicrosecondCount now = testbed.env().NowMicros();
    const bool in_outage = now >= outage_start && now < outage_end;
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      if (in_outage) {
        ++outage.gets;
        if (result.ok() && result->found) {
          ++outage.data_returned;
        }
        if (result.ok() && result->outcome.met_rank >= 0) {
          ++outage.sla_met;
        }
        outage.utility_sum += result.ok() ? result->outcome.utility : 0.0;
      }
    } else {
      // Puts fail while the primary is down; that is expected and the
      // client keeps going.
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }
  return outage;
}

// One entry in the fault-class sweep: how to inflict and lift the fault.
struct FaultClass {
  const char* name;
  void (*apply)(GeoTestbed&, const std::string& site);
  void (*lift)(GeoTestbed&, const std::string& site);
};

// Like RunWithOutage, but the middle-third outage is an arbitrary fault
// class applied to `sick_site`, and the client sits in China (a client-only
// site, so node faults never silence the client itself).
OutageStats RunWithFault(const core::Sla& sla, const FaultClass& fault,
                         const char* sick_site, uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 2000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = seed;
  auto client = testbed.MakeClient(kChina, client_options);
  client->StartProbing();

  constexpr MicrosecondCount kRun = SecondsToMicroseconds(180);
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount outage_start = start + kRun / 3;
  const MicrosecondCount outage_end = start + 2 * kRun / 3;
  auto* testbed_ptr = &testbed;
  const FaultClass* fault_ptr = &fault;
  std::string sick(sick_site);
  testbed.env().ScheduleAt(outage_start, [testbed_ptr, fault_ptr, sick] {
    fault_ptr->apply(*testbed_ptr, sick);
  });
  testbed.env().ScheduleAt(outage_end, [testbed_ptr, fault_ptr, sick] {
    fault_ptr->lift(*testbed_ptr, sick);
  });

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 2000;
  workload_options.seed = seed;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;

  OutageStats outage;
  while (testbed.env().NowMicros() - start < kRun) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    const MicrosecondCount now = testbed.env().NowMicros();
    const bool in_outage = now >= outage_start && now < outage_end;
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      if (in_outage) {
        ++outage.gets;
        if (result.ok() && result->found) {
          ++outage.data_returned;
        }
        if (result.ok() && result->outcome.met_rank >= 0) {
          ++outage.sla_met;
        }
        outage.utility_sum += result.ok() ? result->outcome.utility : 0.0;
      }
    } else {
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }
  return outage;
}

}  // namespace

int main() {
  std::printf("=== Availability under node failures (Section 3.3) ===\n\n");

  std::printf("--- Local (US) node down for 60 s, shopping cart SLA, US "
              "client ---\n");
  AsciiTable local_table({"Availability retries", "Data returned", "SLA met",
                          "Avg utility (outage window)"});
  for (const bool retry : {false, true}) {
    const OutageStats stats =
        RunWithOutage(core::ShoppingCartSla(), kUs, kUs, retry, 71);
    local_table.AddRow({retry ? "on" : "off",
                        FormatPercent(stats.DataFraction()),
                        FormatPercent(stats.SlaAvailability()),
                        FormatUtility(stats.AvgUtility())});
  }
  std::printf("%s\n", local_table.ToString().c_str());

  std::printf("--- Primary (England) down for 60 s, US client ---\n");
  const core::Sla strong_only =
      core::Sla().Add(core::Guarantee::Strong(), SecondsToMicroseconds(1),
                      1.0);
  core::Sla tailed = strong_only;
  const core::SubSla tail = core::MaxAvailabilitySubSla();
  tailed.Add(tail.consistency, tail.latency_us, tail.utility);
  AsciiTable primary_table(
      {"SLA", "Data returned", "SLA met", "Avg utility (outage window)"});
  {
    const OutageStats plain =
        RunWithOutage(strong_only, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> only",
                          FormatPercent(plain.DataFraction()),
                          FormatPercent(plain.SlaAvailability()),
                          FormatUtility(plain.AvgUtility())});
    const OutageStats with_tail =
        RunWithOutage(tailed, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> + <eventual, unbounded> tail",
                          FormatPercent(with_tail.DataFraction()),
                          FormatPercent(with_tail.SlaAvailability()),
                          FormatUtility(with_tail.AvgUtility())});
  }
  std::printf("%s\n", primary_table.ToString().c_str());
  std::printf(
      "Expectation: retries keep data flowing through a local-node outage.\n"
      "With the primary down, best-effort data still arrives either way,\n"
      "but only the SLA with the <eventual, unbounded> tail counts as\n"
      "*available* in the paper's sense - some subSLA is still met.\n\n");

  std::printf("--- Fault-class sweep: China client, its best node (US) sick "
              "for 60 s ---\n");
  // Shopping cart plus an availability tail. The tail's deadline is capped
  // at 2 s rather than the paper's "unbounded" hour: silent faults make the
  // client wait out the *full* tail deadline before giving up on a node, so
  // an unbounded tail would let a single dropped request swallow the whole
  // outage window.
  const core::Sla swept_sla =
      core::Sla()
          .Add(core::Guarantee::ReadMyWrites(), MillisecondsToMicroseconds(300),
               1.0)
          .Add(core::Guarantee::Eventual(), MillisecondsToMicroseconds(300),
               0.5)
          .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(2), 0.001);
  const FaultClass kFaultClasses[] = {
      {"fail-fast (SetNodeDown)",
       [](GeoTestbed& t, const std::string& s) { t.SetNodeDown(s, true); },
       [](GeoTestbed& t, const std::string& s) { t.SetNodeDown(s, false); }},
      {"silent drop (100%)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetSilentDrop(s, 1.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"gray failure (10x slower)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetGrayNode(s, 10.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"asymmetric partition (client->node)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetPartition(kChina, s, true);
       },
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetPartition(kChina, s, false);
       }},
      {"payload corruption (100%)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetCorruption(s, 1.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"crash + restart",
       [](GeoTestbed& t, const std::string& s) { t.CrashNode(s); },
       [](GeoTestbed& t, const std::string& s) { (void)t.RestartNode(s); }},
  };
  AsciiTable sweep_table({"Fault class", "Data returned", "SLA met",
                          "Avg utility (outage window)"});
  for (const FaultClass& fault : kFaultClasses) {
    const OutageStats stats = RunWithFault(swept_sla, fault, kUs, 73);
    sweep_table.AddRow({fault.name, FormatPercent(stats.DataFraction()),
                        FormatPercent(stats.SlaAvailability()),
                        FormatUtility(stats.AvgUtility())});
  }
  std::printf("%s\n", sweep_table.ToString().c_str());
  std::printf(
      "Expectation: every class stays near-fully available thanks to the\n"
      "availability tail. Silent classes (drop, partition, crash) pay a few\n"
      "burned deadlines before the circuit breaker and PNodeUp evidence\n"
      "route around the node; fail-fast and corruption fail quickly enough\n"
      "that the same Get usually retries another replica in time; gray\n"
      "slowness keeps the node answering inside the tail until routing\n"
      "shifts to a faster replica.\n");
  return 0;
}
