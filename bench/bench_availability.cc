// Availability under node failures (paper Section 3.3).
//
// "Unavailability in Pileus is defined in practical terms as the inability
// to retrieve the desired data with acceptable consistency and latency as
// defined by the SLA. If an application wants maximum availability, it need
// only specify <eventual, unbounded> as the last subSLA. In this case, data
// will be returned as long as some replica can be reached."
//
// Two experiments:
//   1. The US client's *local* node dies for two minutes under the shopping
//      cart SLA: with availability retries the client reroutes to the
//      primary within the same Get; without them, Gets fail until the
//      monitor routes around the dead node.
//   2. The *primary* dies under the password checking SLA (strong reads
//      impossible): the plain SLA goes to zero utility AND zero data, while
//      the same SLA with an <eventual, unbounded> tail keeps returning data
//      from secondaries.
//   3. A sweep over *fault classes* hitting the China client's best node
//      (the US): fail-fast unavailability, silent drops, gray slowness,
//      an asymmetric partition, payload corruption, and a crash with
//      restart. The SLA carries an availability tail, so in every class the
//      client keeps meeting some subSLA once the monitor has routed around
//      the sick node.
//   4. Primary kill with live failover (Section 6.2): the primary crashes
//      mid-run and never restarts. With the lease coordinator enabled the
//      write-unavailability window (crash to first re-acked Put) is bounded
//      by a few heartbeat intervals and zero acked writes are lost; without
//      it, writes stay dead for the rest of the run.
//
// PILEUS_BENCH_SMOKE=1 shrinks the runs so CI can execute the bench end to
// end; the failover section's self-checks (no lost acked write, bounded
// window) hold in both modes and fail the process when violated.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"
#include "src/workload/ycsb.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

bool SmokeMode() {
  const char* value = std::getenv("PILEUS_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

MicrosecondCount RunSeconds() {
  return SecondsToMicroseconds(SmokeMode() ? 60 : 180);
}

struct OutageStats {
  uint64_t gets = 0;
  uint64_t data_returned = 0;  // Gets that produced a value.
  uint64_t sla_met = 0;        // Gets that satisfied some subSLA - the
                               // paper's definition of "available".
  double utility_sum = 0.0;

  double DataFraction() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(data_returned) /
                           static_cast<double>(gets);
  }
  double SlaAvailability() const {
    return gets == 0 ? 0.0
                     : static_cast<double>(sla_met) /
                           static_cast<double>(gets);
  }
  double AvgUtility() const {
    return gets == 0 ? 0.0 : utility_sum / static_cast<double>(gets);
  }
};

// Runs the workload for `run_seconds`, killing `down_site` for the middle
// third. Returns stats from the outage window only.
OutageStats RunWithOutage(const core::Sla& sla, const char* client_site,
                          const char* down_site, bool retry_on_failure,
                          uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 2000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.retry_other_replicas_on_failure = retry_on_failure;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = seed;
  auto client = testbed.MakeClient(client_site, client_options);
  client->StartProbing();

  const MicrosecondCount kRun = RunSeconds();
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount outage_start = start + kRun / 3;
  const MicrosecondCount outage_end = start + 2 * kRun / 3;
  auto* testbed_ptr = &testbed;
  std::string down(down_site);
  testbed.env().ScheduleAt(outage_start, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, true);
  });
  testbed.env().ScheduleAt(outage_end, [testbed_ptr, down] {
    testbed_ptr->SetNodeDown(down, false);
  });

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 2000;
  workload_options.seed = seed;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;

  OutageStats outage;
  while (testbed.env().NowMicros() - start < kRun) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    const MicrosecondCount now = testbed.env().NowMicros();
    const bool in_outage = now >= outage_start && now < outage_end;
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      if (in_outage) {
        ++outage.gets;
        if (result.ok() && result->found) {
          ++outage.data_returned;
        }
        if (result.ok() && result->outcome.met_rank >= 0) {
          ++outage.sla_met;
        }
        outage.utility_sum += result.ok() ? result->outcome.utility : 0.0;
      }
    } else {
      // Puts fail while the primary is down; that is expected and the
      // client keeps going.
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }
  return outage;
}

// One entry in the fault-class sweep: how to inflict and lift the fault.
struct FaultClass {
  const char* name;
  void (*apply)(GeoTestbed&, const std::string& site);
  void (*lift)(GeoTestbed&, const std::string& site);
};

// Like RunWithOutage, but the middle-third outage is an arbitrary fault
// class applied to `sick_site`, and the client sits in China (a client-only
// site, so node faults never silence the client itself).
OutageStats RunWithFault(const core::Sla& sla, const FaultClass& fault,
                         const char* sick_site, uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 2000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(20);
  client_options.seed = seed;
  auto client = testbed.MakeClient(kChina, client_options);
  client->StartProbing();

  const MicrosecondCount kRun = RunSeconds();
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount outage_start = start + kRun / 3;
  const MicrosecondCount outage_end = start + 2 * kRun / 3;
  auto* testbed_ptr = &testbed;
  const FaultClass* fault_ptr = &fault;
  std::string sick(sick_site);
  testbed.env().ScheduleAt(outage_start, [testbed_ptr, fault_ptr, sick] {
    fault_ptr->apply(*testbed_ptr, sick);
  });
  testbed.env().ScheduleAt(outage_end, [testbed_ptr, fault_ptr, sick] {
    fault_ptr->lift(*testbed_ptr, sick);
  });

  workload::WorkloadOptions workload_options;
  workload_options.key_count = 2000;
  workload_options.seed = seed;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;

  OutageStats outage;
  while (testbed.env().NowMicros() - start < kRun) {
    const workload::Operation op = workload.Next();
    if (op.starts_new_session || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
    const MicrosecondCount now = testbed.env().NowMicros();
    const bool in_outage = now >= outage_start && now < outage_end;
    if (op.is_get) {
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      if (in_outage) {
        ++outage.gets;
        if (result.ok() && result->found) {
          ++outage.data_returned;
        }
        if (result.ok() && result->outcome.met_rank >= 0) {
          ++outage.sla_met;
        }
        outage.utility_sum += result.ok() ? result->outcome.utility : 0.0;
      }
    } else {
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }
  return outage;
}

// Primary-kill failover experiment (Section 6.2): write-only workload, the
// primary crashes one third in and never restarts.
struct FailoverOutcome {
  uint64_t puts = 0;
  uint64_t acked = 0;
  uint64_t failed = 0;
  // Crash time to the first Put acked afterwards (-1: writes never came
  // back - what happens without live failover).
  MicrosecondCount write_unavailable_us = -1;
  uint64_t acked_lost = 0;  // Acked writes missing from the surviving
                            // authoritative history. Must be 0.
  uint64_t failovers = 0;
  std::string final_primary;
};

FailoverOutcome RunPrimaryKill(bool live_failover, uint64_t seed) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = seed;
  testbed_options.replication_period_us = SecondsToMicroseconds(15);
  // The promotion target must hold the committed prefix: one synchronous
  // replica (Section 6.4) rides along in both arms for a fair comparison.
  testbed_options.sync_replica_count = 2;
  testbed_options.enable_failover = live_failover;
  GeoTestbed testbed(testbed_options);
  if (live_failover) {
    testbed.StartReconfiguration();
  }
  PreloadKeys(testbed, 200);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.seed = seed;
  // Tight write deadline so the unavailability window measures detection +
  // promotion, not one burned 10 s default Put timeout; frequent probes so
  // the config piggyback (the client's failover discovery channel) arrives
  // within the same order of magnitude as the coordinator's detection.
  client_options.put_timeout_us = SecondsToMicroseconds(1);
  client_options.put_max_attempts = 5;
  client_options.monitor.probe_interval_us = SecondsToMicroseconds(1);
  auto client = testbed.MakeClient(kUs, client_options);
  client->StartProbing();

  const MicrosecondCount kRun = RunSeconds();
  const MicrosecondCount start = testbed.env().NowMicros();
  const MicrosecondCount crash_at = start + kRun / 3;
  auto* testbed_ptr = &testbed;
  testbed.env().ScheduleAt(crash_at, [testbed_ptr] {
    testbed_ptr->CrashNode(testbed_ptr->primary_site());
  });

  Result<core::Session> session =
      client->client().BeginSession(core::ShoppingCartSla());
  if (!session.ok()) {
    return FailoverOutcome{};
  }
  FailoverOutcome out;
  std::vector<std::pair<std::string, Timestamp>> acked_writes;
  uint64_t key_index = 0;
  while (testbed.env().NowMicros() - start < kRun) {
    const std::string key =
        workload::YcsbWorkload::KeyForIndex(key_index++ % 200);
    ++out.puts;
    Result<core::PutResult> put =
        client->client().Put(*session, key, "failover-payload");
    if (put.ok()) {
      ++out.acked;
      acked_writes.emplace_back(key, put->timestamp);
      if (out.write_unavailable_us < 0 &&
          testbed.env().NowMicros() >= crash_at) {
        out.write_unavailable_us = testbed.env().NowMicros() - crash_at;
      }
    } else {
      ++out.failed;
    }
    testbed.env().RunFor(MillisecondsToMicroseconds(50));
  }
  out.failovers = testbed.failovers();
  out.final_primary = testbed.primary_site();

  // No-lost-acked-write audit: every acked Put must be in the surviving
  // authoritative copy - the promoted primary, or (without failover) the
  // synchronous replica that outlived the crashed primary.
  storage::StorageNode* authority = testbed.primary_node();
  if (authority == nullptr) {
    authority = testbed.node(kUs);
  }
  std::set<std::tuple<std::string, int64_t, uint32_t>> committed;
  bool contiguous = true;
  for (const proto::ObjectVersion& v :
       authority->ExportTableLog(kTableName, &contiguous)) {
    committed.emplace(v.key, v.timestamp.physical_us, v.timestamp.sequence);
  }
  for (const auto& [key, timestamp] : acked_writes) {
    if (committed.count(
            {key, timestamp.physical_us, timestamp.sequence}) == 0) {
      ++out.acked_lost;
    }
  }
  return out;
}

std::string FormatWindow(MicrosecondCount window_us) {
  if (window_us < 0) {
    return "never re-acked";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f s",
                static_cast<double>(window_us) / 1e6);
  return buffer;
}

}  // namespace

int main() {
  std::printf("=== Availability under node failures (Section 3.3) ===\n\n");

  std::printf("--- Local (US) node down for 60 s, shopping cart SLA, US "
              "client ---\n");
  AsciiTable local_table({"Availability retries", "Data returned", "SLA met",
                          "Avg utility (outage window)"});
  for (const bool retry : {false, true}) {
    const OutageStats stats =
        RunWithOutage(core::ShoppingCartSla(), kUs, kUs, retry, 71);
    local_table.AddRow({retry ? "on" : "off",
                        FormatPercent(stats.DataFraction()),
                        FormatPercent(stats.SlaAvailability()),
                        FormatUtility(stats.AvgUtility())});
  }
  std::printf("%s\n", local_table.ToString().c_str());

  std::printf("--- Primary (England) down for 60 s, US client ---\n");
  const core::Sla strong_only =
      core::Sla().Add(core::Guarantee::Strong(), SecondsToMicroseconds(1),
                      1.0);
  core::Sla tailed = strong_only;
  const core::SubSla tail = core::MaxAvailabilitySubSla();
  tailed.Add(tail.consistency, tail.latency_us, tail.utility);
  AsciiTable primary_table(
      {"SLA", "Data returned", "SLA met", "Avg utility (outage window)"});
  {
    const OutageStats plain =
        RunWithOutage(strong_only, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> only",
                          FormatPercent(plain.DataFraction()),
                          FormatPercent(plain.SlaAvailability()),
                          FormatUtility(plain.AvgUtility())});
    const OutageStats with_tail =
        RunWithOutage(tailed, kUs, kEngland, true, 72);
    primary_table.AddRow({"<strong, 1s> + <eventual, unbounded> tail",
                          FormatPercent(with_tail.DataFraction()),
                          FormatPercent(with_tail.SlaAvailability()),
                          FormatUtility(with_tail.AvgUtility())});
  }
  std::printf("%s\n", primary_table.ToString().c_str());
  std::printf(
      "Expectation: retries keep data flowing through a local-node outage.\n"
      "With the primary down, best-effort data still arrives either way,\n"
      "but only the SLA with the <eventual, unbounded> tail counts as\n"
      "*available* in the paper's sense - some subSLA is still met.\n\n");

  std::printf("--- Fault-class sweep: China client, its best node (US) sick "
              "for 60 s ---\n");
  // Shopping cart plus an availability tail. The tail's deadline is capped
  // at 2 s rather than the paper's "unbounded" hour: silent faults make the
  // client wait out the *full* tail deadline before giving up on a node, so
  // an unbounded tail would let a single dropped request swallow the whole
  // outage window.
  const core::Sla swept_sla =
      core::Sla()
          .Add(core::Guarantee::ReadMyWrites(), MillisecondsToMicroseconds(300),
               1.0)
          .Add(core::Guarantee::Eventual(), MillisecondsToMicroseconds(300),
               0.5)
          .Add(core::Guarantee::Eventual(), SecondsToMicroseconds(2), 0.001);
  const FaultClass kFaultClasses[] = {
      {"fail-fast (SetNodeDown)",
       [](GeoTestbed& t, const std::string& s) { t.SetNodeDown(s, true); },
       [](GeoTestbed& t, const std::string& s) { t.SetNodeDown(s, false); }},
      {"silent drop (100%)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetSilentDrop(s, 1.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"gray failure (10x slower)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetGrayNode(s, 10.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"asymmetric partition (client->node)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetPartition(kChina, s, true);
       },
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetPartition(kChina, s, false);
       }},
      {"payload corruption (100%)",
       [](GeoTestbed& t, const std::string& s) {
         t.faults().SetCorruption(s, 1.0);
       },
       [](GeoTestbed& t, const std::string& s) { t.faults().RecoverNode(s); }},
      {"crash + restart",
       [](GeoTestbed& t, const std::string& s) { t.CrashNode(s); },
       [](GeoTestbed& t, const std::string& s) { (void)t.RestartNode(s); }},
  };
  AsciiTable sweep_table({"Fault class", "Data returned", "SLA met",
                          "Avg utility (outage window)"});
  for (const FaultClass& fault : kFaultClasses) {
    const OutageStats stats = RunWithFault(swept_sla, fault, kUs, 73);
    sweep_table.AddRow({fault.name, FormatPercent(stats.DataFraction()),
                        FormatPercent(stats.SlaAvailability()),
                        FormatUtility(stats.AvgUtility())});
  }
  std::printf("%s\n", sweep_table.ToString().c_str());
  std::printf(
      "Expectation: every class stays near-fully available thanks to the\n"
      "availability tail. Silent classes (drop, partition, crash) pay a few\n"
      "burned deadlines before the circuit breaker and PNodeUp evidence\n"
      "route around the node; fail-fast and corruption fail quickly enough\n"
      "that the same Get usually retries another replica in time; gray\n"
      "slowness keeps the node answering inside the tail until routing\n"
      "shifts to a faster replica.\n\n");

  std::printf("--- Primary killed mid-run, never restarted (Section 6.2 "
              "live failover) ---\n");
  AsciiTable failover_table({"Live failover", "Puts acked", "Puts failed",
                             "Write-unavailability window", "Acked lost",
                             "Failovers", "Final primary"});
  bool failover_ok = true;
  for (const bool live : {false, true}) {
    const FailoverOutcome outcome = RunPrimaryKill(live, 74);
    failover_table.AddRow({live ? "on" : "off", std::to_string(outcome.acked),
                           std::to_string(outcome.failed),
                           FormatWindow(outcome.write_unavailable_us),
                           std::to_string(outcome.acked_lost),
                           std::to_string(outcome.failovers),
                           outcome.final_primary});
    // Self-checks (the acceptance criteria, enforced in CI's smoke run):
    // acked writes survive the crash in both arms, and with the coordinator
    // on, writes resume within a few heartbeat intervals instead of staying
    // dead for the rest of the run.
    if (outcome.acked_lost != 0) {
      std::fprintf(stderr, "FAIL: %llu acked writes lost (live=%d)\n",
                   static_cast<unsigned long long>(outcome.acked_lost), live);
      failover_ok = false;
    }
    if (live) {
      const MicrosecondCount bound = SecondsToMicroseconds(10);
      if (outcome.failovers == 0 || outcome.write_unavailable_us < 0 ||
          outcome.write_unavailable_us > bound) {
        std::fprintf(stderr,
                     "FAIL: live failover did not restore writes promptly "
                     "(window=%s, failovers=%llu)\n",
                     FormatWindow(outcome.write_unavailable_us).c_str(),
                     static_cast<unsigned long long>(outcome.failovers));
        failover_ok = false;
      }
    }
  }
  std::printf("%s\n", failover_table.ToString().c_str());
  std::printf(
      "Expectation: without live failover, writes die with the primary and\n"
      "stay dead (the old behavior). With the lease coordinator, the crash\n"
      "is detected after missed heartbeats, the synchronous replica is\n"
      "promoted in a new config epoch, and the client's next Put redirects\n"
      "to it - a bounded write-unavailability window and zero lost acked\n"
      "writes.\n");
  return failover_ok ? 0 : 1;
}
