// Ablation for Section 6.3 (parallel Gets): fan a Get out to several tied
// candidate nodes and take the best reply.
//
// The paper predicts parallel Gets help "particularly in cases where changing
// conditions lead to poor utility estimates", at the cost of extra messages
// (cloud providers charge per operation). We measure both a stable network
// and a flapping one (random +250 ms steps on the client-local link every
// 20 s, cleared after 10 s) for fan-out 1, 2, and 3.

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

RunStats RunCell(bool flapping, int fanout) {
  GeoTestbedOptions testbed_options;
  testbed_options.seed = 63 + fanout;
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  if (flapping) {
    // Alternate a +250 ms delta between the China-US and China-India links
    // every 30 s. There is no stable safe choice, so the client's estimates
    // are perpetually going stale - exactly the "changing conditions lead to
    // poor utility estimates" regime where Section 6.3 expects parallel Gets
    // to pay off.
    auto* testbed_ptr = &testbed;
    auto slow_us = std::make_shared<bool>(true);
    testbed_ptr->SetRttDelta(kChina, kUs, MillisecondsToMicroseconds(250));
    testbed.env().SchedulePeriodic(
        SecondsToMicroseconds(30), SecondsToMicroseconds(30),
        [testbed_ptr, slow_us] {
          *slow_us = !*slow_us;
          testbed_ptr->SetRttDelta(
              kChina, kUs, *slow_us ? MillisecondsToMicroseconds(250) : 0);
          testbed_ptr->SetRttDelta(
              kChina, kIndia,
              *slow_us ? 0 : MillisecondsToMicroseconds(250));
        });
  }

  core::PileusClient::Options client_options;
  client_options.parallel_fanout = fanout;
  // "Roughly the same service" (Section 6.3): fan out to candidates within
  // 0.3 expected utility of the best, not only exact ties.
  client_options.selection.candidate_epsilon = fanout > 1 ? 0.3 : 0.0;
  client_options.seed = 5 + fanout;
  auto client = testbed.MakeClient(kChina, client_options);
  client->StartProbing();

  RunOptions run;
  run.sla = core::ShoppingCartSla();
  run.total_ops = 6000;
  run.warmup_ops = 1500;
  run.workload.seed = 63;
  return RunYcsb(testbed, *client, run);
}

}  // namespace

int main() {
  std::printf("=== Ablation (Section 6.3): parallel Gets, shopping cart SLA, "
              "China client ===\n\n");
  for (const bool flapping : {false, true}) {
    std::printf("--- %s network ---\n",
                flapping ? "Flapping (+250 ms alternating between the "
                           "China-US and China-India links)"
                         : "Stable");
    AsciiTable table(
        {"Fan-out", "Avg utility", "Avg Get latency (ms)", "Msgs per op"});
    for (int fanout = 1; fanout <= 3; ++fanout) {
      const RunStats stats = RunCell(flapping, fanout);
      const double msgs_per_op =
          static_cast<double>(stats.messages_sent) /
          static_cast<double>(stats.gets + stats.puts);
      char msgs[32];
      std::snprintf(msgs, sizeof(msgs), "%.2f", msgs_per_op);
      table.AddRow({std::to_string(fanout),
                    FormatUtility(stats.AvgUtility()),
                    FormatMs(static_cast<MicrosecondCount>(
                        stats.get_latency_us.Mean())),
                    msgs});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Expectation: fan-out > 1 buys little on a stable network but "
              "recovers utility under flapping, at ~2x the message cost.\n");
  return 0;
}
