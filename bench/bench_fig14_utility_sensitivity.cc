// Figure 14: sensitivity to the utility values in an SLA.
//
// The utilities of the password checking SLA's second and third subSLAs are
// multiplied by a factor in {2, 1, 0.5, 0.25, 0.1}. With a large factor the
// fallback levels are (almost) as valuable as the top subSLA, so eventually-
// consistent local reads become competitive; with a small factor only the
// top subSLA matters. The paper's finding: "different utilities affect the
// relative rankings of the fixed selection schemes but Pileus again
// outperforms them."
//
// We print the sweep for the US client (where Primary vs Closest cross) and
// for the China client (where every fixed scheme is far from optimal).

#include <cstdio>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/comparison.h"
#include "src/experiments/tables.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

core::Sla ScaledPasswordSla(double factor) {
  return core::Sla()
      .Add(core::Guarantee::Strong(), MillisecondsToMicroseconds(150), 1.0)
      .Add(core::Guarantee::Eventual(), MillisecondsToMicroseconds(150),
           std::min(1.0, 0.5 * factor))
      .Add(core::Guarantee::Strong(), SecondsToMicroseconds(1),
           std::min(1.0, 0.25 * factor));
}

}  // namespace

int main() {
  std::printf("=== Figure 14: behavior under varying utility "
              "(password checking SLA, subSLA 2/3 utilities x factor) "
              "===\n\n");

  const std::vector<double> factors = {2.0, 1.0, 0.5, 0.25, 0.1};

  for (const char* site : {kUs, kChina}) {
    std::printf("--- Client in %s ---\n", site);
    std::vector<std::string> headers = {"Strategy"};
    for (double f : factors) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "x%g", f);
      headers.emplace_back(buf);
    }
    AsciiTable table(std::move(headers));
    for (core::ReadStrategy strategy : AllStrategies()) {
      std::vector<std::string> row = {
          std::string(core::ReadStrategyName(strategy))};
      for (double factor : factors) {
        ComparisonOptions options;
        options.sla = ScaledPasswordSla(factor);
        options.total_ops = 4000;
        options.warmup_ops = 1500;
        options.seed = 14;
        const RunStats stats = RunStrategyCell(site, strategy, options);
        row.push_back(FormatUtility(stats.AvgUtility()));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Paper: the fixed schemes swap ranks as the factor changes; "
              "Pileus is >= the best fixed scheme at every factor.\n");
  return 0;
}
