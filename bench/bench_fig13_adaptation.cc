// Figure 13: adaptability to network delays.
//
// A US client runs the password checking SLA while the bench injects the
// paper's latency steps:
//   #1  +300 ms on the client-primary (US-England) link
//   #2  (client learns, switches to subSLA 2 at the local node)
//   #3  +300 ms on the client-local (US-US) link
//   #4  (client learns, switches to subSLA 3 at the primary)
//   #5  local link restored
//   #6  primary link restored
//       (client recovers to subSLA 2, then to subSLA 1)
//
// Paper utility trace: 1.0 -> 0.25 (between #1 and #2) -> 0.5 -> 0 (between
// #3 and #4) -> 0.25 -> 0.5 -> 1.0. The recovery "takes a while since the
// client probes infrequently and has some built-in hysteresis" (the sliding
// latency window).

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/core/sla.h"
#include "src/experiments/geo_testbed.h"
#include "src/experiments/runner.h"
#include "src/workload/ycsb.h"

using namespace pileus;               // NOLINT
using namespace pileus::experiments;  // NOLINT

namespace {

constexpr MicrosecondCount kBucketUs = SecondsToMicroseconds(5);
constexpr MicrosecondCount kDelta = MillisecondsToMicroseconds(300);

struct Event {
  MicrosecondCount at_us;
  const char* label;
  const char* site_a;
  const char* site_b;
  MicrosecondCount delta_us;
};

}  // namespace

int main() {
  std::printf("=== Figure 13: behavior under varying latency "
              "(password checking SLA, US client) ===\n\n");

  GeoTestbedOptions testbed_options;
  testbed_options.seed = 13;
  // Shorter monitor horizon: the paper's client adapts within tens of
  // seconds, implying a window shorter than our 120 s default.
  GeoTestbed testbed(testbed_options);
  PreloadKeys(testbed, 10000);
  testbed.StartReplication();

  core::PileusClient::Options client_options;
  client_options.monitor.latency_window.window_us = SecondsToMicroseconds(30);
  client_options.monitor.probe_interval_us = SecondsToMicroseconds(10);
  auto client = testbed.MakeClient(kUs, client_options);
  client->StartProbing();

  const core::Sla sla = core::PasswordCheckingSla();

  // Scripted steps, relative to measurement start.
  const std::vector<Event> events = {
      {SecondsToMicroseconds(60), "#1 +300ms to primary", kUs, kEngland,
       kDelta},
      {SecondsToMicroseconds(150), "#3 +300ms to local node", kUs, kUs,
       kDelta},
      {SecondsToMicroseconds(240), "#5 local link restored", kUs, kUs, 0},
      {SecondsToMicroseconds(270), "#6 primary link restored", kUs, kEngland,
       0},
  };
  const MicrosecondCount kRunUs = SecondsToMicroseconds(420);

  // Warm up the monitor before measuring.
  workload::WorkloadOptions workload_options;
  workload_options.seed = 13;
  workload::YcsbWorkload workload(workload_options);
  std::optional<core::Session> session;
  auto ensure_session = [&](bool fresh) {
    if (fresh || !session.has_value()) {
      session.emplace(std::move(client->client().BeginSession(sla)).value());
    }
  };
  for (int i = 0; i < 1000; ++i) {
    const workload::Operation op = workload.Next();
    ensure_session(op.starts_new_session);
    if (op.is_get) {
      (void)client->client().Get(*session, op.key);
    } else {
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }

  const MicrosecondCount start = testbed.env().NowMicros();
  for (const Event& event : events) {
    testbed.env().ScheduleAt(start + event.at_us, [&testbed, event] {
      testbed.SetRttDelta(event.site_a, event.site_b, event.delta_us);
    });
  }

  struct Bucket {
    double utility_sum = 0.0;
    uint64_t gets = 0;
  };
  std::vector<Bucket> buckets(static_cast<size_t>(kRunUs / kBucketUs) + 1);

  while (testbed.env().NowMicros() - start < kRunUs) {
    const workload::Operation op = workload.Next();
    ensure_session(op.starts_new_session);
    if (op.is_get) {
      const MicrosecondCount at = testbed.env().NowMicros() - start;
      const size_t bucket =
          std::min(buckets.size() - 1, static_cast<size_t>(at / kBucketUs));
      Result<core::GetResult> result = client->client().Get(*session, op.key);
      buckets[bucket].utility_sum +=
          result.ok() ? result.value().outcome.utility : 0.0;
      ++buckets[bucket].gets;
    } else {
      (void)client->client().Put(*session, op.key, op.value);
    }
    testbed.env().RunFor(workload_options.think_time_us);
  }

  std::printf("time(s)  avg utility   events\n");
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].gets == 0) {
      continue;  // Partial edge bucket.
    }
    const MicrosecondCount t0 = static_cast<MicrosecondCount>(b) * kBucketUs;
    const double utility =
        buckets[b].utility_sum / static_cast<double>(buckets[b].gets);
    std::string bar(static_cast<size_t>(utility * 40.0), '#');
    std::string marks;
    for (const Event& event : events) {
      if (event.at_us >= t0 && event.at_us < t0 + kBucketUs) {
        marks += std::string(" <= ") + event.label;
      }
    }
    std::printf("%6lld   %5.2f  %-40s%s\n",
                static_cast<long long>(t0 / kMicrosecondsPerSecond), utility,
                bar.c_str(), marks.c_str());
  }
  std::printf("\nPaper trace: 1.0 -> 0.25 (after #1) -> 0.5 (adapt) -> 0.0 "
              "(after #3) -> 0.25 (adapt) -> 0.5 -> 1.0 (recovery)\n");
  return 0;
}
