// Microbenchmarks of the storage substrate: tablet Put/Get, replication log
// scans, multi-version snapshot reads, and the workload generator.

#include <benchmark/benchmark.h>

#include "src/common/clock.h"
#include "src/storage/tablet.h"
#include "src/workload/ycsb.h"
#include "src/workload/zipf.h"

namespace {

using namespace pileus;           // NOLINT
using namespace pileus::storage;  // NOLINT

std::unique_ptr<Tablet> MakePrimaryTablet(ManualClock* clock, int keys) {
  Tablet::Options options;
  options.is_primary = true;
  auto tablet = std::make_unique<Tablet>(options, clock);
  for (int i = 0; i < keys; ++i) {
    clock->AdvanceMicros(10);
    (void)tablet->HandlePut(workload::YcsbWorkload::KeyForIndex(i),
                            std::string(100, 'v'));
  }
  return tablet;
}

void BM_TabletPut(benchmark::State& state) {
  ManualClock clock(1);
  Tablet::Options options;
  options.is_primary = true;
  Tablet tablet(options, &clock);
  int64_t i = 0;
  const std::string value(100, 'v');
  for (auto _ : state) {
    clock.AdvanceMicros(1);
    benchmark::DoNotOptimize(
        tablet.HandlePut(workload::YcsbWorkload::KeyForIndex(i++ % 10000),
                         value));
  }
}
BENCHMARK(BM_TabletPut);

void BM_TabletGet(benchmark::State& state) {
  ManualClock clock(1);
  auto tablet = MakePrimaryTablet(&clock, 10000);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tablet->HandleGet(workload::YcsbWorkload::KeyForIndex(i++ % 10000)));
  }
}
BENCHMARK(BM_TabletGet);

void BM_TabletGetAt(benchmark::State& state) {
  ManualClock clock(1);
  auto tablet = MakePrimaryTablet(&clock, 10000);
  const Timestamp snapshot{clock.NowMicros() / 2, 0};
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tablet->HandleGetAt(
        workload::YcsbWorkload::KeyForIndex(i++ % 10000), snapshot));
  }
}
BENCHMARK(BM_TabletGetAt);

void BM_SyncScan(benchmark::State& state) {
  ManualClock clock(1);
  auto tablet = MakePrimaryTablet(&clock, 10000);
  // Scan the last `range(0)` updates, as a replication pull would.
  const int64_t lag = state.range(0);
  const Timestamp after{clock.NowMicros() - lag * 10, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tablet->HandleSync(after, 0));
  }
  state.SetItemsProcessed(state.iterations() * lag);
}
BENCHMARK(BM_SyncScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_RangeScan(benchmark::State& state) {
  ManualClock clock(1);
  auto tablet = MakePrimaryTablet(&clock, 10000);
  const int64_t span = state.range(0);
  int64_t start = 0;
  for (auto _ : state) {
    const std::string begin =
        workload::YcsbWorkload::KeyForIndex(start % 9000);
    benchmark::DoNotOptimize(
        tablet->HandleRange(begin, "", static_cast<uint32_t>(span)));
    start += 37;
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_RangeScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ScrambledZipfianChooser chooser(10000, 0.7);
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooser.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_WorkloadNext(benchmark::State& state) {
  workload::WorkloadOptions options;
  workload::YcsbWorkload workload(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload.Next());
  }
}
BENCHMARK(BM_WorkloadNext);

}  // namespace

BENCHMARK_MAIN();
