#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pileus {

namespace {
// Geometric growth factor chosen so 512 buckets cover [1, ~6e9].
constexpr double kGrowth = 1.045;
}  // namespace

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  const int idx =
      static_cast<int>(std::log(static_cast<double>(value)) /
                       std::log(kGrowth)) +
      1;
  return std::clamp(idx, 0, kBucketCount - 1);
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index <= 0) {
    return 0;
  }
  return static_cast<int64_t>(std::pow(kGrowth, index - 1));
}

void Histogram::Record(int64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; bucket interpolation would clamp
  // negative minima to the first bucket's lower bound of zero.
  if (q == 0.0) {
    return min_;
  }
  if (q == 1.0) {
    return max_;
  }
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const int64_t lo = std::max<int64_t>(BucketLowerBound(i), min_);
      const int64_t hi =
          std::min<int64_t>(BucketLowerBound(i + 1), max_ == 0 ? lo : max_);
      if (hi <= lo) {
        return lo;
      }
      const double frac =
          buckets_[i] == 0
              ? 0.0
              : (target - seen) / static_cast<double>(buckets_[i]);
      return lo + static_cast<int64_t>(frac * static_cast<double>(hi - lo));
    }
    seen = next;
  }
  return max_;
}

void Histogram::ForEachNonEmptyBucket(
    const std::function<void(int64_t lo, int64_t hi, uint64_t count)>& fn)
    const {
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int64_t lo = BucketLowerBound(i);
    const int64_t hi =
        i == kBucketCount - 1 ? max() : BucketLowerBound(i + 1);
    fn(lo, hi, buckets_[i]);
  }
}

std::string Histogram::BucketsJson() const {
  std::string out = "[";
  ForEachNonEmptyBucket([&out](int64_t lo, int64_t hi, uint64_t count) {
    if (out.size() > 1) {
      out.push_back(',');
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"lo\":%lld,\"hi\":%lld,\"count\":%llu}",
                  static_cast<long long>(lo), static_cast<long long>(hi),
                  static_cast<unsigned long long>(count));
    out.append(buf);
  });
  out.push_back(']');
  return out;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<long long>(Quantile(0.50)),
                static_cast<long long>(Quantile(0.95)),
                static_cast<long long>(Quantile(0.99)),
                static_cast<long long>(max()));
  return buf;
}

}  // namespace pileus
