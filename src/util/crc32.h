// CRC-32 (IEEE 802.3 polynomial, table-driven). Used to validate write-ahead
// log records and checkpoint files against torn writes and bit rot.

#ifndef PILEUS_SRC_UTIL_CRC32_H_
#define PILEUS_SRC_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace pileus {

// CRC of `data`, optionally continuing from a previous value.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace pileus

#endif  // PILEUS_SRC_UTIL_CRC32_H_
