#include "src/util/key_range.h"

#include <algorithm>

namespace pileus {

bool KeyRange::Overlaps(const KeyRange& other) const {
  if (IsEmpty() || other.IsEmpty()) {
    return false;
  }
  const bool this_below_other = !end.empty() && end <= other.begin;
  const bool other_below_this = !other.end.empty() && other.end <= begin;
  return !this_below_other && !other_below_this;
}

bool KeyRange::SplitAt(std::string_view key, KeyRange* lower,
                       KeyRange* upper) const {
  if (!IsSplittable(key)) {
    return false;
  }
  lower->begin = begin;
  lower->end = std::string(key);
  upper->begin = std::string(key);
  upper->end = end;
  return true;
}

std::string KeyRange::ToString() const {
  std::string out = "[";
  out += begin.empty() ? "-inf" : "'" + begin + "'";
  out += ", ";
  out += end.empty() ? "+inf" : "'" + end + "'";
  out += ")";
  return out;
}

bool RangesCoverKeySpace(std::vector<KeyRange> ranges) {
  if (ranges.empty()) {
    return false;
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const KeyRange& a, const KeyRange& b) {
              return a.begin < b.begin;
            });
  if (!ranges.front().begin.empty()) {
    return false;
  }
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    if (ranges[i].end.empty() || ranges[i].end != ranges[i + 1].begin) {
      return false;
    }
  }
  return ranges.back().end.empty();
}

std::vector<KeyRange> SplitKeySpaceEvenly(int n) {
  std::vector<KeyRange> out;
  if (n <= 1) {
    out.push_back(KeyRange::All());
    return out;
  }
  std::string prev;
  for (int i = 1; i < n; ++i) {
    const int pivot = (256 * i) / n;
    std::string boundary(1, static_cast<char>(pivot));
    out.push_back(KeyRange{prev, boundary});
    prev = std::move(boundary);
  }
  out.push_back(KeyRange{prev, ""});
  return out;
}

}  // namespace pileus
