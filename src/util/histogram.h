// Log-bucketed latency histogram for bench reporting.
//
// Buckets grow geometrically (~4.6% relative width), giving HDR-style
// accuracy over the microsecond..minutes range the geo experiments span with
// a small fixed footprint.

#ifndef PILEUS_SRC_UTIL_HISTOGRAM_H_
#define PILEUS_SRC_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace pileus {

class Histogram {
 public:
  Histogram() = default;

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  // q in [0,1]; interpolated within the owning bucket.
  int64_t Quantile(double q) const;

  // "n=... mean=... p50=... p99=... max=..." one-liner.
  std::string Summary() const;

  // Visits the non-empty buckets in ascending value order. `lo` is the
  // bucket's inclusive lower bound, `hi` its exclusive upper bound (the next
  // bucket's lower bound; the last bucket is open-ended and reports max()).
  void ForEachNonEmptyBucket(
      const std::function<void(int64_t lo, int64_t hi, uint64_t count)>& fn)
      const;

  // JSON array of the non-empty buckets, e.g.
  //   [{"lo":0,"hi":1,"count":3},{"lo":22,"hi":23,"count":1}]
  // so exporters can emit full distributions, not just summary quantiles.
  std::string BucketsJson() const;

 private:
  static constexpr int kBucketCount = 512;

  static int BucketFor(int64_t value);
  static int64_t BucketLowerBound(int index);

  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace pileus

#endif  // PILEUS_SRC_UTIL_HISTOGRAM_H_
