// Time-bounded sliding window of latency samples.
//
// Pileus monitors keep "a sliding window of the last few minutes of
// measurements" per storage node (paper Section 4.5). PNodeLat(node, L) is the
// fraction of windowed round-trip times below L; the window also exposes
// quantiles and an optional exponential recency weighting (the paper notes
// "more recent measurements could be weighted higher than older ones").

#ifndef PILEUS_SRC_UTIL_SLIDING_WINDOW_H_
#define PILEUS_SRC_UTIL_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>

#include "src/common/clock.h"

namespace pileus {

class SlidingWindow {
 public:
  struct Options {
    // Samples older than this are evicted.
    MicrosecondCount window_us = SecondsToMicroseconds(120);
    // Hard cap on retained samples regardless of age.
    size_t max_samples = 4096;
    // When > 0, FractionBelow weights sample i (age a_i) by exp(-a_i/tau).
    MicrosecondCount recency_tau_us = 0;
  };

  SlidingWindow() : SlidingWindow(Options{}) {}
  explicit SlidingWindow(Options options) : options_(options) {}

  // Records a latency sample observed at `now_us`.
  void Record(MicrosecondCount now_us, MicrosecondCount value_us);

  // Fraction of samples (by weight) strictly below `threshold_us`; returns
  // `empty_estimate` when no samples are in the window, modelling an
  // unmeasured node optimistically so it gets probed/tried.
  double FractionBelow(MicrosecondCount now_us, MicrosecondCount threshold_us,
                       double empty_estimate = 1.0) const;

  // Arithmetic mean of windowed samples (0 when empty).
  MicrosecondCount Mean(MicrosecondCount now_us) const;

  // q in [0,1]; nearest-rank quantile of windowed samples (0 when empty).
  MicrosecondCount Quantile(MicrosecondCount now_us, double q) const;

  size_t SampleCount(MicrosecondCount now_us) const;
  bool Empty(MicrosecondCount now_us) const { return SampleCount(now_us) == 0; }

  // Time of the most recent sample, or -1 if none.
  MicrosecondCount LastSampleTime() const {
    return samples_.empty() ? -1 : samples_.back().at_us;
  }

  void Clear() { samples_.clear(); }

 private:
  struct Sample {
    MicrosecondCount at_us;
    MicrosecondCount value_us;
  };

  void EvictExpired(MicrosecondCount now_us) const;

  Options options_;
  // Mutable so read-side queries can lazily evict expired samples.
  mutable std::deque<Sample> samples_;
};

}  // namespace pileus

#endif  // PILEUS_SRC_UTIL_SLIDING_WINDOW_H_
