#include "src/util/codec.h"

namespace pileus {

void Encoder::PutFixed32(uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v);
  b[1] = static_cast<char>(v >> 8);
  b[2] = static_cast<char>(v >> 16);
  b[3] = static_cast<char>(v >> 24);
  buf_.append(b, 4);
}

void Encoder::PutFixed64(uint64_t v) {
  PutFixed32(static_cast<uint32_t>(v));
  PutFixed32(static_cast<uint32_t>(v >> 32));
}

void Encoder::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Encoder::PutVarintSigned64(int64_t v) {
  const uint64_t zz =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(zz);
}

void Encoder::PutLengthPrefixed(std::string_view bytes) {
  PutVarint64(bytes.size());
  buf_.append(bytes.data(), bytes.size());
}

void Encoder::PutTimestamp(const Timestamp& ts) {
  PutVarintSigned64(ts.physical_us);
  PutVarint64(ts.sequence);
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

Status Decoder::Truncated(const char* what) {
  return Status(StatusCode::kCorruption,
                std::string("truncated input decoding ") + what);
}

Status Decoder::GetUint8(uint8_t* out) {
  if (data_.size() < 1) {
    return Truncated("uint8");
  }
  *out = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return Status::Ok();
}

Status Decoder::GetFixed32(uint32_t* out) {
  if (data_.size() < 4) {
    return Truncated("fixed32");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data());
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  data_.remove_prefix(4);
  return Status::Ok();
}

Status Decoder::GetFixed64(uint64_t* out) {
  uint32_t lo, hi;
  PILEUS_RETURN_IF_ERROR(GetFixed32(&lo));
  PILEUS_RETURN_IF_ERROR(GetFixed32(&hi));
  *out = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::Ok();
}

Status Decoder::GetVarint64(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (!data_.empty()) {
    const uint8_t byte = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    if (shift >= 63 && byte > 1) {
      return Status(StatusCode::kCorruption, "varint64 overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return Status::Ok();
    }
    shift += 7;
    if (shift > 63) {
      return Status(StatusCode::kCorruption, "varint64 too long");
    }
  }
  return Truncated("varint64");
}

Status Decoder::GetVarintSigned64(int64_t* out) {
  uint64_t zz;
  PILEUS_RETURN_IF_ERROR(GetVarint64(&zz));
  *out = static_cast<int64_t>(zz >> 1) ^ -static_cast<int64_t>(zz & 1);
  return Status::Ok();
}

Status Decoder::GetLengthPrefixed(std::string_view* out) {
  uint64_t len;
  PILEUS_RETURN_IF_ERROR(GetVarint64(&len));
  if (data_.size() < len) {
    return Truncated("length-prefixed bytes");
  }
  *out = data_.substr(0, len);
  data_.remove_prefix(len);
  return Status::Ok();
}

Status Decoder::GetLengthPrefixedString(std::string* out) {
  std::string_view view;
  PILEUS_RETURN_IF_ERROR(GetLengthPrefixed(&view));
  out->assign(view.data(), view.size());
  return Status::Ok();
}

Status Decoder::GetTimestamp(Timestamp* out) {
  PILEUS_RETURN_IF_ERROR(GetVarintSigned64(&out->physical_us));
  uint64_t seq;
  PILEUS_RETURN_IF_ERROR(GetVarint64(&seq));
  if (seq > UINT32_MAX) {
    return Status(StatusCode::kCorruption, "timestamp sequence overflow");
  }
  out->sequence = static_cast<uint32_t>(seq);
  return Status::Ok();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v;
  PILEUS_RETURN_IF_ERROR(GetUint8(&v));
  *out = (v != 0);
  return Status::Ok();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits;
  PILEUS_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::Ok();
}

}  // namespace pileus
