#include "src/util/sliding_window.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pileus {

void SlidingWindow::Record(MicrosecondCount now_us,
                           MicrosecondCount value_us) {
  EvictExpired(now_us);
  samples_.push_back(Sample{now_us, value_us});
  while (samples_.size() > options_.max_samples) {
    samples_.pop_front();
  }
}

void SlidingWindow::EvictExpired(MicrosecondCount now_us) const {
  const MicrosecondCount cutoff = now_us - options_.window_us;
  while (!samples_.empty() && samples_.front().at_us < cutoff) {
    samples_.pop_front();
  }
}

double SlidingWindow::FractionBelow(MicrosecondCount now_us,
                                    MicrosecondCount threshold_us,
                                    double empty_estimate) const {
  EvictExpired(now_us);
  if (samples_.empty()) {
    return empty_estimate;
  }
  if (options_.recency_tau_us <= 0) {
    size_t below = 0;
    for (const Sample& s : samples_) {
      if (s.value_us < threshold_us) {
        ++below;
      }
    }
    return static_cast<double>(below) / static_cast<double>(samples_.size());
  }
  double total = 0.0;
  double below = 0.0;
  const double tau = static_cast<double>(options_.recency_tau_us);
  for (const Sample& s : samples_) {
    const double age = static_cast<double>(now_us - s.at_us);
    const double w = std::exp(-age / tau);
    total += w;
    if (s.value_us < threshold_us) {
      below += w;
    }
  }
  return total > 0.0 ? below / total : empty_estimate;
}

MicrosecondCount SlidingWindow::Mean(MicrosecondCount now_us) const {
  EvictExpired(now_us);
  if (samples_.empty()) {
    return 0;
  }
  // Sums of microsecond latencies over <=4096 samples cannot overflow int64.
  MicrosecondCount sum = 0;
  for (const Sample& s : samples_) {
    sum += s.value_us;
  }
  return sum / static_cast<MicrosecondCount>(samples_.size());
}

MicrosecondCount SlidingWindow::Quantile(MicrosecondCount now_us,
                                         double q) const {
  EvictExpired(now_us);
  if (samples_.empty()) {
    return 0;
  }
  std::vector<MicrosecondCount> values;
  values.reserve(samples_.size());
  for (const Sample& s : samples_) {
    values.push_back(s.value_us);
  }
  q = std::clamp(q, 0.0, 1.0);
  const size_t rank = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

size_t SlidingWindow::SampleCount(MicrosecondCount now_us) const {
  EvictExpired(now_us);
  return samples_.size();
}

}  // namespace pileus
