// Wire encoding primitives.
//
// All Pileus RPC messages are encoded with this hand-rolled format:
// little-endian fixed integers, LEB128 varints, and length-prefixed byte
// strings. Decoding never trusts the input: every read is bounds-checked and
// failures surface as kCorruption, so a malformed or truncated frame cannot
// crash a storage node.

#ifndef PILEUS_SRC_UTIL_CODEC_H_
#define PILEUS_SRC_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/timestamp.h"

namespace pileus {

// Appends binary fields to a growable buffer.
class Encoder {
 public:
  Encoder() = default;

  void PutUint8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);

  // Unsigned LEB128.
  void PutVarint64(uint64_t v);
  // Zig-zag + LEB128 for signed values.
  void PutVarintSigned64(int64_t v);

  // Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(std::string_view bytes);

  void PutTimestamp(const Timestamp& ts);

  void PutBool(bool v) { PutUint8(v ? 1 : 0); }
  void PutDouble(double v);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Consumes binary fields from a non-owned byte span.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetUint8(uint8_t* out);
  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetVarint64(uint64_t* out);
  Status GetVarintSigned64(int64_t* out);
  // The returned view aliases the decoder's underlying buffer.
  Status GetLengthPrefixed(std::string_view* out);
  Status GetLengthPrefixedString(std::string* out);
  Status GetTimestamp(Timestamp* out);
  Status GetBool(bool* out);
  Status GetDouble(double* out);

  bool AtEnd() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  Status Truncated(const char* what);

  std::string_view data_;
};

}  // namespace pileus

#endif  // PILEUS_SRC_UTIL_CODEC_H_
