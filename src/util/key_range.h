// Half-open key ranges [begin, end) for tablet partitioning.
//
// Tables are horizontally partitioned into tablets by key range (paper
// Section 4.2, following BigTable). An empty `end` means "unbounded above",
// so the full keyspace is KeyRange{"", ""}.

#ifndef PILEUS_SRC_UTIL_KEY_RANGE_H_
#define PILEUS_SRC_UTIL_KEY_RANGE_H_

#include <string>
#include <string_view>
#include <vector>

namespace pileus {

struct KeyRange {
  std::string begin;  // Inclusive lower bound ("" = lowest key).
  std::string end;    // Exclusive upper bound ("" = unbounded).

  static KeyRange All() { return KeyRange{"", ""}; }

  bool Contains(std::string_view key) const {
    if (key < begin) {
      return false;
    }
    return end.empty() || key < end;
  }

  bool IsEmpty() const { return !end.empty() && begin >= end; }

  bool Overlaps(const KeyRange& other) const;

  bool operator==(const KeyRange&) const = default;

  std::string ToString() const;

  // True iff splitting at `key` yields two non-empty halves, i.e. `key` is
  // strictly inside the range (contained and above `begin`).
  bool IsSplittable(std::string_view key) const {
    return Contains(key) && key > begin;
  }

  // Splits into [begin, key) and [key, end). `lower`/`upper` are written
  // only on success; returns false when `key` is not strictly interior.
  bool SplitAt(std::string_view key, KeyRange* lower, KeyRange* upper) const;
};

// True iff `ranges` exactly tile the whole keyspace: sorted, adjacent, first
// begins at "" and last is unbounded. Used to validate table configurations.
bool RangesCoverKeySpace(std::vector<KeyRange> ranges);

// Splits the full keyspace into `n` ranges using single-byte pivots; helper
// for tests and examples that want a quick multi-tablet table.
std::vector<KeyRange> SplitKeySpaceEvenly(int n);

}  // namespace pileus

#endif  // PILEUS_SRC_UTIL_KEY_RANGE_H_
