// DigestPump: a client's connection to the shared-monitoring control plane
// (DESIGN.md Section 12).
//
// Periodically ships the local Monitor's condition report to an aggregator
// endpoint and installs the digest pushed back as the monitor's fleet
// prior. Subscribe-only mode (Options::send_reports = false) is for clients
// that want priors without contributing measurements - e.g. a brand-new
// client warming up before its first operation.
//
// Aggregator death is survived by design: a failed round trip is counted
// and retried next period, the monitor keeps its last digest, and as that
// prior ages past Monitor::Options::prior_probe_suppress_us the normal
// self-probing path resumes. No coordination needed - the prior-blending
// weights decay to zero on their own.
//
// The deterministic simulation does not use this class (it schedules
// virtual-time report/install events directly against the aggregator); the
// pump is the real-time analogue, like ThreadedProber is for probing.

#ifndef PILEUS_SRC_MONITORING_PUMP_H_
#define PILEUS_SRC_MONITORING_PUMP_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/monitor.h"
#include "src/net/channel.h"

namespace pileus::monitoring {

class DigestPump {
 public:
  struct Options {
    // Names this reporter at the aggregator (sequence numbers are tracked
    // per reporter, so every process needs a distinct id).
    std::string reporter = "client";
    std::string table = "default";
    MicrosecondCount period_us = SecondsToMicroseconds(5);
    MicrosecondCount call_timeout_us = SecondsToMicroseconds(5);
    // false = subscribe-only: install pushed digests, report nothing.
    bool send_reports = true;
  };

  // Starts the background loop immediately. Neither pointer is owned; both
  // must outlive the pump.
  DigestPump(core::Monitor* monitor, net::Channel* channel, Options options);
  ~DigestPump() { Stop(); }

  DigestPump(const DigestPump&) = delete;
  DigestPump& operator=(const DigestPump&) = delete;

  void Stop();

  // One synchronous report-or-subscribe round trip; the background loop
  // calls this every period, and tests / cold-start paths call it directly
  // for a deterministic first install.
  Status PumpOnce();

  uint64_t reports_sent() const {
    return reports_sent_.load(std::memory_order_relaxed);
  }
  uint64_t digests_installed() const {
    return digests_installed_.load(std::memory_order_relaxed);
  }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  core::Monitor* monitor_;  // Not owned.
  net::Channel* channel_;   // Not owned.
  const Options options_;
  std::atomic<uint64_t> reports_sent_{0};
  std::atomic<uint64_t> digests_installed_{0};
  std::atomic<uint64_t> failures_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace pileus::monitoring

#endif  // PILEUS_SRC_MONITORING_PUMP_H_
