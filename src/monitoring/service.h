// AggregatorService: the protocol face of a MonitorAggregator.
//
// Translates wire-v5 monitoring messages into aggregator calls:
//
//   MonitorReport   -> Ingest; answered with a DigestPush carrying the
//                      post-merge fleet digest, so reporters refresh their
//                      priors in the same round trip.
//   DigestSubscribe -> answered with a DigestPush; `has_digest` is false
//                      when the subscriber's have_version is already
//                      current (a cheap not-modified poll).
//
// MaybeHandle returns nullopt for every other message type, so the service
// composes as a wrapper around an existing handler: pileus_server chains it
// in front of StorageNode::Handle with --aggregator, and the standalone
// pileus_aggregator daemon uses it as its whole handler.

#ifndef PILEUS_SRC_MONITORING_SERVICE_H_
#define PILEUS_SRC_MONITORING_SERVICE_H_

#include <optional>

#include "src/monitoring/aggregator.h"
#include "src/net/channel.h"
#include "src/proto/messages.h"
#include "src/telemetry/metrics.h"

namespace pileus::monitoring {

class AggregatorService {
 public:
  // Neither pointer is owned; `metrics` may be null (no accounting).
  explicit AggregatorService(MonitorAggregator* aggregator,
                             telemetry::MetricsRegistry* metrics = nullptr);

  // Handles MonitorReport / DigestSubscribe; nullopt for everything else.
  std::optional<proto::Message> MaybeHandle(const proto::Message& request);

  // A handler that intercepts monitoring messages and forwards the rest to
  // `inner` (which may be null: non-monitoring messages then get an
  // ErrorReply, the standalone-daemon configuration).
  net::Handler Wrap(net::Handler inner);

 private:
  MonitorAggregator* aggregator_;  // Not owned.
  telemetry::Counter* reports_ = nullptr;
  telemetry::Counter* reports_rejected_ = nullptr;
  telemetry::Counter* subscribes_ = nullptr;
  telemetry::Counter* pushes_ = nullptr;
};

}  // namespace pileus::monitoring

#endif  // PILEUS_SRC_MONITORING_SERVICE_H_
