#include "src/monitoring/aggregator.h"

#include <algorithm>
#include <cmath>

namespace pileus::monitoring {

bool MonitorAggregator::Ingest(std::string_view reporter, uint64_t seq,
                               const std::vector<NodeCondition>& conditions) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = reporter_seq_.find(reporter);
  if (it != reporter_seq_.end() && seq <= it->second) {
    // Duplicate or reordered report: the reporter's seq is monotonic, so
    // anything at or below the last accepted one carries no new evidence
    // (and applying it could roll merged state backwards).
    ++reports_rejected_;
    return false;
  }
  if (it == reporter_seq_.end()) {
    reporter_seq_.emplace(std::string(reporter), seq);
  } else {
    it->second = seq;
  }
  const MicrosecondCount now = clock_->NowMicros();
  for (const NodeCondition& condition : conditions) {
    if (condition.node.empty()) {
      continue;
    }
    NodeState& node = nodes_[condition.node];
    auto entry = node.by_reporter.find(reporter);
    if (entry == node.by_reporter.end()) {
      entry = node.by_reporter.emplace(std::string(reporter), ReporterEntry{})
                  .first;
    }
    entry->second.condition = condition;
    entry->second.received_at_us = now;
  }
  PruneLocked(now);
  ++version_;
  ++reports_ingested_;
  return true;
}

void MonitorAggregator::PruneLocked(MicrosecondCount now_us) {
  for (auto node = nodes_.begin(); node != nodes_.end();) {
    auto& by_reporter = node->second.by_reporter;
    for (auto entry = by_reporter.begin(); entry != by_reporter.end();) {
      if (now_us - entry->second.received_at_us >= options_.entry_ttl_us) {
        entry = by_reporter.erase(entry);
      } else {
        ++entry;
      }
    }
    if (by_reporter.empty()) {
      node = nodes_.erase(node);
    } else {
      ++node;
    }
  }
}

ConditionDigest MonitorAggregator::Digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  const MicrosecondCount now = clock_->NowMicros();
  ConditionDigest digest;
  digest.version = version_;
  digest.reports_merged = reports_ingested_;
  digest.nodes.reserve(nodes_.size());
  // nodes_ is an ordered map, so the digest comes out sorted by name.
  for (const auto& [name, state] : nodes_) {
    NodeCondition merged;
    merged.node = name;
    merged.high_age_us = -1;
    double lat_weight = 0.0;      // Weight over entries with latency samples.
    double lat_mean = 0.0, lat_p50 = 0.0, lat_p95 = 0.0, lat_p99 = 0.0;
    double cond_weight = 0.0;     // Weight over all live entries.
    double p_up = 0.0, queue_delay = 0.0;
    for (const auto& [reporter, entry] : state.by_reporter) {
      const MicrosecondCount age = now - entry.received_at_us;
      if (age >= options_.entry_ttl_us) {
        continue;  // Expired since the last Ingest pruned.
      }
      const double decay = std::exp2(
          -static_cast<double>(age) /
          static_cast<double>(std::max<MicrosecondCount>(1,
                                                         options_.half_life_us)));
      const NodeCondition& c = entry.condition;
      const double w = decay * static_cast<double>(std::max<uint64_t>(
                                   1, c.sample_count));
      cond_weight += w;
      p_up += w * c.p_up;
      queue_delay += w * static_cast<double>(c.queue_delay_us);
      if (c.overloaded && age <= options_.half_life_us) {
        merged.overloaded = true;
      }
      if (c.sample_count > 0) {
        const double lw = decay * static_cast<double>(c.sample_count);
        lat_weight += lw;
        lat_mean += lw * static_cast<double>(c.mean_latency_us);
        lat_p50 += lw * static_cast<double>(c.p50_latency_us);
        lat_p95 += lw * static_cast<double>(c.p95_latency_us);
        lat_p99 += lw * static_cast<double>(c.p99_latency_us);
        merged.sample_count += c.sample_count;
      }
      // High timestamps only grow: keep the max, with the youngest age at
      // which anyone observed it (entry age + the reporter's observation
      // age at report time).
      if (c.high_age_us >= 0 && c.high_timestamp > merged.high_timestamp) {
        merged.high_timestamp = c.high_timestamp;
        merged.high_age_us = c.high_age_us + age;
      }
    }
    if (cond_weight <= 0.0) {
      continue;
    }
    merged.p_up = p_up / cond_weight;
    merged.queue_delay_us =
        static_cast<MicrosecondCount>(queue_delay / cond_weight);
    if (lat_weight > 0.0) {
      merged.mean_latency_us =
          static_cast<MicrosecondCount>(lat_mean / lat_weight);
      merged.p50_latency_us =
          static_cast<MicrosecondCount>(lat_p50 / lat_weight);
      merged.p95_latency_us =
          static_cast<MicrosecondCount>(lat_p95 / lat_weight);
      merged.p99_latency_us =
          static_cast<MicrosecondCount>(lat_p99 / lat_weight);
    }
    digest.nodes.push_back(std::move(merged));
  }
  return digest;
}

}  // namespace pileus::monitoring
