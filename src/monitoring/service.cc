#include "src/monitoring/service.h"

#include <utility>

namespace pileus::monitoring {

AggregatorService::AggregatorService(MonitorAggregator* aggregator,
                                     telemetry::MetricsRegistry* metrics)
    : aggregator_(aggregator) {
  if (metrics != nullptr) {
    reports_ = metrics->GetCounter("pileus_aggregator_reports_total");
    reports_rejected_ =
        metrics->GetCounter("pileus_aggregator_reports_rejected_total");
    subscribes_ = metrics->GetCounter("pileus_aggregator_subscribes_total");
    pushes_ = metrics->GetCounter("pileus_aggregator_pushes_total");
  }
}

std::optional<proto::Message> AggregatorService::MaybeHandle(
    const proto::Message& request) {
  if (const auto* report = std::get_if<proto::MonitorReport>(&request)) {
    if (reports_ != nullptr) {
      reports_->Increment();
    }
    if (!aggregator_->Ingest(report->reporter, report->seq,
                             report->conditions) &&
        reports_rejected_ != nullptr) {
      reports_rejected_->Increment();
    }
    // Even a rejected (duplicate) report gets the current digest back: the
    // reporter still wants fresh priors.
    proto::DigestPush push;
    push.digest = aggregator_->Digest();
    push.has_digest = push.digest.version > 0;
    if (push.has_digest && pushes_ != nullptr) {
      pushes_->Increment();
    }
    return proto::Message(std::move(push));
  }
  if (const auto* sub = std::get_if<proto::DigestSubscribe>(&request)) {
    if (subscribes_ != nullptr) {
      subscribes_->Increment();
    }
    proto::DigestPush push;
    ConditionDigest digest = aggregator_->Digest();
    if (digest.version > sub->have_version) {
      push.has_digest = true;
      push.digest = std::move(digest);
      if (pushes_ != nullptr) {
        pushes_->Increment();
      }
    }
    return proto::Message(std::move(push));
  }
  return std::nullopt;
}

net::Handler AggregatorService::Wrap(net::Handler inner) {
  return [this, inner = std::move(inner)](const proto::Message& request) {
    if (std::optional<proto::Message> reply = MaybeHandle(request)) {
      return *std::move(reply);
    }
    if (inner) {
      return inner(request);
    }
    proto::ErrorReply err;
    err.code = StatusCode::kInvalidArgument;
    err.message = "aggregator endpoint serves monitoring messages only";
    return proto::Message(std::move(err));
  };
}

}  // namespace pileus::monitoring
