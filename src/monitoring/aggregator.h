// MonitorAggregator: the shared-monitoring control plane's merge engine
// (DESIGN.md Section 12, paper Section 6.1, ROADMAP item 3).
//
// Clients' Monitors and storage nodes send compact per-node condition
// reports; the aggregator merges them into one versioned fleet view (a
// ConditionDigest) that subscribers install as selection priors. At
// millions of clients this turns quadratic every-client-probes-every-node
// waste into a hub: a sample of reporters measures, everyone benefits.
//
// Merge policy, per node:
//   - the latest condition from each reporter is retained, weighted by its
//     sample count and decayed by its age (half-life Options::half_life_us),
//     so a reporter that went quiet fades out instead of pinning the view;
//   - latency percentiles merge as a weighted average over reporters that
//     actually have latency samples (approximate, but monotone in the
//     inputs and cheap - the digest is a prior, not ground truth);
//   - high timestamps merge as the maximum (they only grow, so the max is a
//     safe staleness bound), carrying the youngest age that observed it;
//   - p_up / queue delay merge as decayed weighted averages; `overloaded`
//     is sticky for up to one half-life.
//
// Report ordering: every reporter stamps its reports with a monotonic
// sequence number (Monitor::state_version). A report whose seq is <= the
// last accepted one from that reporter is rejected, so duplicated or
// reordered reports can never regress the merged state.
//
// Thread safety: fully synchronized; one aggregator may sit behind a
// threaded transport handler and a periodic self-report loop at once.

#ifndef PILEUS_SRC_MONITORING_AGGREGATOR_H_
#define PILEUS_SRC_MONITORING_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/monitoring/digest.h"

namespace pileus::monitoring {

class MonitorAggregator {
 public:
  struct Options {
    // A reporter's entry for a node is dropped once it is this old; a node
    // with no live entries disappears from the digest entirely.
    MicrosecondCount entry_ttl_us = SecondsToMicroseconds(120);
    // Entry weight halves every half-life: weight = samples * 2^(-age/hl).
    MicrosecondCount half_life_us = SecondsToMicroseconds(30);
  };

  explicit MonitorAggregator(const Clock* clock)
      : MonitorAggregator(clock, Options{}) {}
  MonitorAggregator(const Clock* clock, Options options)
      : clock_(clock), options_(options) {}

  // Merges one report. `seq` must strictly grow per reporter: a stale or
  // duplicate seq is rejected (returns false) and leaves the state
  // untouched. Each condition's ages are re-anchored to receipt time.
  bool Ingest(std::string_view reporter, uint64_t seq,
              const std::vector<NodeCondition>& conditions);

  // The current merged fleet view. Entries past their TTL are excluded;
  // version is the last accepted report's version (0 = nothing ever
  // ingested).
  ConditionDigest Digest() const;

  uint64_t digest_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  uint64_t reports_ingested() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_ingested_;
  }
  uint64_t reports_rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_rejected_;
  }
  size_t node_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_.size();
  }

  const Options& options() const { return options_; }

 private:
  // One reporter's latest word on one node, re-anchored to our clock.
  struct ReporterEntry {
    NodeCondition condition;
    MicrosecondCount received_at_us = 0;
  };
  struct NodeState {
    std::map<std::string, ReporterEntry, std::less<>> by_reporter;
  };

  // Drops expired reporter entries and empty nodes. Called with mu_ held.
  void PruneLocked(MicrosecondCount now_us);

  const Clock* clock_;  // Not owned.
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> reporter_seq_;
  std::map<std::string, NodeState, std::less<>> nodes_;
  uint64_t version_ = 0;
  uint64_t reports_ingested_ = 0;
  uint64_t reports_rejected_ = 0;
};

}  // namespace pileus::monitoring

#endif  // PILEUS_SRC_MONITORING_AGGREGATOR_H_
