#include "src/monitoring/digest.h"

namespace pileus::monitoring {

void EncodeNodeCondition(Encoder& enc, const NodeCondition& c) {
  enc.PutLengthPrefixed(c.node);
  enc.PutVarint64(c.sample_count);
  enc.PutVarint64(static_cast<uint64_t>(c.mean_latency_us));
  enc.PutVarint64(static_cast<uint64_t>(c.p50_latency_us));
  enc.PutVarint64(static_cast<uint64_t>(c.p95_latency_us));
  enc.PutVarint64(static_cast<uint64_t>(c.p99_latency_us));
  enc.PutTimestamp(c.high_timestamp);
  enc.PutVarintSigned64(c.high_age_us);
  enc.PutDouble(c.p_up);
  enc.PutVarint64(static_cast<uint64_t>(c.queue_delay_us));
  enc.PutBool(c.overloaded);
}

namespace {

Status DecodeMicros(Decoder& dec, MicrosecondCount* out) {
  uint64_t raw;
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&raw));
  if (raw > static_cast<uint64_t>(INT64_MAX)) {
    return Status(StatusCode::kCorruption, "microsecond count overflow");
  }
  *out = static_cast<MicrosecondCount>(raw);
  return Status::Ok();
}

}  // namespace

Status DecodeNodeCondition(Decoder& dec, NodeCondition* c) {
  PILEUS_RETURN_IF_ERROR(dec.GetLengthPrefixedString(&c->node));
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&c->sample_count));
  PILEUS_RETURN_IF_ERROR(DecodeMicros(dec, &c->mean_latency_us));
  PILEUS_RETURN_IF_ERROR(DecodeMicros(dec, &c->p50_latency_us));
  PILEUS_RETURN_IF_ERROR(DecodeMicros(dec, &c->p95_latency_us));
  PILEUS_RETURN_IF_ERROR(DecodeMicros(dec, &c->p99_latency_us));
  PILEUS_RETURN_IF_ERROR(dec.GetTimestamp(&c->high_timestamp));
  int64_t high_age;
  PILEUS_RETURN_IF_ERROR(dec.GetVarintSigned64(&high_age));
  c->high_age_us = high_age;
  PILEUS_RETURN_IF_ERROR(dec.GetDouble(&c->p_up));
  PILEUS_RETURN_IF_ERROR(DecodeMicros(dec, &c->queue_delay_us));
  return dec.GetBool(&c->overloaded);
}

void EncodeConditionDigest(Encoder& enc, const ConditionDigest& d) {
  enc.PutVarint64(d.version);
  enc.PutVarint64(d.reports_merged);
  enc.PutVarint64(d.nodes.size());
  for (const NodeCondition& c : d.nodes) {
    EncodeNodeCondition(enc, c);
  }
}

Status DecodeConditionDigest(Decoder& dec, ConditionDigest* d) {
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&d->version));
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&d->reports_merged));
  uint64_t count;
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&count));
  // Sanity cap: every condition entry needs several bytes on the wire.
  if (count > dec.remaining()) {
    return Status(StatusCode::kCorruption, "digest node count too big");
  }
  d->nodes.resize(count);
  for (NodeCondition& c : d->nodes) {
    PILEUS_RETURN_IF_ERROR(DecodeNodeCondition(dec, &c));
  }
  return Status::Ok();
}

}  // namespace pileus::monitoring
