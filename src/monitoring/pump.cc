#include "src/monitoring/pump.h"

#include <chrono>
#include <utility>

#include "src/proto/messages.h"

namespace pileus::monitoring {

DigestPump::DigestPump(core::Monitor* monitor, net::Channel* channel,
                       Options options)
    : monitor_(monitor), channel_(channel), options_(std::move(options)) {
  thread_ = std::thread([this] { Loop(); });
}

void DigestPump::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

Status DigestPump::PumpOnce() {
  proto::Message request;
  if (options_.send_reports) {
    proto::MonitorReport report;
    report.reporter = options_.reporter;
    report.seq = monitor_->state_version();
    report.table = options_.table;
    report.conditions = monitor_->BuildReportConditions();
    request = std::move(report);
    reports_sent_.fetch_add(1, std::memory_order_relaxed);
  } else {
    proto::DigestSubscribe subscribe;
    subscribe.table = options_.table;
    subscribe.have_version = monitor_->digest_version();
    request = std::move(subscribe);
  }
  Result<proto::Message> reply =
      channel_->Call(request, options_.call_timeout_us);
  if (!reply.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return reply.status();
  }
  if (const auto* err = std::get_if<proto::ErrorReply>(&reply.value())) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status(err->code, err->message);
  }
  const auto* push = std::get_if<proto::DigestPush>(&reply.value());
  if (push == nullptr) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status(StatusCode::kInternal,
                  "unexpected reply type from aggregator");
  }
  if (push->has_digest && monitor_->InstallDigest(push->digest)) {
    digests_installed_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void DigestPump::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    (void)PumpOnce();  // Failures are counted; the loop just retries.
    lock.lock();
    cv_.wait_for(lock, std::chrono::microseconds(options_.period_us),
                 [this] { return stop_; });
  }
}

}  // namespace pileus::monitoring
