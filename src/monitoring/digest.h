// Fleet condition digests (DESIGN.md Section 12, paper Section 6.1).
//
// A NodeCondition is the compact, transportable summary of everything one
// observer (a client's Monitor or a storage node itself) knows about one
// storage node: windowed latency percentiles, the last observed high
// timestamp (as an age, so it survives crossing processes with different
// clocks), reachability, and admission queue pressure. A ConditionDigest is
// the aggregator's merged, versioned fleet view: clients install it as a
// prior that seeds selection before they have probed anything.
//
// Times inside these structs are *ages* relative to the moment the struct
// was built, never absolute clock readings: absolute microsecond counts are
// meaningless across processes (the simulator's virtual clock starts at
// zero; real processes use wall time). The receiver re-anchors ages against
// its own clock on arrival.

#ifndef PILEUS_SRC_MONITORING_DIGEST_H_
#define PILEUS_SRC_MONITORING_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/timestamp.h"
#include "src/util/codec.h"

namespace pileus::monitoring {

// One node's condition as summarized by one observer (or, inside a
// ConditionDigest, merged across observers).
struct NodeCondition {
  std::string node;
  // Latency samples behind the percentile fields. 0 means the observer has
  // no latency evidence for the node (e.g. a storage node reporting its own
  // staleness/queue state); the percentile fields are then meaningless and
  // merge logic must skip them.
  uint64_t sample_count = 0;
  MicrosecondCount mean_latency_us = 0;
  MicrosecondCount p50_latency_us = 0;
  MicrosecondCount p95_latency_us = 0;
  MicrosecondCount p99_latency_us = 0;
  // Highest update timestamp the observer has seen the node acknowledge,
  // and how old that observation was when this condition was built
  // (-1 = never observed). High timestamps only grow, so a stale value is a
  // safe underestimate of the node's real staleness bound.
  Timestamp high_timestamp = Timestamp::Zero();
  MicrosecondCount high_age_us = -1;
  // Fraction of recent operations that got any answer (1.0 = fully up).
  double p_up = 1.0;
  // Smoothed server-reported admission queue delay.
  MicrosecondCount queue_delay_us = 0;
  // The observer saw the node inside an overload backoff window.
  bool overloaded = false;

  bool operator==(const NodeCondition&) const = default;
};

// The aggregator's merged fleet view. `version` is monotonic per aggregator
// and bumps on every accepted report, so receivers can install digests
// idempotently and reject reordered pushes.
struct ConditionDigest {
  uint64_t version = 0;
  // Reports merged into this view since the aggregator started; purely
  // observational (CLI / telemetry).
  uint64_t reports_merged = 0;
  std::vector<NodeCondition> nodes;  // Sorted by node name.

  const NodeCondition* Find(std::string_view node) const {
    for (const NodeCondition& c : nodes) {
      if (c.node == node) {
        return &c;
      }
    }
    return nullptr;
  }

  bool operator==(const ConditionDigest&) const = default;
};

// Wire codec helpers, shared by the proto message bodies (wire v5) and any
// future on-disk caching of digests.
void EncodeNodeCondition(Encoder& enc, const NodeCondition& c);
Status DecodeNodeCondition(Decoder& dec, NodeCondition* c);
void EncodeConditionDigest(Encoder& enc, const ConditionDigest& d);
Status DecodeConditionDigest(Decoder& dec, ConditionDigest* d);

}  // namespace pileus::monitoring

#endif  // PILEUS_SRC_MONITORING_DIGEST_H_
