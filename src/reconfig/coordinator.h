// Lease-based failover coordinator (paper Section 6.2).
//
// The coordinator owns the table's ConfigEpoch and decides when the primary
// role must move. It is a transport-free state machine in the style of
// replication::ReplicationAgent: some driver (the deterministic simulator's
// heartbeat events, or a timer thread under a real transport) sends each
// member a config heartbeat every heartbeat_period and feeds the outcome
// back through OnHeartbeatAck / OnHeartbeatMiss. A successful heartbeat to
// the primary renews its write lease; a primary that misses
// missed_heartbeats_to_fail consecutive heartbeats is declared dead, and by
// then its lease - granted for exactly that long - has already expired, so
// the old primary has fenced itself even if it is merely partitioned from
// the coordinator rather than crashed. Only after that does
// MaybePlanFailover produce a promotion plan: the next epoch, with the
// reachable member holding the highest durable update timestamp as the new
// primary. The driver installs the plan on the members (new primary first),
// catches up the newly designated sync members, then commits via AdoptPlan.
//
// Split-brain safety rests on two facts: epochs are monotonic (a member
// never accepts a config older than its installed one), and the lease
// duration equals the detection threshold (the coordinator cannot promote
// before the old primary's lease has run out under the same clock).

#ifndef PILEUS_SRC_RECONFIG_COORDINATOR_H_
#define PILEUS_SRC_RECONFIG_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/clock.h"
#include "src/common/timestamp.h"
#include "src/reconfig/config_epoch.h"

namespace pileus::reconfig {

class FailoverCoordinator {
 public:
  struct Options {
    MicrosecondCount heartbeat_period_us = MillisecondsToMicroseconds(500);
    // Consecutive missed heartbeats before the primary is declared dead.
    int missed_heartbeats_to_fail = 3;
    // How many sync members (besides the primary) each new config should
    // designate, membership permitting.
    int sync_member_target = 1;

    // The write lease granted to the primary on every acked heartbeat. By
    // construction it expires exactly when the coordinator would declare the
    // primary dead, so promotion never overlaps a live lease.
    MicrosecondCount lease_duration_us() const {
      return heartbeat_period_us * missed_heartbeats_to_fail;
    }
  };

  FailoverCoordinator(ConfigEpoch initial, Options options);

  const ConfigEpoch& config() const { return config_; }
  const Options& options() const { return options_; }
  uint64_t failovers() const { return failovers_; }

  // --- Heartbeat evidence (one call per member per round) ---

  // `durable_timestamp` is the newest update timestamp the member reports as
  // durably applied (its WAL tail); it drives the promotion choice.
  void OnHeartbeatAck(const std::string& node, MicrosecondCount now_us,
                      const Timestamp& durable_timestamp);
  void OnHeartbeatMiss(const std::string& node, MicrosecondCount now_us);

  struct Plan {
    ConfigEpoch next;
    std::string old_primary;     // The member losing the role.
    Timestamp promoted_from;     // Durable timestamp of the promoted member.
  };

  // Produces a promotion plan once the primary has missed
  // missed_heartbeats_to_fail consecutive heartbeats AND a promotable member
  // exists (currently reachable and has reported a durable timestamp).
  // Returns nullopt while the primary looks healthy or no candidate
  // qualifies (the caller retries after the next round).
  std::optional<Plan> MaybePlanFailover(MicrosecondCount now_us);

  // A deliberate placement move (Section 6.2 SLA-driven reconfiguration):
  // next epoch with `target` as primary. Returns nullopt when the target is
  // not a member or already holds the role.
  std::optional<Plan> PlanMove(const std::string& target);

  // Commits `plan.next` as the current config after the driver installed it
  // on the new primary. Resets the new primary's health so detection starts
  // fresh in the new epoch.
  void AdoptPlan(const Plan& plan);

 private:
  struct MemberHealth {
    int consecutive_misses = 0;
    MicrosecondCount last_ack_us = -1;
    Timestamp durable = Timestamp::Zero();
    bool ever_acked = false;
  };

  // Builds the epoch+1 config with `new_primary` in the role and fresh sync
  // members chosen from the reachable survivors.
  ConfigEpoch NextConfig(const std::string& new_primary) const;
  bool Reachable(const std::string& node) const;

  ConfigEpoch config_;
  Options options_;
  std::map<std::string, MemberHealth> health_;
  uint64_t failovers_ = 0;
};

}  // namespace pileus::reconfig

#endif  // PILEUS_SRC_RECONFIG_COORDINATOR_H_
