// Epoch-stamped table configurations (paper Section 6.2).
//
// A ConfigEpoch makes "primary" a role instead of a node: it names the
// member currently holding the primary role, the full storage membership,
// and the synchronously-updated replicas, all under a monotonically
// increasing epoch number. Storage nodes install configs and reject stale
// ones; every reply they send is stamped with the installed epoch and the
// primary's name so clients (and replication agents) learn about a
// reconfiguration from ordinary traffic instead of an out-of-band channel.
//
// Epoch 0 is reserved for "unconfigured": a node that never installed a
// config behaves exactly like the pre-reconfiguration system (static roles
// assigned at tablet creation), which keeps single-node deployments and
// existing tests unchanged.

#ifndef PILEUS_SRC_RECONFIG_CONFIG_EPOCH_H_
#define PILEUS_SRC_RECONFIG_CONFIG_EPOCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/util/codec.h"

namespace pileus::reconfig {

struct ConfigEpoch {
  uint64_t epoch = 0;   // 0 = unconfigured (legacy static placement).
  std::string primary;  // Member currently holding the primary role.
  // Every storage member, including the primary and any crashed members
  // (membership survives a crash; only the roles move).
  std::vector<std::string> members;
  // Synchronously-updated replicas besides the primary (Section 6.4). These
  // hold a complete prefix of the commit order at every instant, so they are
  // both strong-read targets and the preferred promotion candidates.
  std::vector<std::string> sync_members;

  bool operator==(const ConfigEpoch&) const = default;

  bool IsMember(std::string_view node) const;
  bool IsSyncMember(std::string_view node) const;

  // "epoch 3: primary=US members=[England,US,India] sync=[India]".
  std::string ToString() const;
};

// Codec helpers shared by the wire format and the WAL config record.
void EncodeConfigEpoch(Encoder& enc, const ConfigEpoch& config);
Status DecodeConfigEpoch(Decoder& dec, ConfigEpoch* config);

}  // namespace pileus::reconfig

#endif  // PILEUS_SRC_RECONFIG_CONFIG_EPOCH_H_
