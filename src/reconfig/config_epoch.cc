#include "src/reconfig/config_epoch.h"

#include <sstream>

namespace pileus::reconfig {

namespace {

void EncodeNameList(Encoder& enc, const std::vector<std::string>& names) {
  enc.PutVarint64(names.size());
  for (const std::string& name : names) {
    enc.PutLengthPrefixed(name);
  }
}

Status DecodeNameList(Decoder& dec, std::vector<std::string>* names) {
  uint64_t count = 0;
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&count));
  if (count > dec.remaining()) {
    return Status(StatusCode::kCorruption, "config member count too big");
  }
  names->resize(count);
  for (std::string& name : *names) {
    PILEUS_RETURN_IF_ERROR(dec.GetLengthPrefixedString(&name));
  }
  return Status::Ok();
}

}  // namespace

bool ConfigEpoch::IsMember(std::string_view node) const {
  for (const std::string& member : members) {
    if (member == node) {
      return true;
    }
  }
  return false;
}

bool ConfigEpoch::IsSyncMember(std::string_view node) const {
  for (const std::string& member : sync_members) {
    if (member == node) {
      return true;
    }
  }
  return false;
}

std::string ConfigEpoch::ToString() const {
  std::ostringstream os;
  os << "epoch " << epoch << ": primary=" << primary << " members=[";
  for (size_t i = 0; i < members.size(); ++i) {
    os << (i == 0 ? "" : ",") << members[i];
  }
  os << "] sync=[";
  for (size_t i = 0; i < sync_members.size(); ++i) {
    os << (i == 0 ? "" : ",") << sync_members[i];
  }
  os << "]";
  return os.str();
}

void EncodeConfigEpoch(Encoder& enc, const ConfigEpoch& config) {
  enc.PutVarint64(config.epoch);
  enc.PutLengthPrefixed(config.primary);
  EncodeNameList(enc, config.members);
  EncodeNameList(enc, config.sync_members);
}

Status DecodeConfigEpoch(Decoder& dec, ConfigEpoch* config) {
  PILEUS_RETURN_IF_ERROR(dec.GetVarint64(&config->epoch));
  PILEUS_RETURN_IF_ERROR(dec.GetLengthPrefixedString(&config->primary));
  PILEUS_RETURN_IF_ERROR(DecodeNameList(dec, &config->members));
  return DecodeNameList(dec, &config->sync_members);
}

}  // namespace pileus::reconfig
