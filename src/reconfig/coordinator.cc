#include "src/reconfig/coordinator.h"

#include <algorithm>

namespace pileus::reconfig {

FailoverCoordinator::FailoverCoordinator(ConfigEpoch initial, Options options)
    : config_(std::move(initial)), options_(options) {
  for (const std::string& member : config_.members) {
    health_.emplace(member, MemberHealth{});
  }
}

void FailoverCoordinator::OnHeartbeatAck(const std::string& node,
                                         MicrosecondCount now_us,
                                         const Timestamp& durable_timestamp) {
  MemberHealth& health = health_[node];
  health.consecutive_misses = 0;
  health.last_ack_us = now_us;
  health.durable = MaxTimestamp(health.durable, durable_timestamp);
  health.ever_acked = true;
}

void FailoverCoordinator::OnHeartbeatMiss(const std::string& node,
                                          MicrosecondCount now_us) {
  (void)now_us;
  ++health_[node].consecutive_misses;
}

bool FailoverCoordinator::Reachable(const std::string& node) const {
  auto it = health_.find(node);
  return it != health_.end() && it->second.ever_acked &&
         it->second.consecutive_misses == 0;
}

ConfigEpoch FailoverCoordinator::NextConfig(
    const std::string& new_primary) const {
  ConfigEpoch next;
  next.epoch = config_.epoch + 1;
  next.primary = new_primary;
  next.members = config_.members;
  // Sync members: prefer survivors that already hold the role (no catch-up
  // needed), then fill with the freshest reachable members. Membership order
  // breaks ties so the choice is deterministic.
  std::vector<std::string> candidates;
  for (const std::string& member : config_.members) {
    if (member != new_primary && Reachable(member)) {
      candidates.push_back(member);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](const std::string& a, const std::string& b) {
                     const bool a_sync = config_.IsSyncMember(a);
                     const bool b_sync = config_.IsSyncMember(b);
                     if (a_sync != b_sync) {
                       return a_sync;
                     }
                     return health_.at(a).durable > health_.at(b).durable;
                   });
  const size_t want =
      config_.sync_members.empty()
          ? 0
          : static_cast<size_t>(std::max(0, options_.sync_member_target));
  for (const std::string& candidate : candidates) {
    if (next.sync_members.size() >= want) {
      break;
    }
    next.sync_members.push_back(candidate);
  }
  return next;
}

std::optional<FailoverCoordinator::Plan> FailoverCoordinator::MaybePlanFailover(
    MicrosecondCount now_us) {
  (void)now_us;
  auto primary_health = health_.find(config_.primary);
  if (primary_health == health_.end() ||
      primary_health->second.consecutive_misses <
          options_.missed_heartbeats_to_fail) {
    return std::nullopt;
  }
  // Promotion choice: the reachable member with the highest durable update
  // timestamp loses nothing that was ever acked (a sync member holds the
  // complete committed prefix, so it naturally wins).
  const std::string* best = nullptr;
  Timestamp best_durable = Timestamp::Zero();
  for (const std::string& member : config_.members) {
    if (member == config_.primary || !Reachable(member)) {
      continue;
    }
    const MemberHealth& health = health_.at(member);
    if (best == nullptr || health.durable > best_durable ||
        (health.durable == best_durable && config_.IsSyncMember(member) &&
         !config_.IsSyncMember(*best))) {
      best = &member;
      best_durable = health.durable;
    }
  }
  if (best == nullptr) {
    return std::nullopt;  // Nobody to promote; retry after the next round.
  }
  Plan plan;
  plan.next = NextConfig(*best);
  plan.old_primary = config_.primary;
  plan.promoted_from = best_durable;
  return plan;
}

std::optional<FailoverCoordinator::Plan> FailoverCoordinator::PlanMove(
    const std::string& target) {
  if (!config_.IsMember(target) || target == config_.primary) {
    return std::nullopt;
  }
  Plan plan;
  plan.next = NextConfig(target);
  plan.old_primary = config_.primary;
  auto it = health_.find(target);
  plan.promoted_from = it == health_.end() ? Timestamp::Zero()
                                           : it->second.durable;
  return plan;
}

void FailoverCoordinator::AdoptPlan(const Plan& plan) {
  config_ = plan.next;
  ++failovers_;
  // The new primary starts the epoch with a clean bill of health; members
  // keep their miss counts so a second failure is detected promptly.
  health_[config_.primary].consecutive_misses = 0;
}

}  // namespace pileus::reconfig
