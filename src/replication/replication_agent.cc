#include "src/replication/replication_agent.h"

#include <chrono>

#include "src/common/logging.h"

namespace pileus::replication {

proto::SyncRequest ReplicationAgent::NextRequest() const {
  proto::SyncRequest request;
  request.table = options_.table;
  request.after = target_->high_timestamp();
  request.max_versions = options_.max_versions_per_pull;
  return request;
}

void ReplicationAgent::EnableTelemetry(telemetry::MetricsRegistry* registry,
                                       std::string_view node_label) {
  if (registry == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  const auto counter = [&](std::string_view base) {
    return registry->GetCounter(telemetry::WithLabels(
        base, {{"table", options_.table}, {"node", node_label}}));
  };
  instruments_.syncs = counter("pileus_replication_syncs_total");
  instruments_.versions = counter("pileus_replication_versions_applied_total");
  instruments_.heartbeats = counter("pileus_replication_heartbeats_total");
  instruments_.pulls = counter("pileus_replication_pulls_total");
  instruments_.high_timestamp_us = registry->GetGauge(telemetry::WithLabels(
      "pileus_replication_high_timestamp_us",
      {{"table", options_.table}, {"node", node_label}}));
}

bool ReplicationAgent::OnReply(const proto::SyncReply& reply) {
  target_->ApplySync(reply);
  versions_applied_ += reply.versions.size();
  if (reply.config_epoch > last_config_epoch_) {
    last_config_epoch_ = reply.config_epoch;
    last_primary_hint_ = reply.primary_hint;
  }
  if (!reply.has_more) {
    ++pulls_completed_;
  }
  if (instruments_.syncs != nullptr) {
    instruments_.syncs->Increment();
    if (reply.versions.empty()) {
      instruments_.heartbeats->Increment();
    } else {
      instruments_.versions->Increment(reply.versions.size());
    }
    if (!reply.has_more) {
      instruments_.pulls->Increment();
    }
    instruments_.high_timestamp_us->Set(target_->high_timestamp().physical_us);
  }
  return reply.has_more;
}

Result<int> BlockingPuller::PullOnce() {
  int applied = 0;
  bool more = true;
  while (more) {
    Result<proto::SyncReply> reply = sync_(agent_->NextRequest());
    if (!reply.ok()) {
      return reply.status();
    }
    applied += static_cast<int>(reply.value().versions.size());
    more = agent_->OnReply(reply.value());
  }
  return applied;
}

ThreadedPuller::ThreadedPuller(ReplicationAgent* agent,
                               BlockingPuller::SyncFn sync,
                               MicrosecondCount period_us)
    : agent_(agent), puller_(agent, std::move(sync)), period_us_(period_us) {
  thread_ = std::thread([this] { Loop(); });
}

void ThreadedPuller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void ThreadedPuller::PullNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pull_requested_ = true;
  }
  cv_.notify_all();
}

void ThreadedPuller::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::microseconds(period_us_), [this] {
      return stop_ || pull_requested_;
    });
    if (stop_) {
      return;
    }
    pull_requested_ = false;
    lock.unlock();
    Result<int> pulled = puller_.PullOnce();
    if (!pulled.ok()) {
      PILEUS_LOG(kWarning) << "replication pull for table '"
                           << agent_->options().table
                           << "' failed: " << pulled.status();
    }
    lock.lock();
  }
}

}  // namespace pileus::replication
