#include "src/replication/replication_agent.h"

#include <chrono>

#include "src/common/logging.h"

namespace pileus::replication {

proto::SyncRequest ReplicationAgent::NextRequest() const {
  proto::SyncRequest request;
  request.table = options_.table;
  request.after = target_->high_timestamp();
  request.max_versions = options_.max_versions_per_pull;
  return request;
}

bool ReplicationAgent::OnReply(const proto::SyncReply& reply) {
  target_->ApplySync(reply);
  versions_applied_ += reply.versions.size();
  if (!reply.has_more) {
    ++pulls_completed_;
  }
  return reply.has_more;
}

Result<int> BlockingPuller::PullOnce() {
  int applied = 0;
  bool more = true;
  while (more) {
    Result<proto::SyncReply> reply = sync_(agent_->NextRequest());
    if (!reply.ok()) {
      return reply.status();
    }
    applied += static_cast<int>(reply.value().versions.size());
    more = agent_->OnReply(reply.value());
  }
  return applied;
}

ThreadedPuller::ThreadedPuller(ReplicationAgent* agent,
                               BlockingPuller::SyncFn sync,
                               MicrosecondCount period_us)
    : agent_(agent), puller_(agent, std::move(sync)), period_us_(period_us) {
  thread_ = std::thread([this] { Loop(); });
}

void ThreadedPuller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void ThreadedPuller::PullNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pull_requested_ = true;
  }
  cv_.notify_all();
}

void ThreadedPuller::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::microseconds(period_us_), [this] {
      return stop_ || pull_requested_;
    });
    if (stop_) {
      return;
    }
    pull_requested_ = false;
    lock.unlock();
    Result<int> pulled = puller_.PullOnce();
    if (!pulled.ok()) {
      PILEUS_LOG(kWarning) << "replication pull for table '"
                           << agent_->options().table
                           << "' failed: " << pulled.status();
    }
    lock.lock();
  }
}

}  // namespace pileus::replication
