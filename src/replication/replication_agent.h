// Asynchronous replication agent.
//
// Agents are co-located with secondary tablets and periodically pull new
// versions from a source copy — normally the primary, but any fresher copy
// works because updates flow in timestamp order (paper Section 4.1-4.3).
// Each pull asks for "versions with timestamps above my high timestamp"; an
// idle primary answers with a heartbeat that still advances the secondary's
// high timestamp so clients can discover the node is up to date.
//
// The agent core is a transport-free state machine (NextRequest / OnReply) so
// the deterministic simulation can drive it with scheduled events while real
// deployments use BlockingPuller (synchronous rounds over any callable) or
// ThreadedPuller (background thread + Channel).

#ifndef PILEUS_SRC_REPLICATION_REPLICATION_AGENT_H_
#define PILEUS_SRC_REPLICATION_REPLICATION_AGENT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/proto/messages.h"
#include "src/storage/tablet.h"
#include "src/telemetry/metrics.h"

namespace pileus::replication {

class ReplicationAgent {
 public:
  struct Options {
    std::string table;
    // Cap on versions per sync round trip (0 = unlimited). The update log
    // never splits a same-timestamp (transactional) batch, so the actual
    // count may slightly exceed this.
    uint32_t max_versions_per_pull = 0;
  };

  ReplicationAgent(storage::Tablet* target, Options options)
      : target_(target), options_(std::move(options)) {}

  // The sync request to issue next: everything above the target's current
  // high timestamp.
  proto::SyncRequest NextRequest() const;

  // Applies one sync reply to the target tablet. Returns true when the source
  // indicated more data is pending (caller should issue another round).
  bool OnReply(const proto::SyncReply& reply);

  storage::Tablet* target() { return target_; }
  const Options& options() const { return options_; }

  uint64_t pulls_completed() const { return pulls_completed_; }
  uint64_t versions_applied() const { return versions_applied_; }

  // Config piggyback from the latest sync reply (Section 6.2): the source's
  // installed epoch and that epoch's primary. Drivers use this to notice a
  // failover and re-point the pull at the new primary. 0/empty until a
  // configured source answers.
  uint64_t last_config_epoch() const { return last_config_epoch_; }
  const std::string& last_primary_hint() const { return last_primary_hint_; }

  // Registers pileus_replication_* metrics labeled with the table and the
  // given node label and feeds them on every OnReply: sync round trips,
  // versions applied, idle heartbeats, completed pulls, and a gauge holding
  // the target's high timestamp (its replication lag is the scrape time
  // minus this value). The registry is not owned and must outlive the agent.
  void EnableTelemetry(telemetry::MetricsRegistry* registry,
                       std::string_view node_label);

 private:
  struct Instruments {
    telemetry::Counter* syncs = nullptr;
    telemetry::Counter* versions = nullptr;
    telemetry::Counter* heartbeats = nullptr;
    telemetry::Counter* pulls = nullptr;
    telemetry::Gauge* high_timestamp_us = nullptr;
  };

  storage::Tablet* target_;  // Not owned.
  Options options_;
  uint64_t pulls_completed_ = 0;
  uint64_t versions_applied_ = 0;
  // Newest config piggyback seen on a sync reply (monotonic in epoch).
  uint64_t last_config_epoch_ = 0;
  std::string last_primary_hint_;
  Instruments instruments_;
};

// Runs complete pull cycles (looping while the source reports has_more) over
// a synchronous sync function.
class BlockingPuller {
 public:
  using SyncFn =
      std::function<Result<proto::SyncReply>(const proto::SyncRequest&)>;

  BlockingPuller(ReplicationAgent* agent, SyncFn sync)
      : agent_(agent), sync_(std::move(sync)) {}

  // One full cycle; returns the number of versions applied.
  Result<int> PullOnce();

 private:
  ReplicationAgent* agent_;  // Not owned.
  SyncFn sync_;
};

// Background thread that pulls every `period_us` until stopped. Used by the
// real-transport examples; the simulation schedules pulls itself.
class ThreadedPuller {
 public:
  ThreadedPuller(ReplicationAgent* agent, BlockingPuller::SyncFn sync,
                 MicrosecondCount period_us);
  ~ThreadedPuller() { Stop(); }

  ThreadedPuller(const ThreadedPuller&) = delete;
  ThreadedPuller& operator=(const ThreadedPuller&) = delete;

  void Stop();

  // Wakes the puller immediately (e.g. tests that don't want to wait out the
  // period).
  void PullNow();

 private:
  void Loop();

  ReplicationAgent* agent_;  // Not owned.
  BlockingPuller puller_;
  const MicrosecondCount period_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool pull_requested_ = false;
  std::thread thread_;
};

}  // namespace pileus::replication

#endif  // PILEUS_SRC_REPLICATION_REPLICATION_AGENT_H_
