#include "src/cache/client_cache.h"

#include <algorithm>
#include <functional>

namespace pileus::cache {
namespace {

std::string NamespacedKey(std::string_view table, std::string_view key) {
  std::string namespaced;
  namespaced.reserve(table.size() + 1 + key.size());
  namespaced.append(table);
  namespaced.push_back('\0');
  namespaced.append(key);
  return namespaced;
}

}  // namespace

ClientCache::ClientCache() : ClientCache(Options()) {}

ClientCache::ClientCache(Options options) : options_(options) {
  const int shard_count = std::max(1, options_.shard_count);
  options_.shard_count = shard_count;
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Per-shard budget; the total can overshoot capacity_bytes by at most the
  // rounding of the division, never by an unbounded amount.
  shard_capacity_bytes_ =
      options_.capacity_bytes / static_cast<size_t>(shard_count);
  if (options_.metrics != nullptr) {
    telemetry::MetricsRegistry& registry = *options_.metrics;
    hits_metric_ = registry.GetCounter("pileus_cache_hits_total");
    misses_metric_ = registry.GetCounter("pileus_cache_misses_total");
    admissions_metric_ = registry.GetCounter("pileus_cache_admissions_total");
    evictions_metric_ = registry.GetCounter("pileus_cache_evictions_total");
    invalidations_metric_ =
        registry.GetCounter("pileus_cache_invalidations_total");
    bytes_metric_ = registry.GetGauge("pileus_cache_bytes");
    entries_metric_ = registry.GetGauge("pileus_cache_entries");
  }
}

ClientCache::Shard& ClientCache::ShardFor(std::string_view namespaced) {
  const size_t hash = std::hash<std::string_view>{}(namespaced);
  return *shards_[hash % shards_.size()];
}

size_t ClientCache::EntryCost(std::string_view namespaced,
                              const Entry& entry) {
  // Fixed overhead approximates the list node, map slot, and Entry headers.
  constexpr size_t kPerEntryOverhead = 64;
  return namespaced.size() + entry.value.size() + kPerEntryOverhead;
}

std::optional<ClientCache::Entry> ClientCache::Lookup(std::string_view table,
                                                      std::string_view key) {
  const std::string namespaced = NamespacedKey(table, key);
  Shard& shard = ShardFor(namespaced);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(std::string_view(namespaced));
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_metric_ != nullptr) {
      misses_metric_->Increment();
    }
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (hits_metric_ != nullptr) {
    hits_metric_->Increment();
  }
  return it->second->second;
}

void ClientCache::Admit(std::string_view table, std::string_view key,
                        std::string_view value, Timestamp timestamp,
                        bool is_tombstone, Timestamp valid_through) {
  if (shard_capacity_bytes_ == 0) {
    return;
  }
  valid_through = MaxTimestamp(valid_through, timestamp);
  const std::string namespaced = NamespacedKey(table, key);
  Shard& shard = ShardFor(namespaced);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(std::string_view(namespaced));
  if (it != shard.index.end()) {
    Entry& existing = it->second->second;
    if (timestamp < existing.timestamp) {
      // Older evidence cannot extend what the newer version already bounds.
      return;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (timestamp == existing.timestamp) {
      existing.valid_through =
          MaxTimestamp(existing.valid_through, valid_through);
      return;
    }
    const size_t old_cost = EntryCost(namespaced, existing);
    existing.value.assign(value);
    existing.timestamp = timestamp;
    existing.is_tombstone = is_tombstone;
    existing.valid_through = MaxTimestamp(existing.valid_through, valid_through);
    const size_t new_cost = EntryCost(namespaced, existing);
    shard.bytes += new_cost;
    shard.bytes -= old_cost;
    bytes_.fetch_add(new_cost, std::memory_order_relaxed);
    bytes_.fetch_sub(old_cost, std::memory_order_relaxed);
  } else {
    Entry entry;
    entry.value.assign(value);
    entry.timestamp = timestamp;
    entry.is_tombstone = is_tombstone;
    entry.valid_through = valid_through;
    const size_t cost = EntryCost(namespaced, entry);
    shard.lru.emplace_front(namespaced, std::move(entry));
    shard.index.emplace(std::string_view(shard.lru.front().first),
                        shard.lru.begin());
    shard.bytes += cost;
    bytes_.fetch_add(cost, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  admissions_.fetch_add(1, std::memory_order_relaxed);
  if (admissions_metric_ != nullptr) {
    admissions_metric_->Increment();
  }
  EvictOverBudgetLocked(shard);
  if (bytes_metric_ != nullptr) {
    bytes_metric_->Set(
        static_cast<int64_t>(bytes_.load(std::memory_order_relaxed)));
    entries_metric_->Set(
        static_cast<int64_t>(entries_.load(std::memory_order_relaxed)));
  }
}

void ClientCache::EvictOverBudgetLocked(Shard& shard) {
  // Strict budget: an object larger than the shard budget is admitted and
  // immediately evicted, so capacity_bytes is a hard bound, not a hint.
  while (shard.bytes > shard_capacity_bytes_ && !shard.lru.empty()) {
    const auto victim = std::prev(shard.lru.end());
    const size_t cost = EntryCost(victim->first, victim->second);
    shard.index.erase(std::string_view(victim->first));
    shard.lru.erase(victim);
    shard.bytes -= cost;
    bytes_.fetch_sub(cost, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (evictions_metric_ != nullptr) {
      evictions_metric_->Increment();
    }
  }
}

void ClientCache::Invalidate(std::string_view table, std::string_view key) {
  const std::string namespaced = NamespacedKey(table, key);
  Shard& shard = ShardFor(namespaced);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(std::string_view(namespaced));
  if (it == shard.index.end()) {
    return;
  }
  const size_t cost = EntryCost(namespaced, it->second->second);
  shard.lru.erase(it->second);
  shard.index.erase(it);
  shard.bytes -= cost;
  bytes_.fetch_sub(cost, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  if (invalidations_metric_ != nullptr) {
    invalidations_metric_->Increment();
  }
  if (bytes_metric_ != nullptr) {
    bytes_metric_->Set(
        static_cast<int64_t>(bytes_.load(std::memory_order_relaxed)));
    entries_metric_->Set(
        static_cast<int64_t>(entries_.load(std::memory_order_relaxed)));
  }
}

void ClientCache::Clear() {
  uint64_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->lru.size();
    bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->index.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  if (invalidations_metric_ != nullptr) {
    invalidations_metric_->Increment(dropped);
  }
  if (bytes_metric_ != nullptr) {
    bytes_metric_->Set(
        static_cast<int64_t>(bytes_.load(std::memory_order_relaxed)));
    entries_metric_->Set(
        static_cast<int64_t>(entries_.load(std::memory_order_relaxed)));
  }
}

CacheStats ClientCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.admissions = admissions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pileus::cache
