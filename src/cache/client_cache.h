// Consistency-aware client cache: a zero-RTT pseudo-replica.
//
// Pileus routes each Get to the node maximizing expected utility given
// monitored latency and staleness (paper Section 4.6). A client-side cache
// can join that decision as a pseudo-replica whose latency is ~0 and whose
// staleness is *exactly* known, because every entry carries the invariant:
//
//   "timestamp is the newest committed version of this key at or below
//    valid_through" (tombstone entries assert the key is absent/deleted).
//
// The invariant is established only from key-covering server evidence:
//  - a Get reply for the key (timestamp = value_timestamp, valid_through =
//    the serving node's high timestamp; not-found replies admit a tombstone
//    entry, since the node's prefix provably holds nothing newer),
//  - a GetRange reply item (valid_through = the scan's high timestamp),
//  - an acked Put/Delete (timestamp = valid_through = the assigned update
//    timestamp; the ack's heartbeat high may race with other writers and is
//    deliberately NOT used).
// A probe's high timestamp says nothing about whether a particular cached
// key changed, so probes never refresh entries (DESIGN.md "Client cache").
//
// Because primaries assign strictly increasing update timestamps and a
// node's advertised high timestamp is below every future assignment
// (Tablet::CurrentHeartbeat), the invariant stays true forever: the entry's
// guarantee is about the committed prefix at or below valid_through, which
// is immutable. Entries therefore never expire; they only lose *utility* as
// valid_through recedes behind consistency floors, exactly like a stale
// secondary loses utility in SelectTarget.
//
// Concurrency: sharded LRU maps guarded by per-shard mutexes, byte-budgeted
// per shard. Keys are namespaced "<table>\0<key>" so one cache can be shared
// across tablets/shards (ShardedClient hands the same pointer to every
// per-range PileusClient).

#ifndef PILEUS_SRC_CACHE_CLIENT_CACHE_H_
#define PILEUS_SRC_CACHE_CLIENT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/timestamp.h"
#include "src/telemetry/metrics.h"

namespace pileus::cache {

// Point-in-time counters; entries/bytes are current occupancy.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admissions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

class ClientCache {
 public:
  struct Options {
    // Total byte budget across shards (keys + values + fixed per-entry
    // overhead). Zero disables admission entirely.
    size_t capacity_bytes = size_t{8} << 20;
    // Lock shards; rounded up to at least 1.
    int shard_count = 8;
    // Modelled latency of a cache hit, fed into SelectTarget as the
    // pseudo-replica's expected latency. Zero is honest for an in-process
    // map; a non-zero value lets experiments model slower local tiers.
    int64_t serve_latency_us = 0;
    // Optional registry for pileus_cache_* counters/gauges; Stats() works
    // without one.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  // One cached assertion about a key. For is_tombstone entries the value is
  // empty and timestamp may be Zero (key never existed at or below
  // valid_through) or the deletion's update timestamp.
  struct Entry {
    std::string value;
    Timestamp timestamp;
    bool is_tombstone = false;
    Timestamp valid_through;
  };

  ClientCache();
  explicit ClientCache(Options options);

  // Returns the entry and refreshes its LRU position. Counts a hit or miss.
  std::optional<Entry> Lookup(std::string_view table, std::string_view key);

  // Merges new evidence under the entry invariant: a strictly newer
  // timestamp replaces the entry (valid_through takes the max of both
  // bounds, as both assertions were sound when admitted); an equal timestamp
  // only extends valid_through; older evidence is ignored (it cannot extend
  // what a newer version already bounds). valid_through is floored at
  // timestamp so a malformed admission cannot understate itself.
  void Admit(std::string_view table, std::string_view key,
             std::string_view value, Timestamp timestamp, bool is_tombstone,
             Timestamp valid_through);

  // Drops one key / every entry. Invalidate counts toward invalidations;
  // Clear counts each dropped entry.
  void Invalidate(std::string_view table, std::string_view key);
  void Clear();

  CacheStats Stats() const;
  const Options& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used. The map owns iterators into the list.
    std::list<std::pair<std::string, Entry>> lru;
    std::unordered_map<std::string_view, decltype(lru)::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(std::string_view namespaced);
  static size_t EntryCost(std::string_view namespaced, const Entry& entry);
  void EvictOverBudgetLocked(Shard& shard);

  Options options_;
  size_t shard_capacity_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};

  telemetry::Counter* hits_metric_ = nullptr;
  telemetry::Counter* misses_metric_ = nullptr;
  telemetry::Counter* admissions_metric_ = nullptr;
  telemetry::Counter* evictions_metric_ = nullptr;
  telemetry::Counter* invalidations_metric_ = nullptr;
  telemetry::Gauge* bytes_metric_ = nullptr;
  telemetry::Gauge* entries_metric_ = nullptr;
};

}  // namespace pileus::cache

#endif  // PILEUS_SRC_CACHE_CLIENT_CACHE_H_
