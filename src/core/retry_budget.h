// Per-tenant retry budget (DESIGN.md Section 11).
//
// Retries amplify load exactly when the system can least afford it: a node
// that sheds 50% of requests sees its offered load double if every rejection
// is retried. The budget bounds that amplification the way production RPC
// stacks do (and unlike a plain attempt counter, it bounds it *across*
// operations): retries spend from a token bucket that only successful
// operations refill, so a client whose requests mostly succeed retries
// freely, while one facing a brown-out runs dry after `capacity` extra
// attempts and stops contributing to the storm until successes resume.
//
// Every retry path draws from the same budget — availability retries and
// fallback reads on the Get path, transport/kUnavailable/kOverloaded retries
// AND kNotPrimary redirects on the write path — so the total extra traffic a
// client can generate is bounded no matter which failure mode it hits.
//
// Thread safety: fully synchronized, so one budget can be shared by every
// client of a tenant (PileusClient::Options::shared_retry_budget), making the
// bound per-tenant rather than per-client.

#ifndef PILEUS_SRC_CORE_RETRY_BUDGET_H_
#define PILEUS_SRC_CORE_RETRY_BUDGET_H_

#include <algorithm>
#include <cstdint>
#include <mutex>

namespace pileus::core {

class RetryBudget {
 public:
  struct Options {
    // Maximum retries available after a run of successes (bucket capacity).
    double capacity = 10.0;
    // Tokens returned per successful operation. 0.1 means sustained retry
    // traffic is at most ~10% of sustained success traffic.
    double refill_per_success = 0.1;
  };

  RetryBudget() : RetryBudget(Options{}) {}
  explicit RetryBudget(Options options)
      : options_(options), tokens_(options.capacity) {}

  // Takes one retry token. False (and no state change beyond the denial
  // counter) when the budget is exhausted: the caller must not retry.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    return true;
  }

  // A (first-attempt or retried) operation succeeded: refill a fraction of a
  // token, capped at capacity.
  void RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ = std::min(options_.capacity, tokens_ + options_.refill_per_success);
  }

  double tokens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
  }

  // Retries denied for lack of budget, for telemetry and tests.
  uint64_t denied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return denied_;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t denied_ = 0;
};

}  // namespace pileus::core

#endif  // PILEUS_SRC_CORE_RETRY_BUDGET_H_
