#include "src/core/monitor.h"

#include <algorithm>

namespace pileus::core {

Monitor::NodeState& Monitor::StateFor(std::string_view node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    it = nodes_.emplace(std::string(node),
                        NodeState(options_.latency_window))
             .first;
  }
  return it->second;
}

const Monitor::NodeState* Monitor::FindState(std::string_view node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void Monitor::RecordLatency(std::string_view node, MicrosecondCount rtt_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  state.latencies.Record(now, rtt_us);
  state.last_contact_us = now;
  ++samples_recorded_;
}

void Monitor::RecordHighTimestamp(std::string_view node,
                                  const Timestamp& high) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  // High timestamps only move forward; keep the max ever observed.
  if (high > state.high_timestamp) {
    state.high_timestamp = high;
    state.high_observed_at_us = now;
  }
  state.last_contact_us = now;
}

void Monitor::RecordConfig(uint64_t epoch, std::string_view primary) {
  if (epoch == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= config_epoch_) {
    return;  // Stale or already-known epoch.
  }
  config_epoch_ = epoch;
  config_primary_ = std::string(primary);
}

Monitor::ConfigView Monitor::CurrentConfig() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ConfigView{config_epoch_, config_primary_};
}

void Monitor::RecordSuccess(std::string_view node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  state.outcomes.Record(clock_->NowMicros(), 1);
  // Any answer closes the breaker: a half-open probation probe succeeded, or
  // the node recovered on its own before the cooldown ended.
  state.consecutive_failures = 0;
  state.breaker_open_until_us = 0;
}

void Monitor::RecordFailure(std::string_view node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  state.outcomes.Record(now, 0);
  // A failure is still contact for probing purposes: the prober keeps
  // checking for recovery at its normal cadence, not in a tight loop.
  state.last_contact_us = now;
  if (options_.breaker_failure_threshold > 0) {
    ++state.consecutive_failures;
    const bool was_open = state.breaker_open_until_us != 0;
    // Trip on reaching the threshold, and re-arm the full cooldown when a
    // half-open probation probe fails again.
    if (state.consecutive_failures >= options_.breaker_failure_threshold) {
      if (!was_open) {
        ++breaker_trips_;
      }
      state.breaker_open_until_us = now + options_.breaker_cooldown_us;
    }
  }
}

void Monitor::RecordOverload(std::string_view node,
                             MicrosecondCount retry_after_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  const MicrosecondCount backoff = retry_after_us > 0
                                       ? retry_after_us
                                       : options_.default_overload_backoff_us;
  state.overloaded_until_us = std::max(state.overloaded_until_us, now + backoff);
  // The node answered (with a rejection), so this is contact — the prober
  // need not also hammer it — but deliberately not a breaker-closing
  // success: a half-open breaker should wait for a served reply.
  state.last_contact_us = now;
  ++overload_rejections_;
}

void Monitor::RecordQueueDelay(std::string_view node,
                               MicrosecondCount delay_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const double alpha = options_.queue_delay_alpha;
  state.queue_delay_ewma_us =
      alpha * static_cast<double>(delay_us) +
      (1.0 - alpha) * state.queue_delay_ewma_us;
}

bool Monitor::IsOverloaded(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  return state != nullptr &&
         clock_->NowMicros() < state->overloaded_until_us;
}

double Monitor::POverload(std::string_view node, double utility) const {
  if (!IsOverloaded(node)) {
    return 1.0;
  }
  const double u = std::clamp(utility, 0.0, 1.0);
  return options_.overload_penalty + (1.0 - options_.overload_penalty) * u;
}

MicrosecondCount Monitor::QueueDelayUs(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  return state == nullptr
             ? 0
             : static_cast<MicrosecondCount>(state->queue_delay_ewma_us);
}

Monitor::BreakerState Monitor::BreakerLocked(const NodeState* state,
                                             MicrosecondCount now_us) const {
  if (state == nullptr || state->breaker_open_until_us == 0) {
    return BreakerState::kClosed;
  }
  return now_us < state->breaker_open_until_us ? BreakerState::kOpen
                                               : BreakerState::kHalfOpen;
}

Monitor::BreakerState Monitor::Breaker(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BreakerLocked(FindState(node), clock_->NowMicros());
}

double Monitor::PNodeUp(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return 1.0;
  }
  const MicrosecondCount now = clock_->NowMicros();
  // An open breaker overrides the windowed estimate: the node is known-bad
  // until the cooldown expires, however good its older samples look.
  if (BreakerLocked(state, now) == BreakerState::kOpen) {
    return 0.0;
  }
  // Samples are 0 (failure) or 1 (success): the fraction strictly below 1 is
  // the failure rate. An empty window means no evidence: assume up.
  return 1.0 - state->outcomes.FractionBelow(now, 1,
                                             /*empty_estimate=*/0.0);
}

double Monitor::PNodeLat(std::string_view node,
                         MicrosecondCount latency_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return options_.unknown_latency_estimate;
  }
  return state->latencies.FractionBelow(clock_->NowMicros(), latency_us,
                                        options_.unknown_latency_estimate);
}

double Monitor::PNodeCons(std::string_view node,
                          const Timestamp& min_read_timestamp) const {
  return KnownHighTimestamp(node) >= min_read_timestamp ? 1.0 : 0.0;
}

Timestamp Monitor::KnownHighTimestamp(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return Timestamp::Zero();
  }
  Timestamp high = state->high_timestamp;
  if (options_.predict_high_timestamp && state->high_observed_at_us >= 0) {
    // Extrapolate: the node's high timestamp has (probably) kept advancing
    // since we last heard from it. Scaled by prediction_rate so deployments
    // can be more or less aggressive; 1.0 assumes the node keeps perfect pace
    // with wall time (true for an idle primary's heartbeats).
    const MicrosecondCount elapsed =
        clock_->NowMicros() - state->high_observed_at_us;
    high.physical_us +=
        static_cast<MicrosecondCount>(options_.prediction_rate *
                                      static_cast<double>(elapsed));
  }
  return high;
}

MicrosecondCount Monitor::MeanLatency(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return 0;
  }
  return state->latencies.Mean(clock_->NowMicros());
}

std::vector<Monitor::NodeSnapshot> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const MicrosecondCount now = clock_->NowMicros();
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  // nodes_ is an ordered map, so the result is sorted by name already.
  for (const auto& [name, state] : nodes_) {
    NodeSnapshot snap;
    snap.node = name;
    snap.latency_samples = state.latencies.SampleCount(now);
    snap.mean_latency_us = state.latencies.Mean(now);
    snap.p50_latency_us = state.latencies.Quantile(now, 0.50);
    snap.p95_latency_us = state.latencies.Quantile(now, 0.95);
    snap.p99_latency_us = state.latencies.Quantile(now, 0.99);
    snap.high_timestamp = state.high_timestamp;
    snap.high_observed_at_us = state.high_observed_at_us;
    snap.last_contact_us = state.last_contact_us;
    snap.breaker = BreakerLocked(&state, now);
    snap.p_up = snap.breaker == BreakerState::kOpen
                    ? 0.0
                    : 1.0 - state.outcomes.FractionBelow(
                                now, 1, /*empty_estimate=*/0.0);
    snap.consecutive_failures = state.consecutive_failures;
    snap.overloaded = now < state.overloaded_until_us;
    snap.queue_delay_us =
        static_cast<MicrosecondCount>(state.queue_delay_ewma_us);
    out.push_back(std::move(snap));
  }
  return out;
}

bool Monitor::NeedsProbe(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return true;
  }
  switch (BreakerLocked(state, clock_->NowMicros())) {
    case BreakerState::kOpen:
      return false;  // Pointless during the cooldown.
    case BreakerState::kHalfOpen:
      return true;  // Probation probe decides recovery.
    case BreakerState::kClosed:
      break;
  }
  return clock_->NowMicros() - state->last_contact_us >=
         options_.probe_interval_us;
}

std::string_view BreakerStateName(Monitor::BreakerState state) {
  switch (state) {
    case Monitor::BreakerState::kClosed:
      return "closed";
    case Monitor::BreakerState::kOpen:
      return "open";
    case Monitor::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace pileus::core
