#include "src/core/monitor.h"

#include <algorithm>

namespace pileus::core {

Monitor::NodeState& Monitor::StateFor(std::string_view node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    it = nodes_.emplace(std::string(node),
                        NodeState(options_.latency_window))
             .first;
  }
  return it->second;
}

const Monitor::NodeState* Monitor::FindState(std::string_view node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void Monitor::RecordLatency(std::string_view node, MicrosecondCount rtt_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  state.latencies.Record(now, rtt_us);
  state.last_contact_us = now;
  ++state.total_samples;
  ++samples_recorded_;
  ++state_version_;
}

void Monitor::RecordHighTimestamp(std::string_view node,
                                  const Timestamp& high) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  // High timestamps only move forward; keep the max ever observed.
  if (high > state.high_timestamp) {
    state.high_timestamp = high;
    state.high_observed_at_us = now;
  }
  state.last_contact_us = now;
  ++state_version_;
}

void Monitor::RecordConfig(uint64_t epoch, std::string_view primary) {
  if (epoch == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= config_epoch_) {
    return;  // Stale or already-known epoch.
  }
  config_epoch_ = epoch;
  config_primary_ = std::string(primary);
}

Monitor::ConfigView Monitor::CurrentConfig() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ConfigView{config_epoch_, config_primary_};
}

void Monitor::RecordSuccess(std::string_view node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  state.outcomes.Record(clock_->NowMicros(), 1);
  // Any answer closes the breaker: a half-open probation probe succeeded, or
  // the node recovered on its own before the cooldown ended.
  state.consecutive_failures = 0;
  state.breaker_open_until_us = 0;
  ++state.total_samples;
  ++state_version_;
}

void Monitor::RecordFailure(std::string_view node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  state.outcomes.Record(now, 0);
  // A failure is still contact for probing purposes: the prober keeps
  // checking for recovery at its normal cadence, not in a tight loop.
  state.last_contact_us = now;
  ++state.total_samples;
  ++state_version_;
  if (options_.breaker_failure_threshold > 0) {
    ++state.consecutive_failures;
    const bool was_open = state.breaker_open_until_us != 0;
    // Trip on reaching the threshold, and re-arm the full cooldown when a
    // half-open probation probe fails again.
    if (state.consecutive_failures >= options_.breaker_failure_threshold) {
      if (!was_open) {
        ++breaker_trips_;
      }
      state.breaker_open_until_us = now + options_.breaker_cooldown_us;
    }
  }
}

void Monitor::RecordOverload(std::string_view node,
                             MicrosecondCount retry_after_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const MicrosecondCount now = clock_->NowMicros();
  const MicrosecondCount backoff = retry_after_us > 0
                                       ? retry_after_us
                                       : options_.default_overload_backoff_us;
  state.overloaded_until_us = std::max(state.overloaded_until_us, now + backoff);
  // The node answered (with a rejection), so this is contact — the prober
  // need not also hammer it — but deliberately not a breaker-closing
  // success: a half-open breaker should wait for a served reply.
  state.last_contact_us = now;
  ++overload_rejections_;
  ++state_version_;
}

void Monitor::RecordQueueDelay(std::string_view node,
                               MicrosecondCount delay_us) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& state = StateFor(node);
  const double alpha = options_.queue_delay_alpha;
  state.queue_delay_ewma_us =
      alpha * static_cast<double>(delay_us) +
      (1.0 - alpha) * state.queue_delay_ewma_us;
  state.has_queue_delay = true;
  ++state_version_;
}

bool Monitor::IsOverloaded(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  return state != nullptr &&
         clock_->NowMicros() < state->overloaded_until_us;
}

double Monitor::POverload(std::string_view node, double utility) const {
  if (!IsOverloaded(node)) {
    return 1.0;
  }
  const double u = std::clamp(utility, 0.0, 1.0);
  return options_.overload_penalty + (1.0 - options_.overload_penalty) * u;
}

MicrosecondCount Monitor::QueueDelayUs(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return 0;
  }
  if (state->has_queue_delay) {
    return static_cast<MicrosecondCount>(state->queue_delay_ewma_us);
  }
  // No local evidence: use the fleet prior's queue delay, scaled down as the
  // prior ages so a dead aggregator's last digest fades to "no pressure".
  const double k = PriorWeightLocked(*state, clock_->NowMicros());
  if (k <= 0.0) {
    return 0;
  }
  const double confidence = k / options_.prior_strength;  // In (0, 1].
  return static_cast<MicrosecondCount>(
      confidence * static_cast<double>(state->prior.queue_delay_us));
}

Monitor::BreakerState Monitor::BreakerLocked(const NodeState* state,
                                             MicrosecondCount now_us) const {
  if (state == nullptr || state->breaker_open_until_us == 0) {
    return BreakerState::kClosed;
  }
  return now_us < state->breaker_open_until_us ? BreakerState::kOpen
                                               : BreakerState::kHalfOpen;
}

Monitor::BreakerState Monitor::Breaker(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BreakerLocked(FindState(node), clock_->NowMicros());
}

double Monitor::PriorWeightLocked(const NodeState& state,
                                  MicrosecondCount now_us) const {
  if (!state.has_prior || state.prior_installed_at_us < 0 ||
      options_.prior_ttl_us <= 0) {
    return 0.0;
  }
  const MicrosecondCount age = now_us - state.prior_installed_at_us;
  if (age >= options_.prior_ttl_us) {
    return 0.0;
  }
  const double fresh =
      1.0 - static_cast<double>(age) / static_cast<double>(options_.prior_ttl_us);
  return options_.prior_strength * fresh;
}

double Monitor::PriorFractionBelow(const monitoring::NodeCondition& prior,
                                   MicrosecondCount latency_us) {
  // Piecewise-linear CDF through (0, 0), (p50, .5), (p95, .95), (p99, .99).
  // Equal or out-of-order percentiles (tiny fleets, constant latency)
  // degenerate to steps rather than dividing by zero.
  const double l = static_cast<double>(latency_us);
  const double p50 = static_cast<double>(prior.p50_latency_us);
  const double p95 = static_cast<double>(prior.p95_latency_us);
  const double p99 = static_cast<double>(prior.p99_latency_us);
  if (l <= 0.0) {
    return 0.0;
  }
  if (l < p50) {
    return 0.5 * l / p50;
  }
  if (l < p95) {
    return p95 > p50 ? 0.5 + 0.45 * (l - p50) / (p95 - p50) : 0.5;
  }
  if (l < p99) {
    return p99 > p95 ? 0.95 + 0.04 * (l - p95) / (p99 - p95) : 0.95;
  }
  // Past p99: approach 1.0 over another p99 of headroom.
  return std::min(1.0, 0.99 + 0.01 * (l - p99) / std::max(1.0, p99));
}

double Monitor::PNodeUp(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return 1.0;
  }
  const MicrosecondCount now = clock_->NowMicros();
  // An open breaker overrides the windowed estimate: the node is known-bad
  // until the cooldown expires, however good its older samples look.
  if (BreakerLocked(state, now) == BreakerState::kOpen) {
    return 0.0;
  }
  // Samples are 0 (failure) or 1 (success): the fraction strictly below 1 is
  // the failure rate. An empty window means no evidence: assume up.
  const double m = static_cast<double>(state->outcomes.SampleCount(now));
  const double p_local =
      1.0 - state->outcomes.FractionBelow(now, 1, /*empty_estimate=*/0.0);
  const double k = PriorWeightLocked(*state, now);
  if (k <= 0.0) {
    return m > 0.0 ? p_local : 1.0;
  }
  const double p_prior = state->prior.p_up;
  if (m <= 0.0) {
    // Only the prior speaks; as it ages, drift back to the optimistic 1.0
    // default so a stale "node down" verdict cannot shadow it forever.
    const double confidence = k / options_.prior_strength;
    return confidence * p_prior + (1.0 - confidence) * 1.0;
  }
  return (m * p_local + k * p_prior) / (m + k);
}

double Monitor::PNodeLat(std::string_view node,
                         MicrosecondCount latency_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return options_.unknown_latency_estimate;
  }
  const MicrosecondCount now = clock_->NowMicros();
  const double n = static_cast<double>(state->latencies.SampleCount(now));
  // A prior with sample_count == 0 carries no latency evidence (a node seen
  // by the fleet only via server self-reports): blend nothing from it.
  double k = PriorWeightLocked(*state, now);
  if (state->prior.sample_count == 0) {
    k = 0.0;
  }
  if (k <= 0.0) {
    return state->latencies.FractionBelow(now, latency_us,
                                          options_.unknown_latency_estimate);
  }
  const double f_prior = PriorFractionBelow(state->prior, latency_us);
  if (n <= 0.0) {
    return f_prior;
  }
  const double f_local = state->latencies.FractionBelow(
      now, latency_us, options_.unknown_latency_estimate);
  return (n * f_local + k * f_prior) / (n + k);
}

bool Monitor::InstallDigest(const monitoring::ConditionDigest& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  if (digest.version <= digest_version_) {
    return false;  // Stale or duplicate push.
  }
  const MicrosecondCount now = clock_->NowMicros();
  digest_version_ = digest.version;
  digest_installed_at_us_ = now;
  ++digests_installed_;
  for (const monitoring::NodeCondition& cond : digest.nodes) {
    NodeState& state = StateFor(cond.node);
    state.has_prior = true;
    state.prior = cond;
    state.prior_installed_at_us = now;
    // High timestamps are monotonic, so adopting the fleet's larger value is
    // always safe and lets a cold client rank consistency without a probe.
    if (cond.high_age_us >= 0 && cond.high_timestamp > state.high_timestamp) {
      state.high_timestamp = cond.high_timestamp;
      state.high_observed_at_us = std::max<MicrosecondCount>(
          0, now - cond.high_age_us);
    }
    // Deliberately not touching last_contact_us: a prior is fleet hearsay,
    // not contact. Probe suppression keys off prior freshness instead.
  }
  return true;
}

uint64_t Monitor::digest_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return digest_version_;
}

MicrosecondCount Monitor::digest_age_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (digest_installed_at_us_ < 0) {
    return -1;
  }
  return clock_->NowMicros() - digest_installed_at_us_;
}

uint64_t Monitor::state_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_version_;
}

std::vector<monitoring::NodeCondition> Monitor::BuildReportConditions() const {
  std::lock_guard<std::mutex> lock(mu_);
  const MicrosecondCount now = clock_->NowMicros();
  std::vector<monitoring::NodeCondition> out;
  out.reserve(nodes_.size());
  for (const auto& [name, state] : nodes_) {
    // Only nodes with local evidence: re-reporting prior-only knowledge
    // would echo the aggregator's own digest back and self-reinforce.
    if (state.total_samples == 0) {
      continue;
    }
    monitoring::NodeCondition cond;
    cond.node = name;
    cond.sample_count = static_cast<uint64_t>(state.latencies.SampleCount(now));
    cond.mean_latency_us = state.latencies.Mean(now);
    cond.p50_latency_us = state.latencies.Quantile(now, 0.50);
    cond.p95_latency_us = state.latencies.Quantile(now, 0.95);
    cond.p99_latency_us = state.latencies.Quantile(now, 0.99);
    cond.high_timestamp = state.high_timestamp;
    cond.high_age_us = state.high_observed_at_us >= 0
                           ? now - state.high_observed_at_us
                           : -1;
    cond.p_up = BreakerLocked(&state, now) == BreakerState::kOpen
                    ? 0.0
                    : 1.0 - state.outcomes.FractionBelow(
                                now, 1, /*empty_estimate=*/0.0);
    cond.queue_delay_us =
        state.has_queue_delay
            ? static_cast<MicrosecondCount>(state.queue_delay_ewma_us)
            : 0;
    cond.overloaded = now < state.overloaded_until_us;
    out.push_back(std::move(cond));
  }
  return out;
}

double Monitor::PNodeCons(std::string_view node,
                          const Timestamp& min_read_timestamp) const {
  return KnownHighTimestamp(node) >= min_read_timestamp ? 1.0 : 0.0;
}

Timestamp Monitor::KnownHighTimestamp(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return Timestamp::Zero();
  }
  Timestamp high = state->high_timestamp;
  if (options_.predict_high_timestamp && state->high_observed_at_us >= 0) {
    // Extrapolate: the node's high timestamp has (probably) kept advancing
    // since we last heard from it. Scaled by prediction_rate so deployments
    // can be more or less aggressive; 1.0 assumes the node keeps perfect pace
    // with wall time (true for an idle primary's heartbeats).
    const MicrosecondCount elapsed =
        clock_->NowMicros() - state->high_observed_at_us;
    high.physical_us +=
        static_cast<MicrosecondCount>(options_.prediction_rate *
                                      static_cast<double>(elapsed));
  }
  return high;
}

MicrosecondCount Monitor::MeanLatency(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return 0;
  }
  return state->latencies.Mean(clock_->NowMicros());
}

std::vector<Monitor::NodeSnapshot> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const MicrosecondCount now = clock_->NowMicros();
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  // nodes_ is an ordered map, so the result is sorted by name already.
  for (const auto& [name, state] : nodes_) {
    NodeSnapshot snap;
    snap.node = name;
    snap.latency_samples = state.latencies.SampleCount(now);
    snap.mean_latency_us = state.latencies.Mean(now);
    snap.p50_latency_us = state.latencies.Quantile(now, 0.50);
    snap.p95_latency_us = state.latencies.Quantile(now, 0.95);
    snap.p99_latency_us = state.latencies.Quantile(now, 0.99);
    snap.high_timestamp = state.high_timestamp;
    snap.high_observed_at_us = state.high_observed_at_us;
    snap.last_contact_us = state.last_contact_us;
    snap.breaker = BreakerLocked(&state, now);
    snap.p_up = snap.breaker == BreakerState::kOpen
                    ? 0.0
                    : 1.0 - state.outcomes.FractionBelow(
                                now, 1, /*empty_estimate=*/0.0);
    snap.consecutive_failures = state.consecutive_failures;
    snap.overloaded = now < state.overloaded_until_us;
    snap.queue_delay_us =
        static_cast<MicrosecondCount>(state.queue_delay_ewma_us);
    snap.total_samples = state.total_samples;
    snap.has_prior = state.has_prior;
    snap.prior_age_us = state.prior_installed_at_us >= 0
                            ? now - state.prior_installed_at_us
                            : -1;
    out.push_back(std::move(snap));
  }
  return out;
}

bool Monitor::NeedsProbe(std::string_view node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState* state = FindState(node);
  if (state == nullptr) {
    return true;
  }
  const MicrosecondCount now = clock_->NowMicros();
  switch (BreakerLocked(state, now)) {
    case BreakerState::kOpen:
      return false;  // Pointless during the cooldown.
    case BreakerState::kHalfOpen:
      return true;  // Probation probe decides recovery.
    case BreakerState::kClosed:
      break;
  }
  // Fresh fleet prior: the fleet already measured this node, skip the round
  // trip. Once the prior outgrows the suppression window, probing resumes
  // even if digests keep arriving with unchanged content.
  if (state->has_prior && state->prior_installed_at_us >= 0 &&
      now - state->prior_installed_at_us < options_.prior_probe_suppress_us) {
    const bool due = state->last_contact_us < 0 ||
                     now - state->last_contact_us >= options_.probe_interval_us;
    if (due) {
      ++probes_suppressed_;  // Count only probes that would have fired.
    }
    return false;
  }
  return now - state->last_contact_us >= options_.probe_interval_us;
}

std::string_view BreakerStateName(Monitor::BreakerState state) {
  switch (state) {
    case Monitor::BreakerState::kClosed:
      return "closed";
    case Monitor::BreakerState::kOpen:
      return "open";
    case Monitor::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace pileus::core
