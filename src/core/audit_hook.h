// Audit hook: client-visible operation records for the consistency-audit
// harness (DESIGN.md "Consistency auditing").
//
// When PileusClient::Options::op_observer is set, the client emits one
// OpRecord per completed (or failed) Get/Put/Delete/Range, capturing exactly
// what the application could observe: begin/end times, the returned version,
// the serving node's high timestamp, and the subSLA the client *claims* it
// met. An offline checker (src/audit) later replays these records against the
// primary's committed-write order and verifies every claim independently, so
// the interface lives here in core while the verification logic stays out of
// the client's dependency graph.

#ifndef PILEUS_SRC_CORE_AUDIT_HOOK_H_
#define PILEUS_SRC_CORE_AUDIT_HOOK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/timestamp.h"
#include "src/core/consistency.h"
#include "src/proto/messages.h"

namespace pileus::core {

enum class AuditOp : uint8_t {
  kGet = 0,
  kPut = 1,
  kDelete = 2,
  kRange = 3,
};

inline std::string_view AuditOpName(AuditOp op) {
  switch (op) {
    case AuditOp::kGet:
      return "Get";
    case AuditOp::kPut:
      return "Put";
    case AuditOp::kDelete:
      return "Delete";
    case AuditOp::kRange:
      return "Range";
  }
  return "Unknown";
}

// Everything the audit checker needs to know about one client operation.
struct OpRecord {
  AuditOp op = AuditOp::kGet;
  // Process-unique session identity (Session::id()); survives serialized
  // hand-off between frontends, so a moved session keeps its history.
  uint64_t session_id = 0;
  std::string table;
  std::string key;      // Scan begin key for kRange.
  std::string end_key;  // kRange only; empty = unbounded.
  MicrosecondCount begin_us = 0;
  MicrosecondCount end_us = 0;
  // False when the op returned an error (no reply fields are meaningful,
  // except that a failed write may still have committed server-side).
  bool ok = false;
  std::string node;  // Replica that served the winning reply / the primary.

  // --- Reads (kGet) ---
  bool found = false;
  std::string value;
  // Update timestamp of the returned version; a not-found reply carries the
  // tombstone's timestamp (Zero when the node held nothing at all).
  Timestamp value_timestamp;
  // The serving node's high timestamp; for kRange the one timestamp that
  // bounds the whole scan.
  Timestamp high_timestamp;
  int target_rank = -1;       // SubSLA the client aimed for.
  int claimed_met_rank = -1;  // SubSLA the client reported as met; -1 = none.
  // The met subSLA's guarantee and latency bound (valid iff
  // claimed_met_rank >= 0) - recorded explicitly so the checker needs no
  // access to the SLA object.
  Guarantee claimed_guarantee;
  MicrosecondCount claimed_latency_bound_us = 0;
  bool from_primary = false;
  bool retried = false;

  // --- Range scans (kRange) ---
  std::vector<proto::ObjectVersion> items;

  // --- Writes (kPut / kDelete) ---
  Timestamp write_timestamp;  // Assigned by the primary (ok writes only).
};

// Receives every OpRecord a client emits. Implementations must be
// thread-safe when clients run on multiple application threads; the
// simulator drives everything from one thread.
class OpObserver {
 public:
  virtual ~OpObserver() = default;
  virtual void OnOp(const OpRecord& record) = 0;
};

}  // namespace pileus::core

#endif  // PILEUS_SRC_CORE_AUDIT_HOOK_H_
